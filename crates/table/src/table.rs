//! The fact table: schema + pooled column data + row append.

use crate::column::ColumnStore;
use crate::schema::{ColumnId, TableSchema};
use crate::zone::ZoneMaps;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while appending rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowError {
    /// Wrong number of dimension coordinates for the schema.
    DimArity {
        /// Coordinates supplied.
        got: usize,
        /// Coordinates the schema requires (Σ levels).
        want: usize,
    },
    /// Wrong number of measure values for the schema.
    MeasureArity {
        /// Values supplied.
        got: usize,
        /// Values the schema requires.
        want: usize,
    },
    /// A coordinate exceeds its level's cardinality.
    CoordOutOfRange {
        /// Dimension index.
        dim: usize,
        /// Level index.
        level: usize,
        /// Offending coordinate.
        coord: u32,
        /// Level cardinality.
        cardinality: u32,
    },
}

impl fmt::Display for RowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimArity { got, want } => {
                write!(
                    f,
                    "row has {got} dimension coordinates, schema requires {want}"
                )
            }
            Self::MeasureArity { got, want } => {
                write!(f, "row has {got} measures, schema requires {want}")
            }
            Self::CoordOutOfRange {
                dim,
                level,
                coord,
                cardinality,
            } => write!(
                f,
                "coordinate {coord} out of range for dimension {dim} level {level} \
                 (cardinality {cardinality})"
            ),
        }
    }
}

impl std::error::Error for RowError {}

/// Builder that accumulates rows column-wise before freezing into pools.
#[derive(Debug, Clone)]
pub struct FactTableBuilder {
    schema: TableSchema,
    dim_cols: Vec<Vec<u32>>,
    measure_cols: Vec<Vec<f64>>,
    rows: usize,
}

impl FactTableBuilder {
    /// Starts a builder for `schema`.
    pub fn new(schema: TableSchema) -> Self {
        let dim_cols = vec![Vec::new(); schema.dim_column_count()];
        let measure_cols = vec![Vec::new(); schema.measures.len()];
        Self {
            schema,
            dim_cols,
            measure_cols,
            rows: 0,
        }
    }

    /// Pre-allocates column capacity for `rows` rows.
    pub fn reserve(&mut self, rows: usize) {
        for c in &mut self.dim_cols {
            c.reserve(rows);
        }
        for c in &mut self.measure_cols {
            c.reserve(rows);
        }
    }

    /// Appends one row. `dims` holds the coordinates of every dimension
    /// column in schema order (all levels of dimension 0, then dimension 1,
    /// …); `measures` holds one value per measure column.
    pub fn push_row(&mut self, dims: &[u32], measures: &[f64]) -> Result<(), RowError> {
        if dims.len() != self.dim_cols.len() {
            return Err(RowError::DimArity {
                got: dims.len(),
                want: self.dim_cols.len(),
            });
        }
        if measures.len() != self.measure_cols.len() {
            return Err(RowError::MeasureArity {
                got: measures.len(),
                want: self.measure_cols.len(),
            });
        }
        let mut flat = 0;
        for (d, ds) in self.schema.dimensions.iter().enumerate() {
            for (l, ls) in ds.levels.iter().enumerate() {
                let coord = dims[flat];
                if coord >= ls.cardinality {
                    return Err(RowError::CoordOutOfRange {
                        dim: d,
                        level: l,
                        coord,
                        cardinality: ls.cardinality,
                    });
                }
                flat += 1;
            }
        }
        for (c, &v) in self.dim_cols.iter_mut().zip(dims) {
            c.push(v);
        }
        for (c, &v) in self.measure_cols.iter_mut().zip(measures) {
            c.push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Number of rows appended so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Freezes the builder into a [`FactTable`] with pooled storage,
    /// computing the per-block zone maps the vectorized scan engine skips
    /// blocks with.
    pub fn finish(self) -> FactTable {
        let zones = {
            let slices: Vec<&[u32]> = self.dim_cols.iter().map(Vec::as_slice).collect();
            ZoneMaps::from_columns(&slices)
        };
        let mut store = ColumnStore::default();
        for col in self.dim_cols {
            store.dims.push_column(col);
        }
        for col in self.measure_cols {
            store.measures.push_column(col);
        }
        FactTable {
            schema: self.schema,
            store,
            rows: self.rows,
            zones,
        }
    }
}

/// An immutable columnar fact table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactTable {
    schema: TableSchema,
    store: ColumnStore,
    rows: usize,
    zones: ZoneMaps,
}

impl FactTable {
    /// Reassembles a table from raw columns (the inverse of reading them
    /// back with [`FactTable::dim_column`]/[`FactTable::measure_column`]) —
    /// used by persistence layers.
    ///
    /// # Errors
    ///
    /// Returns a message when column counts or lengths disagree with the
    /// schema, or coordinates exceed their level cardinalities.
    pub fn from_parts(
        schema: TableSchema,
        dim_columns: Vec<Vec<u32>>,
        measure_columns: Vec<Vec<f64>>,
    ) -> Result<Self, String> {
        if dim_columns.len() != schema.dim_column_count() {
            return Err(format!(
                "{} dimension columns supplied, schema has {}",
                dim_columns.len(),
                schema.dim_column_count()
            ));
        }
        if measure_columns.len() != schema.measures.len() {
            return Err(format!(
                "{} measure columns supplied, schema has {}",
                measure_columns.len(),
                schema.measures.len()
            ));
        }
        let rows = dim_columns
            .first()
            .map(Vec::len)
            .or_else(|| measure_columns.first().map(Vec::len))
            .unwrap_or(0);
        if dim_columns.iter().any(|c| c.len() != rows)
            || measure_columns.iter().any(|c| c.len() != rows)
        {
            return Err("column lengths disagree".to_owned());
        }
        let mut flat = 0usize;
        for (d, ds) in schema.dimensions.iter().enumerate() {
            for (l, ls) in ds.levels.iter().enumerate() {
                if let Some(&bad) = dim_columns[flat].iter().find(|&&c| c >= ls.cardinality) {
                    return Err(format!(
                        "coordinate {bad} out of range for dimension {d} level {l} \
                         (cardinality {})",
                        ls.cardinality
                    ));
                }
                flat += 1;
            }
        }
        let zones = {
            let slices: Vec<&[u32]> = dim_columns.iter().map(Vec::as_slice).collect();
            ZoneMaps::from_columns(&slices)
        };
        let mut store = ColumnStore::default();
        for col in dim_columns {
            store.dims.push_column(col);
        }
        for col in measure_columns {
            store.measures.push_column(col);
        }
        Ok(Self {
            schema,
            store,
            rows,
            zones,
        })
    }
    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total bytes of column data (GPU-resident footprint).
    pub fn bytes(&self) -> usize {
        self.store.bytes()
    }

    /// The `u32` column of dimension `dim` at `level`.
    ///
    /// # Panics
    ///
    /// Panics if the pair is not in the schema.
    pub fn dim_column(&self, dim: usize, level: usize) -> &[u32] {
        let idx = self
            .schema
            .dim_column_index(dim, level)
            .unwrap_or_else(|| panic!("no column for dimension {dim} level {level}"));
        self.store.dims.column(idx)
    }

    /// The `f64` column of measure `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn measure_column(&self, idx: usize) -> &[f64] {
        assert!(idx < self.schema.measures.len(), "no measure column {idx}");
        self.store.measures.column(idx)
    }

    /// The `u32` data of any dimension column id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a measure id or out of schema.
    pub fn u32_column(&self, id: ColumnId) -> &[u32] {
        match id {
            ColumnId::Dim { dim, level } => self.dim_column(dim, level),
            ColumnId::Measure(_) => panic!("{id:?} is not a u32 column"),
        }
    }

    /// The `u32` dimension column at flat pool index `idx` (schema order).
    pub(crate) fn dim_column_flat(&self, idx: usize) -> &[u32] {
        self.store.dims.column(idx)
    }

    /// The table's zone maps: per-[`crate::exec::BATCH_ROWS`]-block min/max
    /// of every dimension column, in schema order.
    pub fn zone_maps(&self) -> &ZoneMaps {
        &self.zones
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    fn schema() -> TableSchema {
        TableSchema::builder()
            .dimension("time", &[("year", 4), ("month", 48)])
            .dimension("geo", &[("city", 10)])
            .measure("sales")
            .build()
    }

    #[test]
    fn build_and_read_back() {
        let mut b = FactTableBuilder::new(schema());
        b.push_row(&[0, 1, 2], &[1.5]).unwrap();
        b.push_row(&[3, 47, 9], &[2.5]).unwrap();
        let t = b.finish();
        assert_eq!(t.rows(), 2);
        assert_eq!(t.dim_column(0, 0), &[0, 3]);
        assert_eq!(t.dim_column(0, 1), &[1, 47]);
        assert_eq!(t.dim_column(1, 0), &[2, 9]);
        assert_eq!(t.measure_column(0), &[1.5, 2.5]);
    }

    #[test]
    fn byte_accounting() {
        let mut b = FactTableBuilder::new(schema());
        for _ in 0..10 {
            b.push_row(&[0, 0, 0], &[0.0]).unwrap();
        }
        let t = b.finish();
        // 3 u32 columns * 10 rows * 4 B + 1 f64 column * 10 rows * 8 B
        assert_eq!(t.bytes(), 3 * 10 * 4 + 10 * 8);
        assert_eq!(t.schema().row_bytes() * t.rows(), t.bytes());
    }

    #[test]
    fn arity_errors() {
        let mut b = FactTableBuilder::new(schema());
        assert_eq!(
            b.push_row(&[0, 0], &[0.0]),
            Err(RowError::DimArity { got: 2, want: 3 })
        );
        assert_eq!(
            b.push_row(&[0, 0, 0], &[]),
            Err(RowError::MeasureArity { got: 0, want: 1 })
        );
    }

    #[test]
    fn coordinate_bounds_enforced() {
        let mut b = FactTableBuilder::new(schema());
        let err = b.push_row(&[4, 0, 0], &[0.0]).unwrap_err();
        assert_eq!(
            err,
            RowError::CoordOutOfRange {
                dim: 0,
                level: 0,
                coord: 4,
                cardinality: 4
            }
        );
        // Failed push leaves no partial row behind.
        b.push_row(&[1, 1, 1], &[1.0]).unwrap();
        let t = b.finish();
        assert_eq!(t.rows(), 1);
        assert_eq!(t.dim_column(0, 0), &[1]);
    }

    #[test]
    #[should_panic(expected = "no measure column")]
    fn bad_measure_access_panics() {
        let t = FactTableBuilder::new(schema()).finish();
        t.measure_column(3);
    }
}
