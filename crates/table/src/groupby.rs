//! Grouped filter + aggregate scans: `GROUP BY` over dimension columns.
//!
//! The cube-construction literature the paper builds on (§II-A/B) is all
//! about group-bys — a MOLAP cube *is* a materialised group-by lattice.
//! This module provides the dynamic counterpart on the fact table: group
//! rows by one or more dimension columns while aggregating measures, with
//! the same conjunctive range filters as plain scans. The engine uses it
//! for drill-down result sets ("sales *by month*"), and building a cube is
//! semantically `GROUP BY` over every dimension at the target resolution.

use crate::exec::{CompiledGroupBy, GroupAcc, BLOCK_ROWS};
use crate::scan::{AggValue, Predicate, ScanError, ScanQuery};

use crate::schema::ColumnId;
use crate::table::FactTable;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A grouped scan: a plain [`ScanQuery`] plus the dimension columns whose
/// distinct value combinations form the groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupByQuery {
    /// Filters + aggregates + weight.
    pub scan: ScanQuery,
    /// Group-key columns (must be dimension columns), in key order.
    pub group_by: Vec<ColumnId>,
}

impl GroupByQuery {
    /// Wraps a scan with group-key columns.
    pub fn new(scan: ScanQuery, group_by: Vec<ColumnId>) -> Self {
        Self { scan, group_by }
    }

    /// Number of distinct physical columns read — Eq. 12 extended: filter
    /// columns + data columns + group-key columns.
    pub fn columns_accessed(&self) -> usize {
        let mut cols: Vec<ColumnId> = self
            .scan
            .predicates
            .iter()
            .map(|p| p.column)
            .chain(self.scan.set_predicates.iter().map(|p| p.column))
            .chain(
                self.scan
                    .aggregates
                    .iter()
                    .filter_map(|a| a.measure.map(ColumnId::Measure)),
            )
            .chain(self.group_by.iter().copied())
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols.len()
    }
}

/// One group of a grouped-scan result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// The group key: one coordinate per `group_by` column, in order.
    pub key: Vec<u32>,
    /// Aggregate values, in request order.
    pub values: Vec<AggValue>,
    /// Rows in the group.
    pub rows: u64,
}

/// Result of a grouped scan: groups sorted by key (deterministic output).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupedResult {
    /// Groups in ascending key order.
    pub groups: Vec<Group>,
    /// Total rows that passed the filters.
    pub matched_rows: u64,
}

impl GroupedResult {
    /// Finds a group by exact key.
    pub fn group(&self, key: &[u32]) -> Option<&Group> {
        self.groups
            .binary_search_by(|g| g.key.as_slice().cmp(key))
            .ok()
            .map(|i| &self.groups[i])
    }
}

/// Per-block accumulator keyed by group key.
type Partial = HashMap<Vec<u32>, (Vec<AggValue>, u64)>;

impl FactTable {
    fn validate_group_by(&self, q: &GroupByQuery) -> Result<(), ScanError> {
        for &col in &q.group_by {
            match col {
                ColumnId::Dim { .. } if self.schema().contains(col) => {}
                _ => return Err(ScanError::BadPredicateColumn(col)),
            }
        }
        Ok(())
    }

    /// Row-at-a-time grouped scan of `[start, end)` — the naive reference
    /// implementation retained for verification and benchmarking.
    fn group_block_scalar(&self, q: &GroupByQuery, start: usize, end: usize) -> (Partial, u64) {
        let pred_cols: Vec<(&Predicate, &[u32])> = q
            .scan
            .predicates
            .iter()
            .map(|p| (p, self.u32_column(p.column)))
            .collect();
        let set_cols: Vec<&[u32]> = q
            .scan
            .set_predicates
            .iter()
            .map(|p| self.u32_column(p.column))
            .collect();
        let key_cols: Vec<&[u32]> = q.group_by.iter().map(|&c| self.u32_column(c)).collect();
        let agg_cols: Vec<Option<&[f64]>> = q
            .scan
            .aggregates
            .iter()
            .map(|a| a.measure.map(|m| self.measure_column(m)))
            .collect();
        let mut partial: Partial = HashMap::new();
        let mut matched = 0u64;
        let mut key = vec![0u32; q.group_by.len()];
        'rows: for row in start..end {
            for (p, col) in &pred_cols {
                let v = col[row];
                if v < p.lo || v > p.hi {
                    continue 'rows;
                }
            }
            for (p, col) in q.scan.set_predicates.iter().zip(&set_cols) {
                if !p.contains(col[row]) {
                    continue 'rows;
                }
            }
            matched += 1;
            for (k, col) in key.iter_mut().zip(&key_cols) {
                *k = col[row];
            }
            let entry = partial.entry(key.clone()).or_insert_with(|| {
                (
                    q.scan
                        .aggregates
                        .iter()
                        .map(|a| AggValue::empty(a.op))
                        .collect(),
                    0u64,
                )
            });
            entry.1 += 1;
            for (val, col) in entry.0.iter_mut().zip(&agg_cols) {
                match col {
                    Some(c) => val.accumulate(c[row] * q.scan.weight),
                    None => val.accumulate_count(),
                }
            }
        }
        (partial, matched)
    }

    fn merge_partials(parts: Vec<(Partial, u64)>) -> GroupedResult {
        let mut total: Partial = HashMap::new();
        let mut matched = 0u64;
        for (part, m) in parts {
            matched += m;
            for (key, (vals, rows)) in part {
                match total.entry(key) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((vals, rows));
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let (tv, tr) = e.get_mut();
                        *tr += rows;
                        for (a, b) in tv.iter_mut().zip(&vals) {
                            a.merge(b);
                        }
                    }
                }
            }
        }
        let mut groups: Vec<Group> = total
            .into_iter()
            .map(|(key, (values, rows))| Group { key, values, rows })
            .collect();
        groups.sort_by(|a, b| a.key.cmp(&b.key));
        GroupedResult {
            groups,
            matched_rows: matched,
        }
    }

    /// Row-at-a-time reference grouped scan — the original naive
    /// interpreter (per-row `Vec<u32>` key clone + `HashMap` probe),
    /// retained verbatim: property tests assert the vectorized
    /// [`FactTable::group_by_seq`] is exactly equivalent to it, and the
    /// `scan_bench` binary measures the speedup against it.
    pub fn group_by_scalar(&self, q: &GroupByQuery) -> Result<GroupedResult, ScanError> {
        self.validate(&q.scan)?;
        self.validate_group_by(q)?;
        Ok(Self::merge_partials(vec![self.group_block_scalar(
            q,
            0,
            self.rows(),
        )]))
    }

    /// Sequential grouped scan on the vectorized executor, with a
    /// packed-`u64` group key (or a dense per-code slot index for a single
    /// small-domain key) instead of a per-row `Vec<u32>` clone.
    /// Bit-identical to [`FactTable::group_by_scalar`]: rows accumulate
    /// into their group in row order.
    pub fn group_by_seq(&self, q: &GroupByQuery) -> Result<GroupedResult, ScanError> {
        self.validate(&q.scan)?;
        self.validate_group_by(q)?;
        let compiled = CompiledGroupBy::compile(self, q);
        let mut acc = GroupAcc::new(&compiled);
        compiled.scan_range(self.zone_maps(), 0, self.rows(), &mut acc);
        Ok(acc.finish())
    }

    /// Parallel grouped scan over row blocks as a rayon `fold`+`reduce`:
    /// every worker folds whole blocks into its own packed-key accumulator
    /// and accumulators merge pairwise in parallel (the classic two-phase
    /// parallel aggregation of Liang & Orlowska's "naïve parallel
    /// algorithm", §II-B — without materialising per-block partials).
    pub fn group_by_par(&self, q: &GroupByQuery) -> Result<GroupedResult, ScanError> {
        self.validate(&q.scan)?;
        self.validate_group_by(q)?;
        let rows = self.rows();
        let compiled = CompiledGroupBy::compile(self, q);
        if rows == 0 || compiled.scan.empty {
            return Ok(GroupAcc::new(&compiled).finish());
        }
        let zones = self.zone_maps();
        let blocks = rows.div_ceil(BLOCK_ROWS);
        let total = (0..blocks)
            .into_par_iter()
            .fold(
                || GroupAcc::new(&compiled),
                |mut acc, b| {
                    let start = b * BLOCK_ROWS;
                    let end = (start + BLOCK_ROWS).min(rows);
                    compiled.scan_range(zones, start, end, &mut acc);
                    acc
                },
            )
            .reduce(
                || GroupAcc::new(&compiled),
                |mut a, b| {
                    a.merge(&compiled, b);
                    a
                },
            );
        Ok(total.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{AggOp, AggSpec};
    use crate::schema::TableSchema;
    use crate::table::FactTableBuilder;

    fn table() -> FactTable {
        let schema = TableSchema::builder()
            .dimension("time", &[("year", 4), ("month", 48)])
            .dimension("geo", &[("city", 6)])
            .measure("sales")
            .build();
        let mut b = FactTableBuilder::new(schema);
        for i in 0..2000u32 {
            b.push_row(&[i % 4, i % 48, i % 6], &[i as f64]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn group_by_year_counts() {
        let t = table();
        let q = GroupByQuery::new(
            ScanQuery::new().aggregate(AggSpec::count_star()),
            vec![ColumnId::dim(0, 0)],
        );
        let r = t.group_by_seq(&q).unwrap();
        assert_eq!(r.groups.len(), 4);
        assert_eq!(r.matched_rows, 2000);
        for g in &r.groups {
            assert_eq!(g.rows, 500);
            assert_eq!(g.values[0].value(), Some(500.0));
        }
    }

    #[test]
    fn grouped_sums_match_per_group_filters() {
        let t = table();
        let q = GroupByQuery::new(
            ScanQuery::new()
                .filter(Predicate::range(ColumnId::dim(0, 1), 0, 23))
                .aggregate(AggSpec::new(AggOp::Sum, Some(0))),
            vec![ColumnId::dim(1, 0)],
        );
        let grouped = t.group_by_seq(&q).unwrap();
        // Each group must equal the plain scan with the key as a filter.
        for g in &grouped.groups {
            let plain = t
                .scan_seq(
                    &ScanQuery::new()
                        .filter(Predicate::range(ColumnId::dim(0, 1), 0, 23))
                        .filter(Predicate::eq(ColumnId::dim(1, 0), g.key[0]))
                        .aggregate(AggSpec::new(AggOp::Sum, Some(0))),
                )
                .unwrap();
            assert_eq!(plain.matched_rows, g.rows);
            assert_eq!(plain.values[0].value(), g.values[0].value());
        }
        // Groups partition the filtered rows.
        let total: u64 = grouped.groups.iter().map(|g| g.rows).sum();
        assert_eq!(total, grouped.matched_rows);
    }

    #[test]
    fn multi_column_keys() {
        let t = table();
        let q = GroupByQuery::new(
            ScanQuery::new().aggregate(AggSpec::new(AggOp::Sum, Some(0))),
            vec![ColumnId::dim(0, 0), ColumnId::dim(1, 0)],
        );
        let r = t.group_by_seq(&q).unwrap();
        // 4 years × 6 cities, but i%4 and i%6 are correlated mod 12:
        // exactly 12 distinct (i%4, i%6) pairs exist.
        assert_eq!(r.groups.len(), 12);
        // Keys are sorted and unique.
        for w in r.groups.windows(2) {
            assert!(w[0].key < w[1].key);
        }
        // Lookup works.
        assert!(r.group(&[0, 0]).is_some());
        assert!(r.group(&[0, 1]).is_none(), "i%4==0 implies i%6 even");
    }

    #[test]
    fn parallel_equals_sequential() {
        let t = table();
        let q = GroupByQuery::new(
            ScanQuery::new()
                .filter(Predicate::range(ColumnId::dim(1, 0), 1, 4))
                .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
                .aggregate(AggSpec::new(AggOp::Min, Some(0)))
                .aggregate(AggSpec::new(AggOp::Max, Some(0)))
                .aggregate(AggSpec::count_star()),
            vec![ColumnId::dim(0, 1)],
        );
        let s = t.group_by_seq(&q).unwrap();
        let p = t.group_by_par(&q).unwrap();
        assert_eq!(s.matched_rows, p.matched_rows);
        assert_eq!(s.groups.len(), p.groups.len());
        for (a, b) in s.groups.iter().zip(&p.groups) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.rows, b.rows);
            for (x, y) in a.values.iter().zip(&b.values) {
                match (x.value(), y.value()) {
                    (Some(u), Some(v)) => assert!((u - v).abs() < 1e-9 * (1.0 + u.abs())),
                    (u, v) => assert_eq!(u, v),
                }
            }
        }
    }

    #[test]
    fn columns_accessed_includes_group_keys() {
        let q = GroupByQuery::new(
            ScanQuery::new()
                .filter(Predicate::range(ColumnId::dim(0, 0), 0, 1))
                .aggregate(AggSpec::new(AggOp::Sum, Some(0))),
            vec![ColumnId::dim(0, 0), ColumnId::dim(1, 0)],
        );
        // filter col dim(0,0) overlaps group key → 3 distinct columns.
        assert_eq!(q.columns_accessed(), 3);
    }

    #[test]
    fn bad_group_column_rejected() {
        let t = table();
        let q = GroupByQuery::new(
            ScanQuery::new().aggregate(AggSpec::count_star()),
            vec![ColumnId::measure(0)],
        );
        assert!(matches!(
            t.group_by_seq(&q),
            Err(ScanError::BadPredicateColumn(_))
        ));
    }

    #[test]
    fn empty_table_yields_no_groups() {
        let schema = TableSchema::builder()
            .dimension("d", &[("l", 2)])
            .measure("m")
            .build();
        let t = FactTableBuilder::new(schema).finish();
        let q = GroupByQuery::new(
            ScanQuery::new().aggregate(AggSpec::count_star()),
            vec![ColumnId::dim(0, 0)],
        );
        let r = t.group_by_par(&q).unwrap();
        assert!(r.groups.is_empty());
        assert_eq!(r.matched_rows, 0);
    }
}
