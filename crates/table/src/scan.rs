//! Filter + aggregate scans over a fact table.
//!
//! This is the workload the paper offloads to GPU partitions: a brute-force
//! scan of the fact table evaluating conjunctive inclusive-range filters on
//! dimension columns, followed by (optionally weighted) aggregation over
//! measure columns and a reduction (Lauer et al.'s pipeline, paper §II-C).
//! Both entry points run on the vectorized executor ([`crate::exec`]):
//! batch-at-a-time predicate evaluation over selection vectors with
//! zone-map block skipping. The parallel variant distributes row blocks
//! over rayon with a `fold`+`reduce` of partial accumulators — structurally
//! the same as the GPU's "parallel table scan → parallel reduction" steps.
//! The original row-at-a-time interpreter is retained as
//! [`FactTable::scan_scalar`], the reference implementation the vectorized
//! engine is tested and benchmarked against.

use crate::exec::{CompiledScan, BLOCK_ROWS};
use crate::schema::ColumnId;
use crate::table::FactTable;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Inclusive range filter on a `u32` dimension column: the physical form of
/// the paper's condition `C_L(f, t, l_K)` after translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Predicate {
    /// Column the filter applies to (must be a dimension column).
    pub column: ColumnId,
    /// Lower bound, inclusive (`f`).
    pub lo: u32,
    /// Upper bound, inclusive (`t`).
    pub hi: u32,
}

impl Predicate {
    /// Builds a range predicate `lo <= col <= hi`.
    pub fn range(column: ColumnId, lo: u32, hi: u32) -> Self {
        Self { column, lo, hi }
    }

    /// Builds an equality predicate `col == v`.
    pub fn eq(column: ColumnId, v: u32) -> Self {
        Self {
            column,
            lo: v,
            hi: v,
        }
    }
}

/// Aggregation operators supported by the scan engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggOp {
    /// Number of matching rows (needs no measure column).
    Count,
    /// Sum of a measure.
    Sum,
    /// Minimum of a measure.
    Min,
    /// Maximum of a measure.
    Max,
    /// Arithmetic mean of a measure.
    Avg,
}

/// One requested aggregate: an operator plus the measure column it reads
/// (`None` only for [`AggOp::Count`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggSpec {
    /// Operator.
    pub op: AggOp,
    /// Measure column index, or `None` for `COUNT(*)`.
    pub measure: Option<usize>,
}

impl AggSpec {
    /// Creates an aggregate spec.
    ///
    /// # Panics
    ///
    /// Panics if a non-`Count` operator is given no measure column.
    pub fn new(op: AggOp, measure: Option<usize>) -> Self {
        assert!(
            measure.is_some() || op == AggOp::Count,
            "{op:?} requires a measure column"
        );
        Self { op, measure }
    }

    /// `COUNT(*)` shorthand.
    pub fn count_star() -> Self {
        Self {
            op: AggOp::Count,
            measure: None,
        }
    }
}

/// Membership filter on a `u32` dimension column: the row matches when
/// its coordinate is one of `codes`. This is how substring (`contains`)
/// text predicates reach the scan engine — the dictionary side turns the
/// pattern into a set of codes (see `holap-dict`'s Aho–Corasick module),
/// which is generally not a contiguous range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SetPredicate {
    /// Column the filter applies to (must be a dimension column).
    pub column: ColumnId,
    /// Sorted, deduplicated member codes. May be empty (matches nothing).
    codes: Vec<u32>,
}

impl SetPredicate {
    /// Builds a membership predicate (codes are sorted and deduplicated).
    pub fn new(column: ColumnId, mut codes: Vec<u32>) -> Self {
        codes.sort_unstable();
        codes.dedup();
        Self { column, codes }
    }

    /// The sorted member codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.codes.binary_search(&v).is_ok()
    }

    /// Whether any member code lies in `lo..=hi` — the zone-map pruning
    /// test: a block whose `[min, max]` misses every code cannot match.
    #[inline]
    pub fn intersects_range(&self, lo: u32, hi: u32) -> bool {
        let i = self.codes.partition_point(|&c| c < lo);
        i < self.codes.len() && self.codes[i] <= hi
    }

    /// Whether *every* value in `lo..=hi` is a member — the filter can be
    /// elided for a block whose `[min, max]` the set covers. Codes are
    /// sorted and deduplicated, so the run `lo..=hi` is present exactly
    /// when `lo` is a member and `hi` sits `hi - lo` slots later.
    #[inline]
    pub fn covers_range(&self, lo: u32, hi: u32) -> bool {
        let i = self.codes.partition_point(|&c| c < lo);
        let span = (hi - lo) as usize;
        i < self.codes.len()
            && self.codes[i] == lo
            && i + span < self.codes.len()
            && self.codes[i + span] == hi
    }
}

/// A full scan query: conjunctive filters, aggregates, optional row weight.
///
/// The `weight` multiplies every aggregated measure value before
/// accumulation — the paper's "multiple weighted aggregations" inherited
/// from Lauer et al.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScanQuery {
    /// Conjunctive range filters (the query's filtration conditions).
    pub predicates: Vec<Predicate>,
    /// Conjunctive membership filters (translated substring predicates).
    #[serde(default)]
    pub set_predicates: Vec<SetPredicate>,
    /// Requested aggregates.
    pub aggregates: Vec<AggSpec>,
    /// Weight applied to measure values (default 1.0).
    pub weight: f64,
}

impl Default for ScanQuery {
    fn default() -> Self {
        Self::new()
    }
}

impl ScanQuery {
    /// Creates an empty query (no filters, no aggregates, weight 1).
    pub fn new() -> Self {
        Self {
            predicates: Vec::new(),
            set_predicates: Vec::new(),
            aggregates: Vec::new(),
            weight: 1.0,
        }
    }

    /// Adds a filter (builder style).
    pub fn filter(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// Adds a membership filter (builder style).
    pub fn filter_set(mut self, p: SetPredicate) -> Self {
        self.set_predicates.push(p);
        self
    }

    /// Adds an aggregate (builder style).
    pub fn aggregate(mut self, a: AggSpec) -> Self {
        self.aggregates.push(a);
        self
    }

    /// Sets the row weight (builder style).
    pub fn with_weight(mut self, w: f64) -> Self {
        self.weight = w;
        self
    }

    /// Number of distinct physical columns this query reads — `C_QD` of
    /// Eq. 12: filtration condition columns plus data columns processed.
    pub fn columns_accessed(&self) -> usize {
        let mut cols: Vec<ColumnId> = self
            .predicates
            .iter()
            .map(|p| p.column)
            .chain(self.set_predicates.iter().map(|p| p.column))
            .chain(
                self.aggregates
                    .iter()
                    .filter_map(|a| a.measure.map(ColumnId::Measure)),
            )
            .collect();
        cols.sort_unstable();
        cols.dedup();
        cols.len()
    }

    /// Fraction of the table's columns this query reads — the `C/C_TOT`
    /// argument of the GPU performance function (Eq. 13).
    pub fn column_fraction(&self, total_columns: usize) -> f64 {
        assert!(total_columns > 0);
        (self.columns_accessed() as f64 / total_columns as f64).min(1.0)
    }
}

/// Errors raised by scan validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanError {
    /// A predicate references a column that is not a dimension column of
    /// the schema.
    BadPredicateColumn(ColumnId),
    /// An aggregate references a measure column outside the schema.
    BadMeasure(usize),
    /// A predicate's bounds are inverted (`lo > hi`).
    EmptyRange(Predicate),
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadPredicateColumn(c) => write!(f, "predicate column {c:?} not in schema"),
            Self::BadMeasure(m) => write!(f, "measure column {m} not in schema"),
            Self::EmptyRange(p) => write!(f, "predicate {p:?} has lo > hi"),
        }
    }
}

impl std::error::Error for ScanError {}

/// Accumulator/result for one aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggValue {
    /// Operator this value was computed with.
    pub op: AggOp,
    /// Running sum (weighted) — meaningful for Sum/Avg.
    pub sum: f64,
    /// Number of rows accumulated.
    pub count: u64,
    /// Running minimum (weighted), `+∞` when empty.
    pub min: f64,
    /// Running maximum (weighted), `−∞` when empty.
    pub max: f64,
}

impl AggValue {
    pub(crate) fn empty(op: AggOp) -> Self {
        Self {
            op,
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    #[inline]
    pub(crate) fn accumulate(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    #[inline]
    pub(crate) fn accumulate_count(&mut self) {
        self.count += 1;
    }

    pub(crate) fn merge(&mut self, other: &Self) {
        debug_assert_eq!(self.op, other.op);
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The final value of the aggregate, or `None` when no row matched and
    /// the operator has no identity (Min/Max/Avg).
    pub fn value(&self) -> Option<f64> {
        match self.op {
            AggOp::Count => Some(self.count as f64),
            AggOp::Sum => Some(self.sum),
            AggOp::Min => (self.count > 0).then_some(self.min),
            AggOp::Max => (self.count > 0).then_some(self.max),
            AggOp::Avg => (self.count > 0).then(|| self.sum / self.count as f64),
        }
    }
}

/// Result of a scan: one [`AggValue`] per requested aggregate, plus the
/// number of rows that matched the filters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggResult {
    /// Aggregate values, in request order.
    pub values: Vec<AggValue>,
    /// Number of rows that passed all filters.
    pub matched_rows: u64,
}

impl AggResult {
    /// Merges another partial result of the same query into this one (the
    /// reduce step of the parallel scan).
    pub fn merge(&mut self, other: &Self) {
        debug_assert_eq!(self.values.len(), other.values.len());
        self.matched_rows += other.matched_rows;
        for (t, p) in self.values.iter_mut().zip(&other.values) {
            t.merge(p);
        }
    }
}

impl FactTable {
    pub(crate) fn validate(&self, q: &ScanQuery) -> Result<(), ScanError> {
        for p in &q.predicates {
            match p.column {
                ColumnId::Dim { .. } if self.schema().contains(p.column) => {}
                _ => return Err(ScanError::BadPredicateColumn(p.column)),
            }
            if p.lo > p.hi {
                return Err(ScanError::EmptyRange(*p));
            }
        }
        for p in &q.set_predicates {
            match p.column {
                ColumnId::Dim { .. } if self.schema().contains(p.column) => {}
                _ => return Err(ScanError::BadPredicateColumn(p.column)),
            }
        }
        for a in &q.aggregates {
            if let Some(m) = a.measure {
                if m >= self.schema().measures.len() {
                    return Err(ScanError::BadMeasure(m));
                }
            }
        }
        Ok(())
    }

    /// Scans one block of rows `[start, end)` row-at-a-time, returning
    /// partial results — the naive interpreter kept as the reference the
    /// vectorized engine is verified against.
    fn scan_block_scalar(&self, q: &ScanQuery, start: usize, end: usize) -> AggResult {
        let pred_cols: Vec<&[u32]> = q
            .predicates
            .iter()
            .map(|p| self.u32_column(p.column))
            .collect();
        let set_cols: Vec<&[u32]> = q
            .set_predicates
            .iter()
            .map(|p| self.u32_column(p.column))
            .collect();
        let agg_cols: Vec<Option<&[f64]>> = q
            .aggregates
            .iter()
            .map(|a| a.measure.map(|m| self.measure_column(m)))
            .collect();
        let mut values: Vec<AggValue> =
            q.aggregates.iter().map(|a| AggValue::empty(a.op)).collect();
        let mut matched = 0u64;
        'rows: for row in start..end {
            for (p, col) in q.predicates.iter().zip(&pred_cols) {
                let v = col[row];
                if v < p.lo || v > p.hi {
                    continue 'rows;
                }
            }
            for (p, col) in q.set_predicates.iter().zip(&set_cols) {
                if !p.contains(col[row]) {
                    continue 'rows;
                }
            }
            matched += 1;
            for (val, col) in values.iter_mut().zip(&agg_cols) {
                match col {
                    Some(c) => val.accumulate(c[row] * q.weight),
                    None => val.accumulate_count(),
                }
            }
        }
        AggResult {
            values,
            matched_rows: matched,
        }
    }

    /// Row-at-a-time reference scan. This is the original naive
    /// interpreter, retained verbatim: property tests assert the
    /// vectorized [`FactTable::scan_seq`] is exactly equivalent to it, and
    /// the `scan_bench` binary measures the speedup against it.
    pub fn scan_scalar(&self, q: &ScanQuery) -> Result<AggResult, ScanError> {
        self.validate(q)?;
        Ok(self.scan_block_scalar(q, 0, self.rows()))
    }

    /// Sequential scan (the single-threaded baseline) on the vectorized
    /// executor. Bit-identical to [`FactTable::scan_scalar`]: batches are
    /// visited in row order with a single accumulator, so floating-point
    /// accumulation order is unchanged.
    pub fn scan_seq(&self, q: &ScanQuery) -> Result<AggResult, ScanError> {
        self.validate(q)?;
        let compiled = CompiledScan::compile(self, q);
        let mut acc = compiled.empty_result();
        compiled.scan_range(self.zone_maps(), 0, self.rows(), &mut acc);
        Ok(acc)
    }

    /// Parallel scan over row blocks using the current rayon thread pool,
    /// as a rayon `fold`+`reduce`: each worker accumulates whole blocks
    /// into its own partial and partials merge pairwise in parallel —
    /// no `Vec` of per-block results is ever materialised.
    ///
    /// Equivalent to [`FactTable::scan_seq`] up to floating-point
    /// reassociation in the reduction.
    pub fn scan_par(&self, q: &ScanQuery) -> Result<AggResult, ScanError> {
        self.validate(q)?;
        let rows = self.rows();
        let compiled = CompiledScan::compile(self, q);
        if rows == 0 || compiled.empty {
            return Ok(compiled.empty_result());
        }
        let zones = self.zone_maps();
        let blocks = rows.div_ceil(BLOCK_ROWS);
        let total = (0..blocks)
            .into_par_iter()
            .fold(
                || compiled.empty_result(),
                |mut acc, b| {
                    let start = b * BLOCK_ROWS;
                    let end = (start + BLOCK_ROWS).min(rows);
                    compiled.scan_range(zones, start, end, &mut acc);
                    acc
                },
            )
            .reduce(
                || compiled.empty_result(),
                |mut a, b| {
                    a.merge(&b);
                    a
                },
            );
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::table::FactTableBuilder;

    /// 2 dims (2 + 1 levels), 2 measures; 1000 rows with known content.
    fn table() -> FactTable {
        let schema = TableSchema::builder()
            .dimension("time", &[("year", 10), ("month", 120)])
            .dimension("geo", &[("city", 50)])
            .measure("sales")
            .measure("qty")
            .build();
        let mut b = FactTableBuilder::new(schema);
        for i in 0..1000u32 {
            let year = i % 10;
            let month = i % 120;
            let city = i % 50;
            b.push_row(&[year, month, city], &[i as f64, (i % 7) as f64])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn count_star_no_filters() {
        let t = table();
        let q = ScanQuery::new().aggregate(AggSpec::count_star());
        let r = t.scan_seq(&q).unwrap();
        assert_eq!(r.matched_rows, 1000);
        assert_eq!(r.values[0].value(), Some(1000.0));
    }

    #[test]
    fn filtered_sum_matches_manual() {
        let t = table();
        // year == 3 → rows 3, 13, 23, …, 993 (100 rows, values i).
        let q = ScanQuery::new()
            .filter(Predicate::eq(ColumnId::dim(0, 0), 3))
            .aggregate(AggSpec::new(AggOp::Sum, Some(0)));
        let r = t.scan_seq(&q).unwrap();
        assert_eq!(r.matched_rows, 100);
        let expect: f64 = (0..100).map(|k| (3 + 10 * k) as f64).sum();
        assert_eq!(r.values[0].value(), Some(expect));
    }

    #[test]
    fn conjunction_of_filters() {
        let t = table();
        // year in [2,4] AND city == 12 → i ≡ 12 (mod 50) and i%10 ∈ {2,3,4}
        let q = ScanQuery::new()
            .filter(Predicate::range(ColumnId::dim(0, 0), 2, 4))
            .filter(Predicate::eq(ColumnId::dim(1, 0), 12))
            .aggregate(AggSpec::count_star());
        let r = t.scan_seq(&q).unwrap();
        let expect = (0..1000u32)
            .filter(|i| (2..=4).contains(&(i % 10)) && i % 50 == 12)
            .count() as u64;
        assert_eq!(r.matched_rows, expect);
        assert!(expect > 0);
    }

    #[test]
    fn min_max_avg() {
        let t = table();
        let q = ScanQuery::new()
            .filter(Predicate::range(ColumnId::dim(0, 0), 0, 0)) // i % 10 == 0
            .aggregate(AggSpec::new(AggOp::Min, Some(0)))
            .aggregate(AggSpec::new(AggOp::Max, Some(0)))
            .aggregate(AggSpec::new(AggOp::Avg, Some(0)));
        let r = t.scan_seq(&q).unwrap();
        assert_eq!(r.values[0].value(), Some(0.0));
        assert_eq!(r.values[1].value(), Some(990.0));
        assert_eq!(r.values[2].value(), Some(495.0));
    }

    #[test]
    fn empty_match_semantics() {
        let t = table();
        let q = ScanQuery::new()
            .filter(Predicate::range(ColumnId::dim(1, 0), 49, 49))
            .filter(Predicate::range(ColumnId::dim(1, 0), 0, 0)) // contradictory
            .aggregate(AggSpec::count_star())
            .aggregate(AggSpec::new(AggOp::Min, Some(0)))
            .aggregate(AggSpec::new(AggOp::Avg, Some(1)));
        let r = t.scan_seq(&q).unwrap();
        assert_eq!(r.matched_rows, 0);
        assert_eq!(r.values[0].value(), Some(0.0));
        assert_eq!(r.values[1].value(), None);
        assert_eq!(r.values[2].value(), None);
    }

    #[test]
    fn weighted_aggregation() {
        let t = table();
        let q = ScanQuery::new()
            .aggregate(AggSpec::new(AggOp::Sum, Some(1)))
            .with_weight(2.5);
        let r = t.scan_seq(&q).unwrap();
        let plain: f64 = (0..1000u32).map(|i| (i % 7) as f64).sum();
        assert!((r.values[0].value().unwrap() - plain * 2.5).abs() < 1e-9);
    }

    #[test]
    fn parallel_equals_sequential() {
        let t = table();
        let q = ScanQuery::new()
            .filter(Predicate::range(ColumnId::dim(0, 1), 10, 90))
            .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
            .aggregate(AggSpec::count_star())
            .aggregate(AggSpec::new(AggOp::Min, Some(1)))
            .aggregate(AggSpec::new(AggOp::Max, Some(1)));
        let s = t.scan_seq(&q).unwrap();
        let p = t.scan_par(&q).unwrap();
        assert_eq!(s.matched_rows, p.matched_rows);
        for (a, b) in s.values.iter().zip(&p.values) {
            match (a.value(), b.value()) {
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-6 * (1.0 + x.abs())),
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn columns_accessed_matches_eq12() {
        // 2 distinct filter columns + 1 data column, one filter column
        // repeated and one aggregate repeated → still 3 distinct columns.
        let q = ScanQuery::new()
            .filter(Predicate::range(ColumnId::dim(0, 0), 0, 1))
            .filter(Predicate::range(ColumnId::dim(0, 0), 0, 5))
            .filter(Predicate::range(ColumnId::dim(1, 0), 0, 5))
            .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
            .aggregate(AggSpec::new(AggOp::Avg, Some(0)))
            .aggregate(AggSpec::count_star());
        assert_eq!(q.columns_accessed(), 3);
        assert!((q.column_fraction(6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn set_predicates_filter_membership() {
        let t = table();
        let q = ScanQuery::new()
            .filter_set(SetPredicate::new(ColumnId::dim(1, 0), vec![41, 3, 17, 3]))
            .aggregate(AggSpec::count_star());
        let r = t.scan_seq(&q).unwrap();
        let expect = (0..1000u32)
            .filter(|i| [3, 17, 41].contains(&(i % 50)))
            .count() as u64;
        assert_eq!(r.matched_rows, expect);
        // Combined with a range filter.
        let q2 = ScanQuery::new()
            .filter(Predicate::range(ColumnId::dim(0, 0), 0, 4))
            .filter_set(SetPredicate::new(ColumnId::dim(1, 0), vec![3, 17, 41]))
            .aggregate(AggSpec::count_star());
        let r2 = t.scan_seq(&q2).unwrap();
        let expect2 = (0..1000u32)
            .filter(|i| i % 10 <= 4 && [3, 17, 41].contains(&(i % 50)))
            .count() as u64;
        assert_eq!(r2.matched_rows, expect2);
        // Parallel agrees.
        assert_eq!(t.scan_par(&q2).unwrap().matched_rows, expect2);
        // Columns: the set column counts towards Eq. 12.
        assert_eq!(q2.columns_accessed(), 2);
    }

    #[test]
    fn empty_set_matches_nothing() {
        let t = table();
        let q = ScanQuery::new()
            .filter_set(SetPredicate::new(ColumnId::dim(0, 0), vec![]))
            .aggregate(AggSpec::count_star());
        assert_eq!(t.scan_seq(&q).unwrap().matched_rows, 0);
    }

    #[test]
    fn set_predicate_on_bad_column_rejected() {
        let t = table();
        let q = ScanQuery::new().filter_set(SetPredicate::new(ColumnId::measure(0), vec![1]));
        assert!(matches!(
            t.scan_seq(&q),
            Err(ScanError::BadPredicateColumn(_))
        ));
    }

    #[test]
    fn validation_errors() {
        let t = table();
        let q = ScanQuery::new().filter(Predicate::range(ColumnId::dim(5, 0), 0, 1));
        assert_eq!(
            t.scan_seq(&q),
            Err(ScanError::BadPredicateColumn(ColumnId::dim(5, 0)))
        );
        let q = ScanQuery::new().filter(Predicate::range(ColumnId::measure(0), 0, 1));
        assert!(matches!(
            t.scan_seq(&q),
            Err(ScanError::BadPredicateColumn(_))
        ));
        let q = ScanQuery::new().aggregate(AggSpec::new(AggOp::Sum, Some(9)));
        assert_eq!(t.scan_seq(&q), Err(ScanError::BadMeasure(9)));
        let p = Predicate::range(ColumnId::dim(0, 0), 5, 2);
        let q = ScanQuery::new().filter(p);
        assert_eq!(t.scan_seq(&q), Err(ScanError::EmptyRange(p)));
    }

    #[test]
    #[should_panic(expected = "requires a measure column")]
    fn agg_spec_requires_measure() {
        AggSpec::new(AggOp::Sum, None);
    }

    #[test]
    fn scan_empty_table() {
        let schema = TableSchema::builder()
            .dimension("d", &[("l", 2)])
            .measure("m")
            .build();
        let t = FactTableBuilder::new(schema).finish();
        let q = ScanQuery::new().aggregate(AggSpec::count_star());
        assert_eq!(t.scan_par(&q).unwrap().matched_rows, 0);
    }
}
