//! Pooled columnar storage: the paper's "1D array memory structure".
//!
//! All dimension data of a table lives in one contiguous `u32` pool and all
//! measure data in one contiguous `f64` pool, each column occupying a
//! `(offset, len)` window. This mirrors the paper's GPU memory layout
//! ("placing all columns of the table one after another", Fig. 6) and makes
//! byte-level memory accounting trivial for the GPU simulator.

use serde::{Deserialize, Serialize};

/// A `(offset, len)` window into a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Window {
    offset: usize,
    len: usize,
}

/// Contiguous pool of `u32` columns.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct U32Pool {
    data: Vec<u32>,
    windows: Vec<Window>,
}

impl U32Pool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a column and returns its index in the pool.
    pub fn push_column(&mut self, values: Vec<u32>) -> usize {
        let offset = self.data.len();
        let len = values.len();
        self.data.extend(values);
        self.windows.push(Window { offset, len });
        self.windows.len() - 1
    }

    /// Read-only view of column `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn column(&self, idx: usize) -> &[u32] {
        let w = self.windows[idx];
        &self.data[w.offset..w.offset + w.len]
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.windows.len()
    }

    /// Total bytes occupied by the pool's data.
    pub fn bytes(&self) -> usize {
        self.data.len() * 4
    }
}

/// Contiguous pool of `f64` columns.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct F64Pool {
    data: Vec<f64>,
    windows: Vec<Window>,
}

impl F64Pool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a column and returns its index in the pool.
    pub fn push_column(&mut self, values: Vec<f64>) -> usize {
        let offset = self.data.len();
        let len = values.len();
        self.data.extend(values);
        self.windows.push(Window { offset, len });
        self.windows.len() - 1
    }

    /// Read-only view of column `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn column(&self, idx: usize) -> &[f64] {
        let w = self.windows[idx];
        &self.data[w.offset..w.offset + w.len]
    }

    /// Number of columns.
    pub fn columns(&self) -> usize {
        self.windows.len()
    }

    /// Total bytes occupied by the pool's data.
    pub fn bytes(&self) -> usize {
        self.data.len() * 8
    }
}

/// The two pools of one fact table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ColumnStore {
    /// Dimension (and dictionary-code) columns.
    pub dims: U32Pool,
    /// Measure columns.
    pub measures: F64Pool,
}

impl ColumnStore {
    /// Total bytes of column data — what the table occupies in (simulated)
    /// GPU global memory.
    pub fn bytes(&self) -> usize {
        self.dims.bytes() + self.measures.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_contiguous_and_ordered() {
        let mut pool = U32Pool::new();
        let a = pool.push_column(vec![1, 2, 3]);
        let b = pool.push_column(vec![4, 5]);
        assert_eq!(pool.column(a), &[1, 2, 3]);
        assert_eq!(pool.column(b), &[4, 5]);
        assert_eq!(pool.columns(), 2);
        assert_eq!(pool.bytes(), 5 * 4);
    }

    #[test]
    fn f64_pool_bytes() {
        let mut pool = F64Pool::new();
        pool.push_column(vec![1.0; 10]);
        assert_eq!(pool.bytes(), 80);
    }

    #[test]
    fn store_totals() {
        let mut store = ColumnStore::default();
        store.dims.push_column(vec![0; 100]);
        store.measures.push_column(vec![0.0; 100]);
        assert_eq!(store.bytes(), 400 + 800);
    }

    #[test]
    #[should_panic]
    fn out_of_range_column_panics() {
        let pool = U32Pool::new();
        pool.column(0);
    }
}
