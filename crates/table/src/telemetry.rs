//! Process-wide scan telemetry: relaxed atomic counters the vectorized
//! executor flushes into once per `scan_range` call.
//!
//! The counters are deliberately *not* per-table: the scan engine is the
//! innermost hot loop of the system, so the executor accumulates into
//! locals and publishes one `fetch_add` per counter per range — cheap
//! enough to stay on unconditionally. Higher layers (the engine's metrics
//! registry, the simulator report) read [`snapshot`] and export the deltas
//! under their own instrument names.

use std::sync::atomic::{AtomicU64, Ordering};

static BATCHES_SCANNED: AtomicU64 = AtomicU64::new(0);
static BATCHES_SKIPPED: AtomicU64 = AtomicU64::new(0);
static FILTERS_ELIDED: AtomicU64 = AtomicU64::new(0);
static ROWS_MATCHED: AtomicU64 = AtomicU64::new(0);

/// Point-in-time copy of the scan counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanTelemetry {
    /// Batches whose rows were actually evaluated or aggregated.
    pub batches_scanned: u64,
    /// Batches proven empty by a zone map and skipped outright.
    pub batches_skipped: u64,
    /// Filters elided because a zone map proved every row matches.
    pub filters_elided: u64,
    /// Rows that passed every filter.
    pub rows_matched: u64,
}

impl ScanTelemetry {
    /// Counter-wise difference `self - earlier` (saturating), for
    /// exporting deltas between two snapshots.
    pub fn since(&self, earlier: &ScanTelemetry) -> ScanTelemetry {
        ScanTelemetry {
            batches_scanned: self.batches_scanned.saturating_sub(earlier.batches_scanned),
            batches_skipped: self.batches_skipped.saturating_sub(earlier.batches_skipped),
            filters_elided: self.filters_elided.saturating_sub(earlier.filters_elided),
            rows_matched: self.rows_matched.saturating_sub(earlier.rows_matched),
        }
    }

    /// Fraction of batches the zone maps eliminated, `0.0` when no
    /// batches were seen.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.batches_scanned + self.batches_skipped;
        if total == 0 {
            0.0
        } else {
            self.batches_skipped as f64 / total as f64
        }
    }
}

/// Reads the current counter values.
pub fn snapshot() -> ScanTelemetry {
    ScanTelemetry {
        batches_scanned: BATCHES_SCANNED.load(Ordering::Relaxed),
        batches_skipped: BATCHES_SKIPPED.load(Ordering::Relaxed),
        filters_elided: FILTERS_ELIDED.load(Ordering::Relaxed),
        rows_matched: ROWS_MATCHED.load(Ordering::Relaxed),
    }
}

/// Publishes one scan range's locally accumulated counts.
pub(crate) fn flush(scanned: u64, skipped: u64, elided: u64, matched: u64) {
    if scanned != 0 {
        BATCHES_SCANNED.fetch_add(scanned, Ordering::Relaxed);
    }
    if skipped != 0 {
        BATCHES_SKIPPED.fetch_add(skipped, Ordering::Relaxed);
    }
    if elided != 0 {
        FILTERS_ELIDED.fetch_add(elided, Ordering::Relaxed);
    }
    if matched != 0 {
        ROWS_MATCHED.fetch_add(matched, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_accumulates_and_since_diffs() {
        let before = snapshot();
        flush(3, 2, 1, 40);
        let delta = snapshot().since(&before);
        assert_eq!(delta.batches_scanned, 3);
        assert_eq!(delta.batches_skipped, 2);
        assert_eq!(delta.filters_elided, 1);
        assert_eq!(delta.rows_matched, 40);
        assert!((delta.skip_ratio() - 0.4).abs() < 1e-12);
        assert_eq!(ScanTelemetry::default().skip_ratio(), 0.0);
    }
}
