//! Fact-table schemas: dimensions with resolution levels, and measures.

use serde::{Deserialize, Serialize};

/// One resolution level of a dimension (e.g. `year`, `month`, `day`).
///
/// Level values are dense coordinates `0..cardinality`; finer levels have
/// larger cardinalities (paper Fig. 1: resolution grows down the hierarchy).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelSchema {
    /// Human-readable level name.
    pub name: String,
    /// Number of distinct coordinates at this level.
    pub cardinality: u32,
}

/// A dimension with its ordered resolution levels (coarsest first).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimensionSchema {
    /// Dimension name (e.g. `time`, `location`, `product`).
    pub name: String,
    /// Levels from coarsest (index 0) to finest.
    pub levels: Vec<LevelSchema>,
}

impl DimensionSchema {
    /// Number of resolution levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Cardinality at `level`, panicking if out of range.
    pub fn cardinality(&self, level: usize) -> u32 {
        self.levels[level].cardinality
    }
}

/// A measure (data) column that aggregations read.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasureSchema {
    /// Measure name (e.g. `sales`, `quantity`).
    pub name: String,
}

/// Addresses one physical column of the fact table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ColumnId {
    /// The column of dimension `dim` at resolution level `level`
    /// (the paper's `(L, K)` pair addressing a column in Fig. 6).
    Dim {
        /// Dimension index.
        dim: usize,
        /// Level index within the dimension (0 = coarsest).
        level: usize,
    },
    /// The `idx`-th measure column.
    Measure(usize),
}

impl ColumnId {
    /// Shorthand for a dimension-level column id.
    pub fn dim(dim: usize, level: usize) -> Self {
        Self::Dim { dim, level }
    }

    /// Shorthand for a measure column id.
    pub fn measure(idx: usize) -> Self {
        Self::Measure(idx)
    }
}

/// Full schema of a fact table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Dimensions, each with its level hierarchy.
    pub dimensions: Vec<DimensionSchema>,
    /// Measure columns.
    pub measures: Vec<MeasureSchema>,
}

impl TableSchema {
    /// Starts a fluent schema builder.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Total number of dimension columns (Σ levels over dimensions).
    pub fn dim_column_count(&self) -> usize {
        self.dimensions.iter().map(|d| d.levels.len()).sum()
    }

    /// Total number of physical columns, `C_TOTAL` of Eq. 13.
    pub fn total_columns(&self) -> usize {
        self.dim_column_count() + self.measures.len()
    }

    /// Flat index of a dimension column within the dimension pool, in
    /// schema order (all levels of dim 0, then dim 1, …).
    ///
    /// Returns `None` if the pair is out of range.
    pub fn dim_column_index(&self, dim: usize, level: usize) -> Option<usize> {
        if dim >= self.dimensions.len() || level >= self.dimensions[dim].levels.len() {
            return None;
        }
        let before: usize = self.dimensions[..dim].iter().map(|d| d.levels.len()).sum();
        Some(before + level)
    }

    /// Validates a [`ColumnId`] against this schema.
    pub fn contains(&self, id: ColumnId) -> bool {
        match id {
            ColumnId::Dim { dim, level } => self.dim_column_index(dim, level).is_some(),
            ColumnId::Measure(i) => i < self.measures.len(),
        }
    }

    /// Iterates all dimension column ids in schema order.
    pub fn dim_column_ids(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.dimensions.iter().enumerate().flat_map(|(d, ds)| {
            (0..ds.levels.len()).map(move |l| ColumnId::Dim { dim: d, level: l })
        })
    }

    /// Bytes one row occupies across all columns (4 per dimension column,
    /// 8 per measure column) — used for GPU memory accounting.
    pub fn row_bytes(&self) -> usize {
        self.dim_column_count() * 4 + self.measures.len() * 8
    }
}

/// Fluent builder for [`TableSchema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    dimensions: Vec<DimensionSchema>,
    measures: Vec<MeasureSchema>,
}

impl SchemaBuilder {
    /// Adds a dimension with `(level name, cardinality)` pairs, coarsest
    /// first.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or any cardinality is zero.
    pub fn dimension(mut self, name: &str, levels: &[(&str, u32)]) -> Self {
        assert!(
            !levels.is_empty(),
            "dimension `{name}` needs at least one level"
        );
        let levels = levels
            .iter()
            .map(|&(n, c)| {
                assert!(c > 0, "level `{n}` of `{name}` has zero cardinality");
                LevelSchema {
                    name: n.to_owned(),
                    cardinality: c,
                }
            })
            .collect();
        self.dimensions.push(DimensionSchema {
            name: name.to_owned(),
            levels,
        });
        self
    }

    /// Adds a measure column.
    pub fn measure(mut self, name: &str) -> Self {
        self.measures.push(MeasureSchema {
            name: name.to_owned(),
        });
        self
    }

    /// Finalises the schema.
    ///
    /// # Panics
    ///
    /// Panics if no dimension was added (a fact table needs at least one).
    pub fn build(self) -> TableSchema {
        assert!(
            !self.dimensions.is_empty(),
            "schema needs at least one dimension"
        );
        TableSchema {
            dimensions: self.dimensions,
            measures: self.measures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema::builder()
            .dimension("time", &[("year", 4), ("month", 48), ("day", 1440)])
            .dimension("geo", &[("state", 50), ("city", 500)])
            .measure("sales")
            .measure("qty")
            .build()
    }

    #[test]
    fn column_counts() {
        let s = sample();
        assert_eq!(s.dim_column_count(), 5);
        assert_eq!(s.total_columns(), 7);
        assert_eq!(s.row_bytes(), 5 * 4 + 2 * 8);
    }

    #[test]
    fn dim_column_index_is_schema_order() {
        let s = sample();
        assert_eq!(s.dim_column_index(0, 0), Some(0));
        assert_eq!(s.dim_column_index(0, 2), Some(2));
        assert_eq!(s.dim_column_index(1, 0), Some(3));
        assert_eq!(s.dim_column_index(1, 1), Some(4));
        assert_eq!(s.dim_column_index(1, 2), None);
        assert_eq!(s.dim_column_index(2, 0), None);
    }

    #[test]
    fn contains_validates_ids() {
        let s = sample();
        assert!(s.contains(ColumnId::dim(0, 2)));
        assert!(!s.contains(ColumnId::dim(0, 3)));
        assert!(s.contains(ColumnId::measure(1)));
        assert!(!s.contains(ColumnId::measure(2)));
    }

    #[test]
    fn dim_column_ids_enumerates_all() {
        let s = sample();
        let ids: Vec<_> = s.dim_column_ids().collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[0], ColumnId::dim(0, 0));
        assert_eq!(ids[4], ColumnId::dim(1, 1));
    }

    #[test]
    #[should_panic(expected = "zero cardinality")]
    fn zero_cardinality_rejected() {
        TableSchema::builder().dimension("d", &[("l", 0)]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_schema_rejected() {
        TableSchema::builder().measure("m").build();
    }
}
