//! Zone maps: per-block min/max summaries of every dimension column.
//!
//! A zone map slices each dimension column into fixed blocks of
//! [`BATCH_ROWS`](crate::exec::BATCH_ROWS) rows and records the minimum and
//! maximum coordinate inside every block. The vectorized scan engine
//! ([`exec`](crate::exec)) consults them before touching a batch of rows:
//!
//! * a range filter whose window lies entirely outside `[min, max]` proves
//!   the block contains no match — the block is **skipped** without reading
//!   a single row;
//! * a window that contains `[min, max]` proves every row matches — the
//!   filter is **elided** for that block;
//! * the table-wide fold of the block bounds lets provably-empty queries
//!   short-circuit before visiting any block at all.
//!
//! Zone maps are derived data: [`FactTableBuilder::finish`]
//! (crate::table::FactTableBuilder::finish) and
//! [`FactTable::from_parts`](crate::table::FactTable::from_parts) both
//! compute them, and `holap-store` persists them alongside the column pools
//! so a loaded table skips blocks exactly like the table that was saved.

use crate::exec::BATCH_ROWS;
use serde::{Deserialize, Serialize};

/// Per-block `[min, max]` summaries for one `u32` column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneColumn {
    mins: Vec<u32>,
    maxs: Vec<u32>,
}

impl ZoneColumn {
    fn from_column(col: &[u32]) -> Self {
        let blocks = col.len().div_ceil(BATCH_ROWS);
        let mut mins = Vec::with_capacity(blocks);
        let mut maxs = Vec::with_capacity(blocks);
        for chunk in col.chunks(BATCH_ROWS) {
            let mut lo = u32::MAX;
            let mut hi = 0u32;
            for &v in chunk {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            mins.push(lo);
            maxs.push(hi);
        }
        Self { mins, maxs }
    }

    /// Block minima, one per [`BATCH_ROWS`] block.
    pub fn mins(&self) -> &[u32] {
        &self.mins
    }

    /// Block maxima, one per [`BATCH_ROWS`] block.
    pub fn maxs(&self) -> &[u32] {
        &self.maxs
    }

    /// `[min, max]` of block `b`.
    #[inline]
    pub fn block_bounds(&self, b: usize) -> (u32, u32) {
        (self.mins[b], self.maxs[b])
    }

    /// Column-wide `[min, max]`, or `None` for an empty column.
    pub fn bounds(&self) -> Option<(u32, u32)> {
        if self.mins.is_empty() {
            return None;
        }
        let lo = self.mins.iter().copied().min().expect("non-empty");
        let hi = self.maxs.iter().copied().max().expect("non-empty");
        Some((lo, hi))
    }
}

/// Zone maps for every dimension column of a fact table, in schema order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneMaps {
    rows: usize,
    columns: Vec<ZoneColumn>,
}

impl ZoneMaps {
    /// Builds zone maps from dimension column slices (schema order). All
    /// columns must share one length.
    pub fn from_columns(columns: &[&[u32]]) -> Self {
        let rows = columns.first().map_or(0, |c| c.len());
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        Self {
            rows,
            columns: columns.iter().map(|c| ZoneColumn::from_column(c)).collect(),
        }
    }

    /// Reassembles zone maps from raw per-column min/max arrays (used by
    /// persistence layers).
    ///
    /// # Errors
    ///
    /// Returns a message when array lengths disagree with `rows`.
    pub fn from_parts(rows: usize, parts: Vec<(Vec<u32>, Vec<u32>)>) -> Result<Self, String> {
        let blocks = rows.div_ceil(BATCH_ROWS);
        let mut columns = Vec::with_capacity(parts.len());
        for (i, (mins, maxs)) in parts.into_iter().enumerate() {
            if mins.len() != blocks || maxs.len() != blocks {
                return Err(format!(
                    "zone column {i}: {}/{} blocks supplied, table of {rows} rows has {blocks}",
                    mins.len(),
                    maxs.len()
                ));
            }
            columns.push(ZoneColumn { mins, maxs });
        }
        Ok(Self { rows, columns })
    }

    /// Number of row blocks (`ceil(rows / BATCH_ROWS)`).
    pub fn block_count(&self) -> usize {
        self.rows.div_ceil(BATCH_ROWS)
    }

    /// Number of summarised columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Zone summary of flat dimension column `idx`.
    #[inline]
    pub fn column(&self, idx: usize) -> &ZoneColumn {
        &self.columns[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_bounds_cover_each_block() {
        let col: Vec<u32> = (0..3000u32)
            .map(|i| i % 7 + (i / BATCH_ROWS as u32))
            .collect();
        let zc = ZoneColumn::from_column(&col);
        assert_eq!(zc.mins().len(), 3);
        for (b, chunk) in col.chunks(BATCH_ROWS).enumerate() {
            let (lo, hi) = zc.block_bounds(b);
            assert_eq!(lo, *chunk.iter().min().unwrap());
            assert_eq!(hi, *chunk.iter().max().unwrap());
        }
        assert_eq!(zc.bounds(), Some((0, 8)));
    }

    #[test]
    fn empty_column_has_no_blocks() {
        let zc = ZoneColumn::from_column(&[]);
        assert!(zc.mins().is_empty());
        assert_eq!(zc.bounds(), None);
        let zm = ZoneMaps::from_columns(&[&[]]);
        assert_eq!(zm.block_count(), 0);
        assert_eq!(zm.column_count(), 1);
    }

    #[test]
    fn from_parts_validates_lengths() {
        let zm = ZoneMaps::from_columns(&[&[1, 2, 3]]);
        let parts = vec![(zm.column(0).mins().to_vec(), zm.column(0).maxs().to_vec())];
        assert_eq!(ZoneMaps::from_parts(3, parts).unwrap(), zm);
        assert!(ZoneMaps::from_parts(3, vec![(vec![], vec![0])]).is_err());
        assert!(ZoneMaps::from_parts(BATCH_ROWS * 2, vec![(vec![0], vec![1])]).is_err());
    }
}
