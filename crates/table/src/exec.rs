//! The vectorized scan executor: batch-at-a-time predicate evaluation over
//! selection vectors, zone-map block skipping, and packed-key grouping.
//!
//! This is the one engine behind [`FactTable::scan_seq`],
//! [`FactTable::scan_par`], [`FactTable::group_by_seq`] and
//! [`FactTable::group_by_par`]. Instead of interpreting every predicate for
//! every row (the retained reference implementation,
//! [`FactTable::scan_scalar`]), a scan is *compiled* once:
//!
//! * each conjunctive range predicate collapses to one inclusive window per
//!   physical column (the intersection of all windows on that column);
//! * each [`SetPredicate`] becomes a dense bitmap over the column's domain
//!   when the domain is small enough ([`BITMAP_MAX_BITS`]), falling back to
//!   binary search over the sorted codes for huge sparse domains;
//! * provably-empty conjunctions (an empty set, a contradictory window, or
//!   a window disjoint from the table-wide zone bounds) short-circuit to
//!   the empty result without visiting a single row.
//!
//! Execution then walks fixed [`BATCH_ROWS`]-row batches. For every batch
//! the zone maps decide, per filter, one of three outcomes: **skip** the
//! batch (no row can match), **elide** the filter (every row matches), or
//! **evaluate** it. Evaluated filters run branch-free over the batch: the
//! first fills a reusable selection vector with matching row indices, the
//! rest compact it in place. Aggregation walks the surviving indices in row
//! order — the same floating-point accumulation order as the scalar
//! reference, so sequential results are bit-identical.

use crate::scan::{AggResult, AggValue, ScanQuery, SetPredicate};
use crate::schema::ColumnId;
use crate::table::FactTable;
use crate::zone::ZoneMaps;
use std::collections::HashMap;

/// Rows per vectorized batch. Zone-map blocks are exactly this size, so a
/// batch maps to one zone-map entry per column.
pub const BATCH_ROWS: usize = 1024;

/// Rows per parallel work block: a whole number of batches, large enough to
/// amortise rayon scheduling, small enough to load-balance across threads.
pub const BLOCK_ROWS: usize = 64 * BATCH_ROWS;

// A parallel block must cover a whole number of zone-aligned batches.
const _: () = assert!(BLOCK_ROWS % BATCH_ROWS == 0);

/// Largest column domain a set predicate is compiled into a dense bitmap
/// for (2^22 bits = 512 KiB of words). Larger domains keep binary search.
pub const BITMAP_MAX_BITS: u64 = 1 << 22;

/// Largest single-column domain the group-by uses a dense slot index for.
const DENSE_GROUP_MAX: u64 = 1 << 16;

/// One compiled conjunct bound to its physical column.
struct Filter<'t> {
    /// Column data.
    col: &'t [u32],
    /// Flat dimension-column index (zone-map addressing).
    zone_idx: usize,
    op: FilterOp<'t>,
}

enum FilterOp<'t> {
    /// Inclusive window `lo..=hi` (already the intersection of every range
    /// predicate on this column).
    Range { lo: u32, hi: u32 },
    /// Dense membership bitmap over the column domain; `pred` is kept for
    /// zone-map pruning.
    Bitmap {
        words: Vec<u64>,
        pred: &'t SetPredicate,
    },
    /// Sorted-codes binary search (huge sparse domains).
    Sparse { pred: &'t SetPredicate },
}

/// What the zone map proves about one filter on one batch.
enum ZoneDecision {
    /// No row of the batch can match — skip the batch.
    Skip,
    /// Every row of the batch matches — elide the filter.
    AllMatch,
    /// Undecided — evaluate the filter.
    Eval,
}

impl Filter<'_> {
    fn zone_decision(&self, zones: &ZoneMaps, block: usize) -> ZoneDecision {
        let (bmin, bmax) = zones.column(self.zone_idx).block_bounds(block);
        match &self.op {
            FilterOp::Range { lo, hi } => {
                if bmax < *lo || bmin > *hi {
                    ZoneDecision::Skip
                } else if *lo <= bmin && bmax <= *hi {
                    ZoneDecision::AllMatch
                } else {
                    ZoneDecision::Eval
                }
            }
            FilterOp::Bitmap { pred, .. } | FilterOp::Sparse { pred } => {
                if !pred.intersects_range(bmin, bmax) {
                    ZoneDecision::Skip
                } else if pred.covers_range(bmin, bmax) {
                    ZoneDecision::AllMatch
                } else {
                    ZoneDecision::Eval
                }
            }
        }
    }

    /// Fills `sel` with the indices of matching rows in `[start, end)`.
    /// Branch-free: the index is stored unconditionally and the cursor
    /// advances by the 0/1 match flag.
    fn eval_init(&self, start: usize, end: usize, sel: &mut [u32]) -> usize {
        let window = &self.col[start..end];
        let mut n = 0;
        match &self.op {
            FilterOp::Range { lo, hi } => {
                let (lo, span) = (*lo, *hi - *lo);
                for (i, &v) in window.iter().enumerate() {
                    sel[n] = (start + i) as u32;
                    n += usize::from(v.wrapping_sub(lo) <= span);
                }
            }
            FilterOp::Bitmap { words, .. } => {
                for (i, &v) in window.iter().enumerate() {
                    sel[n] = (start + i) as u32;
                    n += ((words[(v >> 6) as usize] >> (v & 63)) & 1) as usize;
                }
            }
            FilterOp::Sparse { pred } => {
                for (i, &v) in window.iter().enumerate() {
                    sel[n] = (start + i) as u32;
                    n += usize::from(pred.contains(v));
                }
            }
        }
        n
    }

    /// Compacts `sel[..n]` in place to the indices that also pass this
    /// filter, returning the surviving count.
    fn eval_compact(&self, sel: &mut [u32], n: usize) -> usize {
        let col = self.col;
        let mut m = 0;
        match &self.op {
            FilterOp::Range { lo, hi } => {
                let (lo, span) = (*lo, *hi - *lo);
                for k in 0..n {
                    let idx = sel[k];
                    let v = col[idx as usize];
                    sel[m] = idx;
                    m += usize::from(v.wrapping_sub(lo) <= span);
                }
            }
            FilterOp::Bitmap { words, .. } => {
                for k in 0..n {
                    let idx = sel[k];
                    let v = col[idx as usize];
                    sel[m] = idx;
                    m += ((words[(v >> 6) as usize] >> (v & 63)) & 1) as usize;
                }
            }
            FilterOp::Sparse { pred } => {
                for k in 0..n {
                    let idx = sel[k];
                    sel[m] = idx;
                    m += usize::from(pred.contains(col[idx as usize]));
                }
            }
        }
        m
    }
}

/// A scan compiled against one table: filters bound to columns, aggregate
/// inputs resolved, degeneracy decided.
pub(crate) struct CompiledScan<'t> {
    filters: Vec<Filter<'t>>,
    agg_cols: Vec<Option<&'t [f64]>>,
    ops: Vec<crate::scan::AggOp>,
    weight: f64,
    /// The conjunction provably matches no row; execution returns the
    /// empty result without visiting any block.
    pub(crate) empty: bool,
}

impl<'t> CompiledScan<'t> {
    /// Compiles a validated query against `table`.
    pub(crate) fn compile(table: &'t FactTable, q: &'t ScanQuery) -> Self {
        let schema = table.schema();
        let zones = table.zone_maps();
        let has_rows = table.rows() > 0;
        let mut empty = false;

        // Intersect all range predicates per physical column, preserving
        // first-appearance order (conjunction is order-independent, so one
        // window per column is semantically identical and strictly cheaper).
        let mut order: Vec<usize> = Vec::new();
        let mut windows: HashMap<usize, (u32, u32)> = HashMap::new();
        for p in &q.predicates {
            let ColumnId::Dim { dim, level } = p.column else {
                unreachable!("validated predicate column");
            };
            let zone_idx = schema.dim_column_index(dim, level).expect("validated");
            windows
                .entry(zone_idx)
                .and_modify(|w| {
                    w.0 = w.0.max(p.lo);
                    w.1 = w.1.min(p.hi);
                })
                .or_insert_with(|| {
                    order.push(zone_idx);
                    (p.lo, p.hi)
                });
        }
        let mut filters = Vec::with_capacity(order.len() + q.set_predicates.len());
        for zone_idx in order {
            let (lo, hi) = windows[&zone_idx];
            if lo > hi {
                empty = true; // contradictory conjunction, e.g. =3 AND =5
            } else if has_rows {
                let (tmin, tmax) = zones.column(zone_idx).bounds().expect("table has rows");
                if hi < tmin || lo > tmax {
                    empty = true; // window disjoint from the table's domain
                }
            }
            filters.push(Filter {
                col: table.dim_column_flat(zone_idx),
                zone_idx,
                op: FilterOp::Range { lo, hi },
            });
        }

        for p in &q.set_predicates {
            let ColumnId::Dim { dim, level } = p.column else {
                unreachable!("validated set-predicate column");
            };
            let zone_idx = schema.dim_column_index(dim, level).expect("validated");
            if p.codes().is_empty() {
                empty = true;
            } else if has_rows {
                let (tmin, tmax) = zones.column(zone_idx).bounds().expect("table has rows");
                if !p.intersects_range(tmin, tmax) {
                    empty = true; // no member code inside the table's domain
                }
            }
            let cardinality = u64::from(schema.dimensions[dim].levels[level].cardinality);
            let op = if cardinality <= BITMAP_MAX_BITS {
                // Column values are `< cardinality` by construction, so a
                // cardinality-sized bitmap is always in bounds; member
                // codes beyond the domain can never match and are dropped.
                let mut words = vec![0u64; (cardinality as usize).div_ceil(64)];
                for &c in p.codes() {
                    if u64::from(c) < cardinality {
                        words[(c >> 6) as usize] |= 1 << (c & 63);
                    }
                }
                FilterOp::Bitmap { words, pred: p }
            } else {
                FilterOp::Sparse { pred: p }
            };
            filters.push(Filter {
                col: table.u32_column(p.column),
                zone_idx,
                op,
            });
        }

        let agg_cols = q
            .aggregates
            .iter()
            .map(|a| a.measure.map(|m| table.measure_column(m)))
            .collect();
        let ops = q.aggregates.iter().map(|a| a.op).collect();
        Self {
            filters,
            agg_cols,
            ops,
            weight: q.weight,
            empty,
        }
    }

    /// The result of matching zero rows.
    pub(crate) fn empty_result(&self) -> AggResult {
        AggResult {
            values: self.ops.iter().map(|&op| AggValue::empty(op)).collect(),
            matched_rows: 0,
        }
    }

    /// Scans `[start, end)` (with `start` batch-aligned), accumulating into
    /// `acc`. Row order is preserved, so accumulation order matches the
    /// scalar reference exactly.
    pub(crate) fn scan_range(
        &self,
        zones: &ZoneMaps,
        start: usize,
        end: usize,
        acc: &mut AggResult,
    ) {
        debug_assert_eq!(start % BATCH_ROWS, 0);
        if self.empty || start >= end {
            return;
        }
        let mut sel = vec![0u32; BATCH_ROWS];
        let mut active: Vec<&Filter<'_>> = Vec::with_capacity(self.filters.len());
        let mut batch_start = start;
        let (mut scanned, mut skipped, mut elided) = (0u64, 0u64, 0u64);
        let matched_before = acc.matched_rows;
        while batch_start < end {
            let batch_end = (batch_start + BATCH_ROWS).min(end);
            let block = batch_start / BATCH_ROWS;
            active.clear();
            let mut skip = false;
            for f in &self.filters {
                match f.zone_decision(zones, block) {
                    ZoneDecision::Skip => {
                        skip = true;
                        break;
                    }
                    ZoneDecision::AllMatch => {}
                    ZoneDecision::Eval => active.push(f),
                }
            }
            if skip {
                skipped += 1;
                batch_start = batch_end;
                continue;
            }
            scanned += 1;
            elided += (self.filters.len() - active.len()) as u64;
            if active.is_empty() {
                // Every row of the batch matches: aggregate the contiguous
                // window without materialising a selection vector.
                acc.matched_rows += (batch_end - batch_start) as u64;
                for (val, col) in acc.values.iter_mut().zip(&self.agg_cols) {
                    match col {
                        Some(c) => {
                            for &m in &c[batch_start..batch_end] {
                                val.accumulate(m * self.weight);
                            }
                        }
                        None => val.count += (batch_end - batch_start) as u64,
                    }
                }
            } else {
                let mut n = active[0].eval_init(batch_start, batch_end, &mut sel);
                for f in &active[1..] {
                    if n == 0 {
                        break;
                    }
                    n = f.eval_compact(&mut sel, n);
                }
                acc.matched_rows += n as u64;
                for (val, col) in acc.values.iter_mut().zip(&self.agg_cols) {
                    match col {
                        Some(c) => {
                            for &idx in &sel[..n] {
                                val.accumulate(c[idx as usize] * self.weight);
                            }
                        }
                        None => val.count += n as u64,
                    }
                }
            }
            batch_start = batch_end;
        }
        crate::telemetry::flush(scanned, skipped, elided, acc.matched_rows - matched_before);
    }
}

/// How group keys are indexed.
enum GroupPath {
    /// Single key column with a small domain: slots addressed by a dense
    /// per-code index — no hashing at all.
    Dense { cardinality: usize },
    /// Combined key bits fit in a `u64`: per-row keys packed by shifting,
    /// probed in a `u64`-keyed map (no per-row allocation).
    Packed { bits: Vec<u32> },
    /// Fallback for keys wider than 64 bits: `Vec<u32>` keys (the scalar
    /// reference's representation; the key is cloned only once per group).
    Hashed,
}

/// A grouped scan compiled against one table.
pub(crate) struct CompiledGroupBy<'t> {
    pub(crate) scan: CompiledScan<'t>,
    key_cols: Vec<&'t [u32]>,
    path: GroupPath,
}

impl<'t> CompiledGroupBy<'t> {
    /// Compiles a validated grouped query against `table`.
    pub(crate) fn compile(table: &'t FactTable, q: &'t crate::groupby::GroupByQuery) -> Self {
        let scan = CompiledScan::compile(table, &q.scan);
        let key_cols: Vec<&[u32]> = q.group_by.iter().map(|&c| table.u32_column(c)).collect();
        let cards: Vec<u64> = q
            .group_by
            .iter()
            .map(|&c| {
                let ColumnId::Dim { dim, level } = c else {
                    unreachable!("validated group column");
                };
                u64::from(table.schema().dimensions[dim].levels[level].cardinality)
            })
            .collect();
        // Bits needed to hold any coordinate `0..cardinality`.
        let bits: Vec<u32> = cards
            .iter()
            .map(|&c| 64 - (c - 1).leading_zeros().min(64))
            .collect();
        let path = if cards.len() == 1 && cards[0] <= DENSE_GROUP_MAX {
            GroupPath::Dense {
                cardinality: cards[0] as usize,
            }
        } else if bits.iter().sum::<u32>() <= 64 {
            GroupPath::Packed { bits }
        } else {
            GroupPath::Hashed
        };
        Self {
            scan,
            key_cols,
            path,
        }
    }

    fn pack_key(&self, bits: &[u32], row: usize) -> u64 {
        let mut key = 0u64;
        for (col, &b) in self.key_cols.iter().zip(bits) {
            key = (key << b) | u64::from(col[row]);
        }
        key
    }
}

/// One group under construction.
struct Slot {
    key: Vec<u32>,
    values: Vec<AggValue>,
    rows: u64,
}

/// Per-worker grouping accumulator (the fold state of the parallel
/// `fold`+`reduce` grouped scan).
pub(crate) struct GroupAcc {
    matched: u64,
    slots: Vec<Slot>,
    /// `Dense`: code → slot index (`u32::MAX` = vacant).
    dense: Vec<u32>,
    /// `Packed`: packed key → slot index.
    packed: HashMap<u64, u32>,
    /// `Hashed`: full key → slot index.
    hashed: HashMap<Vec<u32>, u32>,
}

impl GroupAcc {
    pub(crate) fn new(g: &CompiledGroupBy<'_>) -> Self {
        let dense = match g.path {
            GroupPath::Dense { cardinality } => vec![u32::MAX; cardinality],
            _ => Vec::new(),
        };
        Self {
            matched: 0,
            slots: Vec::new(),
            dense,
            packed: HashMap::new(),
            hashed: HashMap::new(),
        }
    }

    fn new_slot(g: &CompiledGroupBy<'_>, key: Vec<u32>) -> Slot {
        Slot {
            key,
            values: g.scan.ops.iter().map(|&op| AggValue::empty(op)).collect(),
            rows: 0,
        }
    }

    /// Finds or creates the slot for the group `row` belongs to.
    #[inline]
    fn slot_for_row(&mut self, g: &CompiledGroupBy<'_>, row: usize) -> usize {
        match &g.path {
            GroupPath::Dense { .. } => {
                let code = g.key_cols[0][row] as usize;
                let s = self.dense[code];
                if s != u32::MAX {
                    s as usize
                } else {
                    let s = self.slots.len();
                    self.dense[code] = s as u32;
                    self.slots.push(Self::new_slot(g, vec![code as u32]));
                    s
                }
            }
            GroupPath::Packed { bits } => {
                let key = g.pack_key(bits, row);
                if let Some(&s) = self.packed.get(&key) {
                    s as usize
                } else {
                    let s = self.slots.len();
                    self.packed.insert(key, s as u32);
                    let full: Vec<u32> = g.key_cols.iter().map(|c| c[row]).collect();
                    self.slots.push(Self::new_slot(g, full));
                    s
                }
            }
            GroupPath::Hashed => {
                let full: Vec<u32> = g.key_cols.iter().map(|c| c[row]).collect();
                if let Some(&s) = self.hashed.get(&full) {
                    s as usize
                } else {
                    let s = self.slots.len();
                    self.hashed.insert(full.clone(), s as u32);
                    self.slots.push(Self::new_slot(g, full));
                    s
                }
            }
        }
    }

    #[inline]
    fn accumulate_row(&mut self, g: &CompiledGroupBy<'_>, row: usize) {
        self.matched += 1;
        let s = self.slot_for_row(g, row);
        let slot = &mut self.slots[s];
        slot.rows += 1;
        for (val, col) in slot.values.iter_mut().zip(&g.scan.agg_cols) {
            match col {
                Some(c) => val.accumulate(c[row] * g.scan.weight),
                None => val.accumulate_count(),
            }
        }
    }

    /// Merges `other` into `self` (the reduce step).
    pub(crate) fn merge(&mut self, g: &CompiledGroupBy<'_>, other: Self) {
        self.matched += other.matched;
        for slot in other.slots {
            let s = match &g.path {
                GroupPath::Dense { .. } => {
                    let code = slot.key[0] as usize;
                    let s = self.dense[code];
                    if s != u32::MAX {
                        s as usize
                    } else {
                        let s = self.slots.len();
                        self.dense[code] = s as u32;
                        self.slots.push(Self::new_slot(g, slot.key.clone()));
                        s
                    }
                }
                GroupPath::Packed { bits } => {
                    let mut key = 0u64;
                    for (&coord, &b) in slot.key.iter().zip(bits) {
                        key = (key << b) | u64::from(coord);
                    }
                    if let Some(&s) = self.packed.get(&key) {
                        s as usize
                    } else {
                        let s = self.slots.len();
                        self.packed.insert(key, s as u32);
                        self.slots.push(Self::new_slot(g, slot.key.clone()));
                        s
                    }
                }
                GroupPath::Hashed => {
                    if let Some(&s) = self.hashed.get(&slot.key) {
                        s as usize
                    } else {
                        let s = self.slots.len();
                        self.hashed.insert(slot.key.clone(), s as u32);
                        self.slots.push(Self::new_slot(g, slot.key.clone()));
                        s
                    }
                }
            };
            let mine = &mut self.slots[s];
            mine.rows += slot.rows;
            for (a, b) in mine.values.iter_mut().zip(&slot.values) {
                a.merge(b);
            }
        }
    }

    /// Sorts the groups by key and produces the final result.
    pub(crate) fn finish(self) -> crate::groupby::GroupedResult {
        let mut groups: Vec<crate::groupby::Group> = self
            .slots
            .into_iter()
            .map(|s| crate::groupby::Group {
                key: s.key,
                values: s.values,
                rows: s.rows,
            })
            .collect();
        groups.sort_by(|a, b| a.key.cmp(&b.key));
        crate::groupby::GroupedResult {
            groups,
            matched_rows: self.matched,
        }
    }
}

impl CompiledGroupBy<'_> {
    /// Grouped scan of `[start, end)` (with `start` batch-aligned),
    /// accumulating into `acc` in row order.
    pub(crate) fn scan_range(
        &self,
        zones: &ZoneMaps,
        start: usize,
        end: usize,
        acc: &mut GroupAcc,
    ) {
        debug_assert_eq!(start % BATCH_ROWS, 0);
        if self.scan.empty || start >= end {
            return;
        }
        let mut sel = vec![0u32; BATCH_ROWS];
        let mut active: Vec<&Filter<'_>> = Vec::with_capacity(self.scan.filters.len());
        let mut batch_start = start;
        let (mut scanned, mut skipped, mut elided) = (0u64, 0u64, 0u64);
        let matched_before = acc.matched;
        while batch_start < end {
            let batch_end = (batch_start + BATCH_ROWS).min(end);
            let block = batch_start / BATCH_ROWS;
            active.clear();
            let mut skip = false;
            for f in &self.scan.filters {
                match f.zone_decision(zones, block) {
                    ZoneDecision::Skip => {
                        skip = true;
                        break;
                    }
                    ZoneDecision::AllMatch => {}
                    ZoneDecision::Eval => active.push(f),
                }
            }
            if skip {
                skipped += 1;
                batch_start = batch_end;
                continue;
            }
            scanned += 1;
            elided += (self.scan.filters.len() - active.len()) as u64;
            if active.is_empty() {
                for row in batch_start..batch_end {
                    acc.accumulate_row(self, row);
                }
            } else {
                let mut n = active[0].eval_init(batch_start, batch_end, &mut sel);
                for f in &active[1..] {
                    if n == 0 {
                        break;
                    }
                    n = f.eval_compact(&mut sel, n);
                }
                for &idx in &sel[..n] {
                    acc.accumulate_row(self, idx as usize);
                }
            }
            batch_start = batch_end;
        }
        crate::telemetry::flush(scanned, skipped, elided, acc.matched - matched_before);
    }
}
