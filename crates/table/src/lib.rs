//! Columnar fact-table storage and scan engine — the data substrate of the
//! GPU side of the hybrid OLAP system (paper §III-E, Fig. 6).
//!
//! The fact table keeps two kinds of columns:
//!
//! * **dimension columns** — one `u32` column per *(dimension, level)* pair.
//!   A condition `C_L(f, t, l_K)` in a decomposed query (Eq. 11) addresses
//!   exactly one of these columns and filters it with an inclusive integer
//!   range. Text dimensions are stored as dictionary codes (see
//!   `holap-dict`), so after translation they filter identically.
//! * **measure (data) columns** — `f64` columns holding the values that are
//!   aggregated.
//!
//! Storage follows the paper's "1D array memory structure … all columns of
//! the table one after another": all `u32` dimension data lives in one
//! contiguous pool and all `f64` measure data in another, with per-column
//! `(offset, len)` windows ([`column`]). This is what makes the GPU memory
//! accounting of `holap-gpusim` exact and keeps scans streaming over
//! contiguous memory.
//!
//! The scan engine ([`scan`]) evaluates conjunctive range filters plus
//! weighted aggregations (SUM/COUNT/MIN/MAX/AVG), sequentially or in
//! parallel with rayon — the CPU stand-in for the paper's four-step GPU
//! pipeline (parallel table scan → parallel reduction). It also reports the
//! number of columns a query touches, the `C_QD` quantity of Eq. 12 that
//! drives the GPU cost model.
//!
//! Execution is vectorized ([`exec`]): predicates evaluate column-wise over
//! fixed [`BATCH_ROWS`]-row batches into reusable selection vectors with
//! branch-free kernels, per-block zone maps ([`zone`]) skip batches whose
//! `[min, max]` cannot satisfy a conjunct, set predicates compile to dense
//! membership bitmaps, and group-by packs small keys into a `u64` (or a
//! dense slot array for one small-domain key). The original row-at-a-time
//! interpreter is retained as [`FactTable::scan_scalar`] /
//! [`FactTable::group_by_scalar`] — the reference implementation the
//! vectorized engine is property-tested and benchmarked against.
//!
//! # Example
//!
//! ```
//! use holap_table::{AggOp, AggSpec, ColumnId, FactTableBuilder, Predicate, ScanQuery, TableSchema};
//!
//! // 1 dimension ("time") with 2 levels (year: 4, month: 48), 1 measure.
//! let schema = TableSchema::builder()
//!     .dimension("time", &[("year", 4), ("month", 48)])
//!     .measure("sales")
//!     .build();
//! let mut b = FactTableBuilder::new(schema);
//! b.push_row(&[0, 5], &[10.0]).unwrap(); // year 0, month 5
//! b.push_row(&[1, 13], &[20.0]).unwrap();
//! b.push_row(&[1, 14], &[30.0]).unwrap();
//! let table = b.finish();
//!
//! let q = ScanQuery::new()
//!     .filter(Predicate::range(ColumnId::dim(0, 0), 1, 1)) // year == 1
//!     .aggregate(AggSpec::new(AggOp::Sum, Some(0)));       // SUM(sales)
//! let result = table.scan_seq(&q).unwrap();
//! assert_eq!(result.values[0].value(), Some(50.0));
//! assert_eq!(q.columns_accessed(), 2); // 1 filter column + 1 data column
//! ```

#![warn(missing_docs)]

pub mod column;
pub mod exec;
pub mod groupby;
pub mod scan;
pub mod schema;
pub mod table;
pub mod telemetry;
pub mod zone;

pub use column::{ColumnStore, F64Pool, U32Pool};
pub use exec::{BATCH_ROWS, BLOCK_ROWS};
pub use groupby::{Group, GroupByQuery, GroupedResult};
pub use scan::{
    AggOp, AggResult, AggSpec, AggValue, Predicate, ScanError, ScanQuery, SetPredicate,
};
pub use schema::{
    ColumnId, DimensionSchema, LevelSchema, MeasureSchema, SchemaBuilder, TableSchema,
};
pub use table::{FactTable, FactTableBuilder, RowError};
pub use telemetry::ScanTelemetry;
pub use zone::{ZoneColumn, ZoneMaps};
