//! Text-to-integer translation cost model (paper §III-F, Eq. 16–18).
//!
//! Every text parameter of a query bound for the GPU must first be looked up
//! in the dictionary of its column. With the paper's linear-scan dictionary
//! the worst-case lookup cost grows linearly with the dictionary length
//! (Fig. 9), so the upper bound on a query's translation time is the sum of
//! `P_DICT(D_L|i)` over the text conditions `i` in the decomposed query
//! (Eq. 18).

use crate::fit::{self, FitMetrics, Linear};
use serde::{Deserialize, Serialize};

/// Linear dictionary-search cost model: `t = secs_per_entry · len + overhead`.
///
/// The paper's fitted function (Eq. 17) has zero intercept
/// (`P_DICT(D_L) = 0.0138 µs · D_L`); fitted host models may carry a small
/// constant overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DictPerfModel {
    /// Cost per dictionary entry scanned, seconds.
    pub secs_per_entry: f64,
    /// Fixed per-lookup overhead, seconds.
    pub overhead_secs: f64,
}

impl DictPerfModel {
    /// Creates a model from a per-entry cost and a fixed overhead.
    pub fn new(secs_per_entry: f64, overhead_secs: f64) -> Self {
        assert!(secs_per_entry >= 0.0 && overhead_secs >= 0.0);
        Self {
            secs_per_entry,
            overhead_secs,
        }
    }

    /// The paper's measured single-threaded model (Eq. 17): 0.0138 µs/entry.
    pub fn paper() -> Self {
        Self::new(0.0138e-6, 0.0)
    }

    /// Upper bound on one lookup in a dictionary of `len` entries, seconds.
    #[inline]
    pub fn lookup_secs(&self, len: usize) -> f64 {
        self.secs_per_entry * len as f64 + self.overhead_secs
    }

    /// Upper bound on translating a whole query (Eq. 18): the sum of lookup
    /// bounds over the dictionary lengths of its text conditions.
    pub fn translation_secs<I: IntoIterator<Item = usize>>(&self, dict_lens: I) -> f64 {
        dict_lens.into_iter().map(|l| self.lookup_secs(l)).sum()
    }

    /// Fits the model from `(dictionary length, seconds)` measurements.
    pub fn fit(lens: &[f64], secs: &[f64]) -> Self {
        let line: Linear = fit::fit_linear(lens, secs);
        Self {
            secs_per_entry: line.slope.max(0.0),
            overhead_secs: line.intercept.max(0.0),
        }
    }

    /// Goodness of fit over a sample of `(length, seconds)` pairs.
    pub fn metrics(&self, lens: &[f64], secs: &[f64]) -> FitMetrics {
        fit::fit_metrics(|l| self.secs_per_entry * l + self.overhead_secs, lens, secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constant_matches_eq17() {
        let m = DictPerfModel::paper();
        // A 1 M-entry dictionary: 0.0138 µs * 1e6 = 13.8 ms.
        assert!((m.lookup_secs(1_000_000) - 0.0138).abs() < 1e-12);
    }

    #[test]
    fn translation_sums_over_conditions() {
        let m = DictPerfModel::paper();
        let total = m.translation_secs([1000, 2000, 3000]);
        assert!((total - m.lookup_secs(6000)).abs() < 1e-15);
    }

    #[test]
    fn empty_translation_is_free() {
        assert_eq!(DictPerfModel::paper().translation_secs([]), 0.0);
    }

    #[test]
    fn fit_recovers_paper_slope() {
        let truth = DictPerfModel::paper();
        let lens: Vec<f64> = (1..=10).map(|i| i as f64 * 1e5).collect();
        let secs: Vec<f64> = lens.iter().map(|&l| truth.secs_per_entry * l).collect();
        let fitted = DictPerfModel::fit(&lens, &secs);
        assert!((fitted.secs_per_entry - 0.0138e-6).abs() < 1e-15);
        assert!(fitted.metrics(&lens, &secs).r_squared > 0.999_999);
    }

    #[test]
    fn overhead_included_once_per_lookup() {
        let m = DictPerfModel::new(1e-8, 1e-4);
        let t = m.translation_secs([100, 100]);
        assert!((t - 2.0 * (1e-8 * 100.0 + 1e-4)).abs() < 1e-15);
    }
}
