//! GPU-partition performance models (paper §III-E, Eq. 13–15).
//!
//! The GPU answers queries by scanning columns of a fact table resident in
//! its global memory. Because a query always reads *entire* columns, its
//! cost depends only on the fraction of the table's columns it touches
//! (`C / C_TOT`, Eq. 12) and on the number of streaming multiprocessors in
//! the partition executing it. For each partition size the paper fits an
//! affine function of the column fraction (Eq. 14, and Eq. 15 for the whole
//! unpartitioned device).

use crate::fit::{self, FitMetrics, Linear};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Affine performance function of one GPU partition size:
/// `t = slope · (C / C_TOT) + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuPerfModel {
    /// Underlying affine function of the column fraction.
    pub line: Linear,
    /// Number of streaming multiprocessors this model was measured for.
    pub sm_count: u32,
}

impl GpuPerfModel {
    /// Builds a model from a slope/intercept pair for a given partition size.
    pub fn new(sm_count: u32, slope: f64, intercept: f64) -> Self {
        assert!(sm_count > 0, "a partition must have at least one SM");
        Self {
            line: Linear::new(slope, intercept),
            sm_count,
        }
    }

    /// Estimated processing time in seconds for a query touching the given
    /// fraction of the table's columns.
    ///
    /// # Panics
    ///
    /// Panics unless `column_fraction ∈ [0, 1]`.
    #[inline]
    pub fn estimate_secs(&self, column_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&column_fraction),
            "column fraction must be in [0, 1], got {column_fraction}"
        );
        self.line.eval(column_fraction).max(0.0)
    }

    /// Fits a partition model from measurements of `(column_fraction, secs)`.
    pub fn fit(sm_count: u32, fractions: &[f64], secs: &[f64]) -> Self {
        Self {
            line: fit::fit_linear(fractions, secs),
            sm_count,
        }
    }

    /// Goodness of fit over a sample.
    pub fn metrics(&self, fractions: &[f64], secs: &[f64]) -> FitMetrics {
        fit::fit_metrics(|x| self.estimate_secs(x), fractions, secs)
    }
}

/// The family of per-partition-size GPU models the scheduler stores
/// (one entry per distinct SM count used by the partition layout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModelSet {
    models: BTreeMap<u32, GpuPerfModel>,
    /// Total number of SMs on the device (14 for Tesla C2070).
    pub device_sms: u32,
}

impl GpuModelSet {
    /// Creates an empty model set for a device with `device_sms` SMs.
    pub fn new(device_sms: u32) -> Self {
        assert!(device_sms > 0);
        Self {
            models: BTreeMap::new(),
            device_sms,
        }
    }

    /// The paper's measured Tesla C2070 model set (Eq. 14–15): partitions of
    /// 1, 2 and 4 SMs plus the whole 14-SM device.
    pub fn paper_c2070() -> Self {
        let mut set = Self::new(14);
        set.insert(GpuPerfModel::new(1, 0.003, 0.0258));
        set.insert(GpuPerfModel::new(2, 0.0015, 0.013));
        set.insert(GpuPerfModel::new(4, 0.0008, 0.0065));
        set.insert(GpuPerfModel::new(14, 0.00021, 0.0020));
        set
    }

    /// Inserts (or replaces) the model for its SM count.
    pub fn insert(&mut self, model: GpuPerfModel) {
        assert!(
            model.sm_count <= self.device_sms,
            "partition of {} SMs exceeds device with {} SMs",
            model.sm_count,
            self.device_sms
        );
        self.models.insert(model.sm_count, model);
    }

    /// The model measured for exactly `sm_count` SMs, if present.
    pub fn model(&self, sm_count: u32) -> Option<&GpuPerfModel> {
        self.models.get(&sm_count)
    }

    /// Estimates the processing time on a partition of `sm_count` SMs.
    ///
    /// If no model was measured for exactly that partition size, the nearest
    /// *smaller* measured size is used (a conservative upper bound, since
    /// more SMs can only be faster), falling back to the smallest measured
    /// model if none is smaller.
    pub fn estimate_secs(&self, sm_count: u32, column_fraction: f64) -> f64 {
        let model = self
            .models
            .range(..=sm_count)
            .next_back()
            .map(|(_, m)| m)
            .or_else(|| self.models.values().next())
            .expect("GpuModelSet is empty");
        model.estimate_secs(column_fraction)
    }

    /// SM counts with measured models, ascending.
    pub fn measured_sizes(&self) -> impl Iterator<Item = u32> + '_ {
        self.models.keys().copied()
    }

    /// Number of measured models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the set holds no models.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_match_eq14() {
        let set = GpuModelSet::paper_c2070();
        let m1 = set.model(1).unwrap();
        assert_eq!(m1.estimate_secs(1.0), 0.003 + 0.0258);
        let m2 = set.model(2).unwrap();
        assert_eq!(m2.estimate_secs(0.0), 0.013);
        let m4 = set.model(4).unwrap();
        assert!((m4.estimate_secs(0.5) - (0.0008 * 0.5 + 0.0065)).abs() < 1e-15);
        let m14 = set.model(14).unwrap();
        assert!((m14.estimate_secs(1.0) - 0.00221).abs() < 1e-12);
    }

    #[test]
    fn more_sms_is_never_slower() {
        let set = GpuModelSet::paper_c2070();
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let t1 = set.estimate_secs(1, frac);
            let t2 = set.estimate_secs(2, frac);
            let t4 = set.estimate_secs(4, frac);
            let t14 = set.estimate_secs(14, frac);
            assert!(t1 >= t2 && t2 >= t4 && t4 >= t14, "frac={frac}");
        }
    }

    #[test]
    fn estimate_falls_back_to_nearest_smaller_model() {
        let set = GpuModelSet::paper_c2070();
        // 3 SMs is unmeasured → conservative 2-SM model is used.
        assert_eq!(set.estimate_secs(3, 0.5), set.estimate_secs(2, 0.5));
        // Everything below 1 falls back to smallest model.
        assert_eq!(set.estimate_secs(0, 0.5), set.estimate_secs(1, 0.5));
    }

    #[test]
    fn fit_recovers_synthetic_partition_model() {
        let truth = GpuPerfModel::new(2, 0.0015, 0.013);
        let fracs: Vec<f64> = (0..=12).map(|i| i as f64 / 12.0).collect();
        let secs: Vec<f64> = fracs.iter().map(|&f| truth.estimate_secs(f)).collect();
        let fitted = GpuPerfModel::fit(2, &fracs, &secs);
        assert!((fitted.line.slope - 0.0015).abs() < 1e-12);
        assert!((fitted.line.intercept - 0.013).abs() < 1e-12);
        assert!(fitted.metrics(&fracs, &secs).r_squared > 0.999_999);
    }

    #[test]
    #[should_panic(expected = "column fraction")]
    fn fraction_out_of_range_rejected() {
        GpuModelSet::paper_c2070().estimate_secs(1, 1.5);
    }

    #[test]
    #[should_panic(expected = "exceeds device")]
    fn oversized_partition_rejected() {
        let mut set = GpuModelSet::new(4);
        set.insert(GpuPerfModel::new(8, 0.1, 0.1));
    }
}
