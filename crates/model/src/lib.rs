//! Performance models and least-squares fitting for the hybrid OLAP scheduler.
//!
//! The scheduling algorithm of Malik et al. (IPDPSW 2012) never inspects the
//! hardware directly: every placement decision is driven by three families of
//! *measured* performance functions that are fitted offline by benchmarks and
//! stored inside the scheduler (paper §III-G):
//!
//! * [`CpuPerfModel`] — processing time of a sub-cube aggregation on the
//!   CPU partition as a function of the sub-cube size in MB (paper
//!   Eq. 4–10). The model is piecewise: a power law for small sub-cubes
//!   (*Range A*, cache and loop-overhead dominated) and an affine function
//!   for large ones (*Range B*, memory-bandwidth dominated).
//! * [`GpuPerfModel`] / [`GpuModelSet`] — processing time of a fact-table scan
//!   on a GPU partition as a function of the *fraction of columns touched*
//!   `C / C_TOT` and the number of streaming multiprocessors in the partition
//!   (paper Eq. 13–15).
//! * [`DictPerfModel`] — upper bound on the text-to-integer translation time
//!   as a function of dictionary length (paper Eq. 16–18).
//!
//! The constants printed in the paper for the authors' testbed (2× Xeon
//! X5667 + Tesla C2070) ship as presets ([`SystemProfile::paper`]); the
//! [`fit`] module re-derives equivalent constants from measurements taken
//! on the host machine (see the `calibrate` binary in `holap-bench`).
//!
//! # Units
//!
//! All times are **seconds**, all sizes are **MB** (`2^20` bytes, matching the
//! paper's Eq. 3), and column usage is a dimensionless fraction in `[0, 1]`.
//!
//! # Example
//!
//! ```
//! use holap_model::SystemProfile;
//!
//! let profile = SystemProfile::paper();
//! // A 256 MB sub-cube on the 8-thread CPU partition (Range A):
//! let t_cpu = profile.cpu(8).unwrap().estimate_secs(256.0);
//! assert!(t_cpu > 0.0 && t_cpu < 0.1);
//! // A query touching half the table's columns on a 4-SM GPU partition:
//! let t_gpu = profile.gpu.model(4).unwrap().estimate_secs(0.5);
//! assert!((t_gpu - (0.0008 * 0.5 + 0.0065)).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

pub mod cpu;
pub mod dict;
pub mod fit;
pub mod gpu;
pub mod profile;

pub use cpu::{CpuPerfModel, LegacyCpuModel};
pub use dict::DictPerfModel;
pub use fit::{fit_linear, fit_power_law, FitMetrics, Linear, PowerLaw};
pub use gpu::{GpuModelSet, GpuPerfModel};
pub use profile::SystemProfile;
