//! CPU-partition performance models (paper §III-B/D, Eq. 4–10).
//!
//! Processing an OLAP cube on the CPU is memory-bandwidth bound, so query
//! time is estimated purely from the amount of data the sub-cube aggregation
//! must stream from memory. The paper splits the size axis at 512 MB: below
//! the split a power law fits best (*Range A*), above it an affine function
//! does (*Range B*).

use crate::fit::{self, FitMetrics, Linear, PowerLaw};
use serde::{Deserialize, Serialize};

/// Default Range A / Range B split used by the paper: 512 MB.
pub const PAPER_SPLIT_MB: f64 = 512.0;

/// Piecewise performance model for parallel CPU cube processing
/// (paper Eq. 4): a power law below `split_mb`, affine above.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuPerfModel {
    /// Range A (small sub-cubes): `t = coeff · size^exponent`.
    pub range_a: PowerLaw,
    /// Range B (large sub-cubes): `t = slope · size + intercept`.
    pub range_b: Linear,
    /// Size threshold between the ranges, in MB.
    pub split_mb: f64,
}

impl CpuPerfModel {
    /// Builds a model from explicitly fitted pieces.
    pub fn new(range_a: PowerLaw, range_b: Linear, split_mb: f64) -> Self {
        assert!(split_mb > 0.0, "split must be positive");
        Self {
            range_a,
            range_b,
            split_mb,
        }
    }

    /// The paper's 4-thread model for 2× Xeon X5667 (Eq. 5–7).
    pub fn paper_4t() -> Self {
        Self::new(
            PowerLaw::new(0.0001, 0.9341),
            Linear::new(5e-5, 0.0096),
            PAPER_SPLIT_MB,
        )
    }

    /// The paper's 8-thread model for 2× Xeon X5667 (Eq. 8–10).
    pub fn paper_8t() -> Self {
        Self::new(
            PowerLaw::new(6e-5, 0.984),
            Linear::new(4e-5, 0.0146),
            PAPER_SPLIT_MB,
        )
    }

    /// Estimated processing time, in seconds, of a query that must stream
    /// `sc_size_mb` MB of OLAP-cube data (paper Eq. 4).
    ///
    /// Negative model outputs (possible for pathological fitted constants at
    /// tiny sizes) are clamped to zero; a processing time can never be
    /// negative.
    #[inline]
    pub fn estimate_secs(&self, sc_size_mb: f64) -> f64 {
        assert!(sc_size_mb >= 0.0, "sub-cube size cannot be negative");
        let t = if sc_size_mb < self.split_mb {
            self.range_a.eval(sc_size_mb)
        } else {
            self.range_b.eval(sc_size_mb)
        };
        t.max(0.0)
    }

    /// Effective memory bandwidth (MB/s) implied by the model at a given
    /// sub-cube size. Useful for regenerating the Fig. 3 bandwidth curves
    /// from a fitted model.
    pub fn implied_bandwidth_mbps(&self, sc_size_mb: f64) -> f64 {
        let t = self.estimate_secs(sc_size_mb);
        if t <= 0.0 {
            f64::INFINITY
        } else {
            sc_size_mb / t
        }
    }

    /// Fits a piecewise model from measurements `(sizes_mb, secs)` with a
    /// fixed split. Points below the split feed the power-law fit; points at
    /// or above it feed the linear fit. Both sides need ≥ 2 points.
    pub fn fit(sizes_mb: &[f64], secs: &[f64], split_mb: f64) -> Self {
        assert_eq!(sizes_mb.len(), secs.len());
        let (mut ax, mut ay, mut bx, mut by) = (vec![], vec![], vec![], vec![]);
        for (&x, &y) in sizes_mb.iter().zip(secs) {
            if x < split_mb {
                ax.push(x);
                ay.push(y);
            } else {
                bx.push(x);
                by.push(y);
            }
        }
        assert!(
            ax.len() >= 2 && bx.len() >= 2,
            "need at least two measurements on each side of the split \
             (got {} below, {} above)",
            ax.len(),
            bx.len()
        );
        Self::new(
            fit::fit_power_law(&ax, &ay),
            fit::fit_linear(&bx, &by),
            split_mb,
        )
    }

    /// Fits a piecewise model, searching the candidate split that minimises
    /// the summed squared residual. Candidates are the sample sizes that
    /// leave at least two points on each side.
    pub fn fit_auto_split(sizes_mb: &[f64], secs: &[f64]) -> Self {
        assert_eq!(sizes_mb.len(), secs.len());
        assert!(sizes_mb.len() >= 4, "need at least four measurements");
        let mut sorted: Vec<f64> = sizes_mb.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        let mut best: Option<(f64, Self)> = None;
        for &candidate in &sorted[2..sorted.len().saturating_sub(1)] {
            let below = sizes_mb.iter().filter(|&&x| x < candidate).count();
            let above = sizes_mb.len() - below;
            if below < 2 || above < 2 {
                continue;
            }
            let model = Self::fit(sizes_mb, secs, candidate);
            let sse: f64 = sizes_mb
                .iter()
                .zip(secs)
                .map(|(&x, &y)| {
                    let e = y - model.estimate_secs(x);
                    e * e
                })
                .sum();
            if best.as_ref().is_none_or(|(b, _)| sse < *b) {
                best = Some((sse, model));
            }
        }
        best.expect("no valid split candidate").1
    }

    /// Goodness of fit of this model over a sample.
    pub fn metrics(&self, sizes_mb: &[f64], secs: &[f64]) -> FitMetrics {
        fit::fit_metrics(|x| self.estimate_secs(x), sizes_mb, secs)
    }
}

/// The pre-parallelisation baseline implementation from the authors' earlier
/// system \[16\]: a single-threaded scan with a flat effective bandwidth
/// (≈1 GB/s originally, ≈5 GB/s after the scalar rewrite; paper §III-D).
///
/// Modelled as `t = size / bandwidth + overhead`. The simulator uses this as
/// the "Sequential" column of Tables 1 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LegacyCpuModel {
    /// Effective streaming bandwidth, MB/s.
    pub bandwidth_mbps: f64,
    /// Fixed per-query overhead, seconds.
    pub overhead_secs: f64,
}

impl LegacyCpuModel {
    /// Creates a legacy model from a bandwidth in GB/s and an overhead.
    pub fn new(bandwidth_gbps: f64, overhead_secs: f64) -> Self {
        assert!(bandwidth_gbps > 0.0);
        assert!(overhead_secs >= 0.0);
        Self {
            bandwidth_mbps: bandwidth_gbps * 1024.0,
            overhead_secs,
        }
    }

    /// The paper's original single-threaded implementation: ~1 GB/s.
    pub fn paper_original() -> Self {
        Self::new(1.0, 0.001)
    }

    /// The improved single-threaded implementation: ~5 GB/s.
    pub fn paper_improved() -> Self {
        Self::new(5.0, 0.001)
    }

    /// The sequential baseline calibrated against Table 1's reported
    /// 12 queries/second: on the ~160 MB sub-cubes that make the 4T/8T
    /// models land at 87/110 Q/s, a 12 Q/s sequential rate implies an
    /// effective ~1.93 GB/s (the paper's quoted "1 GB/s" refers to an even
    /// earlier implementation; the 12 Q/s figure is what Table 1 pins).
    pub fn calibrated_table1() -> Self {
        Self::new(1.926, 0.001)
    }

    /// Estimated processing time in seconds for `sc_size_mb` MB.
    #[inline]
    pub fn estimate_secs(&self, sc_size_mb: f64) -> f64 {
        assert!(sc_size_mb >= 0.0);
        sc_size_mb / self.bandwidth_mbps + self.overhead_secs
    }

    /// Converts the legacy model into the piecewise representation so it can
    /// be used anywhere a [`CpuPerfModel`] is expected (both ranges affine
    /// with the same slope; the power law degenerates to the same line only
    /// approximately, so we instead use an exponent of 1).
    pub fn as_cpu_model(&self) -> CpuPerfModel {
        // t = x / bw + c  ==  power law a·x^1 only when c == 0, so Range A
        // keeps the affine behaviour by using the linear piece on both sides:
        // split at 0 forces everything through Range B.
        CpuPerfModel {
            range_a: PowerLaw::new(1.0 / self.bandwidth_mbps, 1.0),
            range_b: Linear::new(1.0 / self.bandwidth_mbps, self.overhead_secs),
            split_mb: f64::MIN_POSITIVE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_4t_matches_printed_constants() {
        let m = CpuPerfModel::paper_4t();
        // Range A at 100 MB: 0.0001 * 100^0.9341
        let expect = 0.0001 * 100f64.powf(0.9341);
        assert!((m.estimate_secs(100.0) - expect).abs() < 1e-12);
        // Range B at 1024 MB: 5e-5 * 1024 + 0.0096
        let expect_b = 5e-5 * 1024.0 + 0.0096;
        assert!((m.estimate_secs(1024.0) - expect_b).abs() < 1e-12);
    }

    #[test]
    fn paper_8t_faster_than_4t_in_range_b() {
        let m4 = CpuPerfModel::paper_4t();
        let m8 = CpuPerfModel::paper_8t();
        for size in [600.0, 1024.0, 8192.0, 32.0 * 1024.0] {
            assert!(
                m8.estimate_secs(size) < m4.estimate_secs(size),
                "8T should beat 4T at {size} MB"
            );
        }
    }

    #[test]
    fn estimate_is_monotone_within_each_range() {
        let m = CpuPerfModel::paper_8t();
        let mut prev = 0.0;
        for i in 1..500 {
            let size = i as f64;
            let t = m.estimate_secs(size);
            assert!(t >= prev);
            prev = t;
        }
        let mut prev = m.estimate_secs(512.0);
        for i in 1..100 {
            let size = 512.0 + i as f64 * 100.0;
            let t = m.estimate_secs(size);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn fit_recovers_synthetic_piecewise_model() {
        let truth = CpuPerfModel::paper_4t();
        let sizes: Vec<f64> = (0..60).map(|i| 2f64.powf(i as f64 * 0.25)).collect();
        let secs: Vec<f64> = sizes.iter().map(|&s| truth.estimate_secs(s)).collect();
        let fitted = CpuPerfModel::fit(&sizes, &secs, PAPER_SPLIT_MB);
        for &s in &sizes {
            let a = truth.estimate_secs(s);
            let b = fitted.estimate_secs(s);
            assert!((a - b).abs() <= 1e-6 * (1.0 + a), "mismatch at {s} MB");
        }
        let m = fitted.metrics(&sizes, &secs);
        assert!(m.r_squared > 0.999);
    }

    #[test]
    fn auto_split_lands_near_true_split() {
        let truth = CpuPerfModel::paper_8t();
        let sizes: Vec<f64> = (0..80).map(|i| 2f64.powf(i as f64 * 0.2)).collect();
        let secs: Vec<f64> = sizes.iter().map(|&s| truth.estimate_secs(s)).collect();
        let fitted = CpuPerfModel::fit_auto_split(&sizes, &secs);
        let m = fitted.metrics(&sizes, &secs);
        assert!(m.r_squared > 0.99, "r² = {}", m.r_squared);
    }

    #[test]
    fn legacy_model_bandwidth() {
        let legacy = LegacyCpuModel::paper_original();
        // 1024 MB at 1 GB/s ≈ 1 second (+1 ms overhead).
        let t = legacy.estimate_secs(1024.0);
        assert!((t - 1.001).abs() < 1e-9);
    }

    #[test]
    fn legacy_as_cpu_model_agrees() {
        let legacy = LegacyCpuModel::paper_improved();
        let as_model = legacy.as_cpu_model();
        for size in [1.0, 64.0, 512.0, 4096.0] {
            let a = legacy.estimate_secs(size);
            let b = as_model.estimate_secs(size);
            assert!((a - b).abs() < 1e-12, "mismatch at {size}");
        }
    }

    #[test]
    fn implied_bandwidth_plateaus_in_range_b() {
        let m = CpuPerfModel::paper_8t();
        // In Range B bandwidth approaches 1/slope = 25 000 MB/s ≈ 24.4 GB/s.
        let bw_large = m.implied_bandwidth_mbps(32.0 * 1024.0);
        assert!(
            bw_large > 20_000.0 && bw_large < 25_000.0,
            "bw = {bw_large}"
        );
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_size_rejected() {
        CpuPerfModel::paper_4t().estimate_secs(-1.0);
    }
}
