//! The bundle of "system performance variables … measured by benchmarks and
//! stored inside the scheduler" (paper §III-G).

use crate::cpu::{CpuPerfModel, LegacyCpuModel};
use crate::dict::DictPerfModel;
use crate::gpu::GpuModelSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything the scheduler needs to estimate `T_CPU`, `T_GPU1..3` and
/// `T_TRANS` for an incoming query: one CPU model per supported thread
/// count, the per-partition-size GPU model family, and the dictionary model.
///
/// Serialisable so a calibration run on one machine can be replayed by the
/// simulator later (`holap-bench`'s `calibrate` binary emits this as JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemProfile {
    /// Parallel CPU models keyed by OpenMP/rayon thread count.
    pub cpu_by_threads: BTreeMap<u32, CpuPerfModel>,
    /// The pre-parallelisation sequential baseline \[16\].
    pub legacy_cpu: LegacyCpuModel,
    /// GPU partition models.
    pub gpu: GpuModelSet,
    /// Dictionary translation model.
    pub dict: DictPerfModel,
}

impl SystemProfile {
    /// The profile printed in the paper for 2× Xeon X5667 + Tesla C2070.
    pub fn paper() -> Self {
        let mut cpu_by_threads = BTreeMap::new();
        cpu_by_threads.insert(4, CpuPerfModel::paper_4t());
        cpu_by_threads.insert(8, CpuPerfModel::paper_8t());
        Self {
            cpu_by_threads,
            legacy_cpu: LegacyCpuModel::paper_original(),
            gpu: GpuModelSet::paper_c2070(),
            dict: DictPerfModel::paper(),
        }
    }

    /// The CPU model measured for exactly `threads` threads, if any.
    pub fn cpu(&self, threads: u32) -> Option<&CpuPerfModel> {
        self.cpu_by_threads.get(&threads)
    }

    /// The CPU model for `threads`, falling back to the nearest smaller
    /// measured thread count (a conservative estimate), then to the legacy
    /// model converted to piecewise form.
    pub fn cpu_or_nearest(&self, threads: u32) -> CpuPerfModel {
        self.cpu_by_threads
            .range(..=threads)
            .next_back()
            .map(|(_, m)| *m)
            .unwrap_or_else(|| self.legacy_cpu.as_cpu_model())
    }

    /// Registers (or replaces) the CPU model for a thread count.
    pub fn set_cpu(&mut self, threads: u32, model: CpuPerfModel) {
        assert!(threads > 0);
        self.cpu_by_threads.insert(threads, model);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_has_both_thread_counts() {
        let p = SystemProfile::paper();
        assert!(p.cpu(4).is_some());
        assert!(p.cpu(8).is_some());
        assert!(p.cpu(2).is_none());
    }

    #[test]
    fn nearest_fallback_is_conservative() {
        let p = SystemProfile::paper();
        // 6 threads unmeasured → 4-thread model used.
        let m6 = p.cpu_or_nearest(6);
        assert_eq!(m6, *p.cpu(4).unwrap());
        // 2 threads below all measurements → legacy model.
        let m2 = p.cpu_or_nearest(2);
        assert_eq!(m2, p.legacy_cpu.as_cpu_model());
    }

    #[test]
    fn profile_roundtrips_through_json() {
        let p = SystemProfile::paper();
        let json = serde_json::to_string(&p).unwrap();
        let back: SystemProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
