//! Least-squares fitting primitives used to derive the performance models
//! from benchmark measurements.
//!
//! The paper derives its estimation functions "based on best fit for a
//! particular range" (§III-D). Two functional forms appear in the paper:
//!
//! * an affine function `t = a·x + b` (Range B of the CPU model, the GPU
//!   model, and the dictionary model) — fitted here by ordinary least
//!   squares ([`fit_linear`]);
//! * a power law `t = a·x^b` (Range A of the CPU model) — fitted by OLS on
//!   `ln t = ln a + b·ln x` ([`fit_power_law`]).

use serde::{Deserialize, Serialize};

/// An affine function `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Slope `a` of `y = a·x + b`.
    pub slope: f64,
    /// Intercept `b` of `y = a·x + b`.
    pub intercept: f64,
}

impl Linear {
    /// Creates an affine function with the given slope and intercept.
    pub fn new(slope: f64, intercept: f64) -> Self {
        Self { slope, intercept }
    }

    /// Evaluates the function at `x`.
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// A power law `y = coeff·x^exponent`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLaw {
    /// Coefficient `a` of `y = a·x^b`.
    pub coeff: f64,
    /// Exponent `b` of `y = a·x^b`.
    pub exponent: f64,
}

impl PowerLaw {
    /// Creates a power law with the given coefficient and exponent.
    pub fn new(coeff: f64, exponent: f64) -> Self {
        Self { coeff, exponent }
    }

    /// Evaluates the function at `x`. Defined for `x > 0`; `eval(0)` returns
    /// `0` when the exponent is positive (the natural continuous extension).
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        self.coeff * x.powf(self.exponent)
    }
}

/// Goodness-of-fit metrics for a fitted model over a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitMetrics {
    /// Coefficient of determination, `1 − SS_res / SS_tot`.
    pub r_squared: f64,
    /// Mean absolute percentage error over the sample, in `[0, ∞)`.
    pub mape: f64,
}

/// Fits `y = a·x + b` to the sample by ordinary least squares.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two points, or
/// if all `x` values are identical (the system is singular).
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> Linear {
    assert_eq!(xs.len(), ys.len(), "xs and ys must have the same length");
    assert!(xs.len() >= 2, "need at least two points to fit a line");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
    }
    assert!(sxx > 0.0, "all x values are identical; cannot fit a line");
    let slope = sxy / sxx;
    Linear {
        slope,
        intercept: mean_y - slope * mean_x,
    }
}

/// Fits `y = a·x^b` by linear regression in log-log space.
///
/// All sample values must be strictly positive (the transform takes
/// logarithms of both coordinates).
///
/// # Panics
///
/// Panics under the same conditions as [`fit_linear`], or if any sample
/// coordinate is not strictly positive.
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> PowerLaw {
    assert_eq!(xs.len(), ys.len(), "xs and ys must have the same length");
    let (lx, ly): (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            assert!(
                x > 0.0 && y > 0.0,
                "power-law fit requires positive samples"
            );
            (x.ln(), y.ln())
        })
        .unzip();
    let line = fit_linear(&lx, &ly);
    PowerLaw {
        coeff: line.intercept.exp(),
        exponent: line.slope,
    }
}

/// Computes goodness-of-fit metrics for an arbitrary model function `f` over
/// the sample `(xs, ys)`.
///
/// `mape` skips sample points whose observed value is exactly zero (the
/// percentage error is undefined there).
pub fn fit_metrics<F: Fn(f64) -> f64>(f: F, xs: &[f64], ys: &[f64]) -> FitMetrics {
    assert_eq!(xs.len(), ys.len());
    assert!(!xs.is_empty());
    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    let mut ape_sum = 0.0;
    let mut ape_n = 0usize;
    for (&x, &y) in xs.iter().zip(ys) {
        let pred = f(x);
        ss_res += (y - pred) * (y - pred);
        ss_tot += (y - mean_y) * (y - mean_y);
        if y != 0.0 {
            ape_sum += ((y - pred) / y).abs();
            ape_n += 1;
        }
    }
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    let mape = if ape_n == 0 {
        0.0
    } else {
        ape_sum / ape_n as f64
    };
    FitMetrics { r_squared, mape }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.5 * x - 2.0).collect();
        let l = fit_linear(&xs, &ys);
        assert!(close(l.slope, 3.5, 1e-12));
        assert!(close(l.intercept, -2.0, 1e-12));
    }

    #[test]
    fn linear_fit_minimises_residuals_under_noise() {
        // Symmetric noise around a known line: the fit must stay close.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + 1.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let l = fit_linear(&xs, &ys);
        assert!(close(l.slope, 2.0, 1e-3));
        assert!(close(l.intercept, 1.0, 1e-2));
    }

    #[test]
    fn power_fit_recovers_exact_power_law() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64 * 7.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1e-4 * x.powf(0.9341)).collect();
        let p = fit_power_law(&xs, &ys);
        assert!(close(p.coeff, 1e-4, 1e-9));
        assert!(close(p.exponent, 0.9341, 1e-9));
    }

    #[test]
    fn metrics_perfect_fit() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let m = fit_metrics(|x| 2.0 * x, &xs, &ys);
        assert!(close(m.r_squared, 1.0, 1e-12));
        assert!(close(m.mape, 0.0, 1e-12));
    }

    #[test]
    fn metrics_detect_bad_fit() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let m = fit_metrics(|_| 5.0, &xs, &ys);
        assert!(m.r_squared < 0.5);
        assert!(m.mape > 0.2);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn linear_fit_rejects_mismatched_lengths() {
        fit_linear(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "positive samples")]
    fn power_fit_rejects_nonpositive() {
        fit_power_law(&[1.0, 0.0], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn linear_fit_rejects_singular_system() {
        fit_linear(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn power_law_eval_at_zero_with_positive_exponent() {
        let p = PowerLaw::new(3.0, 0.5);
        assert_eq!(p.eval(0.0), 0.0);
    }
}
