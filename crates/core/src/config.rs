//! Engine configuration.

use holap_model::SystemProfile;
use holap_obs::ObsConfig;
use holap_sched::{HealthConfig, PartitionLayout, Policy};
use serde::{Deserialize, Serialize};

/// What `submit` does when the bounded admission queue is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackpressurePolicy {
    /// Block the submitting thread until a slot frees up (default — the
    /// behaviour a synchronous caller expects).
    #[default]
    Block,
    /// Fail fast with [`EngineError::Overloaded`](crate::EngineError) and
    /// count the query in [`EngineStats::rejected`](crate::EngineStats).
    Reject,
}

/// What the dispatcher does when the scheduler predicts that *no*
/// partition can answer before the query's deadline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SheddingPolicy {
    /// Run the query anyway (default — the paper's step-6 behaviour:
    /// "deliver the answer as soon as possible").
    #[default]
    Off,
    /// Drop the query without burning partition time: the ticket resolves
    /// to a [`QueryOutcome`](crate::QueryOutcome) with `shed = true` and
    /// an empty answer.
    Shed,
    /// Fail the ticket with [`EngineError::Overloaded`](crate::EngineError).
    Reject,
}

/// Configuration of the asynchronous admission pipeline in front of the
/// scheduler (see [`crate::HybridSystem::submit`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Bound of the admission queue between `submit` callers and the
    /// dispatcher thread.
    pub queue_capacity: usize,
    /// Bound of each partition's run queue between the dispatcher and the
    /// partition worker. A full run queue stalls the dispatcher, which in
    /// turn fills the admission queue — backpressure propagates outward.
    pub partition_queue_capacity: usize,
    /// Behaviour when the admission queue is full.
    #[serde(default)]
    pub backpressure: BackpressurePolicy,
    /// Deadline-aware load shedding at dispatch time.
    #[serde(default)]
    pub shedding: SheddingPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            partition_queue_capacity: 64,
            backpressure: BackpressurePolicy::default(),
            shedding: SheddingPolicy::default(),
        }
    }
}

/// How a partition runner retries transient kernel failures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Retries after the first failed attempt (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before the first retry, seconds; doubles per retry.
    pub base_backoff_secs: f64,
    /// Cap on the exponential backoff, seconds.
    pub max_backoff_secs: f64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base_backoff_secs: 0.0005,
            max_backoff_secs: 0.010,
        }
    }
}

impl RetryConfig {
    /// Backoff before retry `n` (1-based): `base × 2^(n-1)`, capped.
    pub fn backoff_secs(&self, retry: u32) -> f64 {
        let exp = retry.saturating_sub(1).min(30);
        (self.base_backoff_secs * f64::from(1u32 << exp)).min(self.max_backoff_secs)
    }
}

/// Fault-tolerance tuning: retries, the per-query watchdog, CPU failover
/// and the quarantine state machine. The defaults keep every knob on —
/// a fault-free system pays nothing for them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultToleranceConfig {
    /// Transient-failure retry policy.
    #[serde(default)]
    pub retry: RetryConfig,
    /// Seconds a partition runner waits for a kernel answer before the
    /// query times out ([`EngineError::Timeout`](crate::EngineError)) —
    /// the backstop that keeps a hung kernel from hanging its ticket.
    pub watchdog_secs: f64,
    /// Re-run a query on the CPU (host-side scan over the same columns)
    /// when its GPU partition times out or is quarantined. Answers are
    /// computed by the same scan code, so results are unchanged.
    pub cpu_failover: bool,
    /// Quarantine thresholds handed to the scheduler.
    #[serde(default)]
    pub quarantine: HealthConfig,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        Self {
            retry: RetryConfig::default(),
            watchdog_secs: 5.0,
            cpu_failover: true,
            quarantine: HealthConfig::default(),
        }
    }
}

/// Static configuration of a [`crate::HybridSystem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Partition layout (GPU split, CPU processing threads, translation
    /// threads).
    pub layout: PartitionLayout,
    /// Measured performance profile driving the scheduler's estimates.
    pub profile: SystemProfile,
    /// Placement policy.
    pub policy: Policy,
    /// Default relative deadline `T_C` for queries that do not carry one,
    /// seconds.
    pub default_deadline_secs: f64,
    /// Result-cache capacity in entries (0 = caching off). The data is
    /// immutable after build, so memoisation is always sound; it is off by
    /// default because cached answers bypass the scheduler.
    #[serde(default)]
    pub cache_capacity: usize,
    /// Admission-pipeline tuning (queue bounds, backpressure, shedding).
    #[serde(default)]
    pub admission: AdmissionConfig,
    /// Fault-tolerance tuning (retry, watchdog, failover, quarantine).
    #[serde(default)]
    pub faults: FaultToleranceConfig,
    /// Observability: metrics registry, query tracing and the flight
    /// recorder (on by default; `ObsConfig::disabled()` for baselines).
    #[serde(default)]
    pub obs: ObsConfig,
}

impl Default for SystemConfig {
    /// The paper's configuration: Fig. 7 layout, printed performance
    /// profile, the Figure-10 policy, and a 0.5 s deadline window.
    fn default() -> Self {
        Self {
            layout: PartitionLayout::paper(),
            profile: SystemProfile::paper(),
            policy: Policy::Paper,
            default_deadline_secs: 0.5,
            cache_capacity: 0,
            admission: AdmissionConfig::default(),
            faults: FaultToleranceConfig::default(),
            obs: ObsConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_shaped() {
        let c = SystemConfig::default();
        assert_eq!(c.layout.gpu_partitions(), 6);
        assert_eq!(c.policy, Policy::Paper);
        assert!(c.default_deadline_secs > 0.0);
    }

    #[test]
    fn fault_tolerance_defaults_are_on() {
        let f = FaultToleranceConfig::default();
        assert_eq!(f.retry.max_retries, 2);
        assert!(f.watchdog_secs > 0.0);
        assert!(f.cpu_failover);
        assert_eq!(f.quarantine.quarantine_after, 3);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let r = RetryConfig {
            max_retries: 10,
            base_backoff_secs: 0.001,
            max_backoff_secs: 0.003,
        };
        assert!((r.backoff_secs(1) - 0.001).abs() < 1e-12);
        assert!((r.backoff_secs(2) - 0.002).abs() < 1e-12);
        assert!((r.backoff_secs(3) - 0.003).abs() < 1e-12, "capped");
        assert!((r.backoff_secs(60) - 0.003).abs() < 1e-12, "shift-safe");
    }

    #[test]
    fn admission_defaults_are_conservative() {
        let a = AdmissionConfig::default();
        assert!(a.queue_capacity > 0);
        assert!(a.partition_queue_capacity > 0);
        assert_eq!(a.backpressure, BackpressurePolicy::Block);
        assert_eq!(a.shedding, SheddingPolicy::Off);
    }
}
