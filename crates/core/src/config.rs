//! Engine configuration.

use holap_model::SystemProfile;
use holap_sched::{PartitionLayout, Policy};
use serde::{Deserialize, Serialize};

/// Static configuration of a [`crate::HybridSystem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Partition layout (GPU split, CPU processing threads, translation
    /// threads).
    pub layout: PartitionLayout,
    /// Measured performance profile driving the scheduler's estimates.
    pub profile: SystemProfile,
    /// Placement policy.
    pub policy: Policy,
    /// Default relative deadline `T_C` for queries that do not carry one,
    /// seconds.
    pub default_deadline_secs: f64,
    /// Result-cache capacity in entries (0 = caching off). The data is
    /// immutable after build, so memoisation is always sound; it is off by
    /// default because cached answers bypass the scheduler.
    #[serde(default)]
    pub cache_capacity: usize,
}

impl Default for SystemConfig {
    /// The paper's configuration: Fig. 7 layout, printed performance
    /// profile, the Figure-10 policy, and a 0.5 s deadline window.
    fn default() -> Self {
        Self {
            layout: PartitionLayout::paper(),
            profile: SystemProfile::paper(),
            policy: Policy::Paper,
            default_deadline_secs: 0.5,
            cache_capacity: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_shaped() {
        let c = SystemConfig::default();
        assert_eq!(c.layout.gpu_partitions(), 6);
        assert_eq!(c.policy, Policy::Paper);
        assert!(c.default_deadline_secs > 0.0);
    }
}
