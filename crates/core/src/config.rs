//! Engine configuration.

use holap_model::SystemProfile;
use holap_sched::{PartitionLayout, Policy};
use serde::{Deserialize, Serialize};

/// What `submit` does when the bounded admission queue is full.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackpressurePolicy {
    /// Block the submitting thread until a slot frees up (default — the
    /// behaviour a synchronous caller expects).
    #[default]
    Block,
    /// Fail fast with [`EngineError::Overloaded`](crate::EngineError) and
    /// count the query in [`EngineStats::rejected`](crate::EngineStats).
    Reject,
}

/// What the dispatcher does when the scheduler predicts that *no*
/// partition can answer before the query's deadline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SheddingPolicy {
    /// Run the query anyway (default — the paper's step-6 behaviour:
    /// "deliver the answer as soon as possible").
    #[default]
    Off,
    /// Drop the query without burning partition time: the ticket resolves
    /// to a [`QueryOutcome`](crate::QueryOutcome) with `shed = true` and
    /// an empty answer.
    Shed,
    /// Fail the ticket with [`EngineError::Overloaded`](crate::EngineError).
    Reject,
}

/// Configuration of the asynchronous admission pipeline in front of the
/// scheduler (see [`crate::HybridSystem::submit`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Bound of the admission queue between `submit` callers and the
    /// dispatcher thread.
    pub queue_capacity: usize,
    /// Bound of each partition's run queue between the dispatcher and the
    /// partition worker. A full run queue stalls the dispatcher, which in
    /// turn fills the admission queue — backpressure propagates outward.
    pub partition_queue_capacity: usize,
    /// Behaviour when the admission queue is full.
    #[serde(default)]
    pub backpressure: BackpressurePolicy,
    /// Deadline-aware load shedding at dispatch time.
    #[serde(default)]
    pub shedding: SheddingPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            partition_queue_capacity: 64,
            backpressure: BackpressurePolicy::default(),
            shedding: SheddingPolicy::default(),
        }
    }
}

/// Static configuration of a [`crate::HybridSystem`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Partition layout (GPU split, CPU processing threads, translation
    /// threads).
    pub layout: PartitionLayout,
    /// Measured performance profile driving the scheduler's estimates.
    pub profile: SystemProfile,
    /// Placement policy.
    pub policy: Policy,
    /// Default relative deadline `T_C` for queries that do not carry one,
    /// seconds.
    pub default_deadline_secs: f64,
    /// Result-cache capacity in entries (0 = caching off). The data is
    /// immutable after build, so memoisation is always sound; it is off by
    /// default because cached answers bypass the scheduler.
    #[serde(default)]
    pub cache_capacity: usize,
    /// Admission-pipeline tuning (queue bounds, backpressure, shedding).
    #[serde(default)]
    pub admission: AdmissionConfig,
}

impl Default for SystemConfig {
    /// The paper's configuration: Fig. 7 layout, printed performance
    /// profile, the Figure-10 policy, and a 0.5 s deadline window.
    fn default() -> Self {
        Self {
            layout: PartitionLayout::paper(),
            profile: SystemProfile::paper(),
            policy: Policy::Paper,
            default_deadline_secs: 0.5,
            cache_capacity: 0,
            admission: AdmissionConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_shaped() {
        let c = SystemConfig::default();
        assert_eq!(c.layout.gpu_partitions(), 6);
        assert_eq!(c.policy, Policy::Paper);
        assert!(c.default_deadline_secs > 0.0);
    }

    #[test]
    fn admission_defaults_are_conservative() {
        let a = AdmissionConfig::default();
        assert!(a.queue_capacity > 0);
        assert!(a.partition_queue_capacity > 0);
        assert_eq!(a.backpressure, BackpressurePolicy::Block);
        assert_eq!(a.shedding, SheddingPolicy::Off);
    }
}
