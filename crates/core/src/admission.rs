//! The asynchronous admission pipeline in front of the scheduler.
//!
//! `HybridSystem::submit` hands a prepared query to a **bounded admission
//! queue**; a single **dispatcher** thread drains it, applies deadline-aware
//! load shedding, places the query through the Figure-10 scheduler (with a
//! [`LiveLoad`] floor measured from work still in flight), and forwards it
//! to the chosen partition's **bounded run queue**. One runner thread per
//! partition (the CPU processing partition plus each GPU partition)
//! executes the work and resolves the caller's [`QueryTicket`].
//!
//! Backpressure propagates outward: a slow partition fills its run queue,
//! which stalls the dispatcher, which fills the admission queue, which —
//! depending on [`BackpressurePolicy`](crate::config::BackpressurePolicy)
//! — blocks or rejects new submissions.

use crate::config::SheddingPolicy;
use crate::engine::{EngineCore, Prepared, QueryOutcome};
use crate::error::EngineError;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use holap_obs::{QueryTrace, SpanKind, TraceStatus};
use holap_sched::{Decision, HealthState, LiveLoad, Placement};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A handle to one submitted query. The outcome is delivered exactly once:
/// consume it with [`QueryTicket::wait`], or poll with
/// [`QueryTicket::try_wait`].
#[derive(Debug)]
pub struct QueryTicket {
    id: u64,
    rx: Receiver<Result<QueryOutcome, EngineError>>,
    /// Whether `try_wait` already handed the outcome out — distinguishes
    /// "consumed" from "pipeline died" once the sender is gone.
    delivered: bool,
}

impl QueryTicket {
    pub(crate) fn new(id: u64, rx: Receiver<Result<QueryOutcome, EngineError>>) -> Self {
        Self {
            id,
            rx,
            delivered: false,
        }
    }

    /// A ticket that already holds its outcome (cache hits, provably-empty
    /// answers — nothing was queued).
    pub(crate) fn immediate(id: u64, outcome: QueryOutcome) -> Self {
        let (tx, rx) = bounded(1);
        tx.send(Ok(outcome))
            .expect("capacity-1 channel accepts one message");
        Self {
            id,
            rx,
            delivered: false,
        }
    }

    /// Monotonically increasing submission id (per system).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the outcome is available and returns it.
    pub fn wait(self) -> Result<QueryOutcome, EngineError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(EngineError::Shutdown),
        }
    }

    /// Returns the outcome if it is already available, `Ok(None)` when the
    /// query is still in flight. The outcome is consumed by the first call
    /// that returns it; later calls see `Ok(None)`.
    pub fn try_wait(&mut self) -> Result<Option<QueryOutcome>, EngineError> {
        match self.rx.try_recv() {
            Ok(result) => {
                self.delivered = true;
                result.map(Some)
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) if self.delivered => Ok(None),
            Err(TryRecvError::Disconnected) => Err(EngineError::Shutdown),
        }
    }
}

/// One admitted query travelling from `submit` to the dispatcher.
pub(crate) struct AdmitJob {
    pub(crate) prepared: Box<Prepared>,
    /// Epoch-relative submission time — latencies and absolute deadlines
    /// are measured from here, not from dispatch.
    pub(crate) admitted_at: f64,
    pub(crate) respond: Sender<Result<QueryOutcome, EngineError>>,
    /// The query's trace, travelling with the job and accumulating span
    /// events at each stage. `None` when observability is disabled.
    pub(crate) trace: Option<Box<QueryTrace>>,
}

/// A scheduled query travelling from the dispatcher to a partition runner.
pub(crate) struct RunJob {
    pub(crate) job: AdmitJob,
    pub(crate) decision: Decision,
}

/// Estimated seconds of work charged to each queue but not yet completed —
/// the engine-side measurement behind the scheduler's [`LiveLoad`] floor.
#[derive(Debug)]
pub(crate) struct Inflight {
    cpu: f64,
    trans: f64,
    gpu: Vec<f64>,
}

impl Inflight {
    pub(crate) fn new(gpu_partitions: usize) -> Self {
        Self {
            cpu: 0.0,
            trans: 0.0,
            gpu: vec![0.0; gpu_partitions],
        }
    }

    pub(crate) fn charge(&mut self, d: &Decision) {
        match d.placement {
            Placement::Cpu => self.cpu += d.t_proc,
            Placement::Gpu { partition } => {
                self.gpu[partition] += d.t_proc;
                self.trans += d.t_trans;
            }
        }
    }

    pub(crate) fn discharge(&mut self, d: &Decision) {
        match d.placement {
            Placement::Cpu => self.cpu = (self.cpu - d.t_proc).max(0.0),
            Placement::Gpu { partition } => {
                self.gpu[partition] = (self.gpu[partition] - d.t_proc).max(0.0);
                self.trans = (self.trans - d.t_trans).max(0.0);
            }
        }
    }

    pub(crate) fn live_load(&self) -> LiveLoad {
        LiveLoad {
            cpu_inflight_secs: self.cpu,
            trans_inflight_secs: self.trans,
            gpu_inflight_secs: self.gpu.clone(),
        }
    }
}

/// Spawns the dispatcher and one runner per partition. Returns the
/// admission-queue sender (dropping it shuts the pipeline down after the
/// queues drain) and the thread handles to join.
pub(crate) fn spawn_pipeline(core: &Arc<EngineCore>) -> (Sender<AdmitJob>, Vec<JoinHandle<()>>) {
    let admission_cap = core.config.admission.queue_capacity.max(1);
    let run_cap = core.config.admission.partition_queue_capacity.max(1);
    let gpu_partitions = core.config.layout.gpu_partitions();

    let (admit_tx, admit_rx) = bounded::<AdmitJob>(admission_cap);
    let (cpu_tx, cpu_rx) = bounded::<RunJob>(run_cap);
    let mut handles = Vec::with_capacity(gpu_partitions + 2);
    let mut gpu_txs = Vec::with_capacity(gpu_partitions);
    for partition in 0..gpu_partitions {
        let (tx, rx) = bounded::<RunJob>(run_cap);
        gpu_txs.push(tx);
        let core = Arc::clone(core);
        handles.push(
            std::thread::Builder::new()
                .name(format!("gpu-runner-{partition}"))
                .spawn(move || gpu_runner(core, partition, rx))
                .expect("failed to spawn GPU runner"),
        );
    }
    {
        let core = Arc::clone(core);
        handles.push(
            std::thread::Builder::new()
                .name("cpu-runner".into())
                .spawn(move || cpu_runner(core, cpu_rx))
                .expect("failed to spawn CPU runner"),
        );
    }
    {
        let core = Arc::clone(core);
        handles.push(
            std::thread::Builder::new()
                .name("dispatcher".into())
                .spawn(move || dispatcher(core, admit_rx, cpu_tx, gpu_txs))
                .expect("failed to spawn dispatcher"),
        );
    }
    (admit_tx, handles)
}

/// Drains the admission queue: shed check → schedule (with the live-load
/// floor) → charge in-flight accounting → forward to the partition runner.
fn dispatcher(
    core: Arc<EngineCore>,
    admit_rx: Receiver<AdmitJob>,
    cpu_tx: Sender<RunJob>,
    gpu_txs: Vec<Sender<RunJob>>,
) {
    for mut job in admit_rx {
        let depth = core.admission_depth.fetch_sub(1, Ordering::Relaxed) - 1;
        let now = core.epoch.elapsed().as_secs_f64();
        if let Some(obs) = &core.obs {
            obs.set_admission_depth(depth);
        }
        if let Some(t) = job.trace.as_deref_mut() {
            t.push(
                now,
                SpanKind::Dispatched {
                    queue_depth: depth as u64,
                },
            );
        }
        let abs_deadline = job.admitted_at + job.prepared.deadline_window;
        let load = core.inflight.lock().live_load();

        // Deadline-aware load shedding: if even the *fastest* partition
        // cannot answer before the deadline, running the query anywhere
        // only burns partition time that feasible queries need.
        let shedding = core.config.admission.shedding;
        if shedding != SheddingPolicy::Off {
            let min_rt =
                core.scheduler
                    .lock()
                    .min_response_time(now, &job.prepared.est, Some(&load));
            if min_rt > abs_deadline {
                let shed_at = core.epoch.elapsed().as_secs_f64();
                if let Some(t) = job.trace.as_deref_mut() {
                    t.push(
                        shed_at,
                        SpanKind::Shed {
                            min_response_at: min_rt,
                            deadline: abs_deadline,
                        },
                    );
                }
                match shedding {
                    SheddingPolicy::Shed => {
                        core.stats.lock().record_shed();
                        if let Some(obs) = &core.obs {
                            obs.on_shed();
                        }
                        seal_trace(&core, job.trace.take(), shed_at, TraceStatus::Shed);
                        let latency = shed_at - job.admitted_at;
                        let _ = job.respond.send(Ok(QueryOutcome::shed_marker(latency)));
                    }
                    SheddingPolicy::Reject => {
                        core.stats.lock().record_rejected();
                        if let Some(obs) = &core.obs {
                            obs.on_rejected();
                        }
                        seal_trace(&core, job.trace.take(), shed_at, TraceStatus::Rejected);
                        let _ = job.respond.send(Err(EngineError::Overloaded(
                            "predicted completion time exceeds the deadline".into(),
                        )));
                    }
                    SheddingPolicy::Off => unreachable!("checked above"),
                }
                continue;
            }
        }

        // A query that waited in the admission queue past its whole
        // deadline still gets a positive window: the scheduler's step 6
        // then places it for earliest response.
        let t_c = (abs_deadline - now).max(1e-9);
        let decision = if let Some(t) = job.trace.as_deref_mut() {
            // The traced entry point also returns the candidate set the
            // Fig. 10 choice was made from.
            let (decision, candidates) = core.scheduler.lock().schedule_with_load_traced(
                now,
                &job.prepared.est,
                t_c,
                Some(&load),
            );
            t.push(
                now,
                SpanKind::Scheduled {
                    placement: decision.placement,
                    with_translation: decision.with_translation,
                    estimated_proc_secs: decision.t_proc,
                    estimated_response_at: decision.response_time,
                    deadline: decision.deadline,
                    before_deadline: decision.before_deadline,
                    rerouted: decision.rerouted,
                    candidates,
                },
            );
            decision
        } else {
            core.scheduler
                .lock()
                .schedule_with_load(now, &job.prepared.est, t_c, Some(&load))
        };
        if decision.rerouted {
            // The scheduler steered this query off a quarantined partition.
            core.stats.lock().rerouted += 1;
            if let Some(obs) = &core.obs {
                obs.on_rerouted();
            }
        }
        core.inflight.lock().charge(&decision);

        let target = match decision.placement {
            Placement::Cpu => &cpu_tx,
            Placement::Gpu { partition } => &gpu_txs[partition],
        };
        if let Err(err) = target.send(RunJob { job, decision }) {
            // Runner gone (shutdown race): undo the charge, fail the ticket.
            let run = err.into_inner();
            core.inflight.lock().discharge(&run.decision);
            let _ = run.job.respond.send(Err(EngineError::Shutdown));
        }
    }
}

/// Seals and records a trace that resolves before reaching a partition
/// runner (shed or rejected at dispatch).
fn seal_trace(
    core: &Arc<EngineCore>,
    trace: Option<Box<QueryTrace>>,
    at: f64,
    status: TraceStatus,
) {
    if let (Some(obs), Some(mut t)) = (&core.obs, trace) {
        t.finish(at, status);
        obs.record_trace(*t);
    }
}

/// Best-effort text from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "runner panicked".to_string()
    }
}

/// The CPU processing partition: one thread = one queue (`Q_CPU`), fanning
/// each query out over the partition's rayon pool. A panicking query
/// resolves its own ticket with a typed error; the runner survives to
/// serve the next one.
fn cpu_runner(core: Arc<EngineCore>, rx: Receiver<RunJob>) {
    for mut run in rx {
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| core.run_cpu(&run.job.prepared)))
            .unwrap_or_else(|payload| {
                Err(EngineError::ExecutionFailed {
                    attempts: 1,
                    message: panic_message(payload.as_ref()),
                })
            });
        let secs = started.elapsed().as_secs_f64();
        if let Some(t) = run.job.trace.as_deref_mut() {
            t.push(
                core.epoch.elapsed().as_secs_f64(),
                SpanKind::CpuExec { secs },
            );
        }
        core.finish(run, Placement::Cpu, false, result, secs);
    }
}

/// One GPU partition queue: routes text lookups through the translation
/// partition, then executes the kernel on the simulated device, retrying
/// transient failures and failing over to the CPU when the partition is
/// quarantined or times out. Every path resolves the ticket — the runner
/// thread itself never dies.
fn gpu_runner(core: Arc<EngineCore>, partition: usize, rx: Receiver<RunJob>) {
    for run in rx {
        execute_gpu_job(&core, partition, run);
    }
}

/// Re-runs the query's scan on the CPU partition's pool and resolves the
/// ticket — the degradation path for GPU work that cannot (or should not)
/// run on its partition.
fn fail_over_to_cpu(core: &Arc<EngineCore>, mut run: RunJob, partition: usize, started: Instant) {
    core.stats.lock().rerouted += 1;
    if let Some(obs) = &core.obs {
        obs.on_rerouted();
    }
    if let Some(t) = run.job.trace.as_deref_mut() {
        t.push(
            core.epoch.elapsed().as_secs_f64(),
            SpanKind::Failover {
                from_partition: partition,
            },
        );
    }
    let cpu_started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| core.run_cpu_scan(&run.job.prepared)))
        .unwrap_or_else(|payload| {
            Err(EngineError::ExecutionFailed {
                attempts: 1,
                message: panic_message(payload.as_ref()),
            })
        });
    if let Some(t) = run.job.trace.as_deref_mut() {
        t.push(
            core.epoch.elapsed().as_secs_f64(),
            SpanKind::CpuExec {
                secs: cpu_started.elapsed().as_secs_f64(),
            },
        );
    }
    core.finish(
        run,
        Placement::Cpu,
        false,
        result,
        started.elapsed().as_secs_f64(),
    );
}

/// One query on one GPU partition, end to end:
///
/// 1. already quarantined → CPU failover without touching the kernel;
/// 2. success → feed the scheduler's health tracker and finish;
/// 3. transient failure → record it, then fail over (timeout, or the
///    failure just quarantined the partition), retry with capped
///    exponential backoff, or — budget spent — resolve the ticket with
///    [`EngineError::ExecutionFailed`];
/// 4. fatal failure → resolve the ticket immediately.
fn execute_gpu_job(core: &Arc<EngineCore>, partition: usize, mut run: RunJob) {
    let started = Instant::now();
    let ft = core.config.faults;
    if ft.cpu_failover && core.scheduler.lock().is_quarantined(partition) {
        return fail_over_to_cpu(core, run, partition, started);
    }
    // The trace travels out of the job for the attempt loop (the unwind
    // boundary borrows it mutably alongside the prepared query) and is
    // reattached before any path hands the job onward.
    let mut trace = run.job.trace.take();
    let mut attempts: u32 = 0;
    loop {
        attempts += 1;
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            core.run_gpu(
                partition,
                &run.job.prepared,
                run.decision.with_translation,
                &mut trace,
                attempts - 1,
            )
        }))
        .unwrap_or_else(|payload| {
            Err(EngineError::ExecutionFailed {
                attempts: 1,
                message: panic_message(payload.as_ref()),
            })
        });
        match attempt {
            Ok(ok) => {
                core.scheduler.lock().record_partition_success(partition);
                run.job.trace = trace;
                return core.finish(
                    run,
                    Placement::Gpu { partition },
                    run.decision.with_translation,
                    Ok(ok),
                    started.elapsed().as_secs_f64(),
                );
            }
            Err(e) if e.is_transient() => {
                let now = core.epoch.elapsed().as_secs_f64();
                let state = core
                    .scheduler
                    .lock()
                    .record_partition_failure(partition, now);
                core.mirror_health_counters();
                let timed_out = matches!(e, EngineError::Timeout { .. });
                {
                    let mut stats = core.stats.lock();
                    stats.partition_failures += 1;
                    if timed_out {
                        stats.timeouts += 1;
                    }
                }
                if let Some(obs) = &core.obs {
                    obs.on_fault(partition);
                    if timed_out {
                        obs.on_timeout();
                    }
                }
                if let Some(t) = trace.as_deref_mut() {
                    t.push(
                        now,
                        SpanKind::Fault {
                            partition,
                            attempt: attempts - 1,
                            error: e.to_string(),
                            timed_out,
                        },
                    );
                    t.push(now, SpanKind::HealthTransition { partition, state });
                }
                // A timed-out kernel may still be occupying the partition
                // worker; retrying there would queue behind the hang. A
                // just-quarantined partition should not absorb retries
                // either. Both degrade to the CPU when failover is on.
                if ft.cpu_failover && (timed_out || state == HealthState::Quarantined) {
                    run.job.trace = trace;
                    return fail_over_to_cpu(core, run, partition, started);
                }
                if attempts > ft.retry.max_retries {
                    let message = match &e {
                        EngineError::ExecutionFailed { message, .. } => message.clone(),
                        other => other.to_string(),
                    };
                    run.job.trace = trace;
                    return core.finish(
                        run,
                        Placement::Gpu { partition },
                        run.decision.with_translation,
                        Err(EngineError::ExecutionFailed { attempts, message }),
                        started.elapsed().as_secs_f64(),
                    );
                }
                core.stats.lock().retries += 1;
                if let Some(obs) = &core.obs {
                    obs.on_retry();
                }
                let backoff = ft.retry.backoff_secs(attempts);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(
                        core.epoch.elapsed().as_secs_f64(),
                        SpanKind::Retry {
                            retry: attempts,
                            backoff_secs: backoff,
                        },
                    );
                }
                if backoff > 0.0 {
                    std::thread::sleep(Duration::from_secs_f64(backoff));
                }
            }
            Err(e) => {
                run.job.trace = trace;
                return core.finish(
                    run,
                    Placement::Gpu { partition },
                    run.decision.with_translation,
                    Err(e),
                    started.elapsed().as_secs_f64(),
                );
            }
        }
    }
}
