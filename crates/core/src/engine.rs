//! The running hybrid system: partitions, queues, wall-clock scheduling.

use crate::admission::{self, AdmitJob, Inflight, QueryTicket, RunJob};
use crate::config::{BackpressurePolicy, SystemConfig};
use crate::error::EngineError;
use crate::obs::{EngineObs, PlacementLabel};
use crate::query::{
    text_column_name, Answer, ConditionRange, EngineQuery, IntoEngineQuery, ResolvedQuery,
};
use crate::stats::{CompletionKind, EngineStats};
use crossbeam::channel::{bounded, unbounded, RecvTimeoutError, Sender, TrySendError};
use holap_cube::{CubePlan, CubeSchema, CubeSet, MolapCube};
use holap_dict::{DictionarySet, TextCondition};
use holap_gpusim::{DeviceConfig, FaultPlan, GpuDevice, GpuExecutor, KernelError, TableId};
use holap_obs::{MetricsSnapshot, QueryClass, QueryTrace, SpanKind, TraceStatus};
use holap_sched::{Estimator, Placement, QueryFeatures, Scheduler, TaskEstimate};
use holap_table::{ColumnId, FactTable, ScanQuery, TableSchema};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What one executed query reports back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The aggregate answer (the grand total when grouped).
    pub answer: Answer,
    /// Per-group answers when the query had a `GROUP BY`: `(coordinate at
    /// the grouping level, answer)`, keys ascending, empty groups omitted.
    pub groups: Option<Vec<(u32, Answer)>>,
    /// Where the query ran.
    pub placement: Placement,
    /// Whether it passed through the translation partition.
    pub translated: bool,
    /// Wall-clock latency from submission to answer, seconds.
    pub latency_secs: f64,
    /// Whether the latency met the query's deadline window.
    pub met_deadline: bool,
    /// The scheduler's estimated processing time for the chosen partition.
    pub estimated_secs: f64,
    /// Whether the answer came from the result cache (no partition ran).
    #[serde(default)]
    pub from_cache: bool,
    /// Whether the query was shed by admission control
    /// ([`SheddingPolicy::Shed`](crate::config::SheddingPolicy)): the
    /// answer is empty and no partition time was spent.
    #[serde(default)]
    pub shed: bool,
}

impl QueryOutcome {
    /// The outcome of a shed query: empty answer, deadline missed.
    pub(crate) fn shed_marker(latency_secs: f64) -> Self {
        Self {
            answer: Answer { sum: 0.0, count: 0 },
            groups: None,
            placement: Placement::Cpu, // nominal; nothing actually ran
            translated: false,
            latency_secs,
            met_deadline: false,
            estimated_secs: 0.0,
            from_cache: false,
            shed: true,
        }
    }
}

/// A translation request routed through the preprocessing partition.
pub(crate) struct TransJob {
    lookups: Vec<(String, TextCondition)>,
    respond: Sender<Result<Vec<holap_dict::CodeSelection>, EngineError>>,
}

/// A query after the submit-side preparation: resolved, validated, planned
/// and estimated — everything the dispatcher and partition runners need.
pub(crate) struct Prepared {
    pub(crate) cache_key: crate::cache::CacheKey,
    pub(crate) group_by: Option<(usize, usize)>,
    pub(crate) plan: Option<CubePlan>,
    pub(crate) scan: ScanQuery,
    pub(crate) group_column: Option<ColumnId>,
    pub(crate) est: TaskEstimate,
    /// Relative deadline window `T_C`, seconds.
    pub(crate) deadline_window: f64,
    /// Text lookups for the translation partition (GPU placements only).
    pub(crate) lookups: Vec<(String, TextCondition)>,
}

/// What submit-side preparation concluded.
pub(crate) enum Admitted {
    /// Answered without queueing (provably empty, or a cache hit).
    Immediate(QueryOutcome),
    /// Must run — enqueue for the dispatcher.
    Run(Box<Prepared>),
}

/// Builder for [`HybridSystem`].
pub struct HybridSystemBuilder {
    config: SystemConfig,
    facts: Option<(FactTable, DictionarySet)>,
    cube_resolutions: Vec<usize>,
    prebuilt_cubes: Vec<MolapCube>,
    cube_measure: usize,
    device_config: DeviceConfig,
    gpu_cube_build: bool,
    fault_plan: Option<Arc<FaultPlan>>,
    /// Problems detected eagerly at call time; [`Self::build`] reports them
    /// all at once together with whole-configuration checks.
    diagnostics: Vec<String>,
}

impl HybridSystemBuilder {
    /// Adds the fact table and its dictionaries (anything convertible,
    /// e.g. `holap_workload::SyntheticFacts`).
    pub fn facts(mut self, facts: impl Into<(FactTable, DictionarySet)>) -> Self {
        self.facts = Some(facts.into());
        self
    }

    /// Pre-calculates a cube at `resolution` (repeatable).
    pub fn cube_at(mut self, resolution: usize) -> Self {
        self.cube_resolutions.push(resolution);
        self
    }

    /// Installs an already-materialised cube (e.g. loaded from disk via
    /// `holap-store`), skipping the aggregation pass at startup.
    /// The cube's schema must match the fact table's.
    pub fn prebuilt_cube(mut self, cube: MolapCube) -> Self {
        self.prebuilt_cubes.push(cube);
        self
    }

    /// Which measure the pre-calculated cubes aggregate (default 0).
    /// Queries over other measures bypass the cubes and go to the GPU.
    pub fn cube_measure(mut self, measure: usize) -> Self {
        self.cube_measure = measure;
        self
    }

    /// Overrides the simulated device configuration (default: Tesla C2070).
    pub fn device(mut self, device_config: DeviceConfig) -> Self {
        if device_config.total_sms == 0 {
            self.diagnostics.push("device has zero SMs".into());
        }
        if device_config.memory_bytes == 0 {
            self.diagnostics.push("device has zero memory".into());
        }
        self.device_config = device_config;
        self
    }

    /// Installs a deterministic fault-injection plan on the simulated GPU
    /// partitions (testing/benchmarking: exercise the retry, quarantine
    /// and failover machinery without real hardware faults).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Builds the pre-calculated cubes with the simulated GPU's cube-build
    /// kernel instead of the CPU — the paper's task "(1) building the cube
    /// from relational tables stored in GPU memory" (§III-A). Results are
    /// identical; only the build path (and its modeled cost) differs.
    pub fn build_cubes_on_gpu(mut self) -> Self {
        self.gpu_cube_build = true;
        self
    }

    /// Validates the whole configuration, collecting *every* problem —
    /// per-call diagnostics plus cross-field checks — so one `build()`
    /// round-trip surfaces all of them at once.
    fn validate(&self) -> Vec<String> {
        let mut problems = self.diagnostics.clone();
        match &self.facts {
            None => problems.push("no fact table supplied".into()),
            Some((table, _)) => {
                let table_schema = table.schema();
                let cube_schema = CubeSchema::from_table_schema(table_schema);
                if self.cube_measure >= table_schema.measures.len() {
                    problems.push(format!(
                        "cube measure {} out of range ({} measures)",
                        self.cube_measure,
                        table_schema.measures.len()
                    ));
                }
                for &r in &self.cube_resolutions {
                    if r > cube_schema.max_resolution() {
                        problems.push(format!(
                            "cube resolution {r} exceeds the schema's max {}",
                            cube_schema.max_resolution()
                        ));
                    }
                }
                for cube in &self.prebuilt_cubes {
                    if cube.schema() != &cube_schema {
                        problems.push("prebuilt cube schema does not match the fact table".into());
                    }
                }
            }
        }
        problems
    }

    /// Builds the running system: uploads the table to the (simulated)
    /// device, pre-calculates the requested cubes, spawns the partition
    /// workers and the admission pipeline.
    ///
    /// # Errors
    ///
    /// Returns a single [`EngineError::Build`] listing **all** detected
    /// configuration problems, not just the first.
    pub fn build(self) -> Result<HybridSystem, EngineError> {
        let problems = self.validate();
        if !problems.is_empty() {
            return Err(EngineError::Build(problems.join("; ")));
        }
        let (table, dicts) = self.facts.expect("validated above");
        let table_schema = table.schema().clone();
        let cube_schema = CubeSchema::from_table_schema(&table_schema);

        // GPU side first: the cube-build kernel needs the table resident.
        let mut device = GpuDevice::new(self.device_config);
        let table_id = device.load_table("facts", table)?;

        // Pre-calculated cubes: one pass for the finest resolution, then
        // smallest-parent roll-ups for the coarser ones (§II-B) — unless
        // the hierarchy is non-uniform, where roll-up would be inexact and
        // each cube is built directly. With `build_cubes_on_gpu`, the
        // finest (or each direct) build runs as a GPU kernel over the
        // resident table instead of on the CPU.
        let mut cube_set = CubeSet::new(cube_schema.clone());
        for cube in self.prebuilt_cubes {
            cube_set.insert(cube);
        }
        if !self.cube_resolutions.is_empty() {
            let table_ref = device.table(table_id)?;
            let build_one = |r: usize| -> Result<MolapCube, EngineError> {
                if self.gpu_cube_build {
                    let out = device.execute_cube_build(
                        table_id,
                        self.config.profile.gpu.measured_sizes().max().unwrap_or(1),
                        r,
                        self.cube_measure,
                        &self.config.profile.gpu,
                    )?;
                    Ok(out.result)
                } else {
                    let mut cube = MolapCube::build_from_table(
                        cube_schema.clone(),
                        r,
                        table_ref,
                        self.cube_measure,
                    );
                    cube.compress();
                    Ok(cube)
                }
            };
            if cube_schema.uniform_hierarchy() {
                let mut sorted = self.cube_resolutions.clone();
                sorted.sort_unstable();
                sorted.dedup();
                let finest = *sorted.last().expect("non-empty");
                let mut cube = build_one(finest)?;
                for &r in sorted.iter().rev().skip(1) {
                    let mut coarser = cube.rollup_to(r);
                    coarser.compress();
                    cube_set.insert(std::mem::replace(&mut cube, coarser));
                }
                cube_set.insert(cube);
            } else {
                for &r in &self.cube_resolutions {
                    cube_set.insert(build_one(r)?);
                }
            }
        }
        let device = Arc::new(device);
        let executor = GpuExecutor::spawn_with_faults(
            Arc::clone(&device),
            &self.config.layout.gpu_partition_sms,
            self.config.profile.gpu.clone(),
            self.fault_plan,
        )?;

        // CPU processing partition pool.
        let cpu_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.config.layout.cpu_threads as usize)
            .thread_name(|t| format!("cpu-partition-{t}"))
            .build()
            .expect("failed to build CPU partition pool");

        // Translation partition workers.
        let dicts = Arc::new(dicts);
        let (trans_tx, trans_rx) = unbounded::<TransJob>();
        let mut trans_handles = Vec::new();
        for w in 0..self.config.layout.translation_threads {
            let rx = trans_rx.clone();
            let dicts = Arc::clone(&dicts);
            let handle = std::thread::Builder::new()
                .name(format!("translation-{w}"))
                .spawn(move || {
                    for job in rx {
                        let result = job
                            .lookups
                            .iter()
                            .map(|(col, cond)| {
                                dicts
                                    .translate_selection(col, cond)
                                    .map_err(EngineError::from)
                            })
                            .collect();
                        let _ = job.respond.send(result);
                    }
                })
                .expect("failed to spawn translation worker");
            trans_handles.push(handle);
        }

        let estimator = Estimator::new(self.config.profile.clone(), self.config.layout.clone());
        let mut scheduler = Scheduler::new(self.config.layout.clone(), self.config.policy);
        scheduler.set_health_config(self.config.faults.quarantine);
        let cache_capacity = self.config.cache_capacity;
        let gpu_partitions = self.config.layout.gpu_partitions();
        let obs = EngineObs::build(&self.config.obs);
        let core = Arc::new(EngineCore {
            config: self.config,
            table_schema,
            cube_schema,
            cube_set: Arc::new(cube_set),
            cube_measure: self.cube_measure,
            dicts,
            device,
            table_id,
            executor,
            cpu_pool,
            trans_tx: Some(trans_tx),
            trans_handles: Mutex::new(trans_handles),
            scheduler: Mutex::new(scheduler),
            estimator,
            epoch: Instant::now(),
            stats: Mutex::new(EngineStats::default()),
            cache: crate::cache::QueryCache::new(cache_capacity),
            inflight: Mutex::new(Inflight::new(gpu_partitions)),
            admission_depth: AtomicUsize::new(0),
            admission_peak: AtomicUsize::new(0),
            obs,
        });
        let (admission_tx, mut pipeline) = admission::spawn_pipeline(&core);

        // Background probe: periodically offers quarantined partitions a
        // half-open re-admission once their cool-down has elapsed.
        let (probe_stop, probe_stop_rx) = bounded::<()>(0);
        {
            let core = Arc::clone(&core);
            let tick = Duration::from_secs_f64(
                (core.config.faults.quarantine.cooldown_secs / 4.0).clamp(0.01, 0.25),
            );
            pipeline.push(
                std::thread::Builder::new()
                    .name("quarantine-probe".into())
                    .spawn(move || loop {
                        match probe_stop_rx.recv_timeout(tick) {
                            Err(RecvTimeoutError::Timeout) => {
                                let now = core.epoch.elapsed().as_secs_f64();
                                let _ = core.scheduler.lock().probe(now);
                                // Copy the scheduler's health counters into
                                // the engine stats so `stats()` never has to
                                // take two locks for one snapshot.
                                core.mirror_health_counters();
                            }
                            _ => break, // stop signal or handle dropped
                        }
                    })
                    .expect("failed to spawn quarantine probe"),
            );
        }
        Ok(HybridSystem {
            core,
            admission_tx: Some(admission_tx),
            probe_stop: Some(probe_stop),
            pipeline,
            next_ticket: AtomicU64::new(0),
        })
    }
}

/// Everything the partitions share: the data, the device, the scheduler,
/// the accounting. Owned by an `Arc` held by the public [`HybridSystem`]
/// handle and by every pipeline thread.
pub(crate) struct EngineCore {
    pub(crate) config: SystemConfig,
    pub(crate) table_schema: TableSchema,
    pub(crate) cube_schema: CubeSchema,
    pub(crate) cube_set: Arc<CubeSet>,
    pub(crate) cube_measure: usize,
    pub(crate) dicts: Arc<DictionarySet>,
    pub(crate) device: Arc<GpuDevice>,
    pub(crate) table_id: TableId,
    pub(crate) executor: GpuExecutor,
    pub(crate) cpu_pool: rayon::ThreadPool,
    pub(crate) trans_tx: Option<Sender<TransJob>>,
    pub(crate) trans_handles: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) scheduler: Mutex<Scheduler>,
    pub(crate) estimator: Estimator,
    pub(crate) epoch: Instant,
    pub(crate) stats: Mutex<EngineStats>,
    pub(crate) cache: crate::cache::QueryCache,
    /// Estimated seconds charged to each queue but not yet completed —
    /// feeds the scheduler's live-load floor.
    pub(crate) inflight: Mutex<Inflight>,
    /// Tickets currently in the admission queue.
    pub(crate) admission_depth: AtomicUsize,
    /// High-water mark of `admission_depth`.
    pub(crate) admission_peak: AtomicUsize,
    /// Metrics registry + flight recorder; `None` when
    /// [`ObsConfig::enabled`](holap_obs::ObsConfig) is false, making the
    /// disabled path a single branch per call site.
    pub(crate) obs: Option<Arc<EngineObs>>,
}

impl EngineCore {
    /// Submit-side preparation: resolve → validate grouping → provably
    /// empty / cache short-circuits → plan, estimate, and package for the
    /// dispatcher.
    pub(crate) fn prepare(
        &self,
        q: &EngineQuery,
        admitted_at: f64,
    ) -> Result<Admitted, EngineError> {
        let resolved =
            ResolvedQuery::resolve(q, &self.table_schema, &self.cube_schema, &self.dicts)?;
        let mut cube_query = resolved.cube_query();
        let deadline_window = q.deadline_secs.unwrap_or(self.config.default_deadline_secs);

        // Grouping: validate and fold the grouping level into the planning
        // query — grouping by level g needs a cube of resolution ≥ g, so
        // the group dimension's condition is widened to at least level g.
        if let Some((gdim, glevel)) = q.group_by {
            if gdim >= self.cube_schema.ndim() {
                return Err(EngineError::Query(format!(
                    "group dimension {gdim} out of range"
                )));
            }
            let levels = self.cube_schema.dimensions[gdim].levels.len();
            if glevel >= levels {
                return Err(EngineError::Query(format!(
                    "group level {glevel} out of range for dimension {gdim} ({levels} levels)"
                )));
            }
            let cond = cube_query.conditions[gdim];
            if cond.level < glevel {
                let (f, t) =
                    self.cube_schema
                        .widen_range(gdim, cond.level, glevel, (cond.from, cond.to));
                cube_query.conditions[gdim] = holap_cube::DimRange::new(glevel, f, t);
            }
        }
        // A contradictory conjunction (e.g. `year = 1 and month = 30`
        // where month 30 is in year 2) selects nothing; answer without
        // running anything.
        if resolved.provably_empty {
            return Ok(Admitted::Immediate(QueryOutcome {
                answer: Answer { sum: 0.0, count: 0 },
                groups: q.group_by.map(|_| Vec::new()),
                placement: Placement::Cpu,
                translated: false,
                latency_secs: 0.0,
                met_deadline: true,
                estimated_secs: 0.0,
                from_cache: false,
                shed: false,
            }));
        }

        // The query is real work from here on: count it as submitted
        // *before* any completion can be recorded, so a stats snapshot can
        // never show `completed > submitted`. (Provably-empty answers
        // short-circuit above without entering the statistics, as before.)
        self.stats.lock().submitted += 1;
        if let Some(obs) = &self.obs {
            obs.on_submitted();
        }

        // Result cache: answered queries bypass scheduling entirely.
        let cache_key = crate::cache::CacheKey::new(&resolved, q.group_by);
        if let Some(hit) = self.cache.get(&cache_key) {
            let latency_secs = self.epoch.elapsed().as_secs_f64() - admitted_at;
            let met_deadline = latency_secs <= deadline_window;
            self.stats
                .lock()
                .record(CompletionKind::Cached, latency_secs, met_deadline);
            if let Some(obs) = &self.obs {
                obs.on_completed(
                    PlacementLabel::Cache,
                    latency_secs,
                    met_deadline,
                    false,
                    None,
                );
            }
            return Ok(Admitted::Immediate(QueryOutcome {
                answer: hit.answer,
                groups: hit.groups,
                placement: Placement::Cpu, // nominal; nothing actually ran
                translated: false,
                latency_secs,
                met_deadline,
                estimated_secs: 0.0,
                from_cache: true,
                shed: false,
            }));
        }

        let plan = self.cube_set.plan(&cube_query)?;
        let scan = resolved.scan_query(&self.cube_schema);

        // Eq. 12 (extended with the group-key column when grouping).
        let group_column = q
            .group_by
            .map(|(gdim, glevel)| ColumnId::dim(gdim, self.cube_schema.level_for(gdim, glevel)));
        let columns_fraction = match group_column {
            Some(col) => {
                holap_table::GroupByQuery::new(scan.clone(), vec![col]).columns_accessed() as f64
                    / self.table_schema.total_columns() as f64
            }
            None => scan.column_fraction(self.table_schema.total_columns()),
        };

        // Step 2 (Fig. 10): estimate all processing times.
        let features = QueryFeatures {
            cpu_subcube_mb: if q.measure == self.cube_measure && resolved.cube_answerable() {
                plan.as_ref().map(|p| p.estimated_mb)
            } else {
                // Cubes hold a different measure, or the query carries
                // substring (code-set) conditions: the GPU must answer.
                None
            },
            gpu_column_fraction: columns_fraction.min(1.0),
            translation_dict_lens: q.translation_dict_lens(&self.table_schema, &self.dicts),
        };
        let est = self.estimator.estimate(&features);

        // Text lookups for the translation partition, ready for a GPU
        // placement.
        let lookups: Vec<(String, TextCondition)> = q
            .conditions
            .iter()
            .filter_map(|c| match &c.range {
                ConditionRange::Text(t) => Some((
                    text_column_name(&self.table_schema, c.dim, c.level),
                    t.clone(),
                )),
                _ => None,
            })
            .collect();

        Ok(Admitted::Run(Box::new(Prepared {
            cache_key,
            group_by: q.group_by,
            plan,
            scan,
            group_column,
            est,
            deadline_window,
            lookups,
        })))
    }

    /// Executes a query on the CPU processing partition. When no cube can
    /// answer (the scheduler only routes such queries here as a fallback
    /// off quarantined GPU partitions) the CPU scans the fact table
    /// directly instead.
    pub(crate) fn run_cpu(
        &self,
        p: &Prepared,
    ) -> Result<(Answer, Option<Vec<(u32, Answer)>>), EngineError> {
        let Some(plan) = p.plan.as_ref() else {
            return self.run_cpu_scan(p);
        };
        match p.group_by {
            None => {
                let agg = self
                    .cpu_pool
                    .install(|| self.cube_set.execute_par(plan))
                    .expect("planned cube is resident");
                Ok((
                    Answer {
                        sum: agg.sum,
                        count: agg.count,
                    },
                    None,
                ))
            }
            Some((gdim, glevel)) => {
                let raw = self
                    .cpu_pool
                    .install(|| self.cube_set.execute_grouped_par(plan, gdim, glevel))
                    .expect("planned cube is resident");
                let groups: Vec<(u32, Answer)> = raw
                    .into_iter()
                    .map(|(k, a)| {
                        (
                            k,
                            Answer {
                                sum: a.sum,
                                count: a.count,
                            },
                        )
                    })
                    .collect();
                let total = Answer {
                    sum: groups.iter().map(|(_, a)| a.sum).sum(),
                    count: groups.iter().map(|(_, a)| a.count).sum(),
                };
                Ok((total, Some(groups)))
            }
        }
    }

    /// Executes a query's scan directly on the CPU partition's pool — the
    /// failover path for GPU-placed work whose partition is quarantined or
    /// timed out. The same scan code answers, so results are unchanged;
    /// only the modeled placement differs.
    pub(crate) fn run_cpu_scan(
        &self,
        p: &Prepared,
    ) -> Result<(Answer, Option<Vec<(u32, Answer)>>), EngineError> {
        let table = self.device.table(self.table_id)?;
        match p.group_column {
            None => {
                let agg = self.cpu_pool.install(|| table.scan_par(&p.scan))?;
                Ok((
                    Answer {
                        sum: agg.values[0].value().unwrap_or(0.0),
                        count: agg.matched_rows,
                    },
                    None,
                ))
            }
            Some(col) => {
                let gq = holap_table::GroupByQuery::new(p.scan.clone(), vec![col]);
                let out = self.cpu_pool.install(|| table.group_by_par(&gq))?;
                let groups: Vec<(u32, Answer)> = out
                    .groups
                    .iter()
                    .map(|g| {
                        (
                            g.key[0],
                            Answer {
                                sum: g.values[0].value().unwrap_or(0.0),
                                count: g.rows,
                            },
                        )
                    })
                    .collect();
                let total = Answer {
                    sum: groups.iter().map(|(_, a)| a.sum).sum(),
                    count: out.matched_rows,
                };
                Ok((total, Some(groups)))
            }
        }
    }

    /// Executes a query on GPU partition `partition`, routing text lookups
    /// through the translation partition first when the decision requires.
    ///
    /// Every channel interaction is recoverable: a dead translation worker
    /// or partition worker yields a typed error, and a kernel that fails to
    /// answer within the watchdog window yields [`EngineError::Timeout`] —
    /// the caller's ticket can never hang on a lost answer.
    pub(crate) fn run_gpu(
        &self,
        partition: usize,
        p: &Prepared,
        with_translation: bool,
        trace: &mut Option<Box<QueryTrace>>,
        attempt: u32,
    ) -> Result<(Answer, Option<Vec<(u32, Answer)>>), EngineError> {
        let watchdog = Duration::from_secs_f64(self.config.faults.watchdog_secs.max(1e-6));
        let deadline_err = || EngineError::Timeout {
            partition,
            after_secs: self.config.faults.watchdog_secs,
        };
        if with_translation {
            // Physically route the text lookups through the translation
            // partition before the kernel launches.
            let trans_started = self.epoch.elapsed().as_secs_f64();
            let (tx, rx) = unbounded();
            let trans = self
                .trans_tx
                .as_ref()
                .expect("translation channel open while system lives");
            if trans
                .send(TransJob {
                    lookups: p.lookups.clone(),
                    respond: tx,
                })
                .is_err()
            {
                return Err(EngineError::Shutdown);
            }
            rx.recv().map_err(|_| EngineError::Shutdown)??;
            if let Some(t) = trace.as_deref_mut() {
                let now = self.epoch.elapsed().as_secs_f64();
                t.push(
                    now,
                    SpanKind::TranslationDone {
                        secs: now - trans_started,
                        lookups: p.lookups.len() as u64,
                    },
                );
            }
        }
        if let Some(t) = trace.as_deref_mut() {
            t.push(
                self.epoch.elapsed().as_secs_f64(),
                SpanKind::KernelStart { partition, attempt },
            );
        }
        match p.group_column {
            None => {
                let rx = self
                    .executor
                    .submit(partition, self.table_id, p.scan.clone());
                let out = match rx.recv_timeout(watchdog) {
                    Ok(result) => result?,
                    Err(RecvTimeoutError::Timeout) => return Err(deadline_err()),
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(KernelError::PartitionLost(partition).into())
                    }
                };
                if let Some(t) = trace.as_deref_mut() {
                    t.push(
                        self.epoch.elapsed().as_secs_f64(),
                        SpanKind::KernelEnd {
                            partition,
                            attempt,
                            sms: out.sms,
                            modeled_secs: out.modeled_secs,
                            wall_secs: out.wall_secs,
                            columns_accessed: out.columns_accessed as u64,
                        },
                    );
                }
                let sum = out.result.values[0].value().unwrap_or(0.0);
                Ok((
                    Answer {
                        sum,
                        count: out.result.matched_rows,
                    },
                    None,
                ))
            }
            Some(col) => {
                let gq = holap_table::GroupByQuery::new(p.scan.clone(), vec![col]);
                let rx = self.executor.submit_group_by(partition, self.table_id, gq);
                let out = match rx.recv_timeout(watchdog) {
                    Ok(result) => result?,
                    Err(RecvTimeoutError::Timeout) => return Err(deadline_err()),
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(KernelError::PartitionLost(partition).into())
                    }
                };
                if let Some(t) = trace.as_deref_mut() {
                    t.push(
                        self.epoch.elapsed().as_secs_f64(),
                        SpanKind::KernelEnd {
                            partition,
                            attempt,
                            sms: out.sms,
                            modeled_secs: out.modeled_secs,
                            wall_secs: out.wall_secs,
                            columns_accessed: out.columns_accessed as u64,
                        },
                    );
                }
                let groups: Vec<(u32, Answer)> = out
                    .result
                    .groups
                    .iter()
                    .map(|g| {
                        (
                            g.key[0],
                            Answer {
                                sum: g.values[0].value().unwrap_or(0.0),
                                count: g.rows,
                            },
                        )
                    })
                    .collect();
                let total = Answer {
                    sum: groups.iter().map(|(_, a)| a.sum).sum(),
                    count: out.result.matched_rows,
                };
                Ok((total, Some(groups)))
            }
        }
    }

    /// Completion bookkeeping shared by all runners: discharge the
    /// in-flight accounting, feed the measured time back to the scheduler
    /// (§III-G), record stats, memoise, and resolve the ticket.
    ///
    /// `executed` / `translated` describe where the work *actually* ran —
    /// after failover they differ from the decision, and stats attribution
    /// follows the executed placement. In-flight discharge and completion
    /// feedback stay on the decision's placement: that is the queue the
    /// work was charged to.
    pub(crate) fn finish(
        &self,
        mut run: RunJob,
        executed: Placement,
        translated: bool,
        result: Result<(Answer, Option<Vec<(u32, Answer)>>), EngineError>,
        actual_secs: f64,
    ) {
        self.inflight.lock().discharge(&run.decision);
        self.scheduler.lock().complete(
            run.decision.placement.partition_id(),
            run.decision.t_proc,
            actual_secs,
        );
        let mut trace = run.job.trace.take();
        let now = self.epoch.elapsed().as_secs_f64();
        let response = match result {
            Ok((answer, groups)) => {
                let latency_secs = now - run.job.admitted_at;
                let met_deadline = latency_secs <= run.job.prepared.deadline_window;
                let kind = match executed {
                    Placement::Cpu => CompletionKind::Cpu,
                    Placement::Gpu { .. } => CompletionKind::Gpu { translated },
                };
                self.stats.lock().record(kind, latency_secs, met_deadline);
                let residual_secs = actual_secs - run.decision.t_proc;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(
                        now,
                        SpanKind::Completed {
                            placement: executed,
                            latency_secs,
                            met_deadline,
                            estimated_secs: run.decision.t_proc,
                            actual_secs,
                            residual_secs,
                        },
                    );
                    t.finish(now, TraceStatus::Completed);
                }
                if let Some(obs) = &self.obs {
                    let label = match executed {
                        Placement::Cpu => PlacementLabel::Cpu,
                        Placement::Gpu { .. } => PlacementLabel::Gpu,
                    };
                    obs.on_completed(
                        label,
                        latency_secs,
                        met_deadline,
                        translated,
                        Some(residual_secs),
                    );
                }
                self.cache.put(
                    run.job.prepared.cache_key.clone(),
                    crate::cache::CachedAnswer {
                        answer,
                        groups: groups.clone(),
                    },
                );
                Ok(QueryOutcome {
                    answer,
                    groups,
                    placement: executed,
                    translated,
                    latency_secs,
                    met_deadline,
                    estimated_secs: run.decision.t_proc,
                    from_cache: false,
                    shed: false,
                })
            }
            Err(e) => {
                self.stats.lock().failed += 1;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(
                        now,
                        SpanKind::Failed {
                            error: e.to_string(),
                        },
                    );
                    t.finish(now, TraceStatus::Failed);
                }
                if let Some(obs) = &self.obs {
                    obs.on_failed();
                }
                Err(e)
            }
        };
        if let (Some(obs), Some(t)) = (&self.obs, trace) {
            obs.record_trace(*t);
        }
        let _ = run.job.respond.send(response);
    }

    /// Copies the scheduler's health-transition counters (quarantines,
    /// re-admissions) into the engine stats, so a [`HybridSystem::stats`]
    /// snapshot is coherent under a single lock. Called at the two sites
    /// that can transition health: a recorded partition failure and the
    /// background probe.
    pub(crate) fn mirror_health_counters(&self) {
        let (q, r) = {
            let sched = self.scheduler.lock();
            (sched.stats().quarantines, sched.stats().readmissions)
        };
        let mut stats = self.stats.lock();
        if let Some(obs) = &self.obs {
            obs.on_quarantines(q.saturating_sub(stats.quarantines));
            obs.on_readmissions(r.saturating_sub(stats.readmissions));
        }
        stats.quarantines = q;
        stats.readmissions = r;
    }
}

impl Drop for EngineCore {
    fn drop(&mut self) {
        self.trans_tx = None; // close the channel → workers exit
        for h in self.trans_handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// The running hybrid OLAP system. Thread-safe: queries may be submitted
/// concurrently from any number of threads.
///
/// Submission is asynchronous: [`HybridSystem::submit`] returns a
/// [`QueryTicket`] immediately (subject to admission-queue backpressure)
/// and the answer is collected with [`QueryTicket::wait`]. The synchronous
/// [`HybridSystem::execute`] / [`HybridSystem::query`] wrappers are
/// `submit(…)` + `wait()` in one call.
pub struct HybridSystem {
    core: Arc<EngineCore>,
    admission_tx: Option<Sender<AdmitJob>>,
    /// Dropping this stops the quarantine-probe thread.
    probe_stop: Option<Sender<()>>,
    pipeline: Vec<JoinHandle<()>>,
    next_ticket: AtomicU64,
}

impl HybridSystem {
    /// Starts a builder.
    pub fn builder(config: SystemConfig) -> HybridSystemBuilder {
        HybridSystemBuilder {
            config,
            facts: None,
            cube_resolutions: Vec::new(),
            prebuilt_cubes: Vec::new(),
            cube_measure: 0,
            device_config: DeviceConfig::tesla_c2070(),
            gpu_cube_build: false,
            fault_plan: None,
            diagnostics: Vec::new(),
        }
    }

    /// The fact-table schema.
    pub fn table_schema(&self) -> &TableSchema {
        &self.core.table_schema
    }

    /// The cube schema.
    pub fn cube_schema(&self) -> &CubeSchema {
        &self.core.cube_schema
    }

    /// Resolutions of the pre-calculated cubes.
    pub fn cube_resolutions(&self) -> Vec<usize> {
        self.core.cube_set.resolutions()
    }

    /// Bytes of (simulated) GPU global memory in use.
    pub fn gpu_memory_used(&self) -> usize {
        self.core.device.used_bytes()
    }

    /// Bytes of CPU memory the cube set occupies.
    pub fn cube_memory_used(&self) -> usize {
        self.core.cube_set.bytes()
    }

    /// The resident fact table (GPU-side data).
    pub fn fact_table(&self) -> &FactTable {
        self.core
            .device
            .table(self.core.table_id)
            .expect("table loaded at build time")
    }

    /// The per-column dictionaries.
    pub fn dictionaries(&self) -> &DictionarySet {
        &self.core.dicts
    }

    /// The resident cube at `resolution`, if any.
    pub fn cube(&self, resolution: usize) -> Option<&MolapCube> {
        self.core.cube_set.cube(resolution)
    }

    /// A snapshot of the execution statistics, including the current and
    /// peak admission-queue depth.
    ///
    /// The snapshot is **coherent**: every counter is read under the one
    /// stats lock (the scheduler's quarantine/re-admission counters are
    /// mirrored into it eagerly at the transition sites), so invariants
    /// like `completed + failed + shed + rejected ≤ submitted` hold in any
    /// snapshot. Only the instantaneous admission-depth gauges are read
    /// from their atomics afterwards.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.core.stats.lock().clone();
        s.admission_depth = self.core.admission_depth.load(Ordering::Relaxed) as u64;
        s.admission_peak_depth = self.core.admission_peak.load(Ordering::Relaxed) as u64;
        s
    }

    /// Health of GPU partition `partition` as the scheduler sees it.
    pub fn partition_health(&self, partition: usize) -> holap_sched::HealthState {
        self.core.scheduler.lock().partition_health(partition)
    }

    /// GPU partitions currently excluded from placement.
    pub fn quarantined_partitions(&self) -> Vec<usize> {
        self.core.scheduler.lock().quarantined_partitions()
    }

    /// Result-cache counters: `(hits, misses)`. Both zero when caching is
    /// disabled.
    pub fn cache_counters(&self) -> (u64, u64) {
        self.core.cache.counters()
    }

    /// Whether observability (metrics + tracing + flight recorder) is on.
    pub fn obs_enabled(&self) -> bool {
        self.core.obs.is_some()
    }

    /// The engine's observability seam (registry + recorder), when
    /// enabled — lets benches and exporters register their own
    /// instruments next to the engine's.
    pub fn observability(&self) -> Option<&EngineObs> {
        self.core.obs.as_deref()
    }

    /// Prometheus-style text exposition of every registered instrument.
    /// `None` when observability is disabled.
    pub fn metrics_text(&self) -> Option<String> {
        self.core.obs.as_ref().map(|o| o.metrics_text())
    }

    /// A point-in-time copy of every registered instrument. `None` when
    /// observability is disabled.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.core.obs.as_ref().map(|o| o.metrics_snapshot())
    }

    /// The last `n` completed traces the flight recorder retains, oldest
    /// first. Empty when observability is disabled.
    pub fn recent_traces(&self, n: usize) -> Vec<Arc<QueryTrace>> {
        self.core
            .obs
            .as_ref()
            .map_or_else(Vec::new, |o| o.recorder().last(n))
    }

    /// The anomalous traces the flight recorder retains (faults, retries,
    /// timeouts, sheds, quarantines), oldest first. Empty when
    /// observability is disabled.
    pub fn anomalous_traces(&self) -> Vec<Arc<QueryTrace>> {
        self.core
            .obs
            .as_ref()
            .map_or_else(Vec::new, |o| o.recorder().anomalies())
    }

    /// The retained trace of ticket `id`, if the flight recorder still
    /// holds it.
    pub fn trace_for(&self, id: u64) -> Option<Arc<QueryTrace>> {
        self.core.obs.as_ref().and_then(|o| o.recorder().find(id))
    }

    /// A JSON dump of the flight recorder (recent + anomalous traces).
    /// `None` when observability is disabled.
    pub fn trace_dump_json(&self, pretty: bool) -> Option<String> {
        self.core
            .obs
            .as_ref()
            .map(|o| o.recorder().dump_json(pretty))
    }

    /// Submits a query — anything implementing [`IntoEngineQuery`]: a
    /// structured [`EngineQuery`] (owned or by reference) or DSL text —
    /// and returns a [`QueryTicket`] resolving to its outcome.
    ///
    /// The ticket is answered by the admission pipeline: dispatcher →
    /// Figure-10 scheduler (with live-load floors) → partition runner.
    /// Under [`BackpressurePolicy::Block`] (default) this call blocks
    /// while the admission queue is full; under
    /// [`BackpressurePolicy::Reject`] it fails fast with
    /// [`EngineError::Overloaded`].
    pub fn submit<S: IntoEngineQuery>(&self, submission: S) -> Result<QueryTicket, EngineError> {
        let q = submission.into_engine_query(&self.core.table_schema)?;
        self.submit_query(q)
    }

    /// Submits many queries in one call, amortising preparation over the
    /// batch; the dispatcher sees them back-to-back, so queue-aware
    /// placement spreads them over partitions. Per-item results preserve
    /// input order: a rejected item does not abort the rest of the batch.
    pub fn submit_batch<S, I>(&self, submissions: I) -> Vec<Result<QueryTicket, EngineError>>
    where
        S: IntoEngineQuery,
        I: IntoIterator<Item = S>,
    {
        submissions.into_iter().map(|s| self.submit(s)).collect()
    }

    fn submit_query(&self, q: EngineQuery) -> Result<QueryTicket, EngineError> {
        let admitted_at = self.core.epoch.elapsed().as_secs_f64();
        let id = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        match self.core.prepare(&q, admitted_at)? {
            Admitted::Immediate(outcome) => {
                if let Some(obs) = &self.core.obs {
                    let now = self.core.epoch.elapsed().as_secs_f64();
                    let mut t = QueryTrace::new(id, admitted_at);
                    t.push(
                        now,
                        if outcome.from_cache {
                            SpanKind::CacheHit
                        } else {
                            SpanKind::ProvablyEmpty
                        },
                    );
                    t.finish(now, TraceStatus::Immediate);
                    obs.record_trace(t);
                }
                Ok(QueryTicket::immediate(id, outcome))
            }
            Admitted::Run(prepared) => {
                let trace = self.core.obs.as_ref().map(|_| {
                    let mut t = Box::new(QueryTrace::new(id, admitted_at));
                    t.push(
                        admitted_at,
                        SpanKind::Submitted {
                            class: if prepared.est.t_cpu.is_some() {
                                QueryClass::Molap
                            } else {
                                QueryClass::Rolap
                            },
                            needs_translation: !prepared.lookups.is_empty(),
                        },
                    );
                    t
                });
                let (tx, rx) = bounded(1);
                let job = AdmitJob {
                    prepared,
                    admitted_at,
                    respond: tx,
                    trace,
                };
                // Count the ticket before handing it over so the depth can
                // never go negative when the dispatcher pops it first.
                let depth = self.core.admission_depth.fetch_add(1, Ordering::Relaxed) + 1;
                self.core.admission_peak.fetch_max(depth, Ordering::Relaxed);
                if let Some(obs) = &self.core.obs {
                    obs.set_admission_depth(depth);
                }
                let admit = self
                    .admission_tx
                    .as_ref()
                    .expect("pipeline alive while system lives");
                let sent = match self.core.config.admission.backpressure {
                    BackpressurePolicy::Block => admit.send(job).map_err(|_| EngineError::Shutdown),
                    BackpressurePolicy::Reject => admit.try_send(job).map_err(|e| match e {
                        TrySendError::Full(mut rejected_job) => {
                            self.core.stats.lock().record_rejected();
                            if let Some(obs) = &self.core.obs {
                                obs.on_rejected();
                                if let Some(mut t) = rejected_job.trace.take() {
                                    let now = self.core.epoch.elapsed().as_secs_f64();
                                    t.finish(now, TraceStatus::Rejected);
                                    obs.record_trace(*t);
                                }
                            }
                            EngineError::Overloaded(format!(
                                "admission queue full ({} tickets waiting)",
                                depth - 1
                            ))
                        }
                        TrySendError::Disconnected(_) => EngineError::Shutdown,
                    }),
                };
                if let Err(e) = sent {
                    self.core.admission_depth.fetch_sub(1, Ordering::Relaxed);
                    return Err(e);
                }
                Ok(QueryTicket::new(id, rx))
            }
        }
    }

    /// Parses and executes a DSL query (see [`crate::dsl`]) synchronously.
    ///
    /// Thin wrapper over the unified submission API:
    /// `submit(text)?.wait()`. Prefer [`HybridSystem::submit`] when the
    /// caller can overlap queries.
    pub fn query(&self, text: &str) -> Result<QueryOutcome, EngineError> {
        self.submit(text)?.wait()
    }

    /// Executes a structured query synchronously: resolve → estimate →
    /// schedule → run on the chosen partition → feedback → answer.
    ///
    /// Thin wrapper over the unified submission API: `submit(q)?.wait()`.
    /// Prefer [`HybridSystem::submit`] when the caller can overlap queries.
    pub fn execute(&self, q: &EngineQuery) -> Result<QueryOutcome, EngineError> {
        self.submit(q)?.wait()
    }
}

impl Drop for HybridSystem {
    fn drop(&mut self) {
        // Stop the probe first (it only touches the scheduler), then close
        // the admission queue; the dispatcher drains what was admitted,
        // closes the run queues, and every runner exits after resolving
        // its remaining tickets.
        self.probe_stop = None;
        self.admission_tx = None;
        for h in self.pipeline.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for HybridSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridSystem")
            .field("cube_resolutions", &self.core.cube_set.resolutions())
            .field("gpu_memory_used", &self.core.device.used_bytes())
            .field("policy", &self.core.config.policy)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AdmissionConfig, SheddingPolicy};
    use crate::query::EngineQuery;
    use holap_dict::DictKind;
    use holap_sched::Policy;
    use holap_workload::{FactsSpec, NameStyle, PaperHierarchy, SyntheticFacts, TextLevel};

    fn facts(rows: usize) -> SyntheticFacts {
        let h = PaperHierarchy::scaled_down(8);
        SyntheticFacts::generate(&FactsSpec {
            schema: h.table_schema(),
            rows,
            text_levels: vec![
                TextLevel {
                    dim: 1,
                    level: 3,
                    style: NameStyle::City,
                },
                TextLevel {
                    dim: 2,
                    level: 3,
                    style: NameStyle::Brand,
                },
            ],
            dict_kind: DictKind::Sorted,
            skew: None,
            seed: 31,
        })
    }

    fn system(policy: Policy) -> HybridSystem {
        let config = SystemConfig {
            policy,
            ..SystemConfig::default()
        };
        HybridSystem::builder(config)
            .facts(facts(20_000))
            .cube_at(1)
            .cube_at(2)
            .build()
            .unwrap()
    }

    /// Ground truth by brute force over the generated table.
    fn brute_force(f: &SyntheticFacts, conds: &[(usize, usize, u32, u32)], m: usize) -> Answer {
        let mut sum = 0.0;
        let mut count = 0;
        let measure = f.table.measure_column(m);
        let cols: Vec<&[u32]> = conds
            .iter()
            .map(|&(d, l, _, _)| f.table.dim_column(d, l))
            .collect();
        'rows: for row in 0..f.table.rows() {
            for (c, col) in conds.iter().zip(&cols) {
                let v = col[row];
                if v < c.2 || v > c.3 {
                    continue 'rows;
                }
            }
            sum += measure[row];
            count += 1;
        }
        Answer { sum, count }
    }

    #[test]
    fn cpu_and_gpu_agree_with_ground_truth() {
        let f = facts(20_000);
        let truth = brute_force(&f, &[(0, 1, 1, 2), (1, 0, 0, 0)], 0);
        // CPU-only and GPU-only systems must both match brute force.
        for policy in [Policy::CpuOnly, Policy::GpuOnly] {
            let sys = system(policy);
            let q = EngineQuery::new().range(0, 1, 1, 2).range(1, 0, 0, 0);
            let out = sys.execute(&q).unwrap();
            assert_eq!(out.answer.count, truth.count, "{policy:?}");
            assert!(
                (out.answer.sum - truth.sum).abs() < 1e-6 * (1.0 + truth.sum.abs()),
                "{policy:?}: {} vs {}",
                out.answer.sum,
                truth.sum
            );
            assert_eq!(out.placement.is_cpu(), policy == Policy::CpuOnly);
        }
    }

    #[test]
    fn text_query_runs_on_both_sides() {
        let f = facts(20_000);
        let sys_gpu = system(Policy::GpuOnly);
        let sys_cpu = system(Policy::CpuOnly);
        // Pick a real member of the city dictionary.
        let column = &f.text_columns[0].1;
        let city = f.dicts.decode(column, 5).unwrap().to_owned();
        let q = EngineQuery::new().text_eq(1, 3, &city);
        let gpu = sys_gpu.execute(&q).unwrap();
        let cpu = sys_cpu.execute(&q).unwrap();
        assert!(gpu.translated, "GPU text query goes through translation");
        assert_eq!(gpu.answer.count, cpu.answer.count);
        assert!((gpu.answer.sum - cpu.answer.sum).abs() < 1e-6 * (1.0 + cpu.answer.sum.abs()));
        // The condition is at the finest level (3) but only cubes 1 and 2
        // exist, so even the CPU-only system was forced onto the GPU (and
        // therefore through translation).
        assert!(!cpu.placement.is_cpu());
        assert!(cpu.translated);

        // With a level-3 cube resident, the CPU answers it directly —
        // cubes are coordinate-indexed, so no translation partition is
        // involved (paper: "the translation is necessary only for the GPU
        // side of the system").
        let config = SystemConfig {
            policy: Policy::CpuOnly,
            ..SystemConfig::default()
        };
        let sys_cpu3 = HybridSystem::builder(config)
            .facts(facts(20_000))
            .cube_at(3)
            .build()
            .unwrap();
        let on_cpu = sys_cpu3.execute(&q).unwrap();
        assert!(on_cpu.placement.is_cpu());
        assert!(!on_cpu.translated);
        assert_eq!(on_cpu.answer.count, gpu.answer.count);
        assert!((on_cpu.answer.sum - gpu.answer.sum).abs() < 1e-6 * (1.0 + gpu.answer.sum.abs()));
    }

    #[test]
    fn fine_queries_fall_through_to_gpu() {
        let sys = system(Policy::Paper);
        // Level-3 condition: finer than any resident cube (1, 2).
        let q = EngineQuery::new().range(0, 3, 0, 9);
        let out = sys.execute(&q).unwrap();
        assert!(!out.placement.is_cpu());
    }

    #[test]
    fn dsl_round_trip() {
        let sys = system(Policy::Paper);
        let out = sys
            .query("select sum(measure0) where time.level1 in 0..1 deadline 5")
            .unwrap();
        let structured = sys
            .execute(&EngineQuery::new().range(0, 1, 0, 1).deadline(5.0))
            .unwrap();
        assert_eq!(out.answer, structured.answer);
    }

    #[test]
    fn second_measure_bypasses_cubes() {
        let sys = system(Policy::Paper);
        let q = EngineQuery::new().range(0, 1, 0, 1).measure(1);
        let out = sys.execute(&q).unwrap();
        assert!(!out.placement.is_cpu(), "cubes hold measure 0 only");
        // And the answer matches the GPU-only system for the same query.
        let gpu = system(Policy::GpuOnly).execute(&q).unwrap();
        assert_eq!(out.answer.count, gpu.answer.count);
    }

    #[test]
    fn stats_accumulate() {
        let sys = system(Policy::Paper);
        for i in 0..6u32 {
            let q = EngineQuery::new().range(0, 1, 0, 1 + i % 2);
            sys.execute(&q).unwrap();
        }
        let s = sys.stats();
        assert_eq!(s.completed, 6);
        assert_eq!(s.cpu_queries + s.gpu_queries, 6);
        assert!(s.mean_latency_secs() > 0.0);
        assert_eq!(s.latency.count(), 6);
        assert!(s.p50_latency_secs() > 0.0);
        assert!(s.p50_latency_secs() <= s.p99_latency_secs());
    }

    #[test]
    fn concurrent_submission_is_safe() {
        let sys = std::sync::Arc::new(system(Policy::Paper));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let sys = std::sync::Arc::clone(&sys);
            handles.push(std::thread::spawn(move || {
                let q = EngineQuery::new().range(0, 1, t % 3, 3);
                sys.execute(&q).unwrap().answer
            }));
        }
        let answers: Vec<Answer> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(answers.len(), 8);
        assert_eq!(sys.stats().completed, 8);
    }

    #[test]
    fn submit_wait_matches_execute() {
        // Two identically-built systems: the asynchronous round-trip must
        // produce the same outcome (modulo wall-clock latency) as the
        // synchronous wrapper.
        let via_execute = system(Policy::Paper);
        let via_submit = system(Policy::Paper);
        for q in [
            EngineQuery::new().range(0, 1, 0, 2),
            EngineQuery::new().range(0, 3, 0, 9),
            EngineQuery::new().range(0, 1, 0, 3).grouped_by(0, 1),
        ] {
            let a = via_execute.execute(&q).unwrap();
            let b = via_submit.submit(&q).unwrap().wait().unwrap();
            assert_eq!(a.answer, b.answer);
            assert_eq!(a.groups, b.groups);
            assert_eq!(a.placement, b.placement);
            assert_eq!(a.translated, b.translated);
            assert_eq!(a.from_cache, b.from_cache);
            assert_eq!(a.shed, b.shed);
        }
    }

    #[test]
    fn tickets_deliver_once_and_poll() {
        let sys = system(Policy::Paper);
        let mut ticket = sys
            .submit("select sum(measure0) where time.level1 in 0..1")
            .unwrap();
        // Poll until the outcome lands, then observe it is consumed.
        let outcome = loop {
            if let Some(out) = ticket.try_wait().unwrap() {
                break out;
            }
            std::thread::yield_now();
        };
        assert!(outcome.answer.count > 0);
        assert_eq!(
            ticket.try_wait().unwrap(),
            None,
            "outcome is delivered once"
        );
    }

    #[test]
    fn ticket_ids_are_unique_and_ordered() {
        let sys = system(Policy::Paper);
        let tickets = sys.submit_batch(vec![
            EngineQuery::new().range(0, 1, 0, 1),
            EngineQuery::new().range(0, 1, 0, 2),
            EngineQuery::new().range(0, 1, 0, 3),
        ]);
        let ids: Vec<u64> = tickets.iter().map(|t| t.as_ref().unwrap().id()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        for t in tickets {
            t.unwrap().wait().unwrap();
        }
        assert_eq!(sys.stats().completed, 3);
    }

    #[test]
    fn shedding_drops_hopeless_queries() {
        let config = SystemConfig {
            admission: AdmissionConfig {
                shedding: SheddingPolicy::Shed,
                ..AdmissionConfig::default()
            },
            ..SystemConfig::default()
        };
        let sys = HybridSystem::builder(config)
            .facts(facts(20_000))
            .cube_at(1)
            .cube_at(2)
            .build()
            .unwrap();
        // A 1 ns deadline is hopeless for every partition: the modeled
        // processing times are microseconds at best.
        let q = EngineQuery::new().range(0, 3, 0, 9).deadline(1e-9);
        let out = sys.execute(&q).unwrap();
        assert!(out.shed);
        assert!(!out.met_deadline);
        assert_eq!(out.answer.count, 0);
        let s = sys.stats();
        assert_eq!(s.shed, 1);
        assert_eq!(s.completed, 0, "shed queries do not complete");
        // A feasible query still runs normally.
        let ok = sys.execute(&EngineQuery::new().range(0, 1, 0, 1)).unwrap();
        assert!(!ok.shed);
        assert!(ok.answer.count > 0);
        assert_eq!(sys.stats().completed, 1);
    }

    #[test]
    fn shedding_reject_policy_errors_instead() {
        let config = SystemConfig {
            admission: AdmissionConfig {
                shedding: SheddingPolicy::Reject,
                ..AdmissionConfig::default()
            },
            ..SystemConfig::default()
        };
        let sys = HybridSystem::builder(config)
            .facts(facts(20_000))
            .cube_at(1)
            .build()
            .unwrap();
        let q = EngineQuery::new().range(0, 3, 0, 9).deadline(1e-9);
        assert!(matches!(sys.execute(&q), Err(EngineError::Overloaded(_))));
        assert_eq!(sys.stats().rejected, 1);
    }

    #[test]
    fn reject_backpressure_fails_fast_when_full() {
        let config = SystemConfig {
            admission: AdmissionConfig {
                queue_capacity: 1,
                partition_queue_capacity: 1,
                backpressure: BackpressurePolicy::Reject,
                ..AdmissionConfig::default()
            },
            ..SystemConfig::default()
        };
        let sys = HybridSystem::builder(config)
            .facts(facts(20_000))
            .cube_at(1)
            .cube_at(2)
            .build()
            .unwrap();
        // Burst far more queries than the capacity-1 queues can hold.
        let mut tickets = Vec::new();
        let mut rejections = 0u64;
        for i in 0..300u32 {
            let q = EngineQuery::new().range(0, 3, i % 5, 9);
            match sys.submit(&q) {
                Ok(t) => tickets.push(t),
                Err(EngineError::Overloaded(_)) => rejections += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(
            rejections > 0,
            "capacity-1 queues must reject under a 300-query burst"
        );
        // Every accepted ticket still resolves to an answer.
        let accepted = tickets.len() as u64;
        for t in tickets {
            let out = t.wait().unwrap();
            assert!(!out.shed);
            assert!(out.answer.count > 0);
        }
        let s = sys.stats();
        assert_eq!(s.rejected, rejections);
        assert_eq!(s.completed, accepted);
        assert!(s.admission_peak_depth >= 1);
        assert_eq!(s.admission_depth, 0, "queues drained");
    }

    #[test]
    fn build_errors() {
        let err = HybridSystem::builder(SystemConfig::default())
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::Build(_)));
        let err = HybridSystem::builder(SystemConfig::default())
            .facts(facts(100))
            .cube_at(99)
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::Build(_)));
        let err = HybridSystem::builder(SystemConfig::default())
            .facts(facts(100))
            .cube_measure(9)
            .build()
            .unwrap_err();
        assert!(matches!(err, EngineError::Build(_)));
    }

    #[test]
    fn build_reports_all_errors_at_once() {
        let err = HybridSystem::builder(SystemConfig::default())
            .facts(facts(100))
            .cube_at(99)
            .cube_at(123)
            .cube_measure(9)
            .device(DeviceConfig {
                total_sms: 0,
                memory_bytes: 0,
            })
            .build()
            .unwrap_err();
        let EngineError::Build(msg) = err else {
            panic!("expected Build, got {err:?}")
        };
        for needle in [
            "cube resolution 99",
            "cube resolution 123",
            "cube measure 9",
            "zero SMs",
            "zero memory",
        ] {
            assert!(msg.contains(needle), "`{msg}` should mention `{needle}`");
        }
    }

    #[test]
    fn unknown_text_value_is_an_error() {
        let sys = system(Policy::Paper);
        let q = EngineQuery::new().text_eq(1, 3, "No Such City");
        assert!(matches!(sys.execute(&q), Err(EngineError::Translate(_))));
    }

    #[test]
    fn grouped_queries_agree_between_cpu_and_gpu() {
        let q = EngineQuery::new()
            .range(0, 1, 0, 3)
            .range(1, 1, 0, 1)
            .grouped_by(0, 1); // group by time level 1
        let cpu = system(Policy::CpuOnly).execute(&q).unwrap();
        let gpu = system(Policy::GpuOnly).execute(&q).unwrap();
        assert!(cpu.placement.is_cpu());
        assert!(!gpu.placement.is_cpu());
        let cg = cpu.groups.as_ref().unwrap();
        let gg = gpu.groups.as_ref().unwrap();
        assert_eq!(cg.len(), gg.len(), "{cg:?} vs {gg:?}");
        for ((ck, ca), (gk, ga)) in cg.iter().zip(gg) {
            assert_eq!(ck, gk);
            assert_eq!(ca.count, ga.count, "group {ck}");
            assert!(
                (ca.sum - ga.sum).abs() < 1e-6 * (1.0 + ga.sum.abs()),
                "group {ck}"
            );
        }
        // Totals match the ungrouped query.
        let plain = system(Policy::CpuOnly)
            .execute(&EngineQuery::new().range(0, 1, 0, 3).range(1, 1, 0, 1))
            .unwrap();
        assert_eq!(cpu.answer.count, plain.answer.count);
        assert!((cpu.answer.sum - plain.answer.sum).abs() < 1e-6 * (1.0 + plain.answer.sum.abs()));
    }

    #[test]
    fn grouping_finer_than_conditions_forces_fine_cube_or_gpu() {
        // Group at level 3 (finer than resident cubes 1 and 2) → GPU.
        let sys = system(Policy::Paper);
        let q = EngineQuery::new().range(0, 1, 0, 1).grouped_by(0, 3);
        let out = sys.execute(&q).unwrap();
        assert!(!out.placement.is_cpu());
        assert!(out.groups.is_some());
    }

    #[test]
    fn grouped_dsl_round_trip() {
        let sys = system(Policy::Paper);
        let dsl = sys
            .query("select sum(measure0) where time.level1 in 0..3 group by time.level0")
            .unwrap();
        let structured = sys
            .execute(&EngineQuery::new().range(0, 1, 0, 3).grouped_by(0, 0))
            .unwrap();
        assert_eq!(dsl.groups, structured.groups);
        assert!(dsl.groups.unwrap().len() <= 2); // level 0 has 2 coordinates
    }

    #[test]
    fn substring_queries_filter_by_pattern() {
        let data = facts(20_000);
        let sys = system(Policy::Paper);
        // Find a pattern that actually occurs: take a 4-char slice of a
        // dictionary member.
        let member = data.dicts.decode("geo.level3", 20).unwrap().to_owned();
        let pattern = &member[..4.min(member.len())];
        let q = EngineQuery::new().text_contains(1, 3, [pattern]);
        let out = sys.execute(&q).unwrap();
        assert!(!out.placement.is_cpu(), "substring predicates are GPU-only");
        // Ground truth: rows whose decoded city contains the pattern.
        let col = data.table.dim_column(1, 3);
        let expect = col
            .iter()
            .filter(|&&c| {
                data.dicts
                    .decode("geo.level3", c)
                    .unwrap()
                    .contains(pattern)
            })
            .count() as u64;
        assert_eq!(out.answer.count, expect);
        assert!(expect > 0, "pattern occurs in the data");

        // DSL form agrees.
        let dsl = sys
            .query(&format!(
                "select sum(measure0) where geo.level3 contains '{pattern}'"
            ))
            .unwrap();
        assert_eq!(dsl.answer, out.answer);
    }

    #[test]
    fn multi_pattern_contains_is_a_union() {
        let data = facts(20_000);
        let sys = system(Policy::GpuOnly);
        let a = data.dicts.decode("geo.level3", 3).unwrap().to_owned();
        let b = data.dicts.decode("geo.level3", 90).unwrap().to_owned();
        let q = EngineQuery::new().text_contains(1, 3, [a.as_str(), b.as_str()]);
        let union = sys.execute(&q).unwrap().answer.count;
        let qa = sys
            .execute(&EngineQuery::new().text_contains(1, 3, [a.as_str()]))
            .unwrap();
        let qb = sys
            .execute(&EngineQuery::new().text_contains(1, 3, [b.as_str()]))
            .unwrap();
        assert!(union >= qa.answer.count.max(qb.answer.count));
        assert!(union <= qa.answer.count + qb.answer.count);
    }

    #[test]
    fn bad_group_spec_is_an_error() {
        let sys = system(Policy::Paper);
        let q = EngineQuery::new().grouped_by(9, 0);
        assert!(matches!(sys.execute(&q), Err(EngineError::Query(_))));
        let q = EngineQuery::new().grouped_by(0, 9);
        assert!(matches!(sys.execute(&q), Err(EngineError::Query(_))));
    }

    #[test]
    fn gpu_built_cubes_answer_identically() {
        let config = SystemConfig {
            policy: Policy::CpuOnly,
            ..SystemConfig::default()
        };
        let cpu_built = HybridSystem::builder(config.clone())
            .facts(facts(10_000))
            .cube_at(1)
            .cube_at(2)
            .build()
            .unwrap();
        let gpu_built = HybridSystem::builder(config)
            .facts(facts(10_000))
            .cube_at(1)
            .cube_at(2)
            .build_cubes_on_gpu()
            .build()
            .unwrap();
        assert_eq!(gpu_built.cube_resolutions(), vec![1, 2]);
        for q in [
            EngineQuery::new().range(0, 1, 0, 3),
            EngineQuery::new().range(0, 2, 3, 17).range(1, 1, 1, 2),
        ] {
            let a = cpu_built.execute(&q).unwrap();
            let b = gpu_built.execute(&q).unwrap();
            assert_eq!(a.answer.count, b.answer.count);
            assert!((a.answer.sum - b.answer.sum).abs() < 1e-6 * (1.0 + a.answer.sum.abs()));
        }
    }

    #[test]
    fn result_cache_serves_repeats() {
        let config = SystemConfig {
            cache_capacity: 16,
            ..SystemConfig::default()
        };
        let sys = HybridSystem::builder(config)
            .facts(facts(10_000))
            .cube_at(2)
            .build()
            .unwrap();
        let q = EngineQuery::new().range(0, 2, 1, 9).grouped_by(0, 1);
        let first = sys.execute(&q).unwrap();
        assert!(!first.from_cache);
        let second = sys.execute(&q).unwrap();
        assert!(second.from_cache);
        assert_eq!(second.answer, first.answer);
        assert_eq!(second.groups, first.groups);
        assert_eq!(sys.cache_counters(), (1, 1));
        assert_eq!(sys.stats().cache_hits, 1);
        // Semantically identical query via the DSL also hits.
        let dsl = sys
            .query("select sum(measure0) where time.level2 in 1..9 group by time.level1")
            .unwrap();
        assert!(dsl.from_cache);
        // A different query misses.
        let other = sys.execute(&EngineQuery::new().range(0, 2, 1, 8)).unwrap();
        assert!(!other.from_cache);
    }

    #[test]
    fn cached_answers_do_not_claim_partition_work() {
        // Regression test for stats attribution: a `from_cache` outcome
        // must not increment `cpu_queries`/`gpu_queries`.
        let config = SystemConfig {
            cache_capacity: 16,
            ..SystemConfig::default()
        };
        let sys = HybridSystem::builder(config)
            .facts(facts(10_000))
            .cube_at(2)
            .build()
            .unwrap();
        let q = EngineQuery::new().range(0, 2, 1, 9);
        sys.execute(&q).unwrap();
        let before = sys.stats();
        let hit = sys.execute(&q).unwrap();
        assert!(hit.from_cache);
        let after = sys.stats();
        assert_eq!(
            after.cpu_queries, before.cpu_queries,
            "cache hit did no CPU work"
        );
        assert_eq!(
            after.gpu_queries, before.gpu_queries,
            "cache hit did no GPU work"
        );
        assert_eq!(after.translated_queries, before.translated_queries);
        assert_eq!(after.cache_hits, before.cache_hits + 1);
        assert_eq!(
            after.completed,
            before.completed + 1,
            "the query was still answered"
        );
    }

    #[test]
    fn cache_off_by_default() {
        let sys = system(Policy::Paper);
        let q = EngineQuery::new().range(0, 1, 0, 1);
        sys.execute(&q).unwrap();
        let again = sys.execute(&q).unwrap();
        assert!(!again.from_cache);
        assert_eq!(sys.cache_counters(), (0, 0));
    }

    #[test]
    fn memory_accounting_is_visible() {
        let sys = system(Policy::Paper);
        assert!(sys.gpu_memory_used() > 0);
        assert!(sys.cube_memory_used() > 0);
        assert_eq!(sys.cube_resolutions(), vec![1, 2]);
    }
}
