//! Engine-level execution statistics.

use serde::{Deserialize, Serialize};

/// Running counters the engine maintains across queries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Queries completed.
    pub completed: u64,
    /// Queries whose wall-clock latency met their deadline.
    pub met_deadline: u64,
    /// Queries answered by the CPU partition.
    pub cpu_queries: u64,
    /// Queries answered by GPU partitions.
    pub gpu_queries: u64,
    /// Queries that went through the translation partition.
    pub translated_queries: u64,
    /// Sum of wall-clock latencies, seconds.
    pub total_latency_secs: f64,
    /// Maximum wall-clock latency, seconds.
    pub max_latency_secs: f64,
    /// Queries answered from the result cache (not scheduled at all).
    pub cache_hits: u64,
}

impl EngineStats {
    /// Mean latency over completed queries.
    pub fn mean_latency_secs(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_latency_secs / self.completed as f64
        }
    }

    /// Fraction of queries that met their deadline.
    pub fn deadline_hit_ratio(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.met_deadline as f64 / self.completed as f64
        }
    }

    pub(crate) fn record(
        &mut self,
        cpu: bool,
        translated: bool,
        latency_secs: f64,
        met_deadline: bool,
    ) {
        self.completed += 1;
        if met_deadline {
            self.met_deadline += 1;
        }
        if cpu {
            self.cpu_queries += 1;
        } else {
            self.gpu_queries += 1;
        }
        if translated {
            self.translated_queries += 1;
        }
        self.total_latency_secs += latency_secs;
        self.max_latency_secs = self.max_latency_secs.max(latency_secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = EngineStats::default();
        s.record(true, false, 0.1, true);
        s.record(false, true, 0.3, false);
        assert_eq!(s.completed, 2);
        assert_eq!(s.cpu_queries, 1);
        assert_eq!(s.gpu_queries, 1);
        assert_eq!(s.translated_queries, 1);
        assert_eq!(s.met_deadline, 1);
        assert!((s.mean_latency_secs() - 0.2).abs() < 1e-12);
        assert!((s.deadline_hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s.max_latency_secs, 0.3);
    }

    #[test]
    fn empty_stats() {
        let s = EngineStats::default();
        assert_eq!(s.mean_latency_secs(), 0.0);
        assert_eq!(s.deadline_hit_ratio(), 1.0);
    }
}
