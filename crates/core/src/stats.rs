//! Engine-level execution statistics.

use serde::{Deserialize, Serialize};

/// The engine's latency histogram is the shared observability histogram
/// (`holap-obs`): 64 geometric buckets covering 1 µs .. ~2400 s at a
/// 1.4× ratio. The alias keeps the engine's historical API; snapshots
/// written by the old hand-rolled histogram deserialize unchanged (the
/// scheme fields default when absent).
pub use holap_obs::Histogram as LatencyHistogram;

/// How a completed query was answered — drives counter attribution in
/// [`EngineStats::record`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CompletionKind {
    /// Answered by the CPU processing partition.
    Cpu,
    /// Answered by a GPU partition (`translated` when the query went
    /// through the translation partition first).
    Gpu {
        /// Whether the translation partition was involved.
        translated: bool,
    },
    /// Answered from the result cache — no partition did any work, so
    /// neither `cpu_queries` nor `gpu_queries` is incremented.
    Cached,
}

/// Running counters the engine maintains across queries.
///
/// A snapshot returned by [`crate::HybridSystem::stats`] is **coherent**:
/// every counter is read under one lock, so cross-counter invariants hold
/// — in particular `completed + failed + shed + rejected ≤ submitted`
/// (the difference is queries still in flight).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Queries accepted by `submit` (including ones later shed, rejected
    /// at dispatch, failed, or still in flight at snapshot time).
    #[serde(default)]
    pub submitted: u64,
    /// Queries completed with an answer (including cached answers; shed
    /// and rejected queries are counted separately).
    pub completed: u64,
    /// Queries whose wall-clock latency met their deadline.
    pub met_deadline: u64,
    /// Queries answered by the CPU partition.
    pub cpu_queries: u64,
    /// Queries answered by GPU partitions.
    pub gpu_queries: u64,
    /// Queries that went through the translation partition.
    pub translated_queries: u64,
    /// Sum of wall-clock latencies, seconds.
    pub total_latency_secs: f64,
    /// Maximum wall-clock latency, seconds.
    pub max_latency_secs: f64,
    /// Queries answered from the result cache (not scheduled at all).
    pub cache_hits: u64,
    /// Queries shed by deadline-aware admission control: the predicted
    /// completion already missed the deadline, so no partition time was
    /// spent. Not counted in `completed`.
    #[serde(default)]
    pub shed: u64,
    /// Queries rejected by `Reject` backpressure (a bounded queue was
    /// full) or by `SheddingPolicy::Reject`. Not counted in `completed`.
    #[serde(default)]
    pub rejected: u64,
    /// Tickets sitting in the admission queue at snapshot time.
    #[serde(default)]
    pub admission_depth: u64,
    /// High-water mark of the admission queue depth.
    #[serde(default)]
    pub admission_peak_depth: u64,
    /// Transient kernel failures observed by partition runners (each
    /// failed attempt counts once, whatever happened next).
    #[serde(default)]
    pub partition_failures: u64,
    /// Retry attempts launched after a transient failure.
    #[serde(default)]
    pub retries: u64,
    /// Watchdog expirations: a partition failed to answer in time.
    #[serde(default)]
    pub timeouts: u64,
    /// Queries that ran somewhere other than the scheduler's first
    /// choice: steered off a quarantined partition at dispatch, or failed
    /// over to the CPU by a partition runner.
    #[serde(default)]
    pub rerouted: u64,
    /// Queries whose ticket resolved to an error after execution started.
    #[serde(default)]
    pub failed: u64,
    /// Partition quarantine transitions (mirrors the scheduler's count).
    #[serde(default)]
    pub quarantines: u64,
    /// Quarantined partitions re-admitted by a probe (mirrors the
    /// scheduler's count).
    #[serde(default)]
    pub readmissions: u64,
    /// Wall-clock latency distribution of completed queries; use
    /// [`EngineStats::p50_latency_secs`] and friends to read it.
    #[serde(default)]
    pub latency: LatencyHistogram,
}

impl EngineStats {
    /// Mean latency over completed queries.
    pub fn mean_latency_secs(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_latency_secs / self.completed as f64
        }
    }

    /// Fraction of queries that met their deadline.
    pub fn deadline_hit_ratio(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.met_deadline as f64 / self.completed as f64
        }
    }

    /// Queries accepted but not yet resolved at snapshot time.
    pub fn in_flight(&self) -> u64 {
        self.submitted
            .saturating_sub(self.completed + self.failed + self.shed + self.rejected)
    }

    /// Median wall-clock latency, seconds (bucketed upper bound).
    pub fn p50_latency_secs(&self) -> f64 {
        self.latency.quantile_secs(0.50)
    }

    /// 95th-percentile wall-clock latency, seconds (bucketed upper bound).
    pub fn p95_latency_secs(&self) -> f64 {
        self.latency.quantile_secs(0.95)
    }

    /// 99th-percentile wall-clock latency, seconds (bucketed upper bound).
    pub fn p99_latency_secs(&self) -> f64 {
        self.latency.quantile_secs(0.99)
    }

    pub(crate) fn record(&mut self, kind: CompletionKind, latency_secs: f64, met_deadline: bool) {
        self.completed += 1;
        if met_deadline {
            self.met_deadline += 1;
        }
        match kind {
            CompletionKind::Cpu => self.cpu_queries += 1,
            CompletionKind::Gpu { translated } => {
                self.gpu_queries += 1;
                if translated {
                    self.translated_queries += 1;
                }
            }
            CompletionKind::Cached => self.cache_hits += 1,
        }
        self.total_latency_secs += latency_secs;
        self.max_latency_secs = self.max_latency_secs.max(latency_secs);
        self.latency.observe(latency_secs);
    }

    pub(crate) fn record_shed(&mut self) {
        self.shed += 1;
    }

    pub(crate) fn record_rejected(&mut self) {
        self.rejected += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holap_obs::{DEFAULT_BUCKETS, DEFAULT_MIN, DEFAULT_RATIO};

    #[test]
    fn record_accumulates() {
        let mut s = EngineStats::default();
        s.record(CompletionKind::Cpu, 0.1, true);
        s.record(CompletionKind::Gpu { translated: true }, 0.3, false);
        assert_eq!(s.completed, 2);
        assert_eq!(s.cpu_queries, 1);
        assert_eq!(s.gpu_queries, 1);
        assert_eq!(s.translated_queries, 1);
        assert_eq!(s.met_deadline, 1);
        assert!((s.mean_latency_secs() - 0.2).abs() < 1e-12);
        assert!((s.deadline_hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(s.max_latency_secs, 0.3);
        assert_eq!(s.latency.count(), 2);
    }

    #[test]
    fn cached_completion_attributes_no_partition() {
        let mut s = EngineStats::default();
        s.record(CompletionKind::Cached, 0.001, true);
        assert_eq!(s.completed, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cpu_queries, 0, "cache hits do no CPU work");
        assert_eq!(s.gpu_queries, 0, "cache hits do no GPU work");
        assert_eq!(s.translated_queries, 0);
    }

    #[test]
    fn shed_and_rejected_are_separate_from_completed() {
        let mut s = EngineStats::default();
        s.record_shed();
        s.record_shed();
        s.record_rejected();
        assert_eq!(s.shed, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed, 0);
        assert_eq!(s.latency.count(), 0);
    }

    #[test]
    fn in_flight_is_submitted_minus_resolved() {
        let mut s = EngineStats::default();
        s.submitted = 10;
        s.record(CompletionKind::Cpu, 0.1, true);
        s.record_shed();
        s.record_rejected();
        s.failed = 1;
        assert_eq!(s.in_flight(), 6);
        // A torn snapshot would break this; saturating keeps it total.
        s.submitted = 0;
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn empty_stats() {
        let s = EngineStats::default();
        assert_eq!(s.mean_latency_secs(), 0.0);
        assert_eq!(s.deadline_hit_ratio(), 1.0);
        assert_eq!(s.p50_latency_secs(), 0.0);
        assert_eq!(s.p99_latency_secs(), 0.0);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        // The engine's histogram is the shared holap-obs histogram; this
        // exercises it through the engine alias.
        let mut h = LatencyHistogram::default();
        for i in 1..=100u32 {
            h.observe(i as f64 * 1e-3); // 1 ms .. 100 ms
        }
        let (p50, p95, p99) = (
            h.quantile_secs(0.50),
            h.quantile_secs(0.95),
            h.quantile_secs(0.99),
        );
        assert!(p50 <= p95 && p95 <= p99, "quantiles are monotone");
        // Bucketed estimates overestimate by at most the 1.4 ratio.
        assert!(p50 >= 0.050 && p50 <= 0.050 * DEFAULT_RATIO);
        assert!(p95 >= 0.095 && p95 <= 0.095 * DEFAULT_RATIO);
        assert!(p99 >= 0.099 && p99 <= 0.099 * DEFAULT_RATIO);
    }

    #[test]
    fn histogram_extremes_clamp_to_end_buckets() {
        let mut h = LatencyHistogram::default();
        h.observe(0.0); // below the first bucket upper bound
        h.observe(1e9); // far above the last bucket
        assert_eq!(h.count(), 2);
        assert!((h.quantile_secs(0.0) - DEFAULT_MIN).abs() < 1e-18);
        assert_eq!(h.quantile_secs(1.0), h.bucket_upper(DEFAULT_BUCKETS - 1));
    }

    #[test]
    fn legacy_latency_snapshot_deserializes() {
        // Snapshots written before the histogram moved to holap-obs had
        // only {count, buckets}; they must keep loading.
        let legacy = r#"{"completed":1,"met_deadline":1,"cpu_queries":1,
            "gpu_queries":0,"translated_queries":0,"total_latency_secs":0.1,
            "max_latency_secs":0.1,"cache_hits":0,
            "latency":{"count":1,"buckets":[0,1]}}"#;
        let s: EngineStats = serde_json::from_str(legacy).unwrap();
        assert_eq!(s.completed, 1);
        assert_eq!(s.latency.count(), 1);
        assert_eq!(s.submitted, 0, "absent field defaults");
    }
}
