//! The engine's observability seam: one [`MetricsRegistry`] plus one
//! [`FlightRecorder`], with the hot-path instrument handles registered
//! once at build time so the per-query cost is a few relaxed atomics.
//!
//! Instruments follow the `holap_<subsystem>_<quantity>[_total]` naming
//! scheme (DESIGN.md §9). The whole struct lives behind an
//! `Option<Arc<EngineObs>>` on the engine core: when
//! [`ObsConfig::enabled`](holap_obs::ObsConfig) is false the option is
//! `None` and the disabled path is a single branch per call site.

use holap_obs::{
    Counter, FlightRecorder, Gauge, HistogramHandle, MetricsRegistry, MetricsSnapshot, ObsConfig,
    QueryTrace,
};

/// Placement label for completion instruments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PlacementLabel {
    /// Answered by the CPU processing partition.
    Cpu,
    /// Answered by a GPU partition.
    Gpu,
    /// Answered from the result cache.
    Cache,
}

impl PlacementLabel {
    fn as_str(self) -> &'static str {
        match self {
            Self::Cpu => "cpu",
            Self::Gpu => "gpu",
            Self::Cache => "cache",
        }
    }
}

/// Metrics registry + flight recorder + cached hot-path handles.
#[derive(Debug)]
pub struct EngineObs {
    registry: MetricsRegistry,
    recorder: FlightRecorder,
    submitted: Counter,
    completed: [Counter; 3],
    deadline_met: Counter,
    translated: Counter,
    shed: Counter,
    rejected: Counter,
    failed: Counter,
    rerouted: Counter,
    retries: Counter,
    timeouts: Counter,
    quarantines: Counter,
    readmissions: Counter,
    admission_depth: Gauge,
    admission_peak: Gauge,
    latency: [HistogramHandle; 3],
    residual_abs: HistogramHandle,
}

impl EngineObs {
    /// Builds the registry and recorder when `cfg.enabled`, `None`
    /// otherwise.
    pub(crate) fn build(cfg: &ObsConfig) -> Option<std::sync::Arc<Self>> {
        if !cfg.enabled {
            return None;
        }
        let registry = MetricsRegistry::new();
        let recorder = FlightRecorder::new(cfg.recorder_capacity, cfg.anomaly_capacity);
        let by_placement = |name: &str| {
            [
                registry.counter(name, &[("placement", PlacementLabel::Cpu.as_str())]),
                registry.counter(name, &[("placement", PlacementLabel::Gpu.as_str())]),
                registry.counter(name, &[("placement", PlacementLabel::Cache.as_str())]),
            ]
        };
        let hist_by_placement = |name: &str| {
            [
                registry.histogram(name, &[("placement", PlacementLabel::Cpu.as_str())]),
                registry.histogram(name, &[("placement", PlacementLabel::Gpu.as_str())]),
                registry.histogram(name, &[("placement", PlacementLabel::Cache.as_str())]),
            ]
        };
        Some(std::sync::Arc::new(Self {
            submitted: registry.counter("holap_engine_submitted_total", &[]),
            completed: by_placement("holap_engine_completed_total"),
            deadline_met: registry.counter("holap_engine_deadline_met_total", &[]),
            translated: registry.counter("holap_engine_translated_total", &[]),
            shed: registry.counter("holap_engine_shed_total", &[]),
            rejected: registry.counter("holap_engine_rejected_total", &[]),
            failed: registry.counter("holap_engine_failed_total", &[]),
            rerouted: registry.counter("holap_engine_rerouted_total", &[]),
            retries: registry.counter("holap_engine_retries_total", &[]),
            timeouts: registry.counter("holap_engine_timeouts_total", &[]),
            quarantines: registry.counter("holap_engine_quarantines_total", &[]),
            readmissions: registry.counter("holap_engine_readmissions_total", &[]),
            admission_depth: registry.gauge("holap_engine_admission_depth", &[]),
            admission_peak: registry.gauge("holap_engine_admission_peak_depth", &[]),
            latency: hist_by_placement("holap_engine_latency_seconds"),
            residual_abs: registry.histogram("holap_engine_estimate_abs_error_seconds", &[]),
            registry,
            recorder,
        }))
    }

    fn idx(p: PlacementLabel) -> usize {
        match p {
            PlacementLabel::Cpu => 0,
            PlacementLabel::Gpu => 1,
            PlacementLabel::Cache => 2,
        }
    }

    pub(crate) fn on_submitted(&self) {
        self.submitted.inc();
    }

    pub(crate) fn on_completed(
        &self,
        placement: PlacementLabel,
        latency_secs: f64,
        met_deadline: bool,
        translated: bool,
        residual_secs: Option<f64>,
    ) {
        self.completed[Self::idx(placement)].inc();
        self.latency[Self::idx(placement)].observe(latency_secs);
        if met_deadline {
            self.deadline_met.inc();
        }
        if translated {
            self.translated.inc();
        }
        if let Some(r) = residual_secs {
            self.residual_abs.observe(r.abs());
        }
    }

    pub(crate) fn on_shed(&self) {
        self.shed.inc();
    }

    pub(crate) fn on_rejected(&self) {
        self.rejected.inc();
    }

    pub(crate) fn on_failed(&self) {
        self.failed.inc();
    }

    pub(crate) fn on_rerouted(&self) {
        self.rerouted.inc();
    }

    pub(crate) fn on_retry(&self) {
        self.retries.inc();
    }

    pub(crate) fn on_timeout(&self) {
        self.timeouts.inc();
    }

    /// Fault counters are per-partition labelled; the fault path is cold,
    /// so the registry's read-lock lookup is fine here.
    pub(crate) fn on_fault(&self, partition: usize) {
        self.registry
            .counter(
                "holap_engine_partition_faults_total",
                &[("partition", &partition.to_string())],
            )
            .inc();
    }

    pub(crate) fn on_quarantines(&self, n: u64) {
        self.quarantines.add(n);
    }

    pub(crate) fn on_readmissions(&self, n: u64) {
        self.readmissions.add(n);
    }

    pub(crate) fn set_admission_depth(&self, depth: usize) {
        let d = depth as f64;
        self.admission_depth.set(d);
        self.admission_peak.set_max(d);
    }

    /// Seals a finished trace into the flight recorder.
    pub(crate) fn record_trace(&self, trace: QueryTrace) {
        self.recorder.record(trace);
    }

    /// The registry, for subsystems that register their own instruments
    /// (simulator export, benches).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Prometheus-style text exposition of every instrument.
    pub fn metrics_text(&self) -> String {
        self.registry.expose()
    }

    /// Point-in-time copy of every instrument.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holap_obs::TraceStatus;

    #[test]
    fn disabled_config_builds_nothing() {
        assert!(EngineObs::build(&ObsConfig::disabled()).is_none());
        assert!(EngineObs::build(&ObsConfig::default()).is_some());
    }

    #[test]
    fn instruments_land_in_the_exposition() {
        let obs = EngineObs::build(&ObsConfig::default()).unwrap();
        obs.on_submitted();
        obs.on_completed(PlacementLabel::Gpu, 0.01, true, true, Some(-0.002));
        obs.on_fault(3);
        obs.set_admission_depth(5);
        obs.set_admission_depth(2);
        let text = obs.metrics_text();
        assert!(text.contains("holap_engine_submitted_total 1"));
        assert!(text.contains("holap_engine_completed_total{placement=\"gpu\"} 1"));
        assert!(text.contains("holap_engine_partition_faults_total{partition=\"3\"} 1"));
        assert!(text.contains("holap_engine_admission_depth 2"));
        assert!(text.contains("holap_engine_admission_peak_depth 5"));
        let snap = obs.metrics_snapshot();
        assert_eq!(snap.counter("holap_engine_deadline_met_total", &[]), 1);
        assert_eq!(snap.counter("holap_engine_translated_total", &[]), 1);
        match &snap
            .get("holap_engine_estimate_abs_error_seconds", &[])
            .unwrap()
            .value
        {
            holap_obs::MetricValue::Histogram { histogram } => {
                assert_eq!(histogram.count(), 1);
                assert!((histogram.sum() - 0.002).abs() < 1e-6, "residual is |r|");
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn traces_reach_the_recorder() {
        let obs = EngineObs::build(&ObsConfig::default()).unwrap();
        let mut t = QueryTrace::new(7, 0.0);
        t.finish(0.1, TraceStatus::Completed);
        obs.record_trace(t);
        assert_eq!(obs.recorder().recorded(), 1);
        assert!(obs.recorder().find(7).is_some());
    }
}
