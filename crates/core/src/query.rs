//! The engine's query form and its lowering to cube and table queries.

use crate::error::EngineError;
use holap_cube::{CubeQuery, CubeSchema, DimRange};
use holap_dict::{DictionarySet, TextCondition};
use holap_table::{AggOp, AggSpec, ColumnId, Predicate, ScanQuery, TableSchema};
use serde::{Deserialize, Serialize};

/// The range part of one engine condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConditionRange {
    /// Inclusive integer coordinate range at the condition's level.
    Coords {
        /// Lower bound, inclusive.
        from: u32,
        /// Upper bound, inclusive.
        to: u32,
    },
    /// A text predicate to translate through the column's dictionary.
    Text(TextCondition),
    /// No restriction (the whole dimension).
    All,
}

/// One condition `C_L(f, t, r)` of an engine query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineCondition {
    /// Dimension index.
    pub dim: usize,
    /// Resolution level the range is expressed at.
    pub level: usize,
    /// The range.
    pub range: ConditionRange,
}

/// A query as submitted to the hybrid engine: per-dimension conditions, a
/// measure to aggregate, optional grouping, and an optional deadline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineQuery {
    /// Conditions (dimensions without one default to [`ConditionRange::All`]).
    pub conditions: Vec<EngineCondition>,
    /// Measure column to aggregate.
    pub measure: usize,
    /// Optional `GROUP BY (dimension, level)`: the answer then carries one
    /// [`Answer`] per distinct coordinate of that dimension level.
    pub group_by: Option<(usize, usize)>,
    /// Relative deadline `T_C` in seconds (`None` = system default).
    pub deadline_secs: Option<f64>,
}

impl EngineQuery {
    /// Starts an empty query on measure 0.
    pub fn new() -> Self {
        Self {
            conditions: Vec::new(),
            measure: 0,
            group_by: None,
            deadline_secs: None,
        }
    }

    /// Groups the answer by a dimension level (builder style).
    pub fn grouped_by(mut self, dim: usize, level: usize) -> Self {
        self.group_by = Some((dim, level));
        self
    }

    /// Adds a coordinate-range condition (builder style).
    pub fn range(mut self, dim: usize, level: usize, from: u32, to: u32) -> Self {
        self.conditions.push(EngineCondition {
            dim,
            level,
            range: ConditionRange::Coords { from, to },
        });
        self
    }

    /// Adds a text-equality condition (builder style).
    pub fn text_eq(mut self, dim: usize, level: usize, value: &str) -> Self {
        self.conditions.push(EngineCondition {
            dim,
            level,
            range: ConditionRange::Text(TextCondition::eq(value)),
        });
        self
    }

    /// Adds a substring (`contains`) condition (builder style).
    pub fn text_contains<S: Into<String>, I: IntoIterator<Item = S>>(
        mut self,
        dim: usize,
        level: usize,
        patterns: I,
    ) -> Self {
        self.conditions.push(EngineCondition {
            dim,
            level,
            range: ConditionRange::Text(TextCondition::contains(patterns)),
        });
        self
    }

    /// Adds a text-range condition (builder style).
    pub fn text_range(mut self, dim: usize, level: usize, from: &str, to: &str) -> Self {
        self.conditions.push(EngineCondition {
            dim,
            level,
            range: ConditionRange::Text(TextCondition::range(from, to)),
        });
        self
    }

    /// Selects the measure column (builder style).
    pub fn measure(mut self, measure: usize) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the deadline (builder style).
    pub fn deadline(mut self, secs: f64) -> Self {
        self.deadline_secs = Some(secs);
        self
    }

    /// The dictionary lengths of the text conditions — the `CDT`/`D_L`
    /// inputs of the translation cost bound (Eq. 16–17). `dict_column`
    /// names columns as [`holap_workload`-style] `"dim.level"` strings via
    /// the provided resolver.
    pub fn translation_dict_lens(&self, schema: &TableSchema, dicts: &DictionarySet) -> Vec<usize> {
        self.conditions
            .iter()
            .filter_map(|c| match &c.range {
                ConditionRange::Text(t) => {
                    let col = text_column_name(schema, c.dim, c.level);
                    // A range costs two lookups; the bound charges the
                    // dictionary length once per lookup (Eq. 18).
                    Some(std::iter::repeat_n(dicts.dict_len(&col), t.lookup_count()))
                }
                _ => None,
            })
            .flatten()
            .collect()
    }
}

impl Default for EngineQuery {
    fn default() -> Self {
        Self::new()
    }
}

/// Builder-style alias for [`EngineQuery`] — `EngineQuery` *is* its own
/// builder (`QueryBuilder::new().range(…).deadline(…)`), this name exists
/// for readers coming from builder-pattern APIs.
pub type QueryBuilder = EngineQuery;

/// Anything the engine accepts as a query submission: a structured
/// [`EngineQuery`] (owned or borrowed, built directly or via
/// [`QueryBuilder`]) or DSL text (`&str` / [`String`], see [`crate::dsl`]).
///
/// This is the single entry point unifying the historical
/// `query(&str)` / `execute(&EngineQuery)` split: every submission path
/// ([`crate::HybridSystem::submit`], `submit_batch`, and the delegating
/// wrappers) lowers its input through this trait. Also exported as
/// [`Submission`] from [`crate::prelude`].
pub trait IntoEngineQuery {
    /// Lowers `self` to a structured query against `schema` (DSL text is
    /// parsed and resolved here; structured forms pass through).
    fn into_engine_query(self, schema: &TableSchema) -> Result<EngineQuery, EngineError>;
}

/// Alias for [`IntoEngineQuery`] under the name the submission API uses.
pub use self::IntoEngineQuery as Submission;

impl IntoEngineQuery for EngineQuery {
    fn into_engine_query(self, _schema: &TableSchema) -> Result<EngineQuery, EngineError> {
        Ok(self)
    }
}

impl IntoEngineQuery for &EngineQuery {
    fn into_engine_query(self, _schema: &TableSchema) -> Result<EngineQuery, EngineError> {
        Ok(self.clone())
    }
}

impl IntoEngineQuery for &str {
    fn into_engine_query(self, schema: &TableSchema) -> Result<EngineQuery, EngineError> {
        crate::dsl::parse(self)?.resolve(schema)
    }
}

impl IntoEngineQuery for String {
    fn into_engine_query(self, schema: &TableSchema) -> Result<EngineQuery, EngineError> {
        self.as_str().into_engine_query(schema)
    }
}

impl IntoEngineQuery for &String {
    fn into_engine_query(self, schema: &TableSchema) -> Result<EngineQuery, EngineError> {
        self.as_str().into_engine_query(schema)
    }
}

/// Canonical dictionary-column name for a (dimension, level) pair —
/// mirrors `holap_workload::facts::text_column_name` so engine and
/// generator agree without a dependency between them.
pub fn text_column_name(schema: &TableSchema, dim: usize, level: usize) -> String {
    format!(
        "{}.{}",
        schema.dimensions[dim].name, schema.dimensions[dim].levels[level].name
    )
}

/// A resolved substring condition: the set of matching codes on one
/// dimension level.
#[derive(Debug, Clone, PartialEq)]
pub struct SetCondition {
    /// Dimension index.
    pub dim: usize,
    /// Level index.
    pub level: usize,
    /// Sorted matching codes (possibly empty — the query returns nothing).
    pub codes: Vec<u32>,
}

/// The fully-resolved (translated) form of a query: every condition as an
/// integer coordinate range, plus any substring conditions as code sets.
///
/// Multiple conditions per dimension (at different levels — the paper's
/// Eq. 11 decomposition) are supported: `scan_conditions` keeps every
/// condition at its own level for the GPU scan, while `ranges` holds the
/// per-dimension *intersection* widened to the finest condition level for
/// cube planning.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedQuery {
    /// Per-dimension intersected ranges (one per dimension), in dimension
    /// order, each at the finest level its dimension's conditions use.
    pub ranges: Vec<DimRange>,
    /// Every original range condition at its own level, as `(dim, range)`
    /// pairs — one GPU filter column each (Eq. 11/12).
    pub scan_conditions: Vec<(usize, DimRange)>,
    /// Substring (code-set) conditions. A query with any of these cannot
    /// be answered from a cube region and is GPU-only.
    pub sets: Vec<SetCondition>,
    /// Measure column.
    pub measure: usize,
    /// True when the query provably selects nothing — some dimension's
    /// conditions intersect to an empty range, or a substring condition
    /// matched no dictionary entry. The answer is empty without running
    /// anything.
    pub provably_empty: bool,
}

impl ResolvedQuery {
    /// Resolves an [`EngineQuery`] against a schema + dictionaries:
    /// validates dimension coverage, translates text conditions, and fills
    /// unconstrained dimensions with [`ConditionRange::All`].
    pub fn resolve(
        q: &EngineQuery,
        table_schema: &TableSchema,
        cube_schema: &CubeSchema,
        dicts: &DictionarySet,
    ) -> Result<Self, EngineError> {
        let ndim = cube_schema.ndim();
        if q.measure >= table_schema.measures.len() {
            return Err(EngineError::Query(format!(
                "measure {} out of range ({} measures)",
                q.measure,
                table_schema.measures.len()
            )));
        }
        let mut per_dim: Vec<Vec<DimRange>> = vec![Vec::new(); ndim];
        let mut sets: Vec<SetCondition> = Vec::new();
        let mut provably_empty = false;
        for c in &q.conditions {
            if c.dim >= ndim {
                return Err(EngineError::Query(format!(
                    "dimension {} out of range",
                    c.dim
                )));
            }
            let levels = cube_schema.dimensions[c.dim].levels.len();
            if c.level >= levels {
                return Err(EngineError::Query(format!(
                    "dimension {} has {} levels, condition uses level {}",
                    c.dim, levels, c.level
                )));
            }
            let range = match &c.range {
                ConditionRange::Coords { from, to } => DimRange::new(c.level, *from, *to),
                ConditionRange::All => {
                    let card = cube_schema.cardinality_at(c.dim, c.level);
                    DimRange::new(c.level, 0, card - 1)
                }
                ConditionRange::Text(t) => {
                    let col = text_column_name(table_schema, c.dim, c.level);
                    match dicts.translate_selection(&col, t)? {
                        holap_dict::CodeSelection::Range(lo, hi) => DimRange::new(c.level, lo, hi),
                        holap_dict::CodeSelection::Set(codes) => {
                            // A substring that matches no dictionary entry
                            // selects nothing — the whole conjunction is
                            // empty and nothing needs to run.
                            if codes.is_empty() {
                                provably_empty = true;
                            }
                            // The set filters rows; the cube-facing range
                            // for this dimension stays unrestricted.
                            sets.push(SetCondition {
                                dim: c.dim,
                                level: c.level,
                                codes,
                            });
                            let card = cube_schema.cardinality_at(c.dim, c.level);
                            DimRange::new(c.level, 0, card - 1)
                        }
                    }
                }
            };
            if range.from > range.to {
                return Err(EngineError::Query(format!(
                    "condition on dimension {} has from > to",
                    c.dim
                )));
            }
            per_dim[c.dim].push(range);
        }
        // Per dimension: widen every condition to the finest level used on
        // that dimension and intersect (Eq. 11's multiple conditions per
        // dimension collapse to one box on the cube side).
        let mut scan_conditions = Vec::new();
        let mut ranges = Vec::with_capacity(ndim);
        for (d, conds) in per_dim.into_iter().enumerate() {
            if conds.is_empty() {
                ranges.push(DimRange::all(cube_schema, d));
                continue;
            }
            for r in &conds {
                scan_conditions.push((d, *r));
            }
            let finest = conds.iter().map(|r| r.level).max().expect("non-empty");
            let mut lo = 0u32;
            let mut hi = cube_schema.cardinality_at(d, finest) - 1;
            for r in &conds {
                let (f, t) = cube_schema.widen_range(d, r.level, finest, (r.from, r.to));
                lo = lo.max(f);
                hi = hi.min(t);
            }
            if lo > hi {
                provably_empty = true;
                // Keep a valid placeholder so downstream geometry holds.
                ranges.push(DimRange::new(finest, 0, 0));
            } else {
                ranges.push(DimRange::new(finest, lo, hi));
            }
        }
        Ok(Self {
            ranges,
            scan_conditions,
            sets,
            measure: q.measure,
            provably_empty,
        })
    }

    /// Whether the query can be answered from a cube (no code-set
    /// conditions).
    pub fn cube_answerable(&self) -> bool {
        self.sets.is_empty()
    }

    /// The cube-side form.
    pub fn cube_query(&self) -> CubeQuery {
        CubeQuery::new(self.ranges.clone())
    }

    /// The GPU-side scan: range predicates for every *restrictive*
    /// condition (full-level ranges are dropped — they filter nothing and
    /// the GPU "reads a column only if the query restricts it", Eq. 12),
    /// plus SUM + COUNT of the measure.
    pub fn scan_query(&self, cube_schema: &CubeSchema) -> ScanQuery {
        let mut q = ScanQuery::new();
        for &(dim, r) in &self.scan_conditions {
            let card = cube_schema.cardinality_at(dim, r.level);
            if r.from > 0 || r.to < card - 1 {
                q = q.filter(Predicate::range(
                    ColumnId::dim(dim, cube_schema.level_for(dim, r.level)),
                    r.from,
                    r.to,
                ));
            }
        }
        for s in &self.sets {
            q = q.filter_set(holap_table::SetPredicate::new(
                ColumnId::dim(s.dim, cube_schema.level_for(s.dim, s.level)),
                s.codes.clone(),
            ));
        }
        q.aggregate(AggSpec::new(AggOp::Sum, Some(self.measure)))
            .aggregate(AggSpec::count_star())
    }
}

/// The uniform answer of the hybrid engine: the aggregate of the selected
/// measure over the selected region, as stored by cube cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Answer {
    /// Sum of the measure over matching fact rows.
    pub sum: f64,
    /// Number of matching fact rows.
    pub count: u64,
}

impl Answer {
    /// The mean, if any row matched.
    pub fn avg(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holap_dict::DictKind;

    fn schemas() -> (TableSchema, CubeSchema) {
        let t = TableSchema::builder()
            .dimension("time", &[("year", 4), ("month", 16)])
            .dimension("geo", &[("region", 4), ("city", 8)])
            .measure("sales")
            .measure("qty")
            .build();
        let c = CubeSchema::from_table_schema(&t);
        (t, c)
    }

    fn dicts(t: &TableSchema) -> DictionarySet {
        let mut d = DictionarySet::new(DictKind::Sorted);
        d.build_column(
            &text_column_name(t, 1, 1),
            [
                "Austin", "Boston", "Chicago", "Denver", "Erie", "Fargo", "Galva", "Hilo",
            ],
        );
        d
    }

    #[test]
    fn resolve_fills_missing_dims_with_all() {
        let (t, c) = schemas();
        let q = EngineQuery::new().range(0, 1, 3, 9);
        let r = ResolvedQuery::resolve(&q, &t, &c, &dicts(&t)).unwrap();
        assert_eq!(r.ranges[0], DimRange::new(1, 3, 9));
        assert_eq!(r.ranges[1], DimRange::new(0, 0, 3)); // all regions
    }

    #[test]
    fn resolve_translates_text() {
        let (t, c) = schemas();
        let q = EngineQuery::new().text_eq(1, 1, "Chicago").measure(1);
        let r = ResolvedQuery::resolve(&q, &t, &c, &dicts(&t)).unwrap();
        assert_eq!(r.ranges[1], DimRange::new(1, 2, 2));
        assert_eq!(r.measure, 1);
        // Text ranges too.
        let q = EngineQuery::new().text_range(1, 1, "B", "E");
        let r = ResolvedQuery::resolve(&q, &t, &c, &dicts(&t)).unwrap();
        assert_eq!(r.ranges[1], DimRange::new(1, 1, 3)); // Boston..Denver
    }

    #[test]
    fn resolve_rejects_malformed() {
        let (t, c) = schemas();
        let d = dicts(&t);
        let err = |q: EngineQuery| ResolvedQuery::resolve(&q, &t, &c, &d).unwrap_err();
        assert!(matches!(
            err(EngineQuery::new().measure(5)),
            EngineError::Query(_)
        ));
        assert!(matches!(
            err(EngineQuery::new().range(7, 0, 0, 1)),
            EngineError::Query(_)
        ));
        assert!(matches!(
            err(EngineQuery::new().range(0, 9, 0, 1)),
            EngineError::Query(_)
        ));
        // Multiple conditions on one dimension are legal (Eq. 11): they
        // intersect at the finest level.
        let multi = ResolvedQuery::resolve(
            &EngineQuery::new().range(0, 0, 0, 1).range(0, 1, 4, 9),
            &t,
            &c,
            &d,
        )
        .unwrap();
        // Year 0..1 widens to months 0..7; intersect with months 4..9 → 4..7.
        assert_eq!(multi.ranges[0], DimRange::new(1, 4, 7));
        assert_eq!(
            multi.scan_conditions.len(),
            2,
            "both conditions reach the GPU scan"
        );
        assert!(!multi.provably_empty);
        // A contradictory pair is provably empty, not an error.
        let empty = ResolvedQuery::resolve(
            &EngineQuery::new().range(0, 0, 0, 0).range(0, 1, 12, 15),
            &t,
            &c,
            &d,
        )
        .unwrap();
        assert!(empty.provably_empty);
        assert!(matches!(
            err(EngineQuery::new().text_eq(1, 1, "Atlantis")),
            EngineError::Translate(_)
        ));
    }

    #[test]
    fn unmatched_substring_is_provably_empty() {
        // `contains` that matches no dictionary entry translates to an
        // empty code set: the conjunction selects nothing and the engine
        // can answer without dispatching a scan.
        let (t, c) = schemas();
        let d = dicts(&t);
        let r = ResolvedQuery::resolve(
            &EngineQuery::new().text_contains(1, 1, ["zzz-nowhere"]),
            &t,
            &c,
            &d,
        )
        .unwrap();
        assert!(r.provably_empty);
        assert_eq!(r.sets.len(), 1);
        assert!(r.sets[0].codes.is_empty());
        // A matching substring stays runnable.
        let r = ResolvedQuery::resolve(&EngineQuery::new().text_contains(1, 1, ["go"]), &t, &c, &d)
            .unwrap();
        assert!(!r.provably_empty);
    }

    #[test]
    fn scan_query_drops_full_ranges() {
        let (t, c) = schemas();
        let q = EngineQuery::new().range(0, 1, 2, 5);
        let r = ResolvedQuery::resolve(&q, &t, &c, &dicts(&t)).unwrap();
        let scan = r.scan_query(&c);
        assert_eq!(
            scan.predicates.len(),
            1,
            "the All dimension filters nothing"
        );
        assert_eq!(scan.predicates[0].column, ColumnId::dim(0, 1));
        // SUM + COUNT over 1 filter column + 1 measure → 2 columns.
        assert_eq!(scan.columns_accessed(), 2);
    }

    #[test]
    fn dict_lens_follow_eq16() {
        let (t, _c) = schemas();
        let d = dicts(&t);
        let q = EngineQuery::new().text_eq(1, 1, "Boston").range(0, 0, 0, 1);
        assert_eq!(q.translation_dict_lens(&t, &d), vec![8]);
        let q = EngineQuery::new().text_range(1, 1, "A", "Z");
        assert_eq!(
            q.translation_dict_lens(&t, &d),
            vec![8, 8],
            "range = two lookups"
        );
    }

    #[test]
    fn submissions_lower_to_the_same_query() {
        let (t, _c) = schemas();
        let structured = EngineQuery::new().range(0, 1, 3, 9).deadline(2.0);
        let via_ref = (&structured).into_engine_query(&t).unwrap();
        assert_eq!(via_ref, structured);
        let text = "select sum(sales) where time.month in 3..9 deadline 2";
        assert_eq!(text.into_engine_query(&t).unwrap(), structured);
        assert_eq!(
            String::from(text).into_engine_query(&t).unwrap(),
            structured
        );
        assert!(matches!(
            "selec nonsense".into_engine_query(&t),
            Err(EngineError::Parse(_))
        ));
    }

    #[test]
    fn answer_avg() {
        assert_eq!(
            Answer {
                sum: 10.0,
                count: 4
            }
            .avg(),
            Some(2.5)
        );
        assert_eq!(Answer { sum: 0.0, count: 0 }.avg(), None);
    }
}
