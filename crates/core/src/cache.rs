//! Result caching for repeated queries.
//!
//! OLAP dashboards re-issue the same drill-downs constantly, and this
//! system's data is immutable after build (the paper's cubes are
//! pre-calculated offline), so answers can be memoised safely. The cache
//! keys on the *resolved* query — translated coordinate ranges, code
//! sets, measure, grouping — so the same question phrased through
//! different text parameters (or through the DSL vs the builder) hits the
//! same entry. Eviction is FIFO with a fixed capacity; disabled by
//! default ([`crate::SystemConfig::cache_capacity`] = 0).

use crate::query::{Answer, ResolvedQuery};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// The canonical identity of a resolved query.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    ranges: Vec<(usize, u32, u32)>,
    sets: Vec<(usize, usize, Vec<u32>)>,
    measure: usize,
    group_by: Option<(usize, usize)>,
}

impl CacheKey {
    pub(crate) fn new(resolved: &ResolvedQuery, group_by: Option<(usize, usize)>) -> Self {
        Self {
            ranges: resolved
                .ranges
                .iter()
                .map(|r| (r.level, r.from, r.to))
                .collect(),
            sets: resolved
                .sets
                .iter()
                .map(|s| (s.dim, s.level, s.codes.clone()))
                .collect(),
            measure: resolved.measure,
            group_by,
        }
    }
}

/// A memoised answer (total + optional groups).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CachedAnswer {
    pub answer: Answer,
    pub groups: Option<Vec<(u32, Answer)>>,
}

/// Fixed-capacity FIFO result cache. Thread-safe.
#[derive(Debug)]
pub(crate) struct QueryCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CacheKey, CachedAnswer>,
    order: VecDeque<CacheKey>,
}

impl QueryCache {
    /// A cache holding at most `capacity` answers (0 disables it).
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks an answer up, counting the hit/miss.
    pub(crate) fn get(&self, key: &CacheKey) -> Option<CachedAnswer> {
        if self.capacity == 0 {
            return None;
        }
        let found = self.inner.lock().map.get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores an answer, evicting the oldest entry at capacity.
    pub(crate) fn put(&self, key: CacheKey, value: CachedAnswer) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if let std::collections::hash_map::Entry::Occupied(mut e) = inner.map.entry(key.clone()) {
            e.insert(value);
            return;
        }
        while inner.map.len() >= self.capacity {
            let Some(oldest) = inner.order.pop_front() else {
                break;
            };
            inner.map.remove(&oldest);
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, value);
    }

    /// `(hits, misses)` so far.
    pub(crate) fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::SetCondition;
    use holap_cube::DimRange;

    fn key(from: u32, measure: usize) -> CacheKey {
        let resolved = ResolvedQuery {
            ranges: vec![DimRange::new(1, from, from + 3)],
            scan_conditions: vec![(0, DimRange::new(1, from, from + 3))],
            sets: vec![SetCondition {
                dim: 0,
                level: 1,
                codes: vec![1, 5],
            }],
            measure,
            provably_empty: false,
        };
        CacheKey::new(&resolved, None)
    }

    fn answer(sum: f64) -> CachedAnswer {
        CachedAnswer {
            answer: Answer { sum, count: 1 },
            groups: None,
        }
    }

    #[test]
    fn hit_after_put() {
        let c = QueryCache::new(4);
        assert!(c.get(&key(0, 0)).is_none());
        c.put(key(0, 0), answer(1.0));
        assert_eq!(c.get(&key(0, 0)).unwrap().answer.sum, 1.0);
        assert_eq!(c.counters(), (1, 1));
    }

    #[test]
    fn distinct_queries_do_not_collide() {
        let c = QueryCache::new(4);
        c.put(key(0, 0), answer(1.0));
        assert!(c.get(&key(1, 0)).is_none(), "different range");
        assert!(c.get(&key(0, 1)).is_none(), "different measure");
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let c = QueryCache::new(2);
        c.put(key(0, 0), answer(0.0));
        c.put(key(1, 0), answer(1.0));
        c.put(key(2, 0), answer(2.0)); // evicts key(0)
        assert!(c.get(&key(0, 0)).is_none());
        assert!(c.get(&key(1, 0)).is_some());
        assert!(c.get(&key(2, 0)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = QueryCache::new(0);
        c.put(key(0, 0), answer(1.0));
        assert!(c.get(&key(0, 0)).is_none());
        assert_eq!(c.counters(), (0, 0), "disabled cache counts nothing");
    }
}
