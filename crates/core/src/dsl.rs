//! A small SQL-flavoured query DSL.
//!
//! ```text
//! select sum(measure0)
//! where time.level2 in 10..40
//!   and geo.level3 = 'Barton Falls'
//!   and product.level1 in 'A'..'Mz'
//! deadline 0.5
//! ```
//!
//! * the aggregate word (`sum` / `avg` / `count`) is accepted for
//!   readability — the engine always returns the full
//!   [`crate::Answer`] (sum, count, avg);
//! * dimensions, levels and measures are referenced by schema name (or by
//!   numeric index);
//! * quoted operands make a condition textual: it is translated through
//!   the column's dictionary before execution.
//!
//! Parsing is schema-free ([`parse`] → [`ParsedQuery`]); name resolution
//! happens against a concrete table schema ([`ParsedQuery::resolve`]),
//! which is what [`crate::HybridSystem::query`] does in one step.

use crate::error::EngineError;
use crate::query::{ConditionRange, EngineCondition, EngineQuery};
use holap_dict::TextCondition;
use holap_table::TableSchema;

/// A parsed, name-based condition operand.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedRange {
    /// `= 7`
    IntEq(u32),
    /// `in 3..9`
    IntRange(u32, u32),
    /// `= 'Boston'`
    TextEq(String),
    /// `in 'A'..'B'`
    TextRange(String, String),
    /// `contains 'x', 'y'`
    Contains(Vec<String>),
}

/// A parsed, name-based condition.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedCondition {
    /// Dimension name (or numeric index as text).
    pub dim: String,
    /// Level name (or numeric index as text).
    pub level: String,
    /// Operand.
    pub range: ParsedRange,
}

/// A parsed query before name resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// The aggregate word used (`sum`, `avg` or `count`).
    pub agg: String,
    /// Measure name (or numeric index as text).
    pub measure: String,
    /// Conditions in source order.
    pub conditions: Vec<ParsedCondition>,
    /// Optional `group by dim.level` clause.
    pub group_by: Option<(String, String)>,
    /// Optional deadline, seconds.
    pub deadline: Option<f64>,
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    Dot,
    DotDot,
    LParen,
    RParen,
    Eq,
    Star,
    Comma,
}

fn lex(text: &str) -> Result<Vec<Tok>, EngineError> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '=' => {
                chars.next();
                out.push(Tok::Eq);
            }
            '*' => {
                chars.next();
                out.push(Tok::Star);
            }
            ',' => {
                chars.next();
                out.push(Tok::Comma);
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some(c) => s.push(c),
                        None => return Err(EngineError::Parse("unterminated string".into())),
                    }
                }
                out.push(Tok::Str(s));
            }
            '.' => {
                chars.next();
                if chars.peek() == Some(&'.') {
                    chars.next();
                    out.push(Tok::DotDot);
                } else {
                    out.push(Tok::Dot);
                }
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else if d == '.' {
                        // Take the dot only for a true decimal ("0.25");
                        // "3..9" and "1.city" keep their dots as tokens.
                        let mut clone = chars.clone();
                        clone.next();
                        if !clone.peek().is_some_and(|c| c.is_ascii_digit()) {
                            break;
                        }
                        s.push('.');
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v: f64 = s
                    .parse()
                    .map_err(|_| EngineError::Parse(format!("bad number `{s}`")))?;
                out.push(Tok::Num(v));
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(s));
            }
            other => {
                return Err(EngineError::Parse(format!(
                    "unexpected character `{other}`"
                )))
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), EngineError> {
        match self.next() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(EngineError::Parse(format!(
                "expected `{kw}`, found {other:?}"
            ))),
        }
    }

    fn keyword_is(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn ident(&mut self, what: &str) -> Result<String, EngineError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(EngineError::Parse(format!(
                "expected {what}, found {other:?}"
            ))),
        }
    }

    /// A schema reference: a name, or a bare non-negative integer index.
    fn name_token(&mut self, what: &str) -> Result<String, EngineError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(Tok::Num(v)) if v.fract() == 0.0 && v >= 0.0 => Ok(format!("{}", v as u64)),
            other => Err(EngineError::Parse(format!(
                "expected {what}, found {other:?}"
            ))),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), EngineError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => Err(EngineError::Parse(format!(
                "expected {tok:?}, found {other:?}"
            ))),
        }
    }

    fn int(&mut self) -> Result<u32, EngineError> {
        match self.next() {
            Some(Tok::Num(v)) if v.fract() == 0.0 && v >= 0.0 && v <= u32::MAX as f64 => {
                Ok(v as u32)
            }
            other => Err(EngineError::Parse(format!(
                "expected integer, found {other:?}"
            ))),
        }
    }

    fn condition(&mut self) -> Result<ParsedCondition, EngineError> {
        let dim = self.name_token("dimension name")?;
        self.expect(Tok::Dot)?;
        let level = self.name_token("level name")?;
        match self.next() {
            Some(Tok::Eq) => match self.next() {
                Some(Tok::Num(v)) if v.fract() == 0.0 => Ok(ParsedCondition {
                    dim,
                    level,
                    range: ParsedRange::IntEq(v as u32),
                }),
                Some(Tok::Str(s)) => Ok(ParsedCondition {
                    dim,
                    level,
                    range: ParsedRange::TextEq(s),
                }),
                other => Err(EngineError::Parse(format!(
                    "expected operand after `=`: {other:?}"
                ))),
            },
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("contains") => {
                let mut patterns = Vec::new();
                loop {
                    match self.next() {
                        Some(Tok::Str(s)) => patterns.push(s),
                        other => {
                            return Err(EngineError::Parse(format!(
                                "expected quoted pattern after `contains`, found {other:?}"
                            )))
                        }
                    }
                    if matches!(self.peek(), Some(Tok::Comma)) {
                        self.next();
                    } else {
                        break;
                    }
                }
                Ok(ParsedCondition {
                    dim,
                    level,
                    range: ParsedRange::Contains(patterns),
                })
            }
            Some(Tok::Ident(kw)) if kw.eq_ignore_ascii_case("in") => match self.next() {
                Some(Tok::Num(v)) if v.fract() == 0.0 => {
                    self.expect(Tok::DotDot)?;
                    let to = self.int()?;
                    Ok(ParsedCondition {
                        dim,
                        level,
                        range: ParsedRange::IntRange(v as u32, to),
                    })
                }
                Some(Tok::Str(from)) => {
                    self.expect(Tok::DotDot)?;
                    match self.next() {
                        Some(Tok::Str(to)) => Ok(ParsedCondition {
                            dim,
                            level,
                            range: ParsedRange::TextRange(from, to),
                        }),
                        other => Err(EngineError::Parse(format!(
                            "expected string upper bound, found {other:?}"
                        ))),
                    }
                }
                other => Err(EngineError::Parse(format!(
                    "expected range after `in`: {other:?}"
                ))),
            },
            other => Err(EngineError::Parse(format!(
                "expected `=` or `in` after column, found {other:?}"
            ))),
        }
    }
}

/// Parses DSL text into a name-based [`ParsedQuery`].
pub fn parse(text: &str) -> Result<ParsedQuery, EngineError> {
    let mut p = Parser {
        toks: lex(text)?,
        pos: 0,
    };
    p.expect_keyword("select")?;
    let agg = p.ident("aggregate (sum/avg/count)")?.to_lowercase();
    if !matches!(agg.as_str(), "sum" | "avg" | "count") {
        return Err(EngineError::Parse(format!("unknown aggregate `{agg}`")));
    }
    p.expect(Tok::LParen)?;
    let measure = match p.peek() {
        Some(Tok::Star) if agg == "count" => {
            p.next();
            "0".to_owned()
        }
        _ => p.name_token("measure")?,
    };
    p.expect(Tok::RParen)?;

    let mut conditions = Vec::new();
    if p.keyword_is("where") {
        p.next();
        loop {
            conditions.push(p.condition()?);
            if p.keyword_is("and") {
                p.next();
            } else {
                break;
            }
        }
    }
    let group_by = if p.keyword_is("group") {
        p.next();
        p.expect_keyword("by")?;
        let dim = p.name_token("group dimension")?;
        p.expect(Tok::Dot)?;
        let level = p.name_token("group level")?;
        Some((dim, level))
    } else {
        None
    };
    let deadline = if p.keyword_is("deadline") {
        p.next();
        match p.next() {
            Some(Tok::Num(v)) if v > 0.0 => Some(v),
            other => {
                return Err(EngineError::Parse(format!(
                    "expected positive deadline, found {other:?}"
                )))
            }
        }
    } else {
        None
    };
    if let Some(t) = p.peek() {
        return Err(EngineError::Parse(format!("trailing input at {t:?}")));
    }
    Ok(ParsedQuery {
        agg,
        measure,
        conditions,
        group_by,
        deadline,
    })
}

fn resolve_index<'a, I: Iterator<Item = &'a str>>(
    token: &str,
    names: I,
    what: &str,
) -> Result<usize, EngineError> {
    let names: Vec<&str> = names.collect();
    if let Some(i) = names.iter().position(|&n| n == token) {
        return Ok(i);
    }
    if let Ok(i) = token.parse::<usize>() {
        if i < names.len() {
            return Ok(i);
        }
    }
    Err(EngineError::Parse(format!(
        "unknown {what} `{token}` (expected one of {names:?} or an index)"
    )))
}

impl ParsedQuery {
    /// Resolves names against a table schema, producing an executable
    /// [`EngineQuery`].
    pub fn resolve(&self, schema: &TableSchema) -> Result<EngineQuery, EngineError> {
        let measure = resolve_index(
            &self.measure,
            schema.measures.iter().map(|m| m.name.as_str()),
            "measure",
        )?;
        let group_by = match &self.group_by {
            None => None,
            Some((d, l)) => {
                let dim = resolve_index(
                    d,
                    schema.dimensions.iter().map(|x| x.name.as_str()),
                    "dimension",
                )?;
                let level = resolve_index(
                    l,
                    schema.dimensions[dim]
                        .levels
                        .iter()
                        .map(|x| x.name.as_str()),
                    "level",
                )?;
                Some((dim, level))
            }
        };
        let mut q = EngineQuery {
            conditions: Vec::new(),
            measure,
            group_by,
            deadline_secs: self.deadline,
        };
        for c in &self.conditions {
            let dim = resolve_index(
                &c.dim,
                schema.dimensions.iter().map(|d| d.name.as_str()),
                "dimension",
            )?;
            let level = resolve_index(
                &c.level,
                schema.dimensions[dim]
                    .levels
                    .iter()
                    .map(|l| l.name.as_str()),
                "level",
            )?;
            let range = match &c.range {
                ParsedRange::IntEq(v) => ConditionRange::Coords { from: *v, to: *v },
                ParsedRange::IntRange(f, t) => ConditionRange::Coords { from: *f, to: *t },
                ParsedRange::TextEq(s) => ConditionRange::Text(TextCondition::eq(s.clone())),
                ParsedRange::TextRange(f, t) => {
                    ConditionRange::Text(TextCondition::range(f.clone(), t.clone()))
                }
                ParsedRange::Contains(patterns) => {
                    ConditionRange::Text(TextCondition::contains(patterns.clone()))
                }
            };
            q.conditions.push(EngineCondition { dim, level, range });
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::builder()
            .dimension("time", &[("year", 4), ("month", 16)])
            .dimension("geo", &[("region", 4), ("city", 8)])
            .measure("sales")
            .measure("qty")
            .build()
    }

    #[test]
    fn full_query_parses_and_resolves() {
        let text = "select sum(qty) where time.month in 3..9 and geo.city = 'Boston' deadline 0.25";
        let parsed = parse(text).unwrap();
        assert_eq!(parsed.agg, "sum");
        assert_eq!(parsed.deadline, Some(0.25));
        let q = parsed.resolve(&schema()).unwrap();
        assert_eq!(q.measure, 1);
        assert_eq!(q.conditions.len(), 2);
        assert_eq!(q.conditions[0].dim, 0);
        assert_eq!(q.conditions[0].level, 1);
        assert_eq!(
            q.conditions[0].range,
            ConditionRange::Coords { from: 3, to: 9 }
        );
        assert_eq!(
            q.conditions[1].range,
            ConditionRange::Text(TextCondition::eq("Boston"))
        );
    }

    #[test]
    fn text_ranges_and_indices() {
        let text = "select avg(0) where 1.city in 'A'..'Mz'";
        let q = parse(text).unwrap().resolve(&schema()).unwrap();
        assert_eq!(q.measure, 0);
        assert_eq!(q.conditions[0].dim, 1);
        assert_eq!(
            q.conditions[0].range,
            ConditionRange::Text(TextCondition::range("A", "Mz"))
        );
    }

    #[test]
    fn count_star() {
        let q = parse("select count(*)")
            .unwrap()
            .resolve(&schema())
            .unwrap();
        assert_eq!(q.measure, 0);
        assert!(q.conditions.is_empty());
        assert_eq!(q.deadline_secs, None);
    }

    #[test]
    fn equality_conditions() {
        let q = parse("select sum(sales) where time.year = 2")
            .unwrap()
            .resolve(&schema())
            .unwrap();
        assert_eq!(
            q.conditions[0].range,
            ConditionRange::Coords { from: 2, to: 2 }
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("SELECT SUM(sales) WHERE time.year IN 0..1 DEADLINE 1").is_ok());
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "sum(sales)",                                  // missing select
            "select blah(sales)",                          // unknown aggregate
            "select sum sales",                            // missing parens
            "select sum(sales) where time.year",           // missing op
            "select sum(sales) where time.year in 3",      // missing range end
            "select sum(sales) where time.year = 'x' and", // dangling and
            "select sum(sales) deadline 0",                // non-positive deadline
            "select sum(sales) trailing",                  // trailing tokens
            "select sum(sales) where time.year = 'unterminated",
        ] {
            assert!(parse(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn resolve_errors_name_the_unknown() {
        let parsed = parse("select sum(sales) where space.year = 1").unwrap();
        let err = parsed.resolve(&schema()).unwrap_err();
        assert!(err.to_string().contains("space"));
        let parsed = parse("select sum(profit)").unwrap();
        assert!(parsed.resolve(&schema()).is_err());
    }

    #[test]
    fn numeric_dotdot_is_not_a_float() {
        let q = parse("select sum(sales) where time.month in 10..12")
            .unwrap()
            .resolve(&schema())
            .unwrap();
        assert_eq!(
            q.conditions[0].range,
            ConditionRange::Coords { from: 10, to: 12 }
        );
    }
}
