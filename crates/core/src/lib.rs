//! The hybrid GPU/CPU OLAP engine — the system a downstream user adopts.
//!
//! `holap-core` wires every substrate of the reproduction into one running
//! system (paper §III-A):
//!
//! * a **CPU processing partition**: a rayon pool answering queries from
//!   pre-calculated multi-resolution MOLAP cubes (`holap-cube`);
//! * a **CPU translation partition**: a dedicated worker translating text
//!   parameters to integer codes (`holap-dict`) for GPU-bound queries;
//! * **GPU partitions**: the simulated Fermi device (`holap-gpusim`)
//!   answering queries from the dictionary-encoded fact table in its
//!   global memory, with concurrent kernel execution;
//! * the **co-scheduler** (`holap-sched`) placing every query from the
//!   measured performance models (`holap-model`), on the wall clock.
//!
//! Queries are expressed either with the structured [`EngineQuery`] builder
//! or with the small SQL-flavoured DSL in [`dsl`]:
//!
//! ```text
//! select sum(measure0)
//! where time.level2 in 10..40 and geo.level3 = 'Barton Falls'
//! deadline 0.5
//! ```
//!
//! # Example
//!
//! ```
//! use holap_core::{EngineQuery, HybridSystem, SystemConfig};
//! use holap_workload::{FactsSpec, NameStyle, PaperHierarchy, SyntheticFacts, TextLevel};
//! use holap_dict::DictKind;
//!
//! // A laptop-scale instance of the paper's geometry.
//! let hierarchy = PaperHierarchy::scaled_down(8);
//! let facts = SyntheticFacts::generate(&FactsSpec {
//!     schema: hierarchy.table_schema(),
//!     rows: 20_000,
//!     text_levels: vec![TextLevel { dim: 1, level: 3, style: NameStyle::City }],
//!     dict_kind: DictKind::Sorted,
//!     skew: None,
//!     seed: 7,
//! });
//! let system = HybridSystem::builder(SystemConfig::default())
//!     .facts(facts)
//!     .cube_at(1)
//!     .cube_at(2)
//!     .build()
//!     .unwrap();
//!
//! let outcome = system
//!     .query("select sum(measure0) where time.level1 in 0..1")
//!     .unwrap();
//! assert!(outcome.answer.count > 0);
//! ```
//!
//! # Asynchronous submission
//!
//! [`HybridSystem::query`] and [`HybridSystem::execute`] are synchronous
//! wrappers over the admission pipeline (see [`admission`]). Callers that
//! can overlap queries should use [`HybridSystem::submit`] /
//! [`HybridSystem::submit_batch`], which accept anything implementing
//! [`IntoEngineQuery`] and return [`QueryTicket`]s immediately.

#![warn(missing_docs)]

pub mod admission;
pub(crate) mod cache;
pub mod config;
pub mod dsl;
pub mod engine;
pub mod error;
pub mod obs;
pub mod query;
pub mod stats;

pub use admission::QueryTicket;
pub use config::{
    AdmissionConfig, BackpressurePolicy, FaultToleranceConfig, RetryConfig, SheddingPolicy,
    SystemConfig,
};
pub use engine::{HybridSystem, HybridSystemBuilder, QueryOutcome};
pub use error::EngineError;
pub use obs::EngineObs;
pub use query::{
    Answer, ConditionRange, EngineCondition, EngineQuery, IntoEngineQuery, QueryBuilder, Submission,
};
pub use stats::{EngineStats, LatencyHistogram};

/// One-stop imports for typical engine use:
/// `use holap_core::prelude::*;`.
pub mod prelude {
    pub use crate::admission::QueryTicket;
    pub use crate::config::{
        AdmissionConfig, BackpressurePolicy, FaultToleranceConfig, RetryConfig, SheddingPolicy,
        SystemConfig,
    };
    pub use crate::engine::{HybridSystem, HybridSystemBuilder, QueryOutcome};
    pub use crate::error::EngineError;
    pub use crate::query::{Answer, EngineQuery, IntoEngineQuery, QueryBuilder, Submission};
    pub use crate::stats::EngineStats;
}

// Re-export the substrate crates under one roof for downstream users.
pub use holap_cube as cube;
pub use holap_dict as dict;
pub use holap_gpusim as gpusim;
pub use holap_model as model;
pub use holap_obs as observability;
pub use holap_sched as sched;
pub use holap_table as table;
