//! Engine error type.

use holap_cube::QueryError;
use holap_dict::TranslateError;
use holap_gpusim::{DeviceError, KernelError};
use holap_table::ScanError;
use std::fmt;

/// Anything that can go wrong while building the system or executing a
/// query.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query is malformed for the system's schema.
    Query(String),
    /// Cube-query validation failed.
    Cube(QueryError),
    /// Text translation failed (unknown column / value, unsupported range).
    Translate(TranslateError),
    /// Fact-table scan validation failed.
    Scan(ScanError),
    /// Device-level failure.
    Device(DeviceError),
    /// The DSL text could not be parsed.
    Parse(String),
    /// System construction was invalid (missing facts, bad resolution…).
    Build(String),
    /// The admission pipeline refused the query: a bounded queue was full
    /// under [`Reject`](crate::config::BackpressurePolicy::Reject)
    /// backpressure, or load shedding predicted a hopeless deadline under
    /// [`SheddingPolicy::Reject`](crate::config::SheddingPolicy::Reject).
    Overloaded(String),
    /// The system shut down while the query was in flight.
    Shutdown,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Query(m) => write!(f, "invalid query: {m}"),
            Self::Cube(e) => write!(f, "cube query error: {e}"),
            Self::Translate(e) => write!(f, "translation error: {e}"),
            Self::Scan(e) => write!(f, "scan error: {e}"),
            Self::Device(e) => write!(f, "device error: {e}"),
            Self::Parse(m) => write!(f, "parse error: {m}"),
            Self::Build(m) => write!(f, "build error: {m}"),
            Self::Overloaded(m) => write!(f, "overloaded: {m}"),
            Self::Shutdown => write!(f, "system shut down"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        Self::Cube(e)
    }
}
impl From<TranslateError> for EngineError {
    fn from(e: TranslateError) -> Self {
        Self::Translate(e)
    }
}
impl From<ScanError> for EngineError {
    fn from(e: ScanError) -> Self {
        Self::Scan(e)
    }
}
impl From<DeviceError> for EngineError {
    fn from(e: DeviceError) -> Self {
        Self::Device(e)
    }
}
impl From<KernelError> for EngineError {
    fn from(e: KernelError) -> Self {
        match e {
            KernelError::Device(d) => Self::Device(d),
            KernelError::Scan(s) => Self::Scan(s),
        }
    }
}
