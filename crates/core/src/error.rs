//! Engine error type.

use holap_cube::QueryError;
use holap_dict::TranslateError;
use holap_gpusim::{DeviceError, KernelError};
use holap_table::ScanError;
use std::fmt;

/// Anything that can go wrong while building the system or executing a
/// query.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The query is malformed for the system's schema.
    Query(String),
    /// Cube-query validation failed.
    Cube(QueryError),
    /// Text translation failed (unknown column / value, unsupported range).
    Translate(TranslateError),
    /// Fact-table scan validation failed.
    Scan(ScanError),
    /// Device-level failure.
    Device(DeviceError),
    /// The DSL text could not be parsed.
    Parse(String),
    /// System construction was invalid (missing facts, bad resolution…).
    Build(String),
    /// The admission pipeline refused the query: a bounded queue was full
    /// under [`Reject`](crate::config::BackpressurePolicy::Reject)
    /// backpressure, or load shedding predicted a hopeless deadline under
    /// [`SheddingPolicy::Reject`](crate::config::SheddingPolicy::Reject).
    Overloaded(String),
    /// The system shut down while the query was in flight.
    Shutdown,
    /// The query's kernel execution failed on every attempt (injected
    /// fault, kernel panic, or a lost partition worker) and the retry
    /// budget is spent. The ticket resolves instead of hanging.
    ExecutionFailed {
        /// How many attempts were made (1 = no retries).
        attempts: u32,
        /// The last underlying failure.
        message: String,
    },
    /// The per-query watchdog expired: the partition did not answer
    /// within the configured deadline
    /// ([`FaultToleranceConfig::watchdog_secs`](crate::config::FaultToleranceConfig)).
    Timeout {
        /// The GPU partition that went silent.
        partition: usize,
        /// The watchdog window that elapsed, seconds.
        after_secs: f64,
    },
}

impl EngineError {
    /// Whether a retry could plausibly succeed: execution-level failures
    /// (injected faults, contained panics, lost workers, watchdog
    /// timeouts) are transient; validation, translation and build errors
    /// are deterministic and final.
    pub fn is_transient(&self) -> bool {
        matches!(self, Self::ExecutionFailed { .. } | Self::Timeout { .. })
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Query(m) => write!(f, "invalid query: {m}"),
            Self::Cube(e) => write!(f, "cube query error: {e}"),
            Self::Translate(e) => write!(f, "translation error: {e}"),
            Self::Scan(e) => write!(f, "scan error: {e}"),
            Self::Device(e) => write!(f, "device error: {e}"),
            Self::Parse(m) => write!(f, "parse error: {m}"),
            Self::Build(m) => write!(f, "build error: {m}"),
            Self::Overloaded(m) => write!(f, "overloaded: {m}"),
            Self::Shutdown => write!(f, "system shut down"),
            Self::ExecutionFailed { attempts, message } => {
                write!(f, "execution failed after {attempts} attempt(s): {message}")
            }
            Self::Timeout {
                partition,
                after_secs,
            } => write!(
                f,
                "partition {partition} did not answer within {after_secs} s"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<QueryError> for EngineError {
    fn from(e: QueryError) -> Self {
        Self::Cube(e)
    }
}
impl From<TranslateError> for EngineError {
    fn from(e: TranslateError) -> Self {
        Self::Translate(e)
    }
}
impl From<ScanError> for EngineError {
    fn from(e: ScanError) -> Self {
        Self::Scan(e)
    }
}
impl From<DeviceError> for EngineError {
    fn from(e: DeviceError) -> Self {
        Self::Device(e)
    }
}
impl From<KernelError> for EngineError {
    fn from(e: KernelError) -> Self {
        match e {
            KernelError::Device(d) => Self::Device(d),
            KernelError::Scan(s) => Self::Scan(s),
            // Transient kernel-level failures: the runner may retry them,
            // so they carry an attempt count from the start.
            e @ (KernelError::Injected { .. }
            | KernelError::Panicked(_)
            | KernelError::PartitionLost(_)) => Self::ExecutionFailed {
                attempts: 1,
                message: e.to_string(),
            },
        }
    }
}
