//! Deterministic pools of TPC-DS-like strings.
//!
//! Dictionary behaviour depends on key cardinality and length distribution,
//! not on the actual words, so syllable-composed synthetic names are an
//! adequate stand-in for TPC-DS city/customer/brand columns (see DESIGN.md,
//! substitution table).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The flavour of strings to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameStyle {
    /// City-like names ("Barton Falls", "Newcrest").
    City,
    /// Person-like names ("Dana Oakfield").
    Person,
    /// Brand-like names ("Maxibright #3").
    Brand,
}

const SYLLABLES: &[&str] = &[
    "bar", "new", "oak", "riv", "stone", "wood", "lake", "hill", "fair", "glen", "mill", "spring",
    "crest", "dale", "ford", "haven", "bridge", "port", "marsh", "ash", "bright", "clear", "deep",
    "east", "west", "north", "south", "gold", "silver", "iron",
];

const SUFFIXES_CITY: &[&str] = &[
    "ton", "ville", "burg", "field", "wood", " Falls", " Springs", " Heights",
];
const FIRST_NAMES: &[&str] = &[
    "Dana", "Alex", "Sam", "Robin", "Casey", "Jordan", "Taylor", "Morgan", "Riley", "Avery",
    "Quinn", "Harper", "Rowan", "Sage", "Emerson", "Finley",
];

fn one_name(style: NameStyle, rng: &mut StdRng) -> String {
    match style {
        NameStyle::City => {
            let a = SYLLABLES[rng.gen_range(0..SYLLABLES.len())];
            let b = SUFFIXES_CITY[rng.gen_range(0..SUFFIXES_CITY.len())];
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(a);
            s.push_str(b);
            // Capitalise first letter.
            let mut c = s.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => s,
            }
        }
        NameStyle::Person => {
            let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
            let a = SYLLABLES[rng.gen_range(0..SYLLABLES.len())];
            let b = SYLLABLES[rng.gen_range(0..SYLLABLES.len())];
            let mut last: String = format!("{a}{b}");
            let mut c = last.chars();
            last = match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => last,
            };
            format!("{first} {last}")
        }
        NameStyle::Brand => {
            let a = SYLLABLES[rng.gen_range(0..SYLLABLES.len())];
            let b = SYLLABLES[rng.gen_range(0..SYLLABLES.len())];
            let n = rng.gen_range(1..100);
            format!(
                "{}{} #{n}",
                a.to_uppercase().chars().next().unwrap(),
                &format!("{a}{b}")[1..]
            )
        }
    }
}

/// Generates `n` **distinct** names of the given style, deterministically
/// from `seed`. Collisions are resolved by appending a numeric tag, so any
/// `n` is reachable.
pub fn name_pool(n: usize, style: NameStyle, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    let mut tag = 0u64;
    while out.len() < n {
        let mut name = one_name(style, &mut rng);
        if seen.contains(&name) {
            tag += 1;
            name = format!("{name} {tag}");
        }
        if seen.insert(name.clone()) {
            out.push(name);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_distinct_and_sized() {
        for style in [NameStyle::City, NameStyle::Person, NameStyle::Brand] {
            let pool = name_pool(5000, style, 7);
            assert_eq!(pool.len(), 5000);
            let set: std::collections::HashSet<_> = pool.iter().collect();
            assert_eq!(set.len(), 5000, "{style:?} produced duplicates");
        }
    }

    #[test]
    fn pools_are_deterministic() {
        assert_eq!(
            name_pool(100, NameStyle::City, 1),
            name_pool(100, NameStyle::City, 1)
        );
        assert_ne!(
            name_pool(100, NameStyle::City, 1),
            name_pool(100, NameStyle::City, 2)
        );
    }

    #[test]
    fn names_have_realistic_lengths() {
        let pool = name_pool(1000, NameStyle::Person, 3);
        let avg: f64 = pool.iter().map(|s| s.len() as f64).sum::<f64>() / 1000.0;
        assert!(avg > 5.0 && avg < 30.0, "avg len {avg}");
    }
}
