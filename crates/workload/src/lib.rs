//! Synthetic data and query workload generation for the hybrid OLAP system.
//!
//! The paper evaluates with (a) fact tables "from the renowned TPC-DS
//! benchmark" for translation performance and (b) a system model configured
//! with a ~4 GB, 3-dimension × 4-level fact table on the GPU and four
//! pre-calculated cubes of ~32 GB / ~500 MB / ~500 KB / ~4 KB on the CPU
//! (§IV). TPC-DS data itself is not redistributable, so this crate
//! generates the *equivalent* synthetic inputs:
//!
//! * [`names`] — deterministic pools of city/person/brand-like strings with
//!   realistic lengths and cardinalities (what dictionary behaviour
//!   actually depends on);
//! * [`facts`] — hierarchically-consistent columnar fact tables with
//!   dictionary-encoded text dimensions, at any row scale;
//! * [`spec`] — the paper's cube hierarchy: per-dimension level
//!   cardinalities `8 / 32 / 320 / 1280` over three dimensions, whose four
//!   resolutions materialise to ~4 KB, ~512 KB, ~500 MB and ~32 GB — the
//!   exact cube set of Section IV;
//! * [`queries`] — seeded random query streams over a cube catalog,
//!   emitting both the structured cube query and the
//!   [`holap_sched::QueryFeatures`] the scheduler consumes, with
//!   paper-calibrated mixes for each table of the evaluation.
//!
//! # Example
//!
//! ```
//! use holap_workload::{PaperHierarchy, QueryGenerator, WorkloadPreset};
//!
//! let hierarchy = PaperHierarchy::default();
//! // ~4 KB / ~512 KB / ~500 MB cubes resident (Table 1 configuration).
//! let mut generator =
//!     QueryGenerator::preset(WorkloadPreset::Table1, &hierarchy, 42);
//! let q = generator.next_query();
//! assert!(q.features.cpu_subcube_mb.is_some());
//! ```

#![warn(missing_docs)]

pub mod facts;
pub mod names;
pub mod queries;
pub mod spec;
pub mod zipf;

pub use facts::{FactsSpec, SyntheticFacts, TextLevel};
pub use names::{name_pool, NameStyle};
pub use queries::{QueryClass, QueryGenerator, QueryMix, SimQuery, WorkloadPreset};
pub use spec::PaperHierarchy;
pub use zipf::Zipf;
