//! The paper's evaluation geometry (§IV).
//!
//! The Section-IV model has three dimensions with four levels each; the
//! four cube resolutions must land at ~4 KB, ~500 KB, ~500 MB and ~32 GB.
//! Level cardinalities `8 / 32 / 320 / 1280` (uniform, divisible fan-out)
//! hit those sizes exactly with 16-byte cells:
//!
//! | resolution | shape  | cells      | dense size |
//! |-----------:|--------|-----------:|-----------:|
//! | 0          | 8³     | 512        | 8 KB       |
//! | 1          | 32³    | 32 768     | 512 KB     |
//! | 2          | 320³   | 3.28 × 10⁷ | 500 MB     |
//! | 3          | 1280³  | 2.10 × 10⁹ | 32 000 MB  |

use holap_cube::{CubeCatalog, CubeSchema};
use holap_table::TableSchema;
use serde::{Deserialize, Serialize};

/// The per-dimension level cardinalities of the paper's model.
pub const PAPER_LEVEL_CARDS: [u32; 4] = [8, 32, 320, 1280];

/// The Section-IV cube/table geometry, parameterised so scaled-down
/// variants fit on a laptop for the real-execution engine and benches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperHierarchy {
    /// Level cardinalities, coarsest first, shared by all dimensions.
    pub level_cards: Vec<u32>,
    /// Number of dimensions.
    pub dims: usize,
    /// Number of measure columns in the fact table.
    pub measures: usize,
}

impl Default for PaperHierarchy {
    fn default() -> Self {
        Self {
            level_cards: PAPER_LEVEL_CARDS.to_vec(),
            dims: 3,
            measures: 2,
        }
    }
}

impl PaperHierarchy {
    /// A scaled-down variant: every cardinality divided by `factor`
    /// (minimum 2), preserving divisibility. Useful for real execution.
    pub fn scaled_down(factor: u32) -> Self {
        assert!(factor > 0);
        let level_cards = PAPER_LEVEL_CARDS
            .iter()
            .map(|&c| (c / factor).max(2))
            .collect();
        Self {
            level_cards,
            ..Self::default()
        }
    }

    /// Dimension names used by generated schemas.
    fn dim_name(d: usize) -> String {
        match d {
            0 => "time".into(),
            1 => "geo".into(),
            2 => "product".into(),
            n => format!("dim{n}"),
        }
    }

    /// Level names used by generated schemas.
    fn level_name(l: usize) -> String {
        format!("level{l}")
    }

    /// The fact-table schema of this geometry.
    pub fn table_schema(&self) -> TableSchema {
        let mut b = TableSchema::builder();
        for d in 0..self.dims {
            let levels: Vec<(String, u32)> = self
                .level_cards
                .iter()
                .enumerate()
                .map(|(l, &c)| (Self::level_name(l), c))
                .collect();
            let level_refs: Vec<(&str, u32)> =
                levels.iter().map(|(n, c)| (n.as_str(), *c)).collect();
            b = b.dimension(&Self::dim_name(d), &level_refs);
        }
        for m in 0..self.measures {
            b = b.measure(&format!("measure{m}"));
        }
        b.build()
    }

    /// The cube schema of this geometry.
    pub fn cube_schema(&self) -> CubeSchema {
        CubeSchema::from_table_schema(&self.table_schema())
    }

    /// A cube catalog with the given resident resolutions.
    pub fn catalog(&self, resolutions: &[usize]) -> CubeCatalog {
        CubeCatalog::new(self.cube_schema(), resolutions.to_vec())
    }

    /// Total physical columns of the fact table (`C_TOTAL` of Eq. 13).
    pub fn total_columns(&self) -> usize {
        self.dims * self.level_cards.len() + self.measures
    }

    /// Number of levels per dimension.
    pub fn levels(&self) -> usize {
        self.level_cards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_section_iv() {
        let h = PaperHierarchy::default();
        let s = h.cube_schema();
        let mb = |r: usize| s.size_mb_at(r);
        assert!((mb(0) - 8.0 / 1024.0).abs() < 1e-9); // 8 KB
        assert!((mb(1) - 0.5).abs() < 1e-9); // 512 KB
        assert!((mb(2) - 500.0).abs() < 0.1); // ~500 MB
        assert!((mb(3) - 32_000.0).abs() < 1.0); // ~32 GB
        assert!(s.uniform_hierarchy());
    }

    #[test]
    fn table_geometry() {
        let h = PaperHierarchy::default();
        let t = h.table_schema();
        assert_eq!(t.dimensions.len(), 3);
        assert_eq!(t.dim_column_count(), 12);
        assert_eq!(h.total_columns(), 14);
        // Row bytes: 12 × 4 + 2 × 8 = 64 → a ~4 GB table is ~67 M rows.
        assert_eq!(t.row_bytes(), 64);
    }

    #[test]
    fn scaled_down_preserves_divisibility() {
        let h = PaperHierarchy::scaled_down(8);
        assert_eq!(h.level_cards, vec![2, 4, 40, 160]);
        assert!(h.cube_schema().uniform_hierarchy());
    }

    #[test]
    fn catalog_resolutions() {
        let h = PaperHierarchy::default();
        let c = h.catalog(&[0, 1, 2]);
        assert_eq!(c.resolutions(), &[0, 1, 2]);
        assert!(c.total_size_mb() < 1024.0);
    }
}
