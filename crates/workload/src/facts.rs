//! Synthetic fact tables with hierarchically-consistent dimensions and
//! dictionary-encoded text columns.

use crate::names::{name_pool, NameStyle};
use holap_dict::{DictKind, DictionarySet};
use holap_table::{FactTable, FactTableBuilder, TableSchema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Marks one dimension level as a text column: its coordinates are
/// dictionary codes of generated strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextLevel {
    /// Dimension index.
    pub dim: usize,
    /// Level index within the dimension.
    pub level: usize,
    /// String flavour of the members.
    pub style: NameStyle,
}

/// Specification of a synthetic fact table.
#[derive(Debug, Clone)]
pub struct FactsSpec {
    /// Table schema (dimension hierarchies + measures).
    pub schema: TableSchema,
    /// Rows to generate.
    pub rows: usize,
    /// Which (dimension, level) pairs are text columns.
    pub text_levels: Vec<TextLevel>,
    /// Dictionary implementation to build for text columns.
    pub dict_kind: DictKind,
    /// Optional Zipf skew exponent for the finest-level coordinates
    /// (`None`/0 = uniform). Skewed data under-fills cold cube chunks,
    /// exercising chunk-offset compression end-to-end.
    pub skew: Option<f64>,
    /// RNG seed.
    pub seed: u64,
}

/// A generated fact table plus its dictionaries and member name pools.
#[derive(Debug, Clone)]
pub struct SyntheticFacts {
    /// The columnar fact table (text levels already dictionary-encoded).
    pub table: FactTable,
    /// Per-column dictionaries for the text levels.
    pub dicts: DictionarySet,
    /// The text levels, with the column name used in `dicts`.
    pub text_columns: Vec<(TextLevel, String)>,
}

impl From<SyntheticFacts> for (FactTable, DictionarySet) {
    /// Lets `holap_core::HybridSystemBuilder::facts` accept generated data
    /// directly.
    fn from(f: SyntheticFacts) -> Self {
        (f.table, f.dicts)
    }
}

/// Canonical dictionary-column name for a (dimension, level) pair.
pub fn text_column_name(schema: &TableSchema, dim: usize, level: usize) -> String {
    format!(
        "{}.{}",
        schema.dimensions[dim].name, schema.dimensions[dim].levels[level].name
    )
}

impl SyntheticFacts {
    /// Generates a table per `spec`.
    ///
    /// Rows draw a uniform coordinate at each dimension's **finest** level
    /// and derive every coarser level by exact coarsening, so the level
    /// columns are hierarchically consistent (a "month" always falls inside
    /// its "year"). Text-level member strings are sorted before code
    /// assignment, so the dictionary code of member *i* equals coordinate
    /// *i* for every dictionary implementation.
    pub fn generate(spec: &FactsSpec) -> Self {
        let schema = &spec.schema;
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut builder = FactTableBuilder::new(schema.clone());
        builder.reserve(spec.rows);
        let ndim = schema.dimensions.len();
        let nmeasure = schema.measures.len();
        let mut dims_flat = Vec::with_capacity(schema.dim_column_count());
        let mut measures = vec![0.0f64; nmeasure];
        // Per-dimension Zipf samplers over the finest level, when skewed.
        let zipf: Vec<Option<crate::zipf::Zipf>> = (0..ndim)
            .map(|d| {
                let finest = schema.dimensions[d]
                    .levels
                    .last()
                    .expect("dimension has levels")
                    .cardinality;
                match spec.skew {
                    Some(s) if s > 0.0 => Some(crate::zipf::Zipf::new(finest, s)),
                    _ => None,
                }
            })
            .collect();
        for _ in 0..spec.rows {
            dims_flat.clear();
            for (d, sampler) in zipf.iter().enumerate() {
                let levels = &schema.dimensions[d].levels;
                let finest = levels.last().expect("dimension has levels").cardinality;
                let fine = match sampler {
                    Some(z) => z.sample(&mut rng),
                    None => rng.gen_range(0..finest),
                };
                for l in levels {
                    // Exact coarsening: fine * card_l / card_finest.
                    let coord =
                        (u64::from(fine) * u64::from(l.cardinality) / u64::from(finest)) as u32;
                    dims_flat.push(coord);
                }
            }
            for m in measures.iter_mut() {
                *m = rng.gen_range(0.0..1000.0);
            }
            builder
                .push_row(&dims_flat, &measures)
                .expect("generated row must satisfy the schema");
        }
        let table = builder.finish();

        // Build dictionaries: member i of a text level gets the i-th
        // *sorted* name, making code == coordinate for all dict kinds.
        let mut dicts = DictionarySet::new(spec.dict_kind);
        let mut text_columns = Vec::with_capacity(spec.text_levels.len());
        for (k, t) in spec.text_levels.iter().enumerate() {
            let card = schema.dimensions[t.dim].levels[t.level].cardinality as usize;
            let mut members = name_pool(card, t.style, spec.seed ^ (0x9e37 + k as u64));
            members.sort_unstable();
            let column = text_column_name(schema, t.dim, t.level);
            let codes = dicts.build_column(&column, members.iter().map(String::as_str));
            debug_assert!(codes.iter().enumerate().all(|(i, &c)| c as usize == i));
            text_columns.push((t.clone(), column));
        }
        Self {
            table,
            dicts,
            text_columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PaperHierarchy;
    use holap_dict::{Dictionary, TextCondition};

    fn spec(rows: usize, kind: DictKind) -> FactsSpec {
        let h = PaperHierarchy::scaled_down(8);
        FactsSpec {
            schema: h.table_schema(),
            rows,
            text_levels: vec![
                TextLevel {
                    dim: 1,
                    level: 3,
                    style: NameStyle::City,
                },
                TextLevel {
                    dim: 2,
                    level: 3,
                    style: NameStyle::Brand,
                },
            ],
            dict_kind: kind,
            skew: None,
            seed: 11,
        }
    }

    #[test]
    fn rows_are_hierarchically_consistent() {
        let f = SyntheticFacts::generate(&spec(2000, DictKind::Sorted));
        let schema = f.table.schema().clone();
        for d in 0..schema.dimensions.len() {
            let levels = &schema.dimensions[d].levels;
            let finest_idx = levels.len() - 1;
            let fine_col = f.table.dim_column(d, finest_idx);
            for l in 0..finest_idx {
                let col = f.table.dim_column(d, l);
                let ratio = u64::from(levels[l].cardinality);
                let fine_card = u64::from(levels[finest_idx].cardinality);
                for (row, (&c, &fine)) in col.iter().zip(fine_col).enumerate() {
                    let expect = (u64::from(fine) * ratio / fine_card) as u32;
                    assert_eq!(c, expect, "dim {d} level {l} row {row}");
                }
            }
        }
    }

    #[test]
    fn dict_codes_equal_coordinates_for_all_kinds() {
        for kind in [DictKind::Linear, DictKind::Sorted, DictKind::Hashed] {
            let f = SyntheticFacts::generate(&spec(100, kind));
            for (t, column) in &f.text_columns {
                let card = f.table.schema().dimensions[t.dim].levels[t.level].cardinality;
                let dict = f.dicts.dictionary(column).unwrap();
                assert_eq!(dict.len() as u32, card);
                // Every code decodes and re-encodes to itself.
                for code in (0..card).step_by(37) {
                    let s = dict.decode(code).unwrap();
                    assert_eq!(dict.encode(s), Some(code), "{kind:?} {column}");
                }
            }
        }
    }

    #[test]
    fn text_predicates_translate_and_filter() {
        let f = SyntheticFacts::generate(&spec(5000, DictKind::Sorted));
        let (t, column) = &f.text_columns[0];
        let dict = f.dicts.dictionary(column).unwrap();
        let member = dict.decode(3).unwrap().to_owned();
        let (lo, hi) = f
            .dicts
            .translate(column, &TextCondition::eq(&member))
            .unwrap();
        assert_eq!((lo, hi), (3, 3));
        // Filtering the encoded column by the translated code matches the
        // rows whose coordinate is 3.
        let col = f.table.dim_column(t.dim, t.level);
        let direct = col.iter().filter(|&&c| c == 3).count();
        let via_codes = col.iter().filter(|&&c| c >= lo && c <= hi).count();
        assert_eq!(direct, via_codes);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticFacts::generate(&spec(500, DictKind::Sorted));
        let b = SyntheticFacts::generate(&spec(500, DictKind::Sorted));
        assert_eq!(a.table, b.table);
        assert_eq!(a.dicts, b.dicts);
    }

    #[test]
    fn skewed_generation_concentrates_mass_and_compresses_cubes() {
        let mut skewed_spec = spec(20_000, DictKind::Sorted);
        skewed_spec.skew = Some(1.2);
        let skewed = SyntheticFacts::generate(&skewed_spec);
        let uniform = SyntheticFacts::generate(&spec(20_000, DictKind::Sorted));

        // Head coordinate dominates under skew.
        let count_of = |f: &SyntheticFacts, v: u32| {
            f.table.dim_column(0, 3).iter().filter(|&&c| c == v).count()
        };
        assert!(
            count_of(&skewed, 0) > 4 * count_of(&uniform, 0),
            "skew concentrates the head: {} vs {}",
            count_of(&skewed, 0),
            count_of(&uniform, 0)
        );

        // Hierarchical consistency is preserved under skew.
        let fine = skewed.table.dim_column(0, 3);
        let coarse = skewed.table.dim_column(0, 0);
        let schema = skewed.table.schema();
        let f_card = u64::from(schema.dimensions[0].levels[3].cardinality);
        let c_card = u64::from(schema.dimensions[0].levels[0].cardinality);
        for (&c, &f) in coarse.iter().zip(fine) {
            assert_eq!(u64::from(c), u64::from(f) * c_card / f_card);
        }

        // Cold chunks fall under the 40 % fill threshold: a cube over the
        // skewed data compresses more than over uniform data.
        use holap_cube::{CubeSchema, MolapCube};
        let cschema = CubeSchema::from_table_schema(schema);
        let mut cube_s = MolapCube::build_from_table(cschema.clone(), 3, &skewed.table, 0);
        let mut cube_u = MolapCube::build_from_table(cschema, 3, &uniform.table, 0);
        let compressed_s = cube_s.compress();
        let compressed_u = cube_u.compress();
        assert!(
            compressed_s >= compressed_u,
            "skewed data compresses at least as many chunks ({compressed_s} vs {compressed_u})"
        );
        assert!(cube_s.bytes() <= cube_u.bytes());
    }

    #[test]
    fn measures_are_in_range() {
        let f = SyntheticFacts::generate(&spec(300, DictKind::Linear));
        for m in 0..f.table.schema().measures.len() {
            for &v in f.table.measure_column(m) {
                assert!((0.0..1000.0).contains(&v));
            }
        }
    }
}
