//! Seeded random OLAP query streams with paper-calibrated mixes.
//!
//! Every generated query carries both its structured form
//! ([`holap_cube::CubeQuery`]) and the abstract
//! [`holap_sched::QueryFeatures`] the scheduler estimates from. The preset
//! mixes are calibrated against the paper's Section-IV rates — see
//! EXPERIMENTS.md for the derivation of the width constants.

use crate::spec::PaperHierarchy;
use holap_cube::{CubeCatalog, CubeQuery, DimRange};
use holap_sched::QueryFeatures;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One stratum of the query mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryClass {
    /// Relative weight of this class within the mix.
    pub weight: f64,
    /// Resolution level of every condition in the query.
    pub level: usize,
    /// Per-dimension width as a fraction of the level cardinality, for the
    /// restricted dimensions.
    pub width_frac: f64,
    /// How many dimensions carry a real restriction (the rest span their
    /// whole level and are not read as filter columns by the GPU).
    pub restricted_dims: usize,
    /// Probability the query carries one text parameter that must be
    /// translated before GPU processing.
    pub text_prob: f64,
    /// Dictionary length of the text column (Eq. 17's `D_L`).
    pub dict_len: usize,
    /// Measure columns the query aggregates (data columns of Eq. 12).
    pub data_columns: usize,
}

/// A full mix: weighted classes plus the deadline window `T_C`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryMix {
    /// Weighted strata.
    pub classes: Vec<QueryClass>,
    /// Relative deadline `T_C` in seconds applied to every query.
    pub deadline_secs: f64,
}

/// One generated query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimQuery {
    /// Structured cube-query form (engine replay, validation).
    pub cube_query: CubeQuery,
    /// The scheduler-facing features.
    pub features: QueryFeatures,
    /// Relative deadline `T_C` for this query, seconds.
    pub deadline_secs: f64,
    /// Index of the generating [`QueryClass`] in the mix.
    pub class_idx: usize,
}

/// The paper's evaluation scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadPreset {
    /// Table 1: cube set {~4 KB, ~500 KB, ~500 MB}; medium sub-cube
    /// queries answerable by the CPU.
    Table1,
    /// Table 2: Table 1 plus the ~32 GB cube and a 50 % share of large
    /// sub-cube queries against it.
    Table2,
    /// Table 3 / full system: the Table 2 mix with text parameters on half
    /// the queries (1 M-entry dictionaries).
    Table3,
}

/// Width fraction per dimension reproducing the Table 1 CPU rates: a
/// ~160 MB sub-cube of the ~500 MB cube (see EXPERIMENTS.md §Table 1).
pub const TABLE1_WIDTH_FRAC: f64 = 0.6847;

/// Width fraction per dimension for the large-query stratum of Tables 2–3:
/// a ~4.3 GB sub-cube of the ~32 GB cube.
pub const TABLE2_BIG_WIDTH_FRAC: f64 = 0.5114;

/// Dictionary length used by the Table-3 text parameters — the top of the
/// paper's Fig. 9 sweep (1 M entries ⇒ T_TRANS ≈ 13.8 ms, which yields the
/// reported ≈7 % GPU slowdown at a 50 % text share).
pub const TABLE3_DICT_LEN: usize = 1_000_000;

impl WorkloadPreset {
    /// Resident cube resolutions of the scenario.
    pub fn resolutions(&self) -> &'static [usize] {
        match self {
            WorkloadPreset::Table1 => &[0, 1, 2],
            WorkloadPreset::Table2 | WorkloadPreset::Table3 => &[0, 1, 2, 3],
        }
    }

    /// The calibrated query mix of the scenario.
    pub fn mix(&self) -> QueryMix {
        let standard = QueryClass {
            weight: 1.0,
            level: 2,
            width_frac: TABLE1_WIDTH_FRAC,
            restricted_dims: 3,
            text_prob: 0.0,
            dict_len: 0,
            data_columns: 1,
        };
        let big = QueryClass {
            weight: 1.0,
            level: 3,
            width_frac: TABLE2_BIG_WIDTH_FRAC,
            restricted_dims: 3,
            text_prob: 0.0,
            dict_len: 0,
            data_columns: 1,
        };
        match self {
            WorkloadPreset::Table1 => QueryMix {
                classes: vec![standard],
                deadline_secs: 0.5,
            },
            WorkloadPreset::Table2 => QueryMix {
                classes: vec![big, standard],
                deadline_secs: 1.0,
            },
            WorkloadPreset::Table3 => {
                // The full-system mix leans towards the interactive
                // medium-weight queries the CPU partition excels at (70 %),
                // with a 30 % share of large scans that only the GPU can
                // serve quickly — the division of labour §III-A motivates.
                let text = |c: QueryClass, weight: f64| QueryClass {
                    weight,
                    text_prob: 0.5,
                    dict_len: TABLE3_DICT_LEN,
                    ..c
                };
                QueryMix {
                    classes: vec![text(big, 0.3), text(standard, 0.7)],
                    deadline_secs: 0.5,
                }
            }
        }
    }
}

/// Seeded generator of [`SimQuery`] streams over a cube catalog.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    catalog: CubeCatalog,
    total_columns: usize,
    mix: QueryMix,
    rng: StdRng,
    cumulative: Vec<f64>,
}

impl QueryGenerator {
    /// Creates a generator over an explicit catalog and mix.
    ///
    /// # Panics
    ///
    /// Panics on an empty mix or non-positive weights.
    pub fn new(catalog: CubeCatalog, total_columns: usize, mix: QueryMix, seed: u64) -> Self {
        assert!(!mix.classes.is_empty(), "mix needs at least one class");
        assert!(
            mix.classes.iter().all(|c| c.weight > 0.0),
            "weights must be positive"
        );
        let total: f64 = mix.classes.iter().map(|c| c.weight).sum();
        let mut acc = 0.0;
        let cumulative = mix
            .classes
            .iter()
            .map(|c| {
                acc += c.weight / total;
                acc
            })
            .collect();
        Self {
            catalog,
            total_columns,
            mix,
            rng: StdRng::seed_from_u64(seed),
            cumulative,
        }
    }

    /// Creates a generator for a paper preset over `hierarchy`.
    pub fn preset(preset: WorkloadPreset, hierarchy: &PaperHierarchy, seed: u64) -> Self {
        Self::new(
            hierarchy.catalog(preset.resolutions()),
            hierarchy.total_columns(),
            preset.mix(),
            seed,
        )
    }

    /// The catalog queries are planned against.
    pub fn catalog(&self) -> &CubeCatalog {
        &self.catalog
    }

    /// The mix in use.
    pub fn mix(&self) -> &QueryMix {
        &self.mix
    }

    fn pick_class(&mut self) -> usize {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        self.cumulative
            .iter()
            .position(|&c| u <= c)
            .unwrap_or(self.mix.classes.len() - 1)
    }

    /// Draws the next query.
    pub fn next_query(&mut self) -> SimQuery {
        let class_idx = self.pick_class();
        let class = self.mix.classes[class_idx].clone();
        let schema = self.catalog.schema().clone();
        let ndim = schema.ndim();
        let restricted = class.restricted_dims.min(ndim);

        let mut conditions = Vec::with_capacity(ndim);
        for d in 0..ndim {
            let card = schema.cardinality_at(d, class.level);
            let cond = if d < restricted {
                // ±5 % multiplicative jitter on the width.
                let jitter = self.rng.gen_range(0.95..1.05);
                let width =
                    ((card as f64 * class.width_frac * jitter).round() as u32).clamp(1, card);
                let from = self.rng.gen_range(0..=card - width);
                DimRange::new(class.level, from, from + width - 1)
            } else {
                DimRange::new(class.level, 0, card - 1)
            };
            conditions.push(cond);
        }
        let cube_query = CubeQuery::new(conditions);

        let cpu_subcube_mb = self
            .catalog
            .plan(&cube_query)
            .expect("generated query must be well-formed")
            .map(|p| p.estimated_mb);

        let translation_dict_lens = if class.text_prob > 0.0 && self.rng.gen_bool(class.text_prob) {
            vec![class.dict_len]
        } else {
            vec![]
        };

        // Eq. 12: restricted filter columns + data columns.
        let columns = restricted + class.data_columns;
        let gpu_column_fraction = (columns as f64 / self.total_columns as f64).min(1.0);

        SimQuery {
            cube_query,
            features: QueryFeatures {
                cpu_subcube_mb,
                gpu_column_fraction,
                translation_dict_lens,
            },
            deadline_secs: self.mix.deadline_secs,
            class_idx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> PaperHierarchy {
        PaperHierarchy::default()
    }

    #[test]
    fn table1_queries_average_160mb() {
        let mut g = QueryGenerator::preset(WorkloadPreset::Table1, &hierarchy(), 1);
        let n = 500;
        let mut sum = 0.0;
        for _ in 0..n {
            let q = g.next_query();
            let mb = q
                .features
                .cpu_subcube_mb
                .expect("Table 1 queries are CPU-answerable");
            assert!(mb > 100.0 && mb < 230.0, "mb = {mb}");
            sum += mb;
            assert!(q.features.translation_dict_lens.is_empty());
            assert_eq!(q.cube_query.required_resolution(), 2);
        }
        let mean = sum / n as f64;
        assert!((mean - 160.5).abs() < 10.0, "mean = {mean}");
    }

    #[test]
    fn table2_big_queries_average_4_3gb() {
        let mut g = QueryGenerator::preset(WorkloadPreset::Table2, &hierarchy(), 2);
        let mut big = Vec::new();
        for _ in 0..600 {
            let q = g.next_query();
            if q.class_idx == 0 {
                big.push(q.features.cpu_subcube_mb.unwrap());
            }
        }
        assert!(
            big.len() > 200 && big.len() < 400,
            "roughly half: {}",
            big.len()
        );
        let mean: f64 = big.iter().sum::<f64>() / big.len() as f64;
        assert!((mean - 4280.0).abs() < 300.0, "mean = {mean}");
    }

    #[test]
    fn table3_has_half_text_queries() {
        let mut g = QueryGenerator::preset(WorkloadPreset::Table3, &hierarchy(), 3);
        let n = 1000;
        let text = (0..n)
            .filter(|_| !g.next_query().features.translation_dict_lens.is_empty())
            .count();
        assert!((400..600).contains(&text), "text share: {text}/{n}");
    }

    #[test]
    fn column_fraction_matches_eq12() {
        let mut g = QueryGenerator::preset(WorkloadPreset::Table1, &hierarchy(), 4);
        let q = g.next_query();
        // 3 restricted dims + 1 data column over 14 columns.
        assert!((q.features.gpu_column_fraction - 4.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = QueryGenerator::preset(WorkloadPreset::Table3, &hierarchy(), 9);
        let mut b = QueryGenerator::preset(WorkloadPreset::Table3, &hierarchy(), 9);
        for _ in 0..50 {
            assert_eq!(a.next_query(), b.next_query());
        }
    }

    #[test]
    fn queries_validate_against_schema() {
        let h = hierarchy();
        let mut g = QueryGenerator::preset(WorkloadPreset::Table2, &h, 5);
        let schema = h.cube_schema();
        for _ in 0..200 {
            let q = g.next_query();
            q.cube_query
                .validate(&schema)
                .expect("generated query must validate");
        }
    }

    #[test]
    fn table1_never_needs_gpu_but_table2_standard_class_stays_cpu() {
        let mut g = QueryGenerator::preset(WorkloadPreset::Table1, &hierarchy(), 6);
        for _ in 0..100 {
            assert!(g.next_query().features.cpu_subcube_mb.is_some());
        }
    }

    #[test]
    fn unrestricted_dims_span_their_level() {
        let h = hierarchy();
        let mix = QueryMix {
            classes: vec![QueryClass {
                weight: 1.0,
                level: 1,
                width_frac: 0.25,
                restricted_dims: 1,
                text_prob: 0.0,
                dict_len: 0,
                data_columns: 2,
            }],
            deadline_secs: 1.0,
        };
        let mut g = QueryGenerator::new(h.catalog(&[1]), h.total_columns(), mix, 7);
        let q = g.next_query();
        let c1 = q.cube_query.conditions[1];
        let c2 = q.cube_query.conditions[2];
        assert_eq!((c1.from, c1.to), (0, 31));
        assert_eq!((c2.from, c2.to), (0, 31));
        // 1 filter + 2 data columns over 14.
        assert!((q.features.gpu_column_fraction - 3.0 / 14.0).abs() < 1e-12);
    }
}
