//! A seeded Zipf sampler for skewed dimension values.
//!
//! Real OLAP fact data is heavily skewed — a few cities/products dominate
//! the rows (TPC-DS models this too). Skew matters to this system in two
//! ways: cube chunks covering cold coordinate regions fall below the 40 %
//! fill threshold and get chunk-offset compressed (§II-B), and hot-value
//! equality predicates select far more rows than uniform reasoning
//! predicts. [`crate::FactsSpec::skew`] threads this sampler into data
//! generation.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Zipf distribution over ranks `0..n`: `P(rank k) ∝ 1 / (k+1)^s`.
///
/// Sampling inverts the precomputed CDF by binary search — `O(log n)` per
/// draw, exact (no rejection), deterministic under a seeded RNG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    cdf: Vec<f64>,
    exponent: f64,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with exponent `s ≥ 0`
    /// (`s = 0` degenerates to uniform; `s ≈ 1` is classic Zipf).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: u32, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / f64::from(k + 1).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("non-empty");
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf, exponent: s }
    }

    /// Number of ranks.
    pub fn n(&self) -> u32 {
        self.cdf.len() as u32
    }

    /// The exponent the distribution was built with.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u) as u32
    }

    /// The probability mass of rank `k`.
    pub fn pmf(&self, k: u32) -> f64 {
        let k = k as usize;
        assert!(k < self.cdf.len());
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for k in 1..100 {
            assert!(
                z.pmf(k) <= z.pmf(k - 1) + 1e-15,
                "pmf must be non-increasing"
            );
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Empirical frequency of the head ranks within 10 % of the pmf.
        for k in 0..5u32 {
            let emp = f64::from(counts[k as usize]) / n as f64;
            let want = z.pmf(k);
            assert!(
                (emp - want).abs() < 0.1 * want + 1e-3,
                "rank {k}: emp {emp}, pmf {want}"
            );
        }
        // Head dominates tail.
        assert!(counts[0] > counts[49] * 10);
    }

    #[test]
    fn sampling_is_deterministic() {
        let z = Zipf::new(1000, 0.8);
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn all_ranks_reachable() {
        let z = Zipf::new(4, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            seen.insert(z.sample(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }
}
