//! Deterministic byte-flip corruption injector — the storage counterpart
//! of the kernel-level fault plan in `holap-gpusim`.
//!
//! Bit-rot, torn writes and misdirected I/O all surface as bytes that
//! differ from what was written. These helpers produce exactly that,
//! deterministically, so integrity tests can assert that *any* flipped
//! byte in a `.holap` artefact is rejected at load rather than served as
//! a wrong answer. Test/bench tooling only: nothing in the load path
//! calls this.

use crate::error::StoreError;
use std::path::Path;

/// SplitMix64 mixer for deterministic offset/mask derivation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// XORs the byte at `offset` with `mask` (must be non-zero: a zero mask
/// would be a no-op pretending to corrupt).
pub fn flip_byte(path: &Path, offset: usize, mask: u8) -> Result<(), StoreError> {
    if mask == 0 {
        return Err(StoreError::Invalid(
            "corruption mask must be non-zero".into(),
        ));
    }
    let mut bytes = std::fs::read(path)?;
    if offset >= bytes.len() {
        return Err(StoreError::Invalid(format!(
            "corruption offset {offset} past file end ({} bytes)",
            bytes.len()
        )));
    }
    bytes[offset] ^= mask;
    std::fs::write(path, &bytes)?;
    Ok(())
}

/// Flips one seeded-pseudo-random byte anywhere in the file and returns
/// `(offset, mask)`. The same seed on the same file corrupts the same
/// byte the same way.
pub fn corrupt_byte(path: &Path, seed: u64) -> Result<(usize, u8), StoreError> {
    let len = std::fs::metadata(path)?.len() as usize;
    if len == 0 {
        return Err(StoreError::Invalid("cannot corrupt an empty file".into()));
    }
    let offset = (splitmix64(seed) % len as u64) as usize;
    // Any of the 255 non-zero masks, deterministically.
    let mask = (splitmix64(seed ^ 0xdead_beef) % 255 + 1) as u8;
    flip_byte(path, offset, mask)?;
    Ok((offset, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{ArtifactKind, Reader, Writer};

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("holap-inject-{tag}-{}.holap", std::process::id()))
    }

    #[test]
    fn flip_is_deterministic_and_detected() {
        let path = temp("det");
        let mut w = Writer::new(ArtifactKind::Cube, &1u32).unwrap();
        w.put_f64_array(&[1.0, 2.0, 3.0]);
        w.finish(&path).unwrap();
        let clean = std::fs::read(&path).unwrap();
        let (off_a, mask_a) = corrupt_byte(&path, 99).unwrap();
        let dirty = std::fs::read(&path).unwrap();
        assert_eq!(clean.len(), dirty.len());
        assert_eq!(clean[off_a] ^ mask_a, dirty[off_a]);
        assert!(Reader::open(&path, ArtifactKind::Cube).is_err());
        // Same seed on the restored file picks the same byte and mask.
        std::fs::write(&path, &clean).unwrap();
        assert_eq!(corrupt_byte(&path, 99).unwrap(), (off_a, mask_a));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_and_noop_masks_rejected() {
        let path = temp("range");
        Writer::new(ArtifactKind::Table, &0u8)
            .unwrap()
            .finish(&path)
            .unwrap();
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        assert!(matches!(
            flip_byte(&path, len, 0x01),
            Err(StoreError::Invalid(_))
        ));
        assert!(matches!(
            flip_byte(&path, 0, 0x00),
            Err(StoreError::Invalid(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
