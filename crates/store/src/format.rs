//! Binary container primitives: magic, sections, digests.

use crate::error::StoreError;
use bytes::{Buf, BufMut, BytesMut};
use std::path::Path;

/// File magic: "HOLAPST" + format generation digit.
pub const MAGIC: &[u8; 8] = b"HOLAPST1";

/// Current format version (bumped on incompatible layout changes).
///
/// v2: table files carry per-block zone maps (per-dimension-column min/max
/// arrays) after the column pools, so loaded tables skip blocks exactly
/// like the tables that were saved.
///
/// v3: every section (the file prologue + header, then each logical
/// payload group) is followed by its CRC32C checksum. The reader verifies
/// each section as it crosses the boundary and reports a typed
/// [`StoreError::Corrupt`] naming the mismatch, so corruption is caught
/// at the damaged section instead of surfacing as a garbled artefact.
pub const FORMAT_VERSION: u32 = 3;

/// What a store file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ArtifactKind {
    /// A columnar fact table.
    Table = 1,
    /// A MOLAP cube.
    Cube = 2,
    /// A dictionary set.
    Dicts = 3,
}

/// FNV-1a 64 over a byte stream — the trailing integrity digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Reflected CRC32C (Castagnoli) lookup table, built at compile time.
const fn crc32c_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0x82F6_3B78
            } else {
                crc >> 1
            };
            j += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32C_TABLE: [u32; 256] = crc32c_table();

/// CRC32C (Castagnoli, reflected) over a byte stream — the per-section
/// checksum of format v3. Hand-rolled table-driven software
/// implementation; no external crates.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// A write cursor for one artefact file.
///
/// Since format v3 the file is a sequence of checksummed *sections*: the
/// prologue (magic, kind, version, header) forms the first section, and
/// every [`Writer::end_section`] call closes another by appending the
/// CRC32C of the bytes written since the previous boundary. A dirty
/// trailing section is closed automatically by [`Writer::finish`].
/// Readers must cross the same boundaries (see [`Reader::end_section`]).
pub struct Writer {
    buf: BytesMut,
    section_start: usize,
}

impl Writer {
    /// Starts a file of the given kind with a JSON header. The prologue
    /// section (magic through header) is checksummed immediately.
    pub fn new<H: serde::Serialize>(kind: ArtifactKind, header: &H) -> Result<Self, StoreError> {
        let mut buf = BytesMut::with_capacity(1 << 16);
        buf.put_slice(MAGIC);
        buf.put_u8(kind as u8);
        buf.put_u32_le(FORMAT_VERSION);
        let header = serde_json::to_vec(header)?;
        buf.put_u32_le(u32::try_from(header.len()).expect("header fits in u32"));
        buf.put_slice(&header);
        let crc = crc32c(&buf);
        buf.put_u32_le(crc);
        let section_start = buf.len();
        Ok(Self { buf, section_start })
    }

    /// Closes the current section: appends the CRC32C of everything
    /// written since the previous boundary. No-op for an empty section.
    pub fn end_section(&mut self) {
        if self.buf.len() == self.section_start {
            return;
        }
        let crc = crc32c(&self.buf[self.section_start..]);
        self.buf.put_u32_le(crc);
        self.section_start = self.buf.len();
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a `u32` (LE).
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a `u64` (LE).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends a length-prefixed `u32` array.
    pub fn put_u32_array(&mut self, values: &[u32]) {
        self.put_u64(values.len() as u64);
        self.buf.reserve(values.len() * 4);
        for &v in values {
            self.buf.put_u32_le(v);
        }
    }

    /// Appends a length-prefixed `u64` array.
    pub fn put_u64_array(&mut self, values: &[u64]) {
        self.put_u64(values.len() as u64);
        self.buf.reserve(values.len() * 8);
        for &v in values {
            self.buf.put_u64_le(v);
        }
    }

    /// Appends a length-prefixed `f64` array (IEEE-754 LE bits).
    pub fn put_f64_array(&mut self, values: &[f64]) {
        self.put_u64(values.len() as u64);
        self.buf.reserve(values.len() * 8);
        for &v in values {
            self.buf.put_f64_le(v);
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.put_slice(s.as_bytes());
    }

    /// Closes any dirty trailing section, appends the whole-file digest
    /// and writes the file atomically (write-to-temp + rename).
    pub fn finish(mut self, path: &Path) -> Result<(), StoreError> {
        self.end_section();
        let digest = fnv1a(&self.buf[MAGIC.len()..]);
        self.buf.put_u64_le(digest);
        let tmp = path.with_extension("holap.tmp");
        std::fs::write(&tmp, &self.buf)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// A read cursor over one artefact file.
///
/// The reader must cross the same section boundaries the writer emitted:
/// [`Reader::header`] verifies the prologue section, io modules call
/// [`Reader::end_section`] at their logical boundaries, and
/// [`Reader::finish`] verifies any unclosed trailing section.
pub struct Reader {
    data: Vec<u8>,
    pos: usize,
    payload_end: usize,
    section_start: usize,
}

impl Reader {
    /// Opens a file, validating magic, kind, version and digest, and
    /// returns the reader positioned at the header.
    pub fn open(path: &Path, expected: ArtifactKind) -> Result<Self, StoreError> {
        let data = std::fs::read(path)?;
        if data.len() < MAGIC.len() + 1 + 4 + 8 || &data[..MAGIC.len()] != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let payload_end = data.len() - 8;
        let stored = u64::from_le_bytes(data[payload_end..].try_into().expect("8 trailing bytes"));
        let actual = fnv1a(&data[MAGIC.len()..payload_end]);
        if stored != actual {
            return Err(StoreError::Corrupt(format!(
                "digest mismatch: stored {stored:#x}, computed {actual:#x}"
            )));
        }
        let mut r = Self {
            data,
            pos: MAGIC.len(),
            payload_end,
            section_start: 0,
        };
        let kind = r.u8()?;
        if kind != expected as u8 {
            return Err(StoreError::WrongKind {
                found: kind,
                expected,
            });
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(StoreError::BadVersion(version));
        }
        Ok(r)
    }

    /// Crosses a section boundary: reads the stored CRC32C and verifies
    /// it against the bytes consumed since the previous boundary.
    pub fn end_section(&mut self) -> Result<(), StoreError> {
        let start = self.section_start;
        let end = self.pos;
        let stored = self.u32()?;
        let actual = crc32c(&self.data[start..end]);
        if stored != actual {
            return Err(StoreError::Corrupt(format!(
                "section checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        self.section_start = self.pos;
        Ok(())
    }

    /// Parses the JSON header and verifies the prologue section checksum.
    pub fn header<H: serde::de::DeserializeOwned>(&mut self) -> Result<H, StoreError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        let header = serde_json::from_slice(bytes)?;
        self.end_section()?;
        Ok(header)
    }

    fn take(&mut self, n: usize) -> Result<&[u8], StoreError> {
        if self.pos + n > self.payload_end {
            return Err(StoreError::Corrupt("unexpected end of payload".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32` (LE).
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let mut s = self.take(4)?;
        Ok(s.get_u32_le())
    }

    /// Reads a `u64` (LE).
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let mut s = self.take(8)?;
        Ok(s.get_u64_le())
    }

    fn array_len(&mut self, elem_bytes: usize) -> Result<usize, StoreError> {
        let len = self.u64()? as usize;
        if len.saturating_mul(elem_bytes) > self.payload_end - self.pos {
            return Err(StoreError::Corrupt(format!(
                "array of {len} elements overruns file"
            )));
        }
        Ok(len)
    }

    /// Reads a length-prefixed `u32` array.
    pub fn u32_array(&mut self) -> Result<Vec<u32>, StoreError> {
        let len = self.array_len(4)?;
        let mut s = self.take(len * 4)?;
        Ok((0..len).map(|_| s.get_u32_le()).collect())
    }

    /// Reads a length-prefixed `u64` array.
    pub fn u64_array(&mut self) -> Result<Vec<u64>, StoreError> {
        let len = self.array_len(8)?;
        let mut s = self.take(len * 8)?;
        Ok((0..len).map(|_| s.get_u64_le()).collect())
    }

    /// Reads a length-prefixed `f64` array.
    pub fn f64_array(&mut self) -> Result<Vec<f64>, StoreError> {
        let len = self.array_len(8)?;
        let mut s = self.take(len * 8)?;
        Ok((0..len).map(|_| s.get_f64_le()).collect())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.array_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("invalid UTF-8 string".into()))
    }

    /// Verifies any unclosed trailing section, then that the payload was
    /// fully consumed.
    pub fn finish(mut self) -> Result<(), StoreError> {
        if self.pos != self.section_start {
            self.end_section()?;
        }
        if self.pos != self.payload_end {
            return Err(StoreError::Corrupt(format!(
                "{} unread payload bytes",
                self.payload_end - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("holap-fmt-{tag}-{}.holap", std::process::id()))
    }

    #[test]
    fn primitive_roundtrip() {
        let path = temp("prim");
        let mut w = Writer::new(ArtifactKind::Table, &"hdr").unwrap();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_u32_array(&[1, 2, 3]);
        w.put_u64_array(&[9, 8]);
        w.put_f64_array(&[1.5, -2.25]);
        w.put_str("héllo");
        w.finish(&path).unwrap();

        let mut r = Reader::open(&path, ArtifactKind::Table).unwrap();
        assert_eq!(r.header::<String>().unwrap(), "hdr");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u32_array().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.u64_array().unwrap(), vec![9, 8]);
        assert_eq!(r.f64_array().unwrap(), vec![1.5, -2.25]);
        assert_eq!(r.str().unwrap(), "héllo");
        r.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_is_detected() {
        let path = temp("corrupt");
        let mut w = Writer::new(ArtifactKind::Cube, &42u32).unwrap();
        w.put_u32_array(&[1, 2, 3, 4]);
        w.finish(&path).unwrap();
        // Flip one payload byte.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Reader::open(&path, ArtifactKind::Cube),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let path = temp("trunc");
        let mut w = Writer::new(ArtifactKind::Cube, &1u32).unwrap();
        w.put_f64_array(&[1.0; 100]);
        w.finish(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 32]).unwrap();
        assert!(Reader::open(&path, ArtifactKind::Cube).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_kind_and_magic_rejected() {
        let path = temp("kind");
        Writer::new(ArtifactKind::Dicts, &0u8)
            .unwrap()
            .finish(&path)
            .unwrap();
        assert!(matches!(
            Reader::open(&path, ArtifactKind::Table),
            Err(StoreError::WrongKind { found: 3, .. })
        ));
        std::fs::write(&path, b"garbage!").unwrap();
        assert!(matches!(
            Reader::open(&path, ArtifactKind::Table),
            Err(StoreError::BadMagic)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn oversized_array_header_is_rejected_not_allocated() {
        // A tiny file claiming a huge array must fail cleanly.
        let path = temp("huge");
        let mut w = Writer::new(ArtifactKind::Table, &0u8).unwrap();
        w.put_u64(u64::MAX / 2); // bogus length, no data behind it
        w.finish(&path).unwrap();
        let mut r = Reader::open(&path, ArtifactKind::Table).unwrap();
        let _: u8 = r.header().unwrap();
        assert!(matches!(r.u32_array(), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 / Castagnoli reference vectors.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn section_checksum_catches_tampering_behind_a_fixed_digest() {
        // An adversarial (or multi-bit-unlucky) edit that also patches the
        // trailing FNV digest must still trip the section CRC.
        let path = temp("section");
        let mut w = Writer::new(ArtifactKind::Cube, &7u32).unwrap();
        w.put_u32_array(&[10, 20, 30]);
        w.end_section();
        w.put_f64_array(&[1.0, 2.0]);
        w.finish(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the first payload section (the u32 array
        // data), then recompute the whole-file digest so `open` passes.
        let flip_at = bytes.len() - 8 - 4 - (2 * 8 + 8) - 4 - 6;
        bytes[flip_at] ^= 0x01;
        let end = bytes.len() - 8;
        let digest = {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in &bytes[MAGIC.len()..end] {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        };
        bytes[end..].copy_from_slice(&digest.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let mut r = Reader::open(&path, ArtifactKind::Cube).expect("digest was patched");
        let _: u32 = r.header().unwrap();
        let _ = r.u32_array().unwrap();
        assert!(matches!(r.end_section(), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_section_structure_is_corrupt_not_garbage() {
        // A reader crossing a boundary the writer never emitted reads
        // payload bytes as a checksum: typed Corrupt, not a wrong value.
        let path = temp("structure");
        let mut w = Writer::new(ArtifactKind::Table, &0u8).unwrap();
        w.put_u32(1);
        w.put_u32(2);
        w.finish(&path).unwrap();
        let mut r = Reader::open(&path, ArtifactKind::Table).unwrap();
        let _: u8 = r.header().unwrap();
        let _ = r.u32().unwrap();
        assert!(matches!(r.end_section(), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_files_are_rejected_with_bad_version() {
        // Hand-build a v2-stamped file with a valid digest: the version
        // gate must fire before any payload parsing.
        let path = temp("v2");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.push(ArtifactKind::Table as u8);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // header len
        bytes.push(b'0'); // header JSON: 0
        let digest = {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in &bytes[MAGIC.len()..] {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        };
        bytes.extend_from_slice(&digest.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            Reader::open(&path, ArtifactKind::Table),
            Err(StoreError::BadVersion(2))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn leftover_payload_is_reported() {
        let path = temp("leftover");
        let mut w = Writer::new(ArtifactKind::Table, &0u8).unwrap();
        w.put_u32(5);
        w.finish(&path).unwrap();
        let mut r = Reader::open(&path, ArtifactKind::Table).unwrap();
        let _: u8 = r.header().unwrap();
        assert!(matches!(r.finish(), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }
}
