//! Persistence errors.

use crate::format::ArtifactKind;
use std::fmt;

/// Anything that can go wrong while saving or loading an artefact.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file does not start with the format magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    BadVersion(u32),
    /// The file holds a different artefact kind than requested.
    WrongKind {
        /// Kind found in the file.
        found: u8,
        /// Kind the caller asked for.
        expected: ArtifactKind,
    },
    /// The trailing digest does not match — truncation or bit-rot.
    Corrupt(String),
    /// The payload is structurally invalid (lengths, ranges, schema).
    Invalid(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::BadMagic => write!(f, "not a holap store file (bad magic)"),
            Self::BadVersion(v) => write!(f, "unsupported format version {v}"),
            Self::WrongKind { found, expected } => {
                write!(f, "file holds artefact kind {found}, expected {expected:?}")
            }
            Self::Corrupt(ctx) => write!(f, "corrupt file: {ctx}"),
            Self::Invalid(ctx) => write!(f, "invalid payload: {ctx}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        Self::Invalid(format!("header: {e}"))
    }
}
