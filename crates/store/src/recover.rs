//! Recovery: rebuild corrupt cube artefacts from the fact table.
//!
//! Cubes are derived data — every cell is an aggregate over fact-table
//! rows — so a cube file that fails its checksum is an inconvenience,
//! not a loss. The fact table and dictionaries are source data: if they
//! fail verification the error propagates typed, because fabricating
//! them would be inventing answers.

use crate::cube_io::{load_cube, save_cube};
use crate::dict_io::load_dicts;
use crate::error::StoreError;
use crate::table_io::load_table;
use holap_cube::{CubeSchema, MolapCube};
use holap_dict::DictionarySet;
use holap_table::FactTable;
use std::path::Path;

/// What [`load_system_resilient`] had to do to hand back a usable image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `(resolution, load error)` for each cube that was rebuilt from the
    /// fact table and re-saved over the bad file.
    pub rebuilt: Vec<(usize, String)>,
}

impl RecoveryReport {
    /// True when every artefact loaded clean on the first try.
    pub fn is_clean(&self) -> bool {
        self.rebuilt.is_empty()
    }
}

/// Loads the cube at `path`, rebuilding it from `table` (summing
/// `measure`) when the load fails for any reason — checksum mismatch,
/// truncation, missing file, foreign bytes. The rebuilt cube is
/// compressed and written back over `path` so the next load is clean.
///
/// Returns the cube and the load error that triggered a rebuild, if any.
pub fn load_cube_or_rebuild(
    path: &Path,
    table: &FactTable,
    resolution: usize,
    measure: usize,
) -> Result<(MolapCube, Option<StoreError>), StoreError> {
    match load_cube(path) {
        Ok(cube) => Ok((cube, None)),
        Err(err) => {
            let schema = CubeSchema::from_table_schema(table.schema());
            let mut cube = MolapCube::build_from_table(schema, resolution, table, measure);
            cube.compress();
            save_cube(path, &cube)?;
            Ok((cube, Some(err)))
        }
    }
}

/// [`load_system`](crate::load_system) with cube self-healing: the fact
/// table and dictionaries must verify (their errors propagate), but any
/// cube that fails to load is rebuilt from the table via
/// [`load_cube_or_rebuild`], summing `measure`. Cube resolutions are
/// parsed from the `cube-r<resolution>.holap` filenames, so a rebuilt
/// cube lands at the same grain the damaged file claimed.
pub fn load_system_resilient(
    dir: &Path,
    measure: usize,
) -> Result<(FactTable, Vec<MolapCube>, DictionarySet, RecoveryReport), StoreError> {
    let table = load_table(&dir.join("facts.holap"))?;
    let dicts = load_dicts(&dir.join("dicts.holap"))?;
    let mut report = RecoveryReport::default();
    let mut cubes = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(resolution) = name
            .strip_prefix("cube-r")
            .and_then(|rest| rest.strip_suffix(".holap"))
            .and_then(|digits| digits.parse::<usize>().ok())
        else {
            continue;
        };
        let (cube, rebuilt_from) = load_cube_or_rebuild(&path, &table, resolution, measure)?;
        if let Some(err) = rebuilt_from {
            report.rebuilt.push((resolution, err.to_string()));
        }
        cubes.push(cube);
    }
    cubes.sort_by_key(MolapCube::resolution);
    report.rebuilt.sort_by_key(|(r, _)| *r);
    Ok((table, cubes, dicts, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::corrupt_byte;
    use holap_dict::DictKind;
    use holap_table::{FactTableBuilder, TableSchema};

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("holap-recover-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn system() -> (FactTable, Vec<MolapCube>, DictionarySet) {
        let schema = TableSchema::builder()
            .dimension("time", &[("year", 4), ("month", 16)])
            .dimension("geo", &[("city", 8)])
            .measure("sales")
            .build();
        let mut b = FactTableBuilder::new(schema.clone());
        for i in 0..700u32 {
            b.push_row(&[i % 4, i % 16, i % 8], &[f64::from(i) * 0.25])
                .unwrap();
        }
        let table = b.finish();
        let cschema = CubeSchema::from_table_schema(&schema);
        let mut fine = MolapCube::build_from_table(cschema.clone(), 1, &table, 0);
        fine.compress();
        let coarse = fine.rollup_to(0);
        let mut dicts = DictionarySet::new(DictKind::Sorted);
        dicts.build_column("geo.city", ["atl", "bos", "chi"]);
        (table, vec![coarse, fine], dicts)
    }

    #[test]
    fn corrupt_cube_is_rebuilt_bit_identical() {
        let (table, cubes, dicts) = system();
        let dir = tempdir("rebuild");
        crate::save_system(&dir, &table, &[&cubes[0], &cubes[1]], &dicts).unwrap();
        let fine_path = dir.join("cube-r1.holap");
        corrupt_byte(&fine_path, 7).unwrap();
        assert!(load_cube(&fine_path).is_err(), "corruption is detected");

        let (t2, loaded, d2, report) = load_system_resilient(&dir, 0).unwrap();
        assert_eq!(t2, table);
        assert_eq!(d2, dicts);
        assert_eq!(loaded, cubes, "rebuilt cube matches the original");
        assert_eq!(report.rebuilt.len(), 1);
        assert_eq!(report.rebuilt[0].0, 1);
        assert!(!report.is_clean());

        // The bad file was healed on disk: a plain load now succeeds.
        assert!(load_cube(&fine_path).is_ok());
        let (_, _, _, again) = load_system_resilient(&dir, 0).unwrap();
        assert!(again.is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_cube_file_is_rebuilt_too() {
        let (table, cubes, dicts) = system();
        let dir = tempdir("missing");
        crate::save_system(&dir, &table, &[&cubes[0], &cubes[1]], &dicts).unwrap();
        std::fs::remove_file(dir.join("cube-r0.holap")).unwrap();
        // read_dir no longer sees it, so discovery must come from the
        // caller when a file vanished entirely; the per-path API covers it.
        let (cube, err) = load_cube_or_rebuild(&dir.join("cube-r0.holap"), &table, 0, 0).unwrap();
        assert!(err.is_some());
        assert_eq!(cube, cubes[0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_table_still_propagates() {
        let (table, cubes, dicts) = system();
        let dir = tempdir("table");
        crate::save_system(&dir, &table, &[&cubes[1]], &dicts).unwrap();
        corrupt_byte(&dir.join("facts.holap"), 3).unwrap();
        assert!(load_system_resilient(&dir, 0).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
