//! Dictionary persistence: per-column entry lists with kind tags.
//!
//! Entries are written in code order, so rebuilding with each
//! implementation's `build` reproduces identical codes: linear and hashed
//! dictionaries assign first-seen order (= the written order), and the
//! sorted dictionary re-derives ranks from the (already sorted) entries.

use crate::error::StoreError;
use crate::format::{ArtifactKind, Reader, Writer};
use holap_dict::{DictKind, Dictionary, DictionarySet};
use serde::{Deserialize, Serialize};
use std::path::Path;

#[derive(Serialize, Deserialize)]
struct DictsHeader {
    kind: DictKind,
    columns: Vec<String>,
}

fn kind_tag(kind: DictKind) -> u8 {
    match kind {
        DictKind::Linear => 1,
        DictKind::Sorted => 2,
        DictKind::Hashed => 3,
    }
}

fn tag_kind(tag: u8) -> Option<DictKind> {
    match tag {
        1 => Some(DictKind::Linear),
        2 => Some(DictKind::Sorted),
        3 => Some(DictKind::Hashed),
        _ => None,
    }
}

/// Saves a dictionary set.
pub fn save_dicts(path: &Path, dicts: &DictionarySet) -> Result<(), StoreError> {
    let columns: Vec<String> = dicts.columns().map(str::to_owned).collect();
    let header = DictsHeader {
        kind: dicts.kind(),
        columns: columns.clone(),
    };
    let mut w = Writer::new(ArtifactKind::Dicts, &header)?;
    for column in &columns {
        let dict = dicts.dictionary(column).expect("listed column exists");
        w.put_u8(kind_tag(dict.kind()));
        w.put_u64(dict.len() as u64);
        for code in 0..dict.len() as u32 {
            w.put_str(dict.decode(code).expect("dense codes"));
        }
        w.end_section(); // one section per column dictionary
    }
    w.finish(path)
}

/// Loads a dictionary set.
pub fn load_dicts(path: &Path) -> Result<DictionarySet, StoreError> {
    let mut r = Reader::open(path, ArtifactKind::Dicts)?;
    let header: DictsHeader = r.header()?;
    let mut set = DictionarySet::new(header.kind);
    for column in &header.columns {
        let tag = r.u8()?;
        let kind = tag_kind(tag)
            .ok_or_else(|| StoreError::Invalid(format!("unknown dictionary tag {tag}")))?;
        if kind != header.kind {
            return Err(StoreError::Invalid(format!(
                "column `{column}` has kind {kind:?}, set is {:?}",
                header.kind
            )));
        }
        let len = r.u64()? as usize;
        let mut entries = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            entries.push(r.str()?);
        }
        let codes = set.build_column(column, entries.iter().map(String::as_str));
        // Entries were written in code order; rebuilding must reproduce
        // exactly those codes, or the stored fact table's code columns
        // would silently decode to the wrong strings.
        if !codes.iter().enumerate().all(|(i, &c)| c as usize == i) {
            return Err(StoreError::Invalid(format!(
                "column `{column}`: rebuilt codes disagree with stored order \
                 (duplicate or unsorted entries)"
            )));
        }
        r.end_section()?;
    }
    r.finish()?;
    Ok(set)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("holap-dict-{tag}-{}.holap", std::process::id()))
    }

    fn sample(kind: DictKind) -> DictionarySet {
        let mut set = DictionarySet::new(kind);
        set.build_column("city", ["delta", "alpha", "charlie", "bravo"]);
        set.build_column("brand", ["z1", "a2", "m3"]);
        set
    }

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [DictKind::Linear, DictKind::Sorted, DictKind::Hashed] {
            let set = sample(kind);
            let path = temp(&format!("{kind:?}"));
            save_dicts(&path, &set).unwrap();
            let back = load_dicts(&path).unwrap();
            assert_eq!(back, set, "{kind:?}");
            // Codes must be identical, not just sets of strings.
            for column in set.columns() {
                let a = set.dictionary(column).unwrap();
                let b = back.dictionary(column).unwrap();
                for code in 0..a.len() as u32 {
                    assert_eq!(a.decode(code), b.decode(code), "{kind:?} {column} {code}");
                }
            }
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn unicode_entries_survive() {
        let mut set = DictionarySet::new(DictKind::Sorted);
        set.build_column("names", ["Ångström", "Ω", "héllo", "中文"]);
        let path = temp("unicode");
        save_dicts(&path, &set).unwrap();
        assert_eq!(load_dicts(&path).unwrap(), set);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_set_roundtrip() {
        let set = DictionarySet::new(DictKind::Linear);
        let path = temp("emptyset");
        save_dicts(&path, &set).unwrap();
        let back = load_dicts(&path).unwrap();
        assert_eq!(back, set);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_tag_rejected() {
        let header = DictsHeader {
            kind: DictKind::Linear,
            columns: vec!["c".into()],
        };
        let path = temp("badtag");
        let mut w = Writer::new(ArtifactKind::Dicts, &header).unwrap();
        w.put_u8(77);
        w.finish(&path).unwrap();
        assert!(matches!(load_dicts(&path), Err(StoreError::Invalid(_))));
        std::fs::remove_file(&path).ok();
    }
}
