//! Process-wide persistence telemetry: artefact and byte counters
//! published by [`save_system`](crate::save_system) /
//! [`load_system`](crate::load_system), mirroring the scan counters in
//! `holap_table::telemetry`. Higher layers export the deltas under their
//! own instrument names.

use std::sync::atomic::{AtomicU64, Ordering};

static ARTIFACTS_SAVED: AtomicU64 = AtomicU64::new(0);
static ARTIFACTS_LOADED: AtomicU64 = AtomicU64::new(0);
static BYTES_WRITTEN: AtomicU64 = AtomicU64::new(0);
static BYTES_READ: AtomicU64 = AtomicU64::new(0);

/// Point-in-time copy of the persistence counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreTelemetry {
    /// Artefact files written (table, dictionaries, each cube).
    pub artifacts_saved: u64,
    /// Artefact files read back.
    pub artifacts_loaded: u64,
    /// Bytes written across all saved artefacts.
    pub bytes_written: u64,
    /// Bytes read across all loaded artefacts.
    pub bytes_read: u64,
}

impl StoreTelemetry {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &StoreTelemetry) -> StoreTelemetry {
        StoreTelemetry {
            artifacts_saved: self.artifacts_saved.saturating_sub(earlier.artifacts_saved),
            artifacts_loaded: self
                .artifacts_loaded
                .saturating_sub(earlier.artifacts_loaded),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
        }
    }
}

/// Reads the current counter values.
pub fn snapshot() -> StoreTelemetry {
    StoreTelemetry {
        artifacts_saved: ARTIFACTS_SAVED.load(Ordering::Relaxed),
        artifacts_loaded: ARTIFACTS_LOADED.load(Ordering::Relaxed),
        bytes_written: BYTES_WRITTEN.load(Ordering::Relaxed),
        bytes_read: BYTES_READ.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_save(bytes: u64) {
    ARTIFACTS_SAVED.fetch_add(1, Ordering::Relaxed);
    BYTES_WRITTEN.fetch_add(bytes, Ordering::Relaxed);
}

pub(crate) fn record_load(bytes: u64) {
    ARTIFACTS_LOADED.fetch_add(1, Ordering::Relaxed);
    BYTES_READ.fetch_add(bytes, Ordering::Relaxed);
}

/// File size on disk, `0` when the file cannot be inspected.
pub(crate) fn file_len(path: &std::path::Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_and_since_diffs() {
        let before = snapshot();
        record_save(100);
        record_load(40);
        record_load(60);
        let delta = snapshot().since(&before);
        assert_eq!(delta.artifacts_saved, 1);
        assert_eq!(delta.artifacts_loaded, 2);
        assert_eq!(delta.bytes_written, 100);
        assert_eq!(delta.bytes_read, 100);
    }
}
