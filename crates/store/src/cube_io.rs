//! Cube persistence: schema + grid header, chunk payloads (dense chunks
//! as raw arrays, compressed chunks stay in chunk-offset form).

use crate::error::StoreError;
use crate::format::{ArtifactKind, Reader, Writer};
use holap_cube::{Chunk, ChunkGrid, CubeSchema, MolapCube};
use serde::{Deserialize, Serialize};
use std::path::Path;

#[derive(Serialize, Deserialize)]
struct CubeHeader {
    schema: CubeSchema,
    resolution: usize,
    grid: ChunkGrid,
}

const CHUNK_DENSE: u8 = 0;
const CHUNK_SPARSE: u8 = 1;

/// Saves a cube.
pub fn save_cube(path: &Path, cube: &MolapCube) -> Result<(), StoreError> {
    let (schema, resolution, grid, chunks) = cube.parts();
    let header = CubeHeader {
        schema: schema.clone(),
        resolution,
        grid: grid.clone(),
    };
    let mut w = Writer::new(ArtifactKind::Cube, &header)?;
    w.put_u64(chunks.len() as u64);
    w.end_section(); // chunk count
    for chunk in chunks {
        match chunk {
            Chunk::Dense { sums, counts } => {
                w.put_u8(CHUNK_DENSE);
                w.put_f64_array(sums);
                w.put_u64_array(counts);
            }
            Chunk::Sparse {
                offsets,
                sums,
                counts,
            } => {
                w.put_u8(CHUNK_SPARSE);
                w.put_u32_array(offsets);
                w.put_f64_array(sums);
                w.put_u64_array(counts);
            }
        }
        w.end_section(); // one section per chunk: corruption names it
    }
    w.finish(path)
}

/// Loads a cube.
pub fn load_cube(path: &Path) -> Result<MolapCube, StoreError> {
    let mut r = Reader::open(path, ArtifactKind::Cube)?;
    let header: CubeHeader = r.header()?;
    let n = r.u64()? as usize;
    r.end_section()?;
    if n != header.grid.chunk_count() {
        return Err(StoreError::Invalid(format!(
            "file holds {n} chunks, grid expects {}",
            header.grid.chunk_count()
        )));
    }
    let mut chunks = Vec::with_capacity(n);
    for i in 0..n {
        let tag = r.u8()?;
        let chunk = match tag {
            CHUNK_DENSE => {
                let sums = r.f64_array()?;
                let counts = r.u64_array()?;
                Chunk::Dense { sums, counts }
            }
            CHUNK_SPARSE => {
                let offsets = r.u32_array()?;
                let sums = r.f64_array()?;
                let counts = r.u64_array()?;
                Chunk::Sparse {
                    offsets,
                    sums,
                    counts,
                }
            }
            other => {
                return Err(StoreError::Invalid(format!(
                    "chunk {i} has unknown tag {other}"
                )))
            }
        };
        r.end_section()?;
        chunks.push(chunk);
    }
    r.finish()?;
    MolapCube::from_parts(header.schema, header.resolution, header.grid, chunks)
        .map_err(StoreError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holap_cube::Region;
    use holap_table::TableSchema;

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("holap-cube-{tag}-{}.holap", std::process::id()))
    }

    fn cube() -> MolapCube {
        let schema = CubeSchema::from_table_schema(
            &TableSchema::builder()
                .dimension("a", &[("l0", 4), ("l1", 16)])
                .dimension("b", &[("l0", 4), ("l1", 8)])
                .measure("m")
                .build(),
        );
        let mut cube = MolapCube::build_empty_with_chunks(schema, 1, 5);
        let mut x = 11u64;
        for _ in 0..60 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            cube.add(
                &[(x >> 5) as u32 % 16, (x >> 13) as u32 % 8],
                (x % 50) as f64,
                1,
            );
        }
        cube
    }

    #[test]
    fn dense_roundtrip() {
        let c = cube();
        let path = temp("dense");
        save_cube(&path, &c).unwrap();
        let back = load_cube(&path).unwrap();
        assert_eq!(back, c);
        let full = Region::full(c.shape());
        assert_eq!(back.aggregate_seq(&full), c.aggregate_seq(&full));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compressed_roundtrip() {
        let mut c = cube();
        assert!(c.compress() > 0, "sparse content compresses");
        let path = temp("sparse");
        save_cube(&path, &c).unwrap();
        let back = load_cube(&path).unwrap();
        assert_eq!(back, c);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_chunk_count_rejected() {
        let c = cube();
        let (schema, resolution, grid, chunks) = c.parts();
        let header = CubeHeader {
            schema: schema.clone(),
            resolution,
            grid: grid.clone(),
        };
        let path = temp("badcount");
        let mut w = Writer::new(ArtifactKind::Cube, &header).unwrap();
        w.put_u64((chunks.len() - 1) as u64); // lie about the count
        w.finish(&path).unwrap();
        assert!(matches!(load_cube(&path), Err(StoreError::Invalid(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_chunk_tag_rejected() {
        let schema = CubeSchema::from_table_schema(
            &TableSchema::builder()
                .dimension("a", &[("l", 2)])
                .measure("m")
                .build(),
        );
        let grid = ChunkGrid::new(vec![2], 64);
        let header = CubeHeader {
            schema,
            resolution: 0,
            grid,
        };
        let path = temp("badtag");
        let mut w = Writer::new(ArtifactKind::Cube, &header).unwrap();
        w.put_u64(1);
        w.end_section();
        w.put_u8(9);
        w.finish(&path).unwrap();
        assert!(matches!(load_cube(&path), Err(StoreError::Invalid(_))));
        std::fs::remove_file(&path).ok();
    }
}
