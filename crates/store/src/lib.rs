//! Binary on-disk persistence for the hybrid OLAP system's data artefacts.
//!
//! The array-based cube algorithms the paper builds on assume chunked
//! cubes "stored on disk" with chunks matching the disk blocking (Zhao et
//! al., §II-B), and a production OLAP system must survive restarts without
//! re-aggregating terabytes. This crate provides a compact, checksummed
//! binary container for:
//!
//! * [`FactTable`] — schema header + raw little-endian column pools;
//! * [`MolapCube`] — schema header + chunk grid + dense/sparse chunk
//!   payloads (compressed chunks stay compressed on disk);
//! * [`DictionarySet`] — per-column dictionaries with their kind tag.
//!
//! # Format
//!
//! ```text
//! magic   "HOLAPST1"                            8 bytes
//! kind    u8 (1 = table, 2 = cube, 3 = dicts)   1 byte
//! header  u32 length + JSON (schema, metadata)  + u32 CRC32C
//! payload sections (kind-specific, length-prefixed arrays),
//!         each section followed by its u32 CRC32C
//! digest  u64 FNV-1a over everything before it
//! ```
//!
//! All integers are little-endian. Since format v3 every section —
//! prologue, then kind-specific groups like "dimension columns" or "one
//! chunk" — carries its own CRC32C checksum, so corruption is reported
//! against the section that holds it and a damaged artefact can never be
//! partially decoded into wrong answers. The trailing whole-file digest
//! additionally detects truncation ([`StoreError::Corrupt`]); the
//! magic/kind/version bytes reject foreign files ([`StoreError::BadMagic`]
//! / [`StoreError::WrongKind`]).
//!
//! Cube artefacts are derived data: [`load_system_resilient`] rebuilds any
//! cube that fails verification from the (verified) fact table, while
//! table/dictionary corruption propagates as a typed error.
//!
//! # Example
//!
//! ```
//! use holap_store::{load_table, save_table};
//! use holap_table::{FactTableBuilder, TableSchema};
//!
//! let schema = TableSchema::builder().dimension("d", &[("l", 4)]).measure("m").build();
//! let mut b = FactTableBuilder::new(schema);
//! b.push_row(&[1], &[2.0]).unwrap();
//! let table = b.finish();
//!
//! let dir = std::env::temp_dir().join("holap-store-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("facts.holap");
//! save_table(&path, &table).unwrap();
//! assert_eq!(load_table(&path).unwrap(), table);
//! ```

#![warn(missing_docs)]

mod cube_io;
mod dict_io;
mod error;
pub mod format;
pub mod inject;
mod recover;
mod table_io;
pub mod telemetry;

pub use cube_io::{load_cube, save_cube};
pub use dict_io::{load_dicts, save_dicts};
pub use error::StoreError;
pub use format::{crc32c, ArtifactKind, FORMAT_VERSION};
pub use recover::{load_cube_or_rebuild, load_system_resilient, RecoveryReport};
pub use table_io::{load_table, save_table};
pub use telemetry::StoreTelemetry;

use holap_cube::MolapCube;
use holap_dict::DictionarySet;
use holap_table::FactTable;
use std::path::Path;

/// Saves a whole system image — table, cubes and dictionaries — into a
/// directory (one file per artefact).
pub fn save_system(
    dir: &Path,
    table: &FactTable,
    cubes: &[&MolapCube],
    dicts: &DictionarySet,
) -> Result<(), StoreError> {
    std::fs::create_dir_all(dir)?;
    let facts_path = dir.join("facts.holap");
    save_table(&facts_path, table)?;
    telemetry::record_save(telemetry::file_len(&facts_path));
    let dicts_path = dir.join("dicts.holap");
    save_dicts(&dicts_path, dicts)?;
    telemetry::record_save(telemetry::file_len(&dicts_path));
    for cube in cubes {
        let path = dir.join(format!("cube-r{}.holap", cube.resolution()));
        save_cube(&path, cube)?;
        telemetry::record_save(telemetry::file_len(&path));
    }
    Ok(())
}

/// Loads a system image saved by [`save_system`]. Cube files are
/// discovered by their `cube-r<resolution>.holap` names.
pub fn load_system(dir: &Path) -> Result<(FactTable, Vec<MolapCube>, DictionarySet), StoreError> {
    let facts_path = dir.join("facts.holap");
    let table = load_table(&facts_path)?;
    telemetry::record_load(telemetry::file_len(&facts_path));
    let dicts_path = dir.join("dicts.holap");
    let dicts = load_dicts(&dicts_path)?;
    telemetry::record_load(telemetry::file_len(&dicts_path));
    let mut cubes = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            if name.starts_with("cube-r") && name.ends_with(".holap") {
                cubes.push(load_cube(&path)?);
                telemetry::record_load(telemetry::file_len(&path));
            }
        }
    }
    cubes.sort_by_key(MolapCube::resolution);
    Ok((table, cubes, dicts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use holap_cube::CubeSchema;
    use holap_dict::DictKind;
    use holap_table::{FactTableBuilder, TableSchema};

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("holap-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn whole_system_roundtrip() {
        let schema = TableSchema::builder()
            .dimension("time", &[("year", 4), ("month", 16)])
            .dimension("geo", &[("city", 8)])
            .measure("sales")
            .build();
        let mut b = FactTableBuilder::new(schema.clone());
        for i in 0..500u32 {
            b.push_row(&[i % 4, i % 16, i % 8], &[i as f64]).unwrap();
        }
        let table = b.finish();
        let cschema = CubeSchema::from_table_schema(&schema);
        let mut fine = MolapCube::build_from_table(cschema.clone(), 1, &table, 0);
        fine.compress();
        let coarse = fine.rollup_to(0);
        let mut dicts = DictionarySet::new(DictKind::Sorted);
        dicts.build_column("geo.city", ["a", "b", "c"]);

        let dir = tempdir("system");
        save_system(&dir, &table, &[&fine, &coarse], &dicts).unwrap();
        let (t2, cubes, d2) = load_system(&dir).unwrap();
        assert_eq!(t2, table);
        assert_eq!(cubes.len(), 2);
        assert_eq!(cubes[0], coarse);
        assert_eq!(cubes[1], fine);
        assert_eq!(d2, dicts);
        std::fs::remove_dir_all(&dir).ok();
    }
}
