//! Fact-table persistence: JSON schema header + raw column pools + zone
//! maps.
//!
//! Since format v2 every table file carries the per-block zone maps of its
//! dimension columns (one min array and one max array per column, one entry
//! per [`holap_table::BATCH_ROWS`] rows). The loader recomputes the zone
//! maps from the column data it just read and rejects the file when the
//! persisted summaries disagree — a zone map that under-covers its blocks
//! would make the vectorized scan engine silently skip matching rows, so
//! the mismatch is treated as corruption.

use crate::error::StoreError;
use crate::format::{ArtifactKind, Reader, Writer};
use holap_table::{FactTable, TableSchema, ZoneMaps};
use std::path::Path;

/// Saves a fact table.
pub fn save_table(path: &Path, table: &FactTable) -> Result<(), StoreError> {
    let schema = table.schema();
    let mut w = Writer::new(ArtifactKind::Table, schema)?;
    w.put_u64(table.rows() as u64);
    for (d, ds) in schema.dimensions.iter().enumerate() {
        for l in 0..ds.levels.len() {
            w.put_u32_array(table.dim_column(d, l));
        }
    }
    w.end_section(); // row count + dimension columns
    for m in 0..schema.measures.len() {
        w.put_f64_array(table.measure_column(m));
    }
    w.end_section(); // measure columns
    let zones = table.zone_maps();
    for c in 0..zones.column_count() {
        w.put_u32_array(zones.column(c).mins());
        w.put_u32_array(zones.column(c).maxs());
    }
    w.finish(path) // zone maps close as the trailing section
}

/// Loads a fact table.
pub fn load_table(path: &Path) -> Result<FactTable, StoreError> {
    let mut r = Reader::open(path, ArtifactKind::Table)?;
    let schema: TableSchema = r.header()?;
    let rows = r.u64()? as usize;
    let mut dim_columns = Vec::with_capacity(schema.dim_column_count());
    for _ in 0..schema.dim_column_count() {
        dim_columns.push(r.u32_array()?);
    }
    r.end_section()?;
    let mut measure_columns = Vec::with_capacity(schema.measures.len());
    for _ in 0..schema.measures.len() {
        measure_columns.push(r.f64_array()?);
    }
    r.end_section()?;
    let mut zone_parts = Vec::with_capacity(schema.dim_column_count());
    for _ in 0..schema.dim_column_count() {
        let mins = r.u32_array()?;
        let maxs = r.u32_array()?;
        zone_parts.push((mins, maxs));
    }
    r.finish()?;
    if dim_columns.iter().any(|c| c.len() != rows)
        || measure_columns.iter().any(|c| c.len() != rows)
    {
        return Err(StoreError::Invalid(
            "column length disagrees with row count".into(),
        ));
    }
    let stored_zones = ZoneMaps::from_parts(rows, zone_parts).map_err(StoreError::Invalid)?;
    let table =
        FactTable::from_parts(schema, dim_columns, measure_columns).map_err(StoreError::Invalid)?;
    if table.zone_maps() != &stored_zones {
        return Err(StoreError::Invalid(
            "persisted zone maps disagree with column data".into(),
        ));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holap_table::{AggOp, AggSpec, ColumnId, FactTableBuilder, Predicate, ScanQuery};

    fn temp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("holap-table-{tag}-{}.holap", std::process::id()))
    }

    fn table(rows: u32) -> FactTable {
        let schema = TableSchema::builder()
            .dimension("time", &[("year", 4), ("month", 16)])
            .dimension("geo", &[("city", 8)])
            .measure("sales")
            .measure("qty")
            .build();
        let mut b = FactTableBuilder::new(schema);
        for i in 0..rows {
            b.push_row(&[i % 4, i % 16, i % 8], &[i as f64 * 1.5, (i % 7) as f64])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn roundtrip_preserves_table_and_answers() {
        let t = table(2000);
        let path = temp("roundtrip");
        save_table(&path, &t).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back, t);
        // Loaded table answers queries identically.
        let q = ScanQuery::new()
            .filter(Predicate::range(ColumnId::dim(0, 1), 3, 12))
            .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
            .aggregate(AggSpec::count_star());
        assert_eq!(back.scan_seq(&q).unwrap(), t.scan_seq(&q).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = table(0);
        let path = temp("empty");
        save_table(&path, &t).unwrap();
        assert_eq!(load_table(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tampered_coordinate_is_rejected() {
        // Corrupting a coordinate past its cardinality must fail validation
        // — rebuild the file with a bad value but a valid digest, by
        // writing it through the Writer.
        use crate::format::Writer;
        let path = temp("tamper");
        let schema = TableSchema::builder()
            .dimension("d", &[("l", 4)])
            .measure("m")
            .build();
        let mut w = Writer::new(ArtifactKind::Table, &schema).unwrap();
        w.put_u64(1);
        w.put_u32_array(&[9]); // 9 >= cardinality 4
        w.end_section();
        w.put_f64_array(&[1.0]);
        w.end_section();
        w.put_u32_array(&[9]); // zone mins
        w.put_u32_array(&[9]); // zone maxs
        w.finish(&path).unwrap();
        assert!(matches!(load_table(&path), Err(StoreError::Invalid(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lying_zone_maps_are_rejected() {
        // A structurally valid file whose zone maps under-cover the data
        // must fail: silent block skipping would drop matching rows.
        use crate::format::Writer;
        let path = temp("zones");
        let schema = TableSchema::builder()
            .dimension("d", &[("l", 16)])
            .measure("m")
            .build();
        let mut w = Writer::new(ArtifactKind::Table, &schema).unwrap();
        w.put_u64(2);
        w.put_u32_array(&[3, 12]);
        w.end_section();
        w.put_f64_array(&[1.0, 2.0]);
        w.end_section();
        w.put_u32_array(&[3]); // mins: correct
        w.put_u32_array(&[5]); // maxs: lies — true block max is 12
        w.finish(&path).unwrap();
        assert!(matches!(load_table(&path), Err(StoreError::Invalid(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zone_maps_roundtrip_with_table() {
        let t = table(3000); // spans multiple zone blocks
        let path = temp("zones-rt");
        save_table(&path, &t).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.zone_maps(), t.zone_maps());
        assert!(back.zone_maps().block_count() >= 2);
        std::fs::remove_file(&path).ok();
    }
}
