//! Cube queries: one ranged condition per dimension, each at its own
//! resolution (paper Eq. 1).

use crate::cube::CubeSchema;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The condition `C_L(f, t, r)` of Eq. 1: an inclusive coordinate range at
/// resolution level `level` of one dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimRange {
    /// Resolution level the bounds are expressed at (`r` in Eq. 1).
    pub level: usize,
    /// Lower bound, inclusive (`f`).
    pub from: u32,
    /// Upper bound, inclusive (`t`).
    pub to: u32,
}

impl DimRange {
    /// Creates a condition.
    pub fn new(level: usize, from: u32, to: u32) -> Self {
        Self { level, from, to }
    }

    /// A condition spanning the whole dimension at its coarsest level —
    /// "no restriction".
    pub fn all(schema: &CubeSchema, dim: usize) -> Self {
        Self {
            level: 0,
            from: 0,
            to: schema.cardinality_at(dim, 0) - 1,
        }
    }

    /// Number of coordinates the range covers.
    pub fn width(&self) -> u64 {
        u64::from(self.to - self.from) + 1
    }
}

/// A multidimensional cube query `Q(C_1, …, C_N)` (Eq. 1): exactly one
/// condition per dimension, in dimension order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CubeQuery {
    /// Conditions, one per dimension.
    pub conditions: Vec<DimRange>,
}

impl CubeQuery {
    /// Creates a query from per-dimension conditions.
    pub fn new(conditions: Vec<DimRange>) -> Self {
        Self { conditions }
    }

    /// The resolution `R` the answering cube must have (Eq. 2):
    /// the maximum level over all conditions.
    pub fn required_resolution(&self) -> usize {
        self.conditions.iter().map(|c| c.level).max().unwrap_or(0)
    }

    /// Validates the query against a schema.
    pub fn validate(&self, schema: &CubeSchema) -> Result<(), QueryError> {
        if self.conditions.len() != schema.ndim() {
            return Err(QueryError::DimCount {
                got: self.conditions.len(),
                want: schema.ndim(),
            });
        }
        for (dim, c) in self.conditions.iter().enumerate() {
            let levels = schema.dimensions[dim].levels.len();
            if c.level >= levels {
                return Err(QueryError::BadLevel {
                    dim,
                    level: c.level,
                    levels,
                });
            }
            if c.from > c.to {
                return Err(QueryError::Inverted {
                    dim,
                    from: c.from,
                    to: c.to,
                });
            }
            let card = schema.cardinality_at(dim, c.level);
            if c.to >= card {
                return Err(QueryError::OutOfRange {
                    dim,
                    to: c.to,
                    cardinality: card,
                });
            }
        }
        Ok(())
    }
}

/// Errors raised by cube-query validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// Condition count differs from the schema's dimension count.
    DimCount {
        /// Conditions supplied.
        got: usize,
        /// Dimensions in the schema.
        want: usize,
    },
    /// A condition's level exceeds the dimension's hierarchy depth.
    BadLevel {
        /// Dimension index.
        dim: usize,
        /// Offending level.
        level: usize,
        /// Levels the dimension has.
        levels: usize,
    },
    /// A condition has `from > to`.
    Inverted {
        /// Dimension index.
        dim: usize,
        /// Lower bound.
        from: u32,
        /// Upper bound.
        to: u32,
    },
    /// A condition's upper bound exceeds the level cardinality.
    OutOfRange {
        /// Dimension index.
        dim: usize,
        /// Offending bound.
        to: u32,
        /// Level cardinality.
        cardinality: u32,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimCount { got, want } => {
                write!(
                    f,
                    "query has {got} conditions, schema has {want} dimensions"
                )
            }
            Self::BadLevel { dim, level, levels } => {
                write!(
                    f,
                    "dimension {dim} has {levels} levels, condition uses level {level}"
                )
            }
            Self::Inverted { dim, from, to } => {
                write!(f, "condition on dimension {dim} has from {from} > to {to}")
            }
            Self::OutOfRange {
                dim,
                to,
                cardinality,
            } => write!(
                f,
                "condition on dimension {dim} reaches {to}, cardinality is {cardinality}"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;
    use holap_table::TableSchema;

    fn schema() -> CubeSchema {
        CubeSchema::from_table_schema(
            &TableSchema::builder()
                .dimension("time", &[("year", 4), ("month", 16)])
                .dimension("geo", &[("city", 8)])
                .measure("m")
                .build(),
        )
    }

    #[test]
    fn required_resolution_is_max_level() {
        let q = CubeQuery::new(vec![DimRange::new(1, 0, 3), DimRange::new(0, 0, 7)]);
        assert_eq!(q.required_resolution(), 1);
    }

    #[test]
    fn validation_accepts_well_formed() {
        let s = schema();
        let q = CubeQuery::new(vec![DimRange::new(1, 2, 15), DimRange::new(0, 0, 7)]);
        assert_eq!(q.validate(&s), Ok(()));
    }

    #[test]
    fn validation_errors() {
        let s = schema();
        let q = CubeQuery::new(vec![DimRange::new(0, 0, 3)]);
        assert_eq!(
            q.validate(&s),
            Err(QueryError::DimCount { got: 1, want: 2 })
        );

        let q = CubeQuery::new(vec![DimRange::new(2, 0, 3), DimRange::new(0, 0, 7)]);
        assert_eq!(
            q.validate(&s),
            Err(QueryError::BadLevel {
                dim: 0,
                level: 2,
                levels: 2
            })
        );

        let q = CubeQuery::new(vec![DimRange::new(0, 3, 1), DimRange::new(0, 0, 7)]);
        assert_eq!(
            q.validate(&s),
            Err(QueryError::Inverted {
                dim: 0,
                from: 3,
                to: 1
            })
        );

        let q = CubeQuery::new(vec![DimRange::new(0, 0, 4), DimRange::new(0, 0, 7)]);
        assert_eq!(
            q.validate(&s),
            Err(QueryError::OutOfRange {
                dim: 0,
                to: 4,
                cardinality: 4
            })
        );
    }

    #[test]
    fn dim_range_all_spans_dimension() {
        let s = schema();
        let r = DimRange::all(&s, 1);
        assert_eq!((r.level, r.from, r.to), (0, 0, 7));
        assert_eq!(r.width(), 8);
    }
}
