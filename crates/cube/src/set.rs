//! Multi-resolution cube sets and query planning (paper §III-A/C, Fig. 1).

use crate::cube::{CellAggregate, CubeSchema, MolapCube};
use crate::geometry::Region;
use crate::query::{CubeQuery, QueryError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The answer plan for a query that a resident cube can serve: which cube,
/// the region to aggregate (converted to that cube's resolution), and the
/// estimated sub-cube size the scheduler's CPU model consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CubePlan {
    /// Resolution of the chosen cube.
    pub resolution: usize,
    /// Aggregation region in the chosen cube's coordinates.
    pub region: Region,
    /// Estimated sub-cube size in MB (paper Eq. 3) — the `SC_size`
    /// argument of the CPU performance model.
    pub estimated_mb: f64,
}

/// A set of pre-calculated cubes of one schema at different resolutions —
/// the CPU partition's multidimensional database.
///
/// Planning follows the paper exactly: a query requires resolution
/// `R = max(r_i)` (Eq. 2); it is answered by the **lowest-resolution**
/// resident cube with resolution ≥ `R` ("it is always desirable to respond
/// to the query using a cube with lowest possible resolution to minimize
/// memory accesses"); if no resident cube is fine enough the query must go
/// to the GPU (Fig. 1 levels *M*/*G*).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CubeSet {
    schema: CubeSchema,
    cubes: BTreeMap<usize, MolapCube>,
}

impl CubeSet {
    /// Creates an empty set for `schema`.
    pub fn new(schema: CubeSchema) -> Self {
        Self {
            schema,
            cubes: BTreeMap::new(),
        }
    }

    /// The shared schema.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// Inserts a cube, replacing any existing cube at the same resolution.
    ///
    /// # Panics
    ///
    /// Panics if the cube's schema differs from the set's.
    pub fn insert(&mut self, cube: MolapCube) {
        assert_eq!(cube.schema(), &self.schema, "cube schema mismatch");
        self.cubes.insert(cube.resolution(), cube);
    }

    /// Resolutions of resident cubes, ascending.
    pub fn resolutions(&self) -> Vec<usize> {
        self.cubes.keys().copied().collect()
    }

    /// The cube at exactly `resolution`, if resident.
    pub fn cube(&self, resolution: usize) -> Option<&MolapCube> {
        self.cubes.get(&resolution)
    }

    /// Total bytes of all resident cubes.
    pub fn bytes(&self) -> usize {
        self.cubes.values().map(MolapCube::bytes).sum()
    }

    /// Plans a query: `Some(plan)` when a resident cube can answer it,
    /// `None` when the query must fall through to the GPU.
    ///
    /// # Errors
    ///
    /// Returns a [`QueryError`] for malformed queries.
    pub fn plan(&self, query: &CubeQuery) -> Result<Option<CubePlan>, QueryError> {
        query.validate(&self.schema)?;
        let required = query.required_resolution();
        // Lowest-resolution resident cube that is at least as fine.
        let Some((&resolution, cube)) = self.cubes.range(required..).next() else {
            return Ok(None);
        };
        let bounds = query
            .conditions
            .iter()
            .enumerate()
            .map(|(dim, c)| {
                self.schema
                    .widen_range(dim, c.level, resolution, (c.from, c.to))
            })
            .collect();
        let region = Region::new(bounds);
        let estimated_mb = cube.estimate_subcube_mb(&region);
        Ok(Some(CubePlan {
            resolution,
            region,
            estimated_mb,
        }))
    }

    /// Convenience: [`CubeSet::plan`] + `None → QueryError`-free option of
    /// the estimated size in MB, for schedulers that only need the size.
    pub fn estimate_mb(&self, query: &CubeQuery) -> Result<Option<f64>, QueryError> {
        Ok(self.plan(query)?.map(|p| p.estimated_mb))
    }

    /// Executes a plan sequentially.
    ///
    /// # Panics
    ///
    /// Panics if the planned cube is no longer resident.
    pub fn execute_seq(&self, plan: &CubePlan) -> Option<CellAggregate> {
        self.cubes
            .get(&plan.resolution)
            .map(|c| c.aggregate_seq(&plan.region))
    }

    /// Executes a plan with the current rayon pool.
    pub fn execute_par(&self, plan: &CubePlan) -> Option<CellAggregate> {
        self.cubes
            .get(&plan.resolution)
            .map(|c| c.aggregate_par(&plan.region))
    }

    /// Executes a plan grouped along dimension `dim`: one aggregate per
    /// distinct coordinate at `target_level` (which must be at most the
    /// plan's resolution, since a cube cannot group finer than its cells).
    /// Groups with no contributing rows are omitted; keys ascend.
    ///
    /// Returns `None` when the planned cube is not resident.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range or `target_level` is finer than the
    /// plan's resolution.
    pub fn execute_grouped_par(
        &self,
        plan: &CubePlan,
        dim: usize,
        target_level: usize,
    ) -> Option<Vec<(u32, CellAggregate)>> {
        assert!(
            target_level <= plan.resolution,
            "cannot group at level {target_level} on a resolution-{} cube",
            plan.resolution
        );
        let cube = self.cubes.get(&plan.resolution)?;
        let per_coord = cube.aggregate_along_par(dim, &plan.region);
        let base = plan.region.bounds[dim].0;
        let mut out: Vec<(u32, CellAggregate)> = Vec::new();
        for (i, agg) in per_coord.into_iter().enumerate() {
            if agg.count == 0 {
                continue;
            }
            let group =
                self.schema
                    .coarsen_coord(dim, plan.resolution, target_level, base + i as u32);
            match out.last_mut() {
                Some((g, acc)) if *g == group => acc.merge(agg),
                _ => out.push((group, agg)),
            }
        }
        Some(out)
    }

    /// Materialises a whole set of resolutions from one fact-table pass
    /// using the *smallest parent* strategy of the array-based cube
    /// algorithms the paper builds on (§II-B): only the **finest**
    /// requested resolution is aggregated from the table; every coarser
    /// cube is rolled up from the next finer one, avoiding the repeated
    /// table scans a naïve build would take.
    ///
    /// All cubes are chunk-offset compressed after construction.
    ///
    /// # Panics
    ///
    /// Panics if `resolutions` is empty, the schema's hierarchy is not
    /// uniform (roll-up would be inexact), or the table's dimensional
    /// schema differs from the set's.
    pub fn materialize_from_table(
        &mut self,
        table: &holap_table::FactTable,
        measure_idx: usize,
        resolutions: &[usize],
    ) {
        assert!(!resolutions.is_empty(), "need at least one resolution");
        assert!(
            self.schema.uniform_hierarchy(),
            "smallest-parent build needs uniform hierarchies"
        );
        let mut sorted: Vec<usize> = resolutions.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let finest = *sorted.last().expect("non-empty");
        let mut cube = MolapCube::build_from_table(self.schema.clone(), finest, table, measure_idx);
        cube.compress();
        // Roll up coarser cubes from their smallest (finest available)
        // parent, finest-to-coarsest.
        for &r in sorted.iter().rev().skip(1) {
            let mut coarser = cube.rollup_to(r);
            coarser.compress();
            let parent = std::mem::replace(&mut cube, coarser);
            self.insert(parent);
        }
        self.insert(cube);
    }
}

/// A catalog of cube *resolutions* without materialised cells.
///
/// Planning and size estimation (Eq. 2–3) depend only on the schema and on
/// which resolutions are resident — not on cell data. The catalog lets the
/// discrete-event simulator and the workload generator reason about cube
/// sets that would be far too large to allocate (the paper's ~32 GB cube),
/// with exactly the same planning rule as [`CubeSet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CubeCatalog {
    schema: CubeSchema,
    resolutions: Vec<usize>,
}

impl CubeCatalog {
    /// Creates a catalog for `schema` with the given resident resolutions.
    pub fn new(schema: CubeSchema, mut resolutions: Vec<usize>) -> Self {
        resolutions.sort_unstable();
        resolutions.dedup();
        Self {
            schema,
            resolutions,
        }
    }

    /// The shared schema.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// Resident resolutions, ascending.
    pub fn resolutions(&self) -> &[usize] {
        &self.resolutions
    }

    /// Total dense size in MB of all catalogued cubes.
    pub fn total_size_mb(&self) -> f64 {
        self.resolutions
            .iter()
            .map(|&r| self.schema.size_mb_at(r))
            .sum()
    }

    /// Plans a query exactly like [`CubeSet::plan`], without cell data.
    pub fn plan(&self, query: &CubeQuery) -> Result<Option<CubePlan>, QueryError> {
        query.validate(&self.schema)?;
        let required = query.required_resolution();
        let Some(&resolution) = self.resolutions.iter().find(|&&r| r >= required) else {
            return Ok(None);
        };
        let bounds = query
            .conditions
            .iter()
            .enumerate()
            .map(|(dim, c)| {
                self.schema
                    .widen_range(dim, c.level, resolution, (c.from, c.to))
            })
            .collect();
        let region = Region::new(bounds);
        let estimated_mb =
            region.cells() as f64 * crate::cube::CELL_BYTES as f64 / (1024.0 * 1024.0);
        Ok(Some(CubePlan {
            resolution,
            region,
            estimated_mb,
        }))
    }
}

impl CubeSet {
    /// The catalog view of this set (schema + resident resolutions).
    pub fn catalog(&self) -> CubeCatalog {
        CubeCatalog::new(self.schema.clone(), self.resolutions())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::DimRange;
    use holap_table::TableSchema;

    fn schema() -> CubeSchema {
        CubeSchema::from_table_schema(
            &TableSchema::builder()
                .dimension("time", &[("year", 4), ("month", 16), ("day", 64)])
                .dimension("geo", &[("region", 4), ("city", 8), ("store", 16)])
                .measure("sales")
                .build(),
        )
    }

    fn set_with(resolutions: &[usize]) -> CubeSet {
        let s = schema();
        let mut set = CubeSet::new(s.clone());
        for &r in resolutions {
            set.insert(MolapCube::build_filled(s.clone(), r, 1.0, 1));
        }
        set
    }

    #[test]
    fn picks_lowest_sufficient_resolution() {
        let set = set_with(&[0, 1, 2]);
        // Query needs resolution 1 (months) → cube 1, not cube 2.
        let q = CubeQuery::new(vec![DimRange::new(1, 0, 3), DimRange::new(0, 0, 3)]);
        let plan = set.plan(&q).unwrap().unwrap();
        assert_eq!(plan.resolution, 1);
    }

    #[test]
    fn widens_ranges_to_cube_resolution() {
        let set = set_with(&[1]); // only the month-resolution cube resident
                                  // Year 1 at level 0 widens to months 4..7 (16/4 = 4 per year);
                                  // region 2 widens to cities 4..5 (8/4 = 2 per region).
        let q = CubeQuery::new(vec![DimRange::new(0, 1, 1), DimRange::new(0, 2, 2)]);
        let plan = set.plan(&q).unwrap().unwrap();
        assert_eq!(plan.region, Region::new(vec![(4, 7), (4, 5)]));
        let agg = set.execute_seq(&plan).unwrap();
        assert_eq!(agg.count, 4 * 2);
    }

    #[test]
    fn falls_through_to_gpu_when_too_fine() {
        let set = set_with(&[0, 1]);
        // Day-level condition (level 2) but finest resident cube is 1.
        let q = CubeQuery::new(vec![DimRange::new(2, 0, 63), DimRange::new(0, 0, 3)]);
        assert_eq!(set.plan(&q).unwrap(), None);
        assert_eq!(set.estimate_mb(&q).unwrap(), None);
    }

    #[test]
    fn estimate_matches_eq3() {
        let set = set_with(&[1]);
        let q = CubeQuery::new(vec![DimRange::new(1, 0, 7), DimRange::new(1, 0, 3)]);
        let plan = set.plan(&q).unwrap().unwrap();
        // 8 months × 4 cities = 32 cells × 16 B.
        assert!((plan.estimated_mb - 32.0 * 16.0 / (1024.0 * 1024.0)).abs() < 1e-15);
    }

    #[test]
    fn malformed_query_is_an_error() {
        let set = set_with(&[0]);
        let q = CubeQuery::new(vec![DimRange::new(0, 0, 3)]);
        assert!(set.plan(&q).is_err());
    }

    #[test]
    fn answers_agree_across_resolutions() {
        // Build the same data at two resolutions via roll-up and check a
        // coarse query gets the same answer from either cube.
        let s = schema();
        let mut fine = MolapCube::build_empty(s.clone(), 1);
        let mut x = 7u64;
        for m in 0..16u32 {
            for c in 0..8u32 {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                fine.add(&[m, c], (x % 50) as f64, 1);
            }
        }
        let coarse = fine.rollup_to(0);
        let mut set = CubeSet::new(s.clone());
        set.insert(fine);
        set.insert(coarse);
        // Coarse query: year 2, all regions.
        let q = CubeQuery::new(vec![DimRange::new(0, 2, 2), DimRange::new(0, 0, 3)]);
        let plan = set.plan(&q).unwrap().unwrap();
        assert_eq!(plan.resolution, 0, "coarse cube preferred");
        let from_coarse = set.execute_seq(&plan).unwrap();
        // Force the fine cube by removing the coarse one.
        let mut fine_only = CubeSet::new(s.clone());
        fine_only.insert(set.cube(1).unwrap().clone());
        let plan_fine = fine_only.plan(&q).unwrap().unwrap();
        assert_eq!(plan_fine.resolution, 1);
        let from_fine = fine_only.execute_par(&plan_fine).unwrap();
        assert_eq!(from_coarse.count, from_fine.count);
        assert!((from_coarse.sum - from_fine.sum).abs() < 1e-9);
    }

    #[test]
    fn grouped_execution_coarsens_correctly() {
        // Month-resolution cube, grouped by year.
        let s = schema();
        let mut cube = MolapCube::build_empty(s.clone(), 1); // 16 months × 8 cities
        for m in 0..16u32 {
            for c in 0..8u32 {
                cube.add(&[m, c], f64::from(m * 10 + c), 1);
            }
        }
        let mut set = CubeSet::new(s);
        set.insert(cube);
        // All months, cities 0..3, grouped by year (level 0, 4 years).
        let q = CubeQuery::new(vec![DimRange::new(1, 0, 15), DimRange::new(1, 0, 3)]);
        let plan = set.plan(&q).unwrap().unwrap();
        let groups = set.execute_grouped_par(&plan, 0, 0).unwrap();
        assert_eq!(groups.len(), 4);
        for (year, agg) in &groups {
            // Year y covers months 4y..4y+3; cities 0..3.
            let months = (4 * year)..(4 * year + 4);
            let want_sum: f64 = months
                .clone()
                .flat_map(|m| (0..4u32).map(move |c| f64::from(m * 10 + c)))
                .sum();
            assert_eq!(agg.count, 16, "year {year}");
            assert!((agg.sum - want_sum).abs() < 1e-9, "year {year}");
        }
        // Grouping at the cube's own resolution yields one group per month.
        let fine = set.execute_grouped_par(&plan, 0, 1).unwrap();
        assert_eq!(fine.len(), 16);
        // Totals are preserved either way.
        let total = set.execute_par(&plan).unwrap();
        let sum0: f64 = groups.iter().map(|(_, a)| a.sum).sum();
        let sum1: f64 = fine.iter().map(|(_, a)| a.sum).sum();
        assert!((sum0 - total.sum).abs() < 1e-9);
        assert!((sum1 - total.sum).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cannot group at level")]
    fn grouping_finer_than_cube_rejected() {
        let set = set_with(&[0]);
        let q = CubeQuery::new(vec![DimRange::new(0, 0, 3), DimRange::new(0, 0, 3)]);
        let plan = set.plan(&q).unwrap().unwrap();
        set.execute_grouped_par(&plan, 0, 2);
    }

    #[test]
    fn smallest_parent_materialisation_equals_direct_builds() {
        use holap_table::FactTableBuilder;
        let tschema = TableSchema::builder()
            .dimension("time", &[("year", 4), ("month", 16), ("day", 64)])
            .dimension("geo", &[("region", 4), ("city", 8), ("store", 16)])
            .measure("sales")
            .build();
        let cschema = CubeSchema::from_table_schema(&tschema);
        let mut b = FactTableBuilder::new(tschema);
        let mut x = 3u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let day = (x >> 8) as u32 % 64;
            let store = (x >> 16) as u32 % 16;
            b.push_row(
                &[day / 16, day / 4, day, store / 4, store / 2, store],
                &[(x % 97) as f64],
            )
            .unwrap();
        }
        let table = b.finish();

        let mut via_rollup = CubeSet::new(cschema.clone());
        via_rollup.materialize_from_table(&table, 0, &[0, 1, 2]);
        assert_eq!(via_rollup.resolutions(), vec![0, 1, 2]);

        for r in 0..=2usize {
            let direct = MolapCube::build_from_table(cschema.clone(), r, &table, 0);
            let full = Region::full(direct.shape());
            let a = via_rollup.cube(r).unwrap().aggregate_seq(&full);
            let b = direct.aggregate_seq(&full);
            assert_eq!(a.count, b.count, "resolution {r}");
            assert!(
                (a.sum - b.sum).abs() < 1e-9 * (1.0 + b.sum.abs()),
                "resolution {r}"
            );
            // Spot-check a sub-region as well.
            let sub = Region::new(direct.shape().iter().map(|&c| (c / 4, c / 2)).collect());
            let sa = via_rollup.cube(r).unwrap().aggregate_seq(&sub);
            let sb = direct.aggregate_seq(&sub);
            assert_eq!(sa.count, sb.count, "sub-region at resolution {r}");
            assert!(
                (sa.sum - sb.sum).abs() < 1e-9 * (1.0 + sb.sum.abs()),
                "sub-region at resolution {r}"
            );
        }
    }

    #[test]
    fn catalog_plans_like_the_set() {
        let set = set_with(&[0, 2]);
        let catalog = set.catalog();
        assert_eq!(catalog.resolutions(), &[0, 2]);
        for q in [
            CubeQuery::new(vec![DimRange::new(0, 1, 2), DimRange::new(0, 0, 3)]),
            CubeQuery::new(vec![DimRange::new(1, 0, 15), DimRange::new(1, 2, 5)]),
            CubeQuery::new(vec![DimRange::new(2, 0, 63), DimRange::new(2, 0, 15)]),
        ] {
            assert_eq!(
                set.plan(&q).unwrap(),
                catalog.plan(&q).unwrap(),
                "query {q:?}"
            );
        }
    }

    #[test]
    fn catalog_handles_unmaterialisable_sizes() {
        // A 32 GB-scale cube: 1280³ cells × 16 B ≈ 33.6 GB — planning must
        // work without allocating it.
        let s = CubeSchema::from_table_schema(
            &TableSchema::builder()
                .dimension("x", &[("a", 8), ("b", 32), ("c", 320), ("d", 1280)])
                .dimension("y", &[("a", 8), ("b", 32), ("c", 320), ("d", 1280)])
                .dimension("z", &[("a", 8), ("b", 32), ("c", 320), ("d", 1280)])
                .measure("m")
                .build(),
        );
        let catalog = CubeCatalog::new(s, vec![0, 1, 2, 3]);
        assert!(catalog.total_size_mb() > 30.0 * 1024.0);
        let q = CubeQuery::new(vec![
            DimRange::new(3, 0, 639),
            DimRange::new(3, 0, 639),
            DimRange::new(3, 0, 639),
        ]);
        let plan = catalog.plan(&q).unwrap().unwrap();
        assert_eq!(plan.resolution, 3);
        // 640³ cells × 16 B = 4 194 304 000 B = 4000 MiB.
        assert!((plan.estimated_mb - 4000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn schema_mismatch_rejected() {
        let other = CubeSchema::from_table_schema(
            &TableSchema::builder()
                .dimension("d", &[("l", 2)])
                .measure("m")
                .build(),
        );
        let mut set = CubeSet::new(schema());
        set.insert(MolapCube::build_filled(other, 0, 1.0, 1));
    }
}
