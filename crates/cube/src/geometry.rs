//! n-dimensional shapes, regions and chunk grids.

use serde::{Deserialize, Serialize};

/// An axis-aligned box of cube cells: one inclusive coordinate range per
/// dimension. This is the "area of limited search" of the paper's Fig. 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Inclusive `(from, to)` bounds per dimension.
    pub bounds: Vec<(u32, u32)>,
}

impl Region {
    /// Creates a region from inclusive per-dimension bounds.
    ///
    /// # Panics
    ///
    /// Panics if any bound is inverted.
    pub fn new(bounds: Vec<(u32, u32)>) -> Self {
        for &(f, t) in &bounds {
            assert!(f <= t, "inverted bound ({f}, {t})");
        }
        Self { bounds }
    }

    /// The full region of a shape.
    pub fn full(shape: &[u32]) -> Self {
        Self {
            bounds: shape.iter().map(|&c| (0, c - 1)).collect(),
        }
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.bounds.len()
    }

    /// Number of cells inside the region.
    pub fn cells(&self) -> u64 {
        self.bounds
            .iter()
            .map(|&(f, t)| u64::from(t - f) + 1)
            .product()
    }

    /// Intersection with another region, or `None` if disjoint.
    pub fn intersect(&self, other: &Region) -> Option<Region> {
        debug_assert_eq!(self.ndim(), other.ndim());
        let mut bounds = Vec::with_capacity(self.ndim());
        for (&(af, at), &(bf, bt)) in self.bounds.iter().zip(&other.bounds) {
            let f = af.max(bf);
            let t = at.min(bt);
            if f > t {
                return None;
            }
            bounds.push((f, t));
        }
        Some(Region { bounds })
    }

    /// Whether `coords` lies inside the region.
    pub fn contains(&self, coords: &[u32]) -> bool {
        self.bounds
            .iter()
            .zip(coords)
            .all(|(&(f, t), &c)| c >= f && c <= t)
    }
}

/// Row-major linearisation helpers over a shape (last dimension fastest).
pub fn linear_index(shape: &[u32], coords: &[u32]) -> usize {
    debug_assert_eq!(shape.len(), coords.len());
    let mut idx = 0usize;
    for (&c, &s) in coords.iter().zip(shape) {
        debug_assert!(c < s);
        idx = idx * s as usize + c as usize;
    }
    idx
}

/// Inverse of [`linear_index`].
pub fn coords_of(shape: &[u32], mut idx: usize) -> Vec<u32> {
    let mut coords = vec![0u32; shape.len()];
    for d in (0..shape.len()).rev() {
        let s = shape[d] as usize;
        coords[d] = (idx % s) as u32;
        idx /= s;
    }
    debug_assert_eq!(idx, 0);
    coords
}

/// The chunking of an n-dimensional array: how a cube shape is split into
/// equally-shaped chunks (edge chunks may be smaller), following the
/// array-based algorithms the paper builds on (§II-B).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkGrid {
    /// Global cube shape (cells per dimension).
    pub shape: Vec<u32>,
    /// Nominal chunk shape (cells per dimension inside one chunk).
    pub chunk_shape: Vec<u32>,
    /// Number of chunks along each dimension.
    pub chunks_per_dim: Vec<u32>,
}

impl ChunkGrid {
    /// Builds a grid for `shape` with chunks of at most `chunk_side` cells
    /// per dimension.
    ///
    /// # Panics
    ///
    /// Panics on an empty shape, zero extents, or zero `chunk_side`.
    pub fn new(shape: Vec<u32>, chunk_side: u32) -> Self {
        assert!(!shape.is_empty(), "shape must have at least one dimension");
        assert!(chunk_side > 0, "chunk side must be positive");
        assert!(shape.iter().all(|&c| c > 0), "zero-extent dimension");
        let chunk_shape: Vec<u32> = shape.iter().map(|&c| c.min(chunk_side)).collect();
        let chunks_per_dim: Vec<u32> = shape
            .iter()
            .zip(&chunk_shape)
            .map(|(&c, &s)| c.div_ceil(s))
            .collect();
        Self {
            shape,
            chunk_shape,
            chunks_per_dim,
        }
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of cells in the cube.
    pub fn total_cells(&self) -> u64 {
        self.shape.iter().map(|&c| u64::from(c)).product()
    }

    /// Total number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks_per_dim.iter().map(|&c| c as usize).product()
    }

    /// Global cell region covered by chunk `chunk_idx` (row-major over the
    /// chunk grid).
    pub fn chunk_region(&self, chunk_idx: usize) -> Region {
        let grid_coords = coords_of(&self.chunks_per_dim, chunk_idx);
        let bounds = grid_coords
            .iter()
            .zip(self.chunk_shape.iter().zip(&self.shape))
            .map(|(&g, (&cs, &total))| {
                let from = g * cs;
                let to = (from + cs - 1).min(total - 1);
                (from, to)
            })
            .collect();
        Region { bounds }
    }

    /// Local (within-chunk) shape of chunk `chunk_idx` — smaller than
    /// `chunk_shape` for edge chunks.
    pub fn chunk_local_shape(&self, chunk_idx: usize) -> Vec<u32> {
        self.chunk_region(chunk_idx)
            .bounds
            .iter()
            .map(|&(f, t)| t - f + 1)
            .collect()
    }

    /// Maps a global cell coordinate to `(chunk index, local row-major
    /// offset within that chunk)`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `coords` lies outside the shape.
    pub fn locate(&self, coords: &[u32]) -> (usize, u32) {
        debug_assert_eq!(coords.len(), self.ndim());
        let grid_coords: Vec<u32> = coords
            .iter()
            .zip(&self.chunk_shape)
            .map(|(&c, &cs)| c / cs)
            .collect();
        let chunk_idx = linear_index(&self.chunks_per_dim, &grid_coords);
        let local_shape = self.chunk_local_shape(chunk_idx);
        let local_coords: Vec<u32> = coords
            .iter()
            .zip(&self.chunk_shape)
            .map(|(&c, &cs)| c % cs)
            .collect();
        let off = linear_index(&local_shape, &local_coords) as u32;
        (chunk_idx, off)
    }

    /// Indices of all chunks whose region intersects `region`.
    pub fn chunks_intersecting(&self, region: &Region) -> Vec<usize> {
        debug_assert_eq!(region.ndim(), self.ndim());
        // Per-dimension chunk-coordinate ranges, then odometer product.
        let ranges: Vec<(u32, u32)> = region
            .bounds
            .iter()
            .zip(&self.chunk_shape)
            .map(|(&(f, t), &cs)| (f / cs, t / cs))
            .collect();
        let mut out = Vec::new();
        let mut cursor: Vec<u32> = ranges.iter().map(|&(f, _)| f).collect();
        loop {
            out.push(linear_index(&self.chunks_per_dim, &cursor));
            // Odometer increment, last dimension fastest.
            let mut d = self.ndim();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                if cursor[d] < ranges[d].1 {
                    cursor[d] += 1;
                    break;
                }
                cursor[d] = ranges[d].0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_cells_and_contains() {
        let r = Region::new(vec![(1, 3), (0, 4)]);
        assert_eq!(r.cells(), 3 * 5);
        assert!(r.contains(&[2, 4]));
        assert!(!r.contains(&[0, 0]));
    }

    #[test]
    fn region_intersection() {
        let a = Region::new(vec![(0, 5), (2, 8)]);
        let b = Region::new(vec![(3, 9), (0, 4)]);
        assert_eq!(a.intersect(&b), Some(Region::new(vec![(3, 5), (2, 4)])));
        let c = Region::new(vec![(6, 9), (0, 4)]);
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn linear_roundtrip() {
        let shape = [3, 4, 5];
        for idx in 0..60 {
            let coords = coords_of(&shape, idx);
            assert_eq!(linear_index(&shape, &coords), idx);
        }
    }

    #[test]
    fn row_major_last_dim_fastest() {
        let shape = [2, 3];
        assert_eq!(linear_index(&shape, &[0, 0]), 0);
        assert_eq!(linear_index(&shape, &[0, 1]), 1);
        assert_eq!(linear_index(&shape, &[1, 0]), 3);
    }

    #[test]
    fn grid_chunk_counts() {
        let g = ChunkGrid::new(vec![10, 7], 4);
        assert_eq!(g.chunks_per_dim, vec![3, 2]);
        assert_eq!(g.chunk_count(), 6);
        assert_eq!(g.total_cells(), 70);
    }

    #[test]
    fn chunk_regions_tile_the_cube() {
        let g = ChunkGrid::new(vec![10, 7], 4);
        let mut covered = 0u64;
        for i in 0..g.chunk_count() {
            covered += g.chunk_region(i).cells();
        }
        assert_eq!(covered, g.total_cells());
    }

    #[test]
    fn edge_chunks_are_smaller() {
        let g = ChunkGrid::new(vec![10], 4);
        assert_eq!(g.chunk_local_shape(0), vec![4]);
        assert_eq!(g.chunk_local_shape(2), vec![2]);
        assert_eq!(g.chunk_region(2), Region::new(vec![(8, 9)]));
    }

    #[test]
    fn chunks_intersecting_finds_exact_set() {
        let g = ChunkGrid::new(vec![10, 7], 4);
        // Region covering rows 5..9, cols 0..3 → chunk rows 1..2, col 0.
        let hits = g.chunks_intersecting(&Region::new(vec![(5, 9), (0, 3)]));
        assert_eq!(hits.len(), 2);
        for &h in &hits {
            assert!(g
                .chunk_region(h)
                .intersect(&Region::new(vec![(5, 9), (0, 3)]))
                .is_some());
        }
        // Every non-hit chunk must be disjoint.
        for i in 0..g.chunk_count() {
            if !hits.contains(&i) {
                assert!(g
                    .chunk_region(i)
                    .intersect(&Region::new(vec![(5, 9), (0, 3)]))
                    .is_none());
            }
        }
    }

    #[test]
    fn locate_is_consistent_with_chunk_regions() {
        let g = ChunkGrid::new(vec![10, 7], 4);
        for x in 0..10u32 {
            for y in 0..7u32 {
                let (ci, off) = g.locate(&[x, y]);
                let region = g.chunk_region(ci);
                assert!(region.contains(&[x, y]), "cell ({x},{y}) not in chunk {ci}");
                let local_shape = g.chunk_local_shape(ci);
                assert!((off as u64) < local_shape.iter().map(|&c| u64::from(c)).product());
            }
        }
    }

    #[test]
    fn locate_distinct_cells_have_distinct_slots() {
        let g = ChunkGrid::new(vec![6, 6], 4);
        let mut seen = std::collections::HashSet::new();
        for x in 0..6u32 {
            for y in 0..6u32 {
                assert!(seen.insert(g.locate(&[x, y])), "collision at ({x},{y})");
            }
        }
    }

    #[test]
    fn full_region_hits_all_chunks() {
        let g = ChunkGrid::new(vec![9, 9, 9], 4);
        let hits = g.chunks_intersecting(&Region::full(&g.shape));
        assert_eq!(hits.len(), g.chunk_count());
    }

    #[test]
    fn single_cell_region_hits_one_chunk() {
        let g = ChunkGrid::new(vec![16, 16], 4);
        let hits = g.chunks_intersecting(&Region::new(vec![(5, 5), (11, 11)]));
        assert_eq!(hits.len(), 1);
        assert!(g.chunk_region(hits[0]).contains(&[5, 11]));
    }
}
