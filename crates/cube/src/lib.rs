//! Chunked dense MOLAP cube storage with parallel sub-cube aggregation —
//! the CPU-side data substrate of the hybrid OLAP system (paper §III-A/C).
//!
//! A *cube* is an n-dimensional dense array of pre-aggregated cells, one
//! axis per dimension, materialised at a particular **resolution**: level
//! `r` of every dimension's hierarchy (paper Fig. 1 — years/months/days/…).
//! A system holds several cubes of the same schema at different resolutions
//! ([`CubeSet`]); an incoming query needs resolution `R = max(r_i)` over its
//! conditions (Eq. 2) and is answered from the lowest-resolution resident
//! cube that is at least that fine — or must fall back to the GPU's fact
//! table when none is (Fig. 1 levels *M* and *G*).
//!
//! Storage follows Zhao, Deshpande & Naughton's array-based design the
//! paper builds on: the cube is split into n-dimensional **chunks**, and
//! chunks whose fill factor is below 40 % are kept in chunk-offset
//! compressed form ([`chunk::Chunk::Sparse`]). A sub-cube aggregation
//! visits only the chunks intersecting the query box (the paper's Fig. 2
//! "area of limited search") and runs either sequentially or in parallel
//! over chunks with rayon — the reproduction's stand-in for the paper's
//! OpenMP parallel implementation.
//!
//! Cells hold `(sum, count)` pairs, so SUM/COUNT/AVG aggregates are exact
//! under roll-up; cubes can be built from a fact table, from a generator
//! function, or rolled up from a finer cube of the same schema.
//!
//! # Example
//!
//! ```
//! use holap_cube::{CubeQuery, CubeSchema, CubeSet, DimRange, MolapCube};
//! use holap_table::TableSchema;
//!
//! let schema = CubeSchema::from_table_schema(
//!     &TableSchema::builder()
//!         .dimension("time", &[("year", 4), ("month", 16)])
//!         .dimension("geo", &[("region", 4), ("city", 8)])
//!         .measure("sales")
//!         .build(),
//! );
//! // A fine cube (resolution 1: months × cities), each cell sum=1/count=1.
//! let fine = MolapCube::build_filled(schema.clone(), 1, 1.0, 1);
//! let mut set = CubeSet::new(schema);
//! set.insert(fine);
//!
//! // Query at month resolution, restricted to months 0–7, all cities.
//! let q = CubeQuery::new(vec![
//!     DimRange::new(1, 0, 7), // dimension 0 (time) at level 1
//!     DimRange::new(0, 0, 3), // dimension 1 (geo) at level 0 (all regions)
//! ]);
//! let plan = set.plan(&q).unwrap().expect("cube resident");
//! let agg = set.execute_seq(&plan).unwrap();
//! assert_eq!(agg.count, 8 * 8); // 8 months × 8 cities
//! ```

#![warn(missing_docs)]

pub mod bandwidth;
pub mod chunk;
pub mod cube;
pub mod geometry;
pub mod query;
pub mod set;

pub use crate::cube::{CellAggregate, CubeSchema, MolapCube};
pub use bandwidth::{measure_aggregation, BandwidthSample};
pub use chunk::{Chunk, COMPRESSION_FILL_THRESHOLD};
pub use geometry::{ChunkGrid, Region};
pub use query::{CubeQuery, DimRange, QueryError};
pub use set::{CubeCatalog, CubePlan, CubeSet};
