//! The MOLAP cube: schema, construction, roll-up and aggregation.

use crate::chunk::{CellAgg, Chunk};
use crate::geometry::{ChunkGrid, Region};
use holap_table::{AggOp, AggSpec, ColumnId, FactTable, GroupByQuery, ScanQuery, TableSchema};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

pub use crate::chunk::CellAgg as CellAggregate;

/// Bytes one cube cell occupies: an `f64` sum plus a `u64` count.
/// This is the `E_size` of the paper's Eq. 3.
pub const CELL_BYTES: usize = 16;

/// Default chunk side length (cells per dimension per chunk).
pub const DEFAULT_CHUNK_SIDE: u32 = 64;

/// The dimensional schema shared by all cubes of one OLAP system: each
/// dimension's level hierarchy (coarsest first). A concrete cube
/// materialises one *resolution* — level `min(r, levels−1)` of every
/// dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CubeSchema {
    /// Dimension hierarchies (reusing the fact-table dimension schema so a
    /// cube can be built directly from a table).
    pub dimensions: Vec<holap_table::DimensionSchema>,
}

impl CubeSchema {
    /// Builds a cube schema from the dimensional part of a table schema.
    pub fn from_table_schema(table: &TableSchema) -> Self {
        Self {
            dimensions: table.dimensions.clone(),
        }
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.dimensions.len()
    }

    /// The finest resolution any dimension offers (max level index).
    pub fn max_resolution(&self) -> usize {
        self.dimensions
            .iter()
            .map(|d| d.levels.len() - 1)
            .max()
            .unwrap_or(0)
    }

    /// The level dimension `dim` uses at resolution `r` (clamped to the
    /// dimension's finest level).
    pub fn level_for(&self, dim: usize, r: usize) -> usize {
        r.min(self.dimensions[dim].levels.len() - 1)
    }

    /// Cardinality of dimension `dim` at resolution `r`.
    pub fn cardinality_at(&self, dim: usize, r: usize) -> u32 {
        let level = self.level_for(dim, r);
        self.dimensions[dim].levels[level].cardinality
    }

    /// Cube shape (cells per dimension) at resolution `r`.
    pub fn shape_at(&self, r: usize) -> Vec<u32> {
        (0..self.ndim())
            .map(|d| self.cardinality_at(d, r))
            .collect()
    }

    /// Total cell count at resolution `r`.
    pub fn cells_at(&self, r: usize) -> u64 {
        self.shape_at(r).iter().map(|&c| u64::from(c)).product()
    }

    /// Dense cube size in MB (`2^20` bytes) at resolution `r` — what Fig. 1
    /// plots against resolution.
    pub fn size_mb_at(&self, r: usize) -> f64 {
        (self.cells_at(r) as f64) * CELL_BYTES as f64 / (1024.0 * 1024.0)
    }

    /// Whether every dimension's hierarchy has divisible cardinalities
    /// between adjacent levels (uniform fan-out) — required for exact
    /// roll-up and exact range conversion between resolutions.
    pub fn uniform_hierarchy(&self) -> bool {
        self.dimensions.iter().all(|d| {
            d.levels
                .windows(2)
                .all(|w| w[1].cardinality % w[0].cardinality == 0)
        })
    }

    /// Converts an inclusive coordinate range on `dim` from a coarser
    /// resolution `from_r` to a finer resolution `to_r >= from_r`.
    ///
    /// With uniform hierarchies this is exact: each coarse coordinate maps
    /// to a contiguous block of fine coordinates.
    pub fn widen_range(
        &self,
        dim: usize,
        from_r: usize,
        to_r: usize,
        range: (u32, u32),
    ) -> (u32, u32) {
        assert!(to_r >= from_r, "widen_range requires to_r >= from_r");
        let coarse = u64::from(self.cardinality_at(dim, from_r));
        let fine = u64::from(self.cardinality_at(dim, to_r));
        debug_assert!(
            fine.is_multiple_of(coarse),
            "non-uniform hierarchy in widen_range"
        );
        let factor = fine / coarse;
        let lo = u64::from(range.0) * factor;
        let hi = (u64::from(range.1) + 1) * factor - 1;
        (lo as u32, hi as u32)
    }

    /// Maps a single coordinate from a finer resolution `from_r` down to a
    /// coarser resolution `to_r <= from_r` (the roll-up direction).
    pub fn coarsen_coord(&self, dim: usize, from_r: usize, to_r: usize, coord: u32) -> u32 {
        assert!(to_r <= from_r, "coarsen_coord requires to_r <= from_r");
        let fine = u64::from(self.cardinality_at(dim, from_r));
        let coarse = u64::from(self.cardinality_at(dim, to_r));
        ((u64::from(coord) * coarse) / fine) as u32
    }
}

/// A dense, chunked MOLAP cube materialised at one resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MolapCube {
    schema: CubeSchema,
    resolution: usize,
    grid: ChunkGrid,
    chunks: Vec<Chunk>,
}

impl MolapCube {
    /// Creates an empty cube at `resolution` with the default chunk side.
    pub fn build_empty(schema: CubeSchema, resolution: usize) -> Self {
        Self::build_empty_with_chunks(schema, resolution, DEFAULT_CHUNK_SIDE)
    }

    /// Creates an empty cube with an explicit chunk side length.
    pub fn build_empty_with_chunks(schema: CubeSchema, resolution: usize, chunk_side: u32) -> Self {
        let grid = ChunkGrid::new(schema.shape_at(resolution), chunk_side);
        let chunks = (0..grid.chunk_count())
            .map(|i| {
                let cells: u64 = grid
                    .chunk_local_shape(i)
                    .iter()
                    .map(|&c| u64::from(c))
                    .product();
                Chunk::dense_empty(cells as usize)
            })
            .collect();
        Self {
            schema,
            resolution,
            grid,
            chunks,
        }
    }

    /// Creates a cube with every cell holding `(sum, count)` — the fast
    /// path for synthetic cubes in benchmarks.
    pub fn build_filled(schema: CubeSchema, resolution: usize, sum: f64, count: u64) -> Self {
        Self::build_filled_with_chunks(schema, resolution, sum, count, DEFAULT_CHUNK_SIDE)
    }

    /// [`MolapCube::build_filled`] with an explicit chunk side length.
    pub fn build_filled_with_chunks(
        schema: CubeSchema,
        resolution: usize,
        sum: f64,
        count: u64,
        chunk_side: u32,
    ) -> Self {
        let mut cube = Self::build_empty_with_chunks(schema, resolution, chunk_side);
        for (i, chunk) in cube.chunks.iter_mut().enumerate() {
            let cells: u64 = cube
                .grid
                .chunk_local_shape(i)
                .iter()
                .map(|&c| u64::from(c))
                .product();
            *chunk = Chunk::dense_filled(cells as usize, sum, count);
        }
        cube
    }

    /// Builds the cube by aggregating `measure_idx` of a fact table at
    /// `resolution` — the cube-build task the paper assigns to the GPU
    /// ("building the cube from relational tables", §III-A), available here
    /// on the CPU as well.
    ///
    /// Semantically this is `GROUP BY` over every dimension at the target
    /// resolution, so it runs on the table's vectorized grouping engine
    /// (packed-`u64` keys, no per-row allocation) and touches each cube
    /// cell once per *group* instead of once per row. Per-cell sums are
    /// bit-identical to the old row-at-a-time build: the grouping engine
    /// accumulates rows in row order.
    ///
    /// # Panics
    ///
    /// Panics if the table's dimensional schema disagrees with the cube
    /// schema or the measure index is out of range.
    pub fn build_from_table(
        schema: CubeSchema,
        resolution: usize,
        table: &FactTable,
        measure_idx: usize,
    ) -> Self {
        assert_eq!(
            schema.dimensions,
            table.schema().dimensions,
            "cube and table dimensional schemas must match"
        );
        let mut cube = Self::build_empty(schema, resolution);
        let ndim = cube.schema.ndim();
        let group_by: Vec<ColumnId> = (0..ndim)
            .map(|d| ColumnId::dim(d, cube.schema.level_for(d, resolution)))
            .collect();
        let q = GroupByQuery::new(
            ScanQuery::new().aggregate(AggSpec::new(AggOp::Sum, Some(measure_idx))),
            group_by,
        );
        let grouped = table.group_by_seq(&q).expect("schema-derived query");
        for g in &grouped.groups {
            cube.add(&g.key, g.values[0].sum, g.rows);
        }
        cube
    }

    /// Borrowed view of the cube's internals — used by persistence layers.
    pub fn parts(&self) -> (&CubeSchema, usize, &ChunkGrid, &[Chunk]) {
        (&self.schema, self.resolution, &self.grid, &self.chunks)
    }

    /// Reassembles a cube from its parts (inverse of [`MolapCube::parts`]).
    ///
    /// # Errors
    ///
    /// Returns a message when the grid does not match the schema's shape at
    /// the resolution, or the chunk list disagrees with the grid.
    pub fn from_parts(
        schema: CubeSchema,
        resolution: usize,
        grid: ChunkGrid,
        chunks: Vec<Chunk>,
    ) -> Result<Self, String> {
        if grid.shape != schema.shape_at(resolution) {
            return Err(format!(
                "grid shape {:?} does not match schema shape {:?} at resolution {resolution}",
                grid.shape,
                schema.shape_at(resolution)
            ));
        }
        if chunks.len() != grid.chunk_count() {
            return Err(format!(
                "{} chunks supplied, grid has {}",
                chunks.len(),
                grid.chunk_count()
            ));
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let cells: u64 = grid
                .chunk_local_shape(i)
                .iter()
                .map(|&c| u64::from(c))
                .product();
            let ok = match chunk {
                Chunk::Dense { sums, counts } => {
                    sums.len() as u64 == cells && counts.len() as u64 == cells
                }
                Chunk::Sparse {
                    offsets,
                    sums,
                    counts,
                } => {
                    offsets.len() == sums.len()
                        && sums.len() == counts.len()
                        && offsets.iter().all(|&o| u64::from(o) < cells)
                        && offsets.windows(2).all(|w| w[0] < w[1])
                }
            };
            if !ok {
                return Err(format!("chunk {i} is inconsistent with its local shape"));
            }
        }
        Ok(Self {
            schema,
            resolution,
            grid,
            chunks,
        })
    }

    /// Adds `(sum, count)` into the cell at `coords` (cube-resolution
    /// coordinates).
    pub fn add(&mut self, coords: &[u32], sum: f64, count: u64) {
        let (ci, off) = self.grid.locate(coords);
        self.chunks[ci].add(off, sum, count);
    }

    /// Reads one cell.
    pub fn cell(&self, coords: &[u32]) -> CellAgg {
        let region = Region::new(coords.iter().map(|&c| (c, c)).collect());
        self.aggregate_seq(&region)
    }

    /// Applies chunk-offset compression to all under-filled chunks;
    /// returns how many chunks were compressed.
    pub fn compress(&mut self) -> usize {
        let grid = &self.grid;
        self.chunks
            .iter_mut()
            .enumerate()
            .filter(|&(i, ref c)| {
                let cells: u64 = grid
                    .chunk_local_shape(i)
                    .iter()
                    .map(|&x| u64::from(x))
                    .product();
                let _ = &c;
                cells > 0
            })
            .map(|(i, c)| {
                let cells: u64 = grid
                    .chunk_local_shape(i)
                    .iter()
                    .map(|&x| u64::from(x))
                    .product();
                usize::from(c.maybe_compress(cells as usize))
            })
            .sum()
    }

    /// The cube's resolution (level index).
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// The cube's schema.
    pub fn schema(&self) -> &CubeSchema {
        &self.schema
    }

    /// Cube shape (cells per dimension).
    pub fn shape(&self) -> &[u32] {
        &self.grid.shape
    }

    /// Total number of cells.
    pub fn cells(&self) -> u64 {
        self.grid.total_cells()
    }

    /// Actual bytes of cell storage (after compression).
    pub fn bytes(&self) -> usize {
        self.chunks.iter().map(Chunk::bytes).sum()
    }

    /// Dense-equivalent size in MB — the quantity the performance model
    /// works with (compressed chunks still require their dense scan
    /// equivalent in the model's terms).
    pub fn size_mb(&self) -> f64 {
        self.cells() as f64 * CELL_BYTES as f64 / (1024.0 * 1024.0)
    }

    /// Estimated sub-cube size in MB for a query region (paper Eq. 3):
    /// `E_size · Π (t_i − f_i + 1) / 2^20`.
    pub fn estimate_subcube_mb(&self, region: &Region) -> f64 {
        region.cells() as f64 * CELL_BYTES as f64 / (1024.0 * 1024.0)
    }

    fn validate_region(&self, region: &Region) {
        assert_eq!(
            region.ndim(),
            self.grid.ndim(),
            "region dimensionality mismatch"
        );
        for (d, (&(f, t), &card)) in region.bounds.iter().zip(&self.grid.shape).enumerate() {
            assert!(
                f <= t && t < card,
                "region bound ({f}, {t}) out of range for dimension {d} (cardinality {card})"
            );
        }
    }

    fn chunk_partial(&self, chunk_idx: usize, region: &Region) -> CellAgg {
        let chunk_region = self.grid.chunk_region(chunk_idx);
        let inter = chunk_region
            .intersect(region)
            .expect("chunk selected but does not intersect region");
        let local = Region::new(
            inter
                .bounds
                .iter()
                .zip(&chunk_region.bounds)
                .map(|(&(f, t), &(base, _))| (f - base, t - base))
                .collect(),
        );
        let local_shape = self.grid.chunk_local_shape(chunk_idx);
        self.chunks[chunk_idx].aggregate(&local_shape, &local)
    }

    /// Sequential sub-cube aggregation over the region.
    pub fn aggregate_seq(&self, region: &Region) -> CellAgg {
        self.validate_region(region);
        let mut agg = CellAgg::default();
        for ci in self.grid.chunks_intersecting(region) {
            agg.merge(self.chunk_partial(ci, region));
        }
        agg
    }

    /// Parallel sub-cube aggregation: intersecting chunks are processed by
    /// the current rayon pool and partials reduced — the reproduction of
    /// the paper's OpenMP parallel cube processing. Run inside
    /// `ThreadPool::install` to control the thread count.
    pub fn aggregate_par(&self, region: &Region) -> CellAgg {
        self.validate_region(region);
        self.grid
            .chunks_intersecting(region)
            .into_par_iter()
            .map(|ci| self.chunk_partial(ci, region))
            .reduce(CellAgg::default, |mut a, b| {
                a.merge(b);
                a
            })
    }

    /// Per-coordinate aggregation along `dim` inside `region`: element `i`
    /// of the result aggregates the slice `dim == region.bounds[dim].0 + i`
    /// — the cube-side `GROUP BY` one dimension.
    pub fn aggregate_along_seq(&self, dim: usize, region: &Region) -> Vec<CellAgg> {
        self.validate_region(region);
        assert!(dim < self.grid.ndim(), "axis {dim} out of range");
        let width = (region.bounds[dim].1 - region.bounds[dim].0 + 1) as usize;
        let mut out = vec![CellAgg::default(); width];
        for ci in self.grid.chunks_intersecting(region) {
            self.chunk_partial_along(ci, dim, region, &mut out);
        }
        out
    }

    /// Parallel variant of [`MolapCube::aggregate_along_seq`]: chunks are
    /// processed concurrently into per-thread buffers that are reduced.
    pub fn aggregate_along_par(&self, dim: usize, region: &Region) -> Vec<CellAgg> {
        self.validate_region(region);
        assert!(dim < self.grid.ndim(), "axis {dim} out of range");
        let width = (region.bounds[dim].1 - region.bounds[dim].0 + 1) as usize;
        self.grid
            .chunks_intersecting(region)
            .into_par_iter()
            .fold(
                || vec![CellAgg::default(); width],
                |mut acc, ci| {
                    self.chunk_partial_along(ci, dim, region, &mut acc);
                    acc
                },
            )
            .reduce(
                || vec![CellAgg::default(); width],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        x.merge(y);
                    }
                    a
                },
            )
    }

    fn chunk_partial_along(
        &self,
        chunk_idx: usize,
        dim: usize,
        region: &Region,
        out: &mut [CellAgg],
    ) {
        let chunk_region = self.grid.chunk_region(chunk_idx);
        let Some(inter) = chunk_region.intersect(region) else {
            return;
        };
        let local = Region::new(
            inter
                .bounds
                .iter()
                .zip(&chunk_region.bounds)
                .map(|(&(f, t), &(base, _))| (f - base, t - base))
                .collect(),
        );
        let local_shape = self.grid.chunk_local_shape(chunk_idx);
        // Output base: where this chunk's slice of the axis starts within
        // the region's axis window.
        let out_base = (inter.bounds[dim].0 - region.bounds[dim].0) as usize;
        self.chunks[chunk_idx].aggregate_along(&local_shape, &local, dim, out, out_base);
    }

    /// Rolls this cube up to a strictly coarser resolution, producing the
    /// new cube from its "smallest parent" (paper §II-B) instead of
    /// rescanning the fact table.
    ///
    /// # Panics
    ///
    /// Panics if `target >= self.resolution()` changes nothing, or if the
    /// schema's hierarchy is not uniform (roll-up would be inexact).
    pub fn rollup_to(&self, target: usize) -> MolapCube {
        assert!(target < self.resolution, "roll-up target must be coarser");
        assert!(
            self.schema.uniform_hierarchy(),
            "roll-up needs uniform hierarchies"
        );
        let mut out = MolapCube::build_empty(self.schema.clone(), target);
        let ndim = self.schema.ndim();
        let mut target_coords = vec![0u32; ndim];
        self.for_each_cell(|coords, sum, count| {
            for d in 0..ndim {
                target_coords[d] = self
                    .schema
                    .coarsen_coord(d, self.resolution, target, coords[d]);
            }
            out.add(&target_coords, sum, count);
        });
        out
    }

    /// Visits every non-empty cell as `(global coords, sum, count)`.
    pub fn for_each_cell<F: FnMut(&[u32], f64, u64)>(&self, mut f: F) {
        let ndim = self.grid.ndim();
        let mut global = vec![0u32; ndim];
        for (ci, chunk) in self.chunks.iter().enumerate() {
            let chunk_region = self.grid.chunk_region(ci);
            let local_shape = self.grid.chunk_local_shape(ci);
            let visit = |off: u32, sum: f64, count: u64, global: &mut Vec<u32>, f: &mut F| {
                if count == 0 {
                    return;
                }
                let local = crate::geometry::coords_of(&local_shape, off as usize);
                for d in 0..ndim {
                    global[d] = chunk_region.bounds[d].0 + local[d];
                }
                f(global, sum, count);
            };
            match chunk {
                Chunk::Dense { sums, counts } => {
                    for (i, (&s, &c)) in sums.iter().zip(counts).enumerate() {
                        visit(i as u32, s, c, &mut global, &mut f);
                    }
                }
                Chunk::Sparse {
                    offsets,
                    sums,
                    counts,
                } => {
                    for ((&off, &s), &c) in offsets.iter().zip(sums).zip(counts) {
                        visit(off, s, c, &mut global, &mut f);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holap_table::{FactTableBuilder, TableSchema};

    fn schema() -> CubeSchema {
        CubeSchema::from_table_schema(
            &TableSchema::builder()
                .dimension("time", &[("year", 4), ("month", 16), ("day", 64)])
                .dimension("geo", &[("region", 4), ("city", 8)])
                .measure("sales")
                .build(),
        )
    }

    #[test]
    fn schema_geometry() {
        let s = schema();
        assert_eq!(s.max_resolution(), 2);
        assert_eq!(s.shape_at(0), vec![4, 4]);
        assert_eq!(s.shape_at(1), vec![16, 8]);
        assert_eq!(s.shape_at(2), vec![64, 8]); // geo clamps to city
        assert_eq!(s.cells_at(2), 512);
        assert!(s.uniform_hierarchy());
    }

    #[test]
    fn widen_and_coarsen_are_inverse_on_blocks() {
        let s = schema();
        // time: year 2 at r0 → months 8..11 at r1.
        assert_eq!(s.widen_range(0, 0, 1, (2, 2)), (8, 11));
        for m in 8..=11 {
            assert_eq!(s.coarsen_coord(0, 1, 0, m), 2);
        }
    }

    #[test]
    fn filled_cube_full_aggregate() {
        let cube = MolapCube::build_filled(schema(), 1, 2.0, 1);
        let agg = cube.aggregate_seq(&Region::full(cube.shape()));
        assert_eq!(agg.count, 16 * 8);
        assert_eq!(agg.sum, 2.0 * 128.0);
    }

    #[test]
    fn add_and_cell_roundtrip() {
        let mut cube = MolapCube::build_empty(schema(), 1);
        cube.add(&[3, 5], 7.5, 2);
        cube.add(&[3, 5], 0.5, 1);
        let c = cube.cell(&[3, 5]);
        assert_eq!(c.sum, 8.0);
        assert_eq!(c.count, 3);
        assert_eq!(cube.cell(&[0, 0]).count, 0);
    }

    #[test]
    fn par_equals_seq() {
        let mut cube = MolapCube::build_empty_with_chunks(schema(), 2, 16);
        // Deterministic pseudo-random content.
        let mut x = 1u64;
        for day in 0..64u32 {
            for city in 0..8u32 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                cube.add(&[day, city], (x % 100) as f64, 1);
            }
        }
        for region in [
            Region::full(cube.shape()),
            Region::new(vec![(5, 40), (2, 6)]),
            Region::new(vec![(63, 63), (0, 7)]),
        ] {
            let s = cube.aggregate_seq(&region);
            let p = cube.aggregate_par(&region);
            assert_eq!(s.count, p.count);
            assert!((s.sum - p.sum).abs() < 1e-9 * (1.0 + s.sum.abs()));
        }
    }

    #[test]
    fn build_from_table_aggregates_rows() {
        let tschema = TableSchema::builder()
            .dimension("time", &[("year", 4), ("month", 16)])
            .dimension("geo", &[("city", 8)])
            .measure("sales")
            .build();
        let cschema = CubeSchema::from_table_schema(&tschema);
        let mut b = FactTableBuilder::new(tschema);
        // rows: (year, month, city, sales)
        b.push_row(&[0, 1, 3], &[10.0]).unwrap();
        b.push_row(&[0, 1, 3], &[5.0]).unwrap();
        b.push_row(&[2, 9, 3], &[7.0]).unwrap();
        let table = b.finish();

        // Fine cube at month resolution.
        let cube = MolapCube::build_from_table(cschema.clone(), 1, &table, 0);
        assert_eq!(cube.cell(&[1, 3]).sum, 15.0);
        assert_eq!(cube.cell(&[1, 3]).count, 2);
        assert_eq!(cube.cell(&[9, 3]).sum, 7.0);
        // Whole-cube totals match the table.
        let total = cube.aggregate_seq(&Region::full(cube.shape()));
        assert_eq!(total.sum, 22.0);
        assert_eq!(total.count, 3);
    }

    #[test]
    fn aggregate_along_matches_per_slice_aggregates() {
        let mut cube = MolapCube::build_empty_with_chunks(schema(), 2, 16);
        let mut x = 5u64;
        for day in 0..64u32 {
            for city in 0..8u32 {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                if !x.is_multiple_of(3) {
                    cube.add(&[day, city], (x % 40) as f64, 1);
                }
            }
        }
        cube.compress(); // exercise the sparse path too
        let region = Region::new(vec![(10, 50), (2, 6)]);
        for dim in 0..2usize {
            let along = cube.aggregate_along_seq(dim, &region);
            let along_par = cube.aggregate_along_par(dim, &region);
            assert_eq!(
                along.len(),
                (region.bounds[dim].1 - region.bounds[dim].0 + 1) as usize
            );
            for (i, agg) in along.iter().enumerate() {
                let mut slice = region.clone();
                let c = region.bounds[dim].0 + i as u32;
                slice.bounds[dim] = (c, c);
                let direct = cube.aggregate_seq(&slice);
                assert_eq!(agg.count, direct.count, "dim {dim} slice {c}");
                assert!((agg.sum - direct.sum).abs() < 1e-9 * (1.0 + direct.sum.abs()));
                assert_eq!(along_par[i].count, direct.count);
                assert!((along_par[i].sum - direct.sum).abs() < 1e-9 * (1.0 + direct.sum.abs()));
            }
            // Slices sum to the region total.
            let total = cube.aggregate_seq(&region);
            let sum: f64 = along.iter().map(|a| a.sum).sum();
            let count: u64 = along.iter().map(|a| a.count).sum();
            assert_eq!(count, total.count);
            assert!((sum - total.sum).abs() < 1e-9 * (1.0 + total.sum.abs()));
        }
    }

    #[test]
    fn rollup_preserves_totals_and_grouping() {
        let tschema = TableSchema::builder()
            .dimension("time", &[("year", 4), ("month", 16)])
            .dimension("geo", &[("region", 2), ("city", 8)])
            .measure("sales")
            .build();
        let cschema = CubeSchema::from_table_schema(&tschema);
        let mut b = FactTableBuilder::new(tschema);
        // month 5 is in year 1 (16/4 = 4 months per year); city 6 in region 1.
        b.push_row(&[1, 5, 1, 6], &[3.0]).unwrap();
        b.push_row(&[1, 7, 1, 7], &[4.0]).unwrap();
        b.push_row(&[0, 0, 0, 0], &[9.0]).unwrap();
        let table = b.finish();
        let fine = MolapCube::build_from_table(cschema.clone(), 1, &table, 0);
        let coarse = fine.rollup_to(0);
        // Coarse cube == building directly at resolution 0.
        let direct = MolapCube::build_from_table(cschema, 0, &table, 0);
        let full = Region::full(coarse.shape());
        assert_eq!(coarse.aggregate_seq(&full), direct.aggregate_seq(&full));
        assert_eq!(coarse.cell(&[1, 1]).sum, 7.0);
        assert_eq!(coarse.cell(&[0, 0]).sum, 9.0);
    }

    #[test]
    fn compression_reduces_bytes_and_keeps_answers() {
        let mut cube = MolapCube::build_empty_with_chunks(schema(), 2, 16);
        cube.add(&[10, 3], 5.0, 1);
        cube.add(&[50, 7], 2.0, 1);
        let full = Region::full(cube.shape());
        let before = cube.aggregate_seq(&full);
        let dense_bytes = cube.bytes();
        let compressed = cube.compress();
        assert!(compressed > 0);
        assert!(cube.bytes() < dense_bytes);
        assert_eq!(cube.aggregate_seq(&full), before);
        // Parallel path over sparse chunks agrees too.
        assert_eq!(cube.aggregate_par(&full), before);
    }

    #[test]
    fn size_estimates_follow_eq3() {
        let cube = MolapCube::build_filled(schema(), 1, 1.0, 1);
        let region = Region::new(vec![(0, 7), (0, 3)]); // 8 × 4 = 32 cells
        let mb = cube.estimate_subcube_mb(&region);
        assert!((mb - 32.0 * 16.0 / (1024.0 * 1024.0)).abs() < 1e-15);
        assert!((cube.size_mb() - 128.0 * 16.0 / (1024.0 * 1024.0)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn aggregate_rejects_out_of_range_region() {
        let cube = MolapCube::build_filled(schema(), 0, 1.0, 1);
        cube.aggregate_seq(&Region::new(vec![(0, 4), (0, 3)]));
    }

    #[test]
    fn for_each_cell_visits_only_nonempty() {
        let mut cube = MolapCube::build_empty(schema(), 0);
        cube.add(&[1, 2], 4.0, 2);
        cube.add(&[3, 0], 1.0, 1);
        let mut seen = Vec::new();
        cube.for_each_cell(|c, s, n| seen.push((c.to_vec(), s, n)));
        seen.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(seen, vec![(vec![1, 2], 4.0, 2), (vec![3, 0], 1.0, 1)]);
    }
}
