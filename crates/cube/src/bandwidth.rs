//! Timed aggregation runs for the Fig. 3–5 measurements.
//!
//! The paper's CPU performance model is derived from "an OpenMP benchmark
//! that measures the processing time for different sub-cube sizes"
//! (§III-D). This module is that benchmark's core: it times full-cube
//! aggregations under a rayon pool of a chosen size and reports processing
//! time and effective memory bandwidth.

use crate::cube::{CubeSchema, MolapCube, CELL_BYTES};
use crate::geometry::Region;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One timed measurement point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthSample {
    /// Sub-cube size processed, MB.
    pub size_mb: f64,
    /// Threads used.
    pub threads: usize,
    /// Best-of-N processing time, seconds.
    pub secs: f64,
    /// Effective bandwidth, MB/s.
    pub bandwidth_mbps: f64,
}

/// Times the aggregation of `region` on `cube` with a dedicated rayon pool
/// of `threads` threads, taking the best of `reps` runs (standard practice
/// for bandwidth measurements — the best run is the least perturbed one).
///
/// With `threads == 1` the sequential path is used, avoiding pool overhead
/// so single-thread numbers are honest.
pub fn measure_aggregation(
    cube: &MolapCube,
    region: &Region,
    threads: usize,
    reps: usize,
) -> BandwidthSample {
    assert!(threads >= 1 && reps >= 1);
    let size_mb = region.cells() as f64 * CELL_BYTES as f64 / (1024.0 * 1024.0);
    let mut best = f64::INFINITY;
    if threads == 1 {
        for _ in 0..reps {
            let t0 = Instant::now();
            let agg = cube.aggregate_seq(region);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(agg);
            best = best.min(dt);
        }
    } else {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("failed to build rayon pool");
        for _ in 0..reps {
            let t0 = Instant::now();
            let agg = pool.install(|| cube.aggregate_par(region));
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(agg);
            best = best.min(dt);
        }
    }
    BandwidthSample {
        size_mb,
        threads,
        secs: best,
        bandwidth_mbps: if best > 0.0 {
            size_mb / best
        } else {
            f64::INFINITY
        },
    }
}

/// Builds a synthetic one-dimensional cube of approximately `size_mb` MB —
/// the workload shape used for the Fig. 3 bandwidth sweep, where only the
/// streamed volume matters.
pub fn synthetic_cube_of_mb(size_mb: f64) -> MolapCube {
    assert!(size_mb > 0.0);
    let cells = ((size_mb * 1024.0 * 1024.0) / CELL_BYTES as f64).ceil() as u32;
    let schema = CubeSchema {
        dimensions: vec![holap_table::DimensionSchema {
            name: "flat".into(),
            levels: vec![holap_table::LevelSchema {
                name: "cell".into(),
                cardinality: cells.max(1),
            }],
        }],
    };
    // Large chunks keep per-chunk overhead negligible at big sizes while
    // still giving rayon enough parallelism (≥ ~64 chunks).
    let chunk_side = (cells / 64).clamp(1, 1 << 20);
    MolapCube::build_filled_with_chunks(schema, 0, 1.0, 1, chunk_side)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_cube_has_requested_size() {
        let cube = synthetic_cube_of_mb(2.0);
        assert!(
            (cube.size_mb() - 2.0).abs() < 0.01,
            "size = {}",
            cube.size_mb()
        );
    }

    #[test]
    fn measurement_reports_positive_bandwidth() {
        let cube = synthetic_cube_of_mb(1.0);
        let region = Region::full(cube.shape());
        let s = measure_aggregation(&cube, &region, 1, 2);
        assert!(s.secs > 0.0);
        assert!(s.bandwidth_mbps > 0.0);
        assert_eq!(s.threads, 1);
        let p = measure_aggregation(&cube, &region, 2, 2);
        assert!(p.secs > 0.0);
    }
}
