//! Chunk storage: dense arrays with chunk-offset compression.
//!
//! Following Zhao, Deshpande & Naughton (the array-based algorithm the
//! paper's cube engine descends from), chunks whose fill factor drops below
//! 40 % are stored compressed as `(offset, value)` pairs — "chunk-offset
//! compression" — while well-filled chunks stay dense.

use crate::geometry::{coords_of, linear_index, Region};
use serde::{Deserialize, Serialize};

/// Fill-factor threshold below which a chunk is compressed (Zhao et al.'s
/// 40 %).
pub const COMPRESSION_FILL_THRESHOLD: f64 = 0.4;

/// Aggregate of a set of cells: the running `(sum, count)` pair every cube
/// cell stores.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CellAgg {
    /// Sum of measure values aggregated into the cells.
    pub sum: f64,
    /// Number of fact rows aggregated into the cells.
    pub count: u64,
}

impl CellAgg {
    /// Merges another aggregate into this one.
    #[inline]
    pub fn merge(&mut self, other: CellAgg) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// One chunk of the cube: dense or chunk-offset compressed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Chunk {
    /// Dense storage: one `(sum, count)` per cell, row-major local order.
    Dense {
        /// Per-cell sums.
        sums: Vec<f64>,
        /// Per-cell counts (0 = empty cell).
        counts: Vec<u64>,
    },
    /// Chunk-offset compression: only non-empty cells, sorted by local
    /// offset.
    Sparse {
        /// Local row-major offsets of the non-empty cells, ascending.
        offsets: Vec<u32>,
        /// Sums of the non-empty cells, parallel to `offsets`.
        sums: Vec<f64>,
        /// Counts of the non-empty cells, parallel to `offsets`.
        counts: Vec<u64>,
    },
}

impl Chunk {
    /// A dense chunk of `cells` empty cells.
    pub fn dense_empty(cells: usize) -> Self {
        Self::Dense {
            sums: vec![0.0; cells],
            counts: vec![0; cells],
        }
    }

    /// A dense chunk with every cell holding `(sum, count)`.
    pub fn dense_filled(cells: usize, sum: f64, count: u64) -> Self {
        Self::Dense {
            sums: vec![sum; cells],
            counts: vec![count; cells],
        }
    }

    /// Number of non-empty cells.
    pub fn filled_cells(&self) -> usize {
        match self {
            Self::Dense { counts, .. } => counts.iter().filter(|&&c| c > 0).count(),
            Self::Sparse { offsets, .. } => offsets.len(),
        }
    }

    /// Fill factor relative to `total_cells` of the chunk.
    pub fn fill_factor(&self, total_cells: usize) -> f64 {
        if total_cells == 0 {
            0.0
        } else {
            self.filled_cells() as f64 / total_cells as f64
        }
    }

    /// Approximate bytes occupied by the chunk's cell data.
    pub fn bytes(&self) -> usize {
        match self {
            Self::Dense { sums, counts } => sums.len() * 8 + counts.len() * 8,
            Self::Sparse {
                offsets,
                sums,
                counts,
            } => offsets.len() * 4 + sums.len() * 8 + counts.len() * 8,
        }
    }

    /// Adds `(sum, count)` into the cell at local offset `off`.
    ///
    /// Dense chunks update in place; sparse chunks insert in offset order.
    pub fn add(&mut self, off: u32, sum: f64, count: u64) {
        match self {
            Self::Dense { sums, counts } => {
                sums[off as usize] += sum;
                counts[off as usize] += count;
            }
            Self::Sparse {
                offsets,
                sums,
                counts,
            } => match offsets.binary_search(&off) {
                Ok(i) => {
                    sums[i] += sum;
                    counts[i] += count;
                }
                Err(i) => {
                    offsets.insert(i, off);
                    sums.insert(i, sum);
                    counts.insert(i, count);
                }
            },
        }
    }

    /// Converts to sparse form if the fill factor is below
    /// [`COMPRESSION_FILL_THRESHOLD`]; returns whether a conversion
    /// happened.
    pub fn maybe_compress(&mut self, total_cells: usize) -> bool {
        let fill = self.fill_factor(total_cells);
        if let Self::Dense { sums, counts } = self {
            if fill < COMPRESSION_FILL_THRESHOLD {
                let mut offs = Vec::new();
                let mut s = Vec::new();
                let mut c = Vec::new();
                for (i, (&sum, &count)) in sums.iter().zip(counts.iter()).enumerate() {
                    if count > 0 {
                        offs.push(i as u32);
                        s.push(sum);
                        c.push(count);
                    }
                }
                *self = Self::Sparse {
                    offsets: offs,
                    sums: s,
                    counts: c,
                };
                return true;
            }
        }
        false
    }

    /// Aggregates all cells of this chunk that fall inside `local_region`
    /// (bounds expressed in the chunk's local coordinates over
    /// `local_shape`).
    ///
    /// The dense path exploits contiguity: the innermost dimension of the
    /// intersection is a contiguous slice, so the hot loop is a straight
    /// streaming sum — this is what makes cube processing memory-bandwidth
    /// bound, as the paper's model assumes.
    pub fn aggregate(&self, local_shape: &[u32], local_region: &Region) -> CellAgg {
        debug_assert_eq!(local_shape.len(), local_region.ndim());
        match self {
            Self::Dense { sums, counts } => {
                dense_aggregate(sums, counts, local_shape, local_region)
            }
            Self::Sparse {
                offsets,
                sums,
                counts,
            } => {
                let mut agg = CellAgg::default();
                for (i, &off) in offsets.iter().enumerate() {
                    let coords = coords_of(local_shape, off as usize);
                    if local_region.contains(&coords) {
                        agg.sum += sums[i];
                        agg.count += counts[i];
                    }
                }
                agg
            }
        }
    }
}

impl Chunk {
    /// Aggregates the cells inside `local_region`, split *along* one axis:
    /// the cell at local coordinate `c` contributes to
    /// `out[c[axis] − local_region.bounds[axis].0 + out_base]`.
    ///
    /// This is the chunk-level kernel behind per-coordinate (GROUP BY one
    /// dimension) cube queries.
    pub fn aggregate_along(
        &self,
        local_shape: &[u32],
        local_region: &Region,
        axis: usize,
        out: &mut [CellAgg],
        out_base: usize,
    ) {
        debug_assert!(axis < local_shape.len());
        let axis_from = local_region.bounds[axis].0;
        match self {
            Self::Dense { sums, counts } => {
                // Odometer over every cell of the intersection.
                let ndim = local_shape.len();
                let mut cursor: Vec<u32> = local_region.bounds.iter().map(|&(f, _)| f).collect();
                loop {
                    let idx = linear_index(local_shape, &cursor);
                    let slot = out_base + (cursor[axis] - axis_from) as usize;
                    out[slot].sum += sums[idx];
                    out[slot].count += counts[idx];
                    let mut d = ndim;
                    loop {
                        if d == 0 {
                            return;
                        }
                        d -= 1;
                        if cursor[d] < local_region.bounds[d].1 {
                            cursor[d] += 1;
                            break;
                        }
                        cursor[d] = local_region.bounds[d].0;
                    }
                }
            }
            Self::Sparse {
                offsets,
                sums,
                counts,
            } => {
                for (i, &off) in offsets.iter().enumerate() {
                    let coords = coords_of(local_shape, off as usize);
                    if local_region.contains(&coords) {
                        let slot = out_base + (coords[axis] - axis_from) as usize;
                        out[slot].sum += sums[i];
                        out[slot].count += counts[i];
                    }
                }
            }
        }
    }
}

/// Streaming aggregation of a dense chunk: odometer over the outer
/// dimensions, contiguous slice sum over the innermost one.
fn dense_aggregate(sums: &[f64], counts: &[u64], shape: &[u32], region: &Region) -> CellAgg {
    let ndim = shape.len();
    let (inner_from, inner_to) = region.bounds[ndim - 1];
    let inner_len = (inner_to - inner_from + 1) as usize;
    let mut agg = CellAgg::default();
    // Cursor over the outer dimensions (all but the last).
    let mut cursor: Vec<u32> = region.bounds[..ndim - 1].iter().map(|&(f, _)| f).collect();
    let mut coords = vec![0u32; ndim];
    loop {
        coords[..ndim - 1].copy_from_slice(&cursor);
        coords[ndim - 1] = inner_from;
        let base = linear_index(shape, &coords);
        for &v in &sums[base..base + inner_len] {
            agg.sum += v;
        }
        for &c in &counts[base..base + inner_len] {
            agg.count += c;
        }
        // Odometer increment over outer dims, last-outer fastest.
        let mut d = ndim - 1;
        loop {
            if d == 0 {
                return agg;
            }
            d -= 1;
            if cursor[d] < region.bounds[d].1 {
                cursor[d] += 1;
                break;
            }
            cursor[d] = region.bounds[d].0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_3x4() -> (Chunk, Vec<u32>) {
        // sums[i] = i, counts[i] = 1
        let sums: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let counts = vec![1u64; 12];
        (Chunk::Dense { sums, counts }, vec![3, 4])
    }

    #[test]
    fn dense_full_aggregate() {
        let (c, shape) = dense_3x4();
        let agg = c.aggregate(&shape, &Region::full(&shape));
        assert_eq!(agg.sum, (0..12).sum::<i32>() as f64);
        assert_eq!(agg.count, 12);
    }

    #[test]
    fn dense_sub_region() {
        let (c, shape) = dense_3x4();
        // rows 1..2, cols 1..2 → cells (1,1)=5 (1,2)=6 (2,1)=9 (2,2)=10
        let agg = c.aggregate(&shape, &Region::new(vec![(1, 2), (1, 2)]));
        assert_eq!(agg.sum, 30.0);
        assert_eq!(agg.count, 4);
    }

    #[test]
    fn one_dimensional_chunk() {
        let c = Chunk::Dense {
            sums: vec![1.0, 2.0, 3.0, 4.0],
            counts: vec![1; 4],
        };
        let agg = c.aggregate(&[4], &Region::new(vec![(1, 2)]));
        assert_eq!(agg.sum, 5.0);
        assert_eq!(agg.count, 2);
    }

    #[test]
    fn sparse_matches_dense() {
        let (mut dense, shape) = dense_3x4();
        // Zero out most cells so compression triggers.
        if let Chunk::Dense { sums, counts } = &mut dense {
            for i in 0..12 {
                if i % 4 != 0 {
                    sums[i] = 0.0;
                    counts[i] = 0;
                }
            }
        }
        let mut sparse = dense.clone();
        assert!(sparse.maybe_compress(12));
        assert!(matches!(sparse, Chunk::Sparse { .. }));
        for region in [
            Region::full(&shape),
            Region::new(vec![(0, 1), (0, 1)]),
            Region::new(vec![(2, 2), (0, 3)]),
        ] {
            assert_eq!(
                dense.aggregate(&shape, &region),
                sparse.aggregate(&shape, &region)
            );
        }
    }

    #[test]
    fn compression_threshold_respected() {
        let mut full = Chunk::dense_filled(10, 1.0, 1);
        assert!(!full.maybe_compress(10), "full chunk must stay dense");
        let mut half = Chunk::dense_empty(10);
        for i in 0..5 {
            half.add(i, 1.0, 1);
        }
        assert!(!half.maybe_compress(10), "50% fill stays dense");
        let mut sparse = Chunk::dense_empty(10);
        sparse.add(3, 1.0, 1);
        assert!(sparse.maybe_compress(10), "10% fill compresses");
        assert!(sparse.bytes() < Chunk::dense_empty(10).bytes());
    }

    #[test]
    fn add_into_sparse_keeps_order() {
        let mut c = Chunk::Sparse {
            offsets: vec![],
            sums: vec![],
            counts: vec![],
        };
        c.add(7, 1.0, 1);
        c.add(2, 2.0, 1);
        c.add(7, 3.0, 2);
        if let Chunk::Sparse {
            offsets,
            sums,
            counts,
        } = &c
        {
            assert_eq!(offsets, &[2, 7]);
            assert_eq!(sums, &[2.0, 4.0]);
            assert_eq!(counts, &[1, 3]);
        } else {
            panic!("expected sparse");
        }
        assert_eq!(c.filled_cells(), 2);
    }

    #[test]
    fn fill_factor() {
        let mut c = Chunk::dense_empty(8);
        c.add(0, 1.0, 1);
        c.add(1, 1.0, 1);
        assert!((c.fill_factor(8) - 0.25).abs() < 1e-12);
    }
}
