//! Ablation — dictionary implementations for the translation partition.
//!
//! The paper's conclusion promises "a more sophisticated translation
//! algorithm" to claw back the 7 % GPU-side overhead; this bench
//! quantifies the candidates: linear scan (the paper's), binary search
//! over an order-preserving sorted dictionary, and an FNV-hashed map.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holap_dict::{DictKind, DictionarySet, TextCondition};
use holap_workload::{name_pool, NameStyle};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dicts");
    group.sample_size(10);
    let len = 100_000usize;
    let names = name_pool(len, NameStyle::City, 9);
    let worst = names.last().unwrap().clone();
    for kind in [DictKind::Linear, DictKind::Sorted, DictKind::Hashed] {
        let mut set = DictionarySet::new(kind);
        set.build_column("city", names.iter().map(String::as_str));
        group.bench_with_input(
            BenchmarkId::new("eq_lookup", format!("{kind:?}")),
            &set,
            |b, set| {
                let cond = TextCondition::eq(worst.clone());
                b.iter(|| set.translate("city", &cond).unwrap())
            },
        );
    }
    // Range translation is only supported by the sorted dictionary.
    let mut sorted = DictionarySet::new(DictKind::Sorted);
    sorted.build_column("city", names.iter().map(String::as_str));
    group.bench_function("range_lookup/Sorted", |b| {
        let cond = TextCondition::range("B", "M");
        b.iter(|| sorted.translate("city", &cond).unwrap())
    });
    // Build cost matters too: it is paid at database-build time.
    group.bench_function("build/Sorted_100k", |b| {
        b.iter(|| {
            let mut set = DictionarySet::new(DictKind::Sorted);
            set.build_column("city", names.iter().map(String::as_str))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
