//! Tables 1–3 as criterion benchmarks: one iteration = one full
//! closed-loop system-model run (1000 queries). Useful for tracking
//! regression of the simulator itself; the `repro` binary prints the
//! queries-per-second numbers the paper reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holap_sched::Policy;
use holap_sim::{run_closed_loop, SimConfig};
use holap_workload::{PaperHierarchy, QueryGenerator, WorkloadPreset};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_scenarios");
    group.sample_size(10);
    let h = PaperHierarchy::default();
    let cases = [
        (
            "table1_cpu8",
            WorkloadPreset::Table1,
            Policy::CpuOnly,
            8u32,
            2usize,
        ),
        ("table2_cpu8", WorkloadPreset::Table2, Policy::CpuOnly, 8, 2),
        (
            "table3_hybrid8",
            WorkloadPreset::Table3,
            Policy::Paper,
            8,
            128,
        ),
        ("gpu_only", WorkloadPreset::Table3, Policy::GpuOnly, 8, 6),
    ];
    for (name, preset, policy, threads, workers) in cases {
        let mut cfg = SimConfig::paper(policy, threads, 1000);
        cfg.workers = workers;
        group.bench_with_input(BenchmarkId::new("closed_loop", name), &cfg, |b, cfg| {
            b.iter(|| {
                let mut generator = QueryGenerator::preset(preset, &h, 5);
                run_closed_loop(cfg, &mut generator)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
