//! Figures 4 & 5 — CPU cube-processing time vs sub-cube size for the
//! 4-thread and 8-thread parallel implementations (the measurements the
//! paper fits Eq. 5–10 to).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holap_cube::{bandwidth, Region};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig45_cpu_model");
    group.sample_size(10);
    let max_mb = 256.0;
    let cube = bandwidth::synthetic_cube_of_mb(max_mb);
    let total_cells = cube.cells();
    for &threads in &[4usize, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        for &size_mb in &[1.0f64, 8.0, 64.0, 256.0] {
            let cells =
                (((size_mb / max_mb) * total_cells as f64).max(1.0) as u32).min(cube.shape()[0]);
            let region = Region::new(vec![(0, cells - 1)]);
            group.bench_with_input(
                BenchmarkId::new(format!("{threads}T"), format!("{size_mb}MB")),
                &region,
                |b, region| b.iter(|| pool.install(|| cube.aggregate_par(region))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
