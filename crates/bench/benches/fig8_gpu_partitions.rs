//! Figure 8 — simulated-GPU scan time vs the number of columns a query
//! reads, per partition size (1 / 2 / 4 SM). The paper measured this on a
//! 4 GB table on the Tesla C2070; here the simulated kernels run on
//! per-partition thread pools and the same linear-in-columns shape must
//! emerge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holap_bench::fig8_table;
use holap_gpusim::{DeviceConfig, GpuDevice};
use holap_model::GpuModelSet;
use holap_table::{AggOp, AggSpec, ColumnId, Predicate, ScanQuery};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_gpu_partitions");
    group.sample_size(10);
    let table = fig8_table(64.0);
    let dim_ids: Vec<ColumnId> = table.schema().dim_column_ids().collect();
    let mut device = GpuDevice::new(DeviceConfig::tesla_c2070());
    let id = device.load_table("facts", table).unwrap();
    let model = GpuModelSet::paper_c2070();
    for &sms in &[1u32, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(sms as usize)
            .build()
            .expect("pool");
        for &cols in &[2usize, 6, 12] {
            let mut q = ScanQuery::new().aggregate(AggSpec::new(AggOp::Sum, Some(0)));
            for cid in dim_ids.iter().take(cols - 1) {
                q = q.filter(Predicate::range(*cid, 0, u32::MAX - 1));
            }
            group.bench_with_input(
                BenchmarkId::new(format!("{sms}SM"), format!("{cols}cols")),
                &q,
                |b, q| {
                    b.iter(|| {
                        pool.install(|| device.execute_scan(id, sms, q, &model))
                            .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
