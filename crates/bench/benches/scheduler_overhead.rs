//! Scheduling-decision overhead: the Figure-10 algorithm must be far
//! cheaper than the queries it places (the paper's system schedules
//! hundreds of queries per second on one core). One iteration = one
//! `schedule()` call including queue-clock updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use holap_sched::{PartitionLayout, Policy, Scheduler, TaskEstimate};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_overhead");
    let est = TaskEstimate {
        t_cpu: Some(0.004),
        t_gpu_by_class: vec![0.028, 0.014, 0.007],
        t_trans: 0.0014,
    };
    for policy in Policy::ALL {
        group.bench_with_input(
            BenchmarkId::new("schedule", policy.name()),
            &policy,
            |b, &policy| {
                let mut sched = Scheduler::new(PartitionLayout::paper(), policy);
                let mut now = 0.0f64;
                b.iter(|| {
                    now += 0.001;
                    sched.schedule(now, &est, 0.5)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
