//! Figure 3 — memory bandwidth of multithreaded OLAP cube processing.
//!
//! The paper's plot: effective bandwidth vs cube size for 1, 4 and 8
//! OpenMP threads (plateauing at 15–20 GB/s on dual X5667). Here the same
//! sweep with rayon pools; criterion reports time per full-cube
//! aggregation, and the throughput lines give the bandwidth directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use holap_cube::{bandwidth, Region};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_bandwidth");
    group.sample_size(10);
    for &size_mb in &[16.0f64, 64.0, 256.0] {
        let cube = bandwidth::synthetic_cube_of_mb(size_mb);
        let region = Region::full(cube.shape());
        group.throughput(Throughput::Bytes((size_mb * 1024.0 * 1024.0) as u64));
        for &threads in &[1usize, 4, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            group.bench_with_input(
                BenchmarkId::new(format!("{threads}T"), format!("{size_mb}MB")),
                &cube,
                |b, cube| {
                    b.iter(|| {
                        if threads == 1 {
                            cube.aggregate_seq(&region)
                        } else {
                            pool.install(|| cube.aggregate_par(&region))
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
