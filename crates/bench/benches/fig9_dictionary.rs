//! Figure 9 — dictionary search time vs dictionary length for the paper's
//! linear-scan dictionary (the measurement behind the `P_DICT` model,
//! Eq. 17: 0.0138 µs per entry on one Xeon X5667 core).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use holap_dict::{Dictionary, LinearDict};
use holap_workload::{name_pool, NameStyle};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_dictionary");
    group.sample_size(10);
    for &len in &[10_000usize, 100_000, 1_000_000] {
        let names = name_pool(len, NameStyle::City, 42);
        let dict = LinearDict::build(names.iter().map(String::as_str));
        let worst = names.last().unwrap().clone();
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::new("worst_case_lookup", len), &dict, |b, d| {
            b.iter(|| d.encode(&worst))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
