//! Vectorized scan engine vs the retained scalar reference.
//!
//! Three workloads over a multi-million-row fact table:
//!
//! * `filtered_scan` — an unselective range filter (~50% of rows match):
//!   the win is branch-free column-wise predicate evaluation.
//! * `selective_scan` — a narrow range on a clustered column: zone maps
//!   skip almost every block, so the win is not reading rows at all.
//! * `group_by` — grouped SUM over a small-domain key: the win is the
//!   dense slot-array group path plus vectorized filtering.
//!
//! `cargo bench -p holap-bench --bench vectorized_scan`. For the JSON
//! artifact (`BENCH_scan.json`) see `src/bin/scan_bench.rs`, which times
//! the same workloads without criterion's harness.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use holap_bench::scan_workload::{queries, table, ROWS};

fn bench(c: &mut Criterion) {
    let t = table(ROWS);
    let q = queries();
    let mut group = c.benchmark_group("vectorized_scan");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));

    group.bench_function("filtered_scan/scalar", |b| {
        b.iter(|| t.scan_scalar(&q.filtered).unwrap())
    });
    group.bench_function("filtered_scan/vectorized", |b| {
        b.iter(|| t.scan_seq(&q.filtered).unwrap())
    });
    group.bench_function("filtered_scan/parallel", |b| {
        b.iter(|| t.scan_par(&q.filtered).unwrap())
    });

    group.bench_function("selective_scan/scalar", |b| {
        b.iter(|| t.scan_scalar(&q.selective).unwrap())
    });
    group.bench_function("selective_scan/vectorized", |b| {
        b.iter(|| t.scan_seq(&q.selective).unwrap())
    });
    group.bench_function("selective_scan/parallel", |b| {
        b.iter(|| t.scan_par(&q.selective).unwrap())
    });

    group.bench_function("group_by/scalar", |b| {
        b.iter(|| t.group_by_scalar(&q.grouped).unwrap())
    });
    group.bench_function("group_by/vectorized", |b| {
        b.iter(|| t.group_by_seq(&q.grouped).unwrap())
    });
    group.bench_function("group_by/parallel", |b| {
        b.iter(|| t.group_by_par(&q.grouped).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
