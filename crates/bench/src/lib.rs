//! Shared measurement and reporting helpers for the benchmark harness.
//!
//! The binaries built on top of this library regenerate the paper's
//! evaluation artefacts:
//!
//! * `repro` — prints every table (1–3), the in-text GPU translation
//!   experiment, every measurable figure (3, 4, 5, 8, 9) and the ablation
//!   studies, each with the paper-reported values alongside;
//! * `calibrate` — re-measures the host machine and fits a fresh
//!   [`holap_model::SystemProfile`], emitted as JSON.

#![warn(missing_docs)]

pub mod scan_workload;

use holap_cube::{bandwidth, Region};
use holap_dict::{Dictionary, LinearDict};
use holap_model::{fit, DictPerfModel};
use holap_sim::scenarios::RateRow;
use holap_workload::{name_pool, NameStyle};
use std::time::Instant;

/// One point of a host-measured figure series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// X coordinate (size in MB, column fraction, dictionary length, …).
    pub x: f64,
    /// Y coordinate (seconds or MB/s).
    pub y: f64,
}

/// Pretty-prints a rate table with the paper's reported values.
pub fn print_rate_table(title: &str, rows: &[RateRow]) {
    println!("\n{title}");
    println!("{:-<78}", "");
    println!(
        "{:<32} {:>12} {:>12} {:>10} {:>8}",
        "configuration", "measured Q/s", "paper Q/s", "cpu share", "deadline%"
    );
    for r in rows {
        let paper = r
            .paper_qps
            .map(|p| format!("{p:.0}"))
            .unwrap_or_else(|| "-".to_owned());
        println!(
            "{:<32} {:>12.1} {:>12} {:>9.0}% {:>7.0}%",
            r.label,
            r.qps,
            paper,
            r.report.cpu_share() * 100.0,
            r.report.deadline_hit_ratio() * 100.0
        );
    }
}

/// Prints a figure series as aligned columns (and CSV-ready).
pub fn print_series(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[(String, Vec<SeriesPoint>)],
) {
    println!("\n{title}");
    println!("{:-<78}", "");
    print!("{x_label:>14}");
    for (name, _) in series {
        print!(" {name:>18}");
    }
    println!("  ({y_label})");
    let xs: Vec<f64> = series
        .first()
        .map(|(_, pts)| pts.iter().map(|p| p.x).collect())
        .unwrap_or_default();
    for (i, &x) in xs.iter().enumerate() {
        print!("{x:>14.4}");
        for (_, pts) in series {
            match pts.get(i) {
                Some(p) => print!(" {:>18.6}", p.y),
                None => print!(" {:>18}", "-"),
            }
        }
        println!();
    }
}

/// Fig. 3 sweep: effective aggregation bandwidth (MB/s) over cube sizes,
/// for one thread count. Sizes in MB; `reps` best-of runs per point.
pub fn fig3_bandwidth_series(sizes_mb: &[f64], threads: usize, reps: usize) -> Vec<SeriesPoint> {
    sizes_mb
        .iter()
        .map(|&mb| {
            let cube = bandwidth::synthetic_cube_of_mb(mb);
            let region = Region::full(cube.shape());
            let s = bandwidth::measure_aggregation(&cube, &region, threads, reps);
            SeriesPoint {
                x: mb,
                y: s.bandwidth_mbps,
            }
        })
        .collect()
}

/// Fig. 4/5 sweep: processing time (s) over sub-cube sizes for one thread
/// count. Reuses one large cube and varies the region, like the paper's
/// benchmark.
pub fn fig45_time_series(sizes_mb: &[f64], threads: usize, reps: usize) -> Vec<SeriesPoint> {
    let max_mb = sizes_mb.iter().copied().fold(1.0f64, f64::max);
    let cube = bandwidth::synthetic_cube_of_mb(max_mb);
    let total_cells = cube.cells();
    sizes_mb
        .iter()
        .map(|&mb| {
            let want = ((mb / max_mb) * total_cells as f64).max(1.0) as u32;
            let cells = want.min(cube.shape()[0]);
            let region = Region::new(vec![(0, cells - 1)]);
            let s = bandwidth::measure_aggregation(&cube, &region, threads, reps);
            SeriesPoint {
                x: s.size_mb,
                y: s.secs,
            }
        })
        .collect()
}

/// Fig. 9 sweep: worst-case linear-dictionary lookup time (s) over
/// dictionary lengths. The probe key is the *last* entry, which is the
/// upper bound `P_DICT` models (Eq. 17).
pub fn fig9_dictionary_series(lengths: &[usize], reps: usize) -> Vec<SeriesPoint> {
    lengths
        .iter()
        .map(|&len| {
            let names = name_pool(len, NameStyle::City, 42);
            let dict = LinearDict::build(names.iter().map(String::as_str));
            let needle = names.last().expect("non-empty dictionary").clone();
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let code = dict.encode(&needle);
                let dt = t0.elapsed().as_secs_f64();
                std::hint::black_box(code);
                best = best.min(dt);
            }
            SeriesPoint {
                x: len as f64,
                y: best,
            }
        })
        .collect()
}

/// Fits the dictionary model from a Fig. 9 series.
pub fn fit_dict_model(series: &[SeriesPoint]) -> DictPerfModel {
    let xs: Vec<f64> = series.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = series.iter().map(|p| p.y).collect();
    DictPerfModel::fit(&xs, &ys)
}

/// Fits a straight line through a series.
pub fn fit_series_linear(series: &[SeriesPoint]) -> fit::Linear {
    let xs: Vec<f64> = series.iter().map(|p| p.x).collect();
    let ys: Vec<f64> = series.iter().map(|p| p.y).collect();
    fit::fit_linear(&xs, &ys)
}

/// Builds the scan workload used by the Fig. 8 measurement: a fact table of
/// roughly `mb` MB with the paper's 3 × 4-level layout.
pub fn fig8_table(mb: f64) -> holap_table::FactTable {
    use holap_workload::{FactsSpec, PaperHierarchy, SyntheticFacts};
    let h = PaperHierarchy::default();
    let rows = ((mb * 1024.0 * 1024.0) / h.table_schema().row_bytes() as f64) as usize;
    let facts = SyntheticFacts::generate(&FactsSpec {
        schema: h.table_schema(),
        rows,
        text_levels: vec![],
        dict_kind: holap_dict::DictKind::Sorted,
        skew: None,
        seed: 8,
    });
    facts.table
}

/// Fig. 8 measurement: wall time (s) of the simulated scan kernel over the
/// number of columns accessed, for one partition width (SM count → thread
/// pool width).
pub fn fig8_series(table: &holap_table::FactTable, sms: u32, reps: usize) -> Vec<SeriesPoint> {
    use holap_table::{AggOp, AggSpec, ColumnId, Predicate, ScanQuery};
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(sms as usize)
        .build()
        .expect("pool");
    let schema = table.schema();
    let dim_ids: Vec<ColumnId> = schema.dim_column_ids().collect();
    let total = schema.total_columns();
    let mut out = Vec::new();
    // 1 data column + k filter columns, k = 1 .. all dimension columns.
    for k in 1..=dim_ids.len() {
        let mut q = ScanQuery::new().aggregate(AggSpec::new(AggOp::Sum, Some(0)));
        for id in dim_ids.iter().take(k) {
            // A wide predicate: filters little, reads the whole column.
            q = q.filter(Predicate::range(*id, 0, u32::MAX - 1));
        }
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = pool.install(|| table.scan_par(&q)).expect("valid scan");
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(r);
            best = best.min(dt);
        }
        out.push(SeriesPoint {
            x: (k + 1) as f64 / total as f64,
            y: best,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_series_is_roughly_linear() {
        let lens = [2_000usize, 8_000, 32_000];
        let series = fig9_dictionary_series(&lens, 5);
        assert_eq!(series.len(), 3);
        let model = fit_dict_model(&series);
        // Slope must be positive and in a plausible per-entry range
        // (paper: 13.8 ns; a modern host with short strings: ~0.1–50 ns).
        assert!(model.secs_per_entry > 0.0);
        assert!(model.secs_per_entry < 1e-6, "{}", model.secs_per_entry);
    }

    #[test]
    fn fig3_series_produces_points() {
        let pts = fig3_bandwidth_series(&[1.0, 4.0], 2, 2);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.y > 0.0));
    }

    #[test]
    fn fig8_series_covers_column_fractions() {
        let table = fig8_table(4.0); // 4 MB test table
        let pts = fig8_series(&table, 2, 2);
        assert_eq!(pts.len(), 12);
        assert!(pts.last().unwrap().x <= 1.0);
        assert!(pts[0].x > 0.0);
    }
}
