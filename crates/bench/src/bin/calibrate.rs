//! Re-derives the scheduler's performance models on the host machine.
//!
//! This is the paper's offline benchmark pass (§III-D/E/F): measure, fit,
//! and store "the system performance variables … inside the scheduler".
//! Output is a `holap_model::SystemProfile` as JSON on stdout (redirect to
//! a file and load it into `SystemConfig::profile` to run the engine with
//! host-true estimates).
//!
//! ```text
//! calibrate [--quick] > profile.json
//! ```

use holap_bench::{fig45_time_series, fig9_dictionary_series, fit_dict_model};
use holap_model::{CpuPerfModel, GpuModelSet, GpuPerfModel, LegacyCpuModel, SystemProfile};
use holap_table::{AggOp, AggSpec, ColumnId, Predicate, ScanQuery};
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 2 } else { 4 };
    let sizes: Vec<f64> = if quick {
        vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]
    } else {
        vec![
            1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
        ]
    };
    let split = if quick { 16.0 } else { 128.0 };

    eprintln!(
        "calibrating CPU models over {} sizes (max {} MB)…",
        sizes.len(),
        sizes.last().unwrap()
    );
    let mut profile = SystemProfile::paper();
    for threads in [1u32, 4, 8] {
        let pts = fig45_time_series(&sizes, threads as usize, reps);
        let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
        let model = CpuPerfModel::fit(&xs, &ys, split);
        let m = model.metrics(&xs, &ys);
        eprintln!(
            "  {threads}T: f_A = {:.3e}·x^{:.4}, f_B = {:.3e}·x + {:.3e}  (R² = {:.4})",
            model.range_a.coeff,
            model.range_a.exponent,
            model.range_b.slope,
            model.range_b.intercept,
            m.r_squared
        );
        if threads == 1 {
            // The sequential baseline: effective bandwidth from the largest
            // measured point.
            let last = pts.last().unwrap();
            let bw_gbps = last.x / last.y / 1024.0;
            profile.legacy_cpu = LegacyCpuModel::new(bw_gbps, 0.0);
            eprintln!("  legacy bandwidth: {bw_gbps:.2} GB/s");
        } else {
            profile.set_cpu(threads, model);
        }
    }

    eprintln!("calibrating simulated-GPU partition models…");
    let table = holap_bench::fig8_table(if quick { 16.0 } else { 128.0 });
    let schema = table.schema().clone();
    let total = schema.total_columns();
    let dim_ids: Vec<ColumnId> = schema.dim_column_ids().collect();
    let mut gpu = GpuModelSet::new(14);
    for sms in [1u32, 2, 4, 14] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(sms as usize)
            .build()
            .expect("pool");
        let mut fracs = Vec::new();
        let mut secs = Vec::new();
        for k in (1..=dim_ids.len()).step_by(2) {
            let mut q = ScanQuery::new().aggregate(AggSpec::new(AggOp::Sum, Some(0)));
            for id in dim_ids.iter().take(k) {
                q = q.filter(Predicate::range(*id, 0, u32::MAX - 1));
            }
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                std::hint::black_box(pool.install(|| table.scan_par(&q)).expect("scan"));
                best = best.min(t0.elapsed().as_secs_f64());
            }
            fracs.push(((k + 1) as f64 / total as f64).min(1.0));
            secs.push(best);
        }
        let model = GpuPerfModel::fit(sms, &fracs, &secs);
        eprintln!(
            "  {sms:>2} SM: t = {:.3e}·(C/C_TOT) + {:.3e}",
            model.line.slope, model.line.intercept
        );
        gpu.insert(model);
    }
    profile.gpu = gpu;

    eprintln!("calibrating dictionary model…");
    let lens: Vec<usize> = if quick {
        vec![10_000, 40_000, 160_000]
    } else {
        vec![10_000, 50_000, 200_000, 500_000, 1_000_000]
    };
    let pts = fig9_dictionary_series(&lens, reps.max(3));
    profile.dict = fit_dict_model(&pts);
    eprintln!(
        "  dict: {:.3} ns/entry + {:.3e} s overhead",
        profile.dict.secs_per_entry * 1e9,
        profile.dict.overhead_secs
    );

    println!(
        "{}",
        serde_json::to_string_pretty(&profile).expect("profile serialises")
    );
}
