//! Emits `BENCH_scan.json`: rows/s of the vectorized scan engine vs the
//! retained scalar reference, on the three workloads of
//! [`holap_bench::scan_workload`].
//!
//! ```text
//! scan_bench [--rows N] [--out PATH] [--no-parallel]
//! ```
//!
//! Each (case, engine) pair is timed as the best of three runs after one
//! warmup, so the numbers are throughput ceilings, not averages. The JSON
//! also records the speedup ratios the acceptance gates read
//! (`speedup_vectorized` = vectorized seq vs scalar).

use holap_bench::scan_workload::{queries, table, ROWS};
use std::time::Instant;

fn best_secs<T>(mut f: impl FnMut() -> T) -> f64 {
    f(); // warmup
    (0..3)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let rows: usize = flag("--rows")
        .map(|v| v.parse().expect("--rows takes an integer"))
        .unwrap_or(ROWS);
    let out = flag("--out").unwrap_or_else(|| "BENCH_scan.json".to_owned());
    let parallel = !args.iter().any(|a| a == "--no-parallel");

    eprintln!("building {rows}-row table…");
    let t = table(rows);
    let q = queries();

    let mut cases = Vec::new();
    let mut run = |name: &str, scalar: f64, vectorized: f64, par: Option<f64>| {
        let rps = |secs: f64| rows as f64 / secs;
        let case = serde_json::json!({
            "name": name,
            "scalar_rows_per_sec": rps(scalar),
            "vectorized_rows_per_sec": rps(vectorized),
            "parallel_rows_per_sec": par.map(rps),
            "speedup_vectorized": scalar / vectorized,
            "speedup_parallel": par.map(|p| scalar / p),
        });
        eprintln!(
            "{name:16} scalar {:>12.0} rows/s   vectorized {:>12.0} rows/s ({:.2}x){}",
            rps(scalar),
            rps(vectorized),
            scalar / vectorized,
            par.map(|p| format!("   parallel {:.0} rows/s ({:.2}x)", rps(p), scalar / p))
                .unwrap_or_default(),
        );
        cases.push(case);
    };

    run(
        "filtered_scan",
        best_secs(|| t.scan_scalar(&q.filtered).unwrap()),
        best_secs(|| t.scan_seq(&q.filtered).unwrap()),
        parallel.then(|| best_secs(|| t.scan_par(&q.filtered).unwrap())),
    );
    run(
        "selective_scan",
        best_secs(|| t.scan_scalar(&q.selective).unwrap()),
        best_secs(|| t.scan_seq(&q.selective).unwrap()),
        parallel.then(|| best_secs(|| t.scan_par(&q.selective).unwrap())),
    );
    run(
        "group_by",
        best_secs(|| t.group_by_scalar(&q.grouped).unwrap()),
        best_secs(|| t.group_by_seq(&q.grouped).unwrap()),
        parallel.then(|| best_secs(|| t.group_by_par(&q.grouped).unwrap())),
    );

    let report = serde_json::json!({
        "benchmark": "vectorized_scan",
        "rows": rows,
        "runs_per_case": 3,
        "cases": cases,
    });
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap() + "\n")
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");
}
