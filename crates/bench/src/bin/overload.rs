//! Drives the admission pipeline past saturation and reports what each
//! overload policy does to throughput and deadline hit ratio.
//!
//! ```text
//! overload [--queries N] [--rows N] [--metrics]
//! overload --faults [--queries N] [--rows N] [--seed N] [--out PATH]
//! ```
//!
//! With `--metrics` each configuration also dumps its Prometheus-style
//! metrics exposition after the run, so the policy comparison can be read
//! off the `holap_engine_*` instruments directly.
//!
//! With `--faults` the same pipeline runs a fault matrix instead: the
//! feasible workload under 0 %, 1 % and 5 % injected kernel-failure rates
//! (the faulty rows also kill GPU partition 0 outright), reporting
//! availability, p99 latency and reroute counts, and emitting
//! `BENCH_faults.json`.
//!
//! The workload is a half-and-half mix of feasible coarse cube queries
//! (generous deadline) and hopeless finest-level queries (1 µs deadline —
//! no partition can ever make it). Three configurations run over the same
//! mix:
//!
//! * **baseline** — `Block` backpressure, shedding off: every query runs,
//!   the hopeless half drags the deadline hit ratio down;
//! * **shedding** — `SheddingPolicy::Shed`: the dispatcher drops queries
//!   whose *predicted* completion already misses the deadline, so the
//!   survivors' hit ratio recovers;
//! * **reject** — capacity-1 queues with `Reject` backpressure: the
//!   admission queue sheds load at the front door instead.

use holap_core::gpusim::{FaultKind, FaultPlan};
use holap_core::{
    AdmissionConfig, BackpressurePolicy, EngineError, EngineQuery, HybridSystem, QueryTicket,
    SheddingPolicy, SystemConfig,
};
use holap_dict::DictKind;
use holap_workload::{FactsSpec, NameStyle, PaperHierarchy, SyntheticFacts, TextLevel};
use std::time::Instant;

fn parse_flag(args: &[String], key: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build(rows: usize, admission: AdmissionConfig) -> HybridSystem {
    build_with_faults(rows, admission, None)
}

fn build_with_faults(
    rows: usize,
    admission: AdmissionConfig,
    plan: Option<FaultPlan>,
) -> HybridSystem {
    let h = PaperHierarchy::scaled_down(8);
    let facts = SyntheticFacts::generate(&FactsSpec {
        schema: h.table_schema(),
        rows,
        text_levels: vec![TextLevel {
            dim: 1,
            level: 3,
            style: NameStyle::City,
        }],
        dict_kind: DictKind::Sorted,
        skew: None,
        seed: 7,
    });
    let mut builder = HybridSystem::builder(SystemConfig {
        admission,
        ..SystemConfig::default()
    })
    .facts(facts)
    .cube_at(1)
    .cube_at(2);
    if let Some(plan) = plan {
        builder = builder.fault_plan(plan);
    }
    builder.build().expect("system builds")
}

fn workload(n: usize) -> Vec<EngineQuery> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                // Feasible: coarse, cube-resident, generous deadline.
                EngineQuery::new()
                    .range(0, 1, (i as u32 / 2) % 3, 3)
                    .deadline(10.0)
            } else {
                // Hopeless: finest level (GPU-only, modeled in ms), 1 µs.
                EngineQuery::new()
                    .range(0, 3, (i as u32) % 50, (i as u32) % 50 + 40)
                    .deadline(1e-6)
            }
        })
        .collect()
}

fn run(label: &str, sys: &HybridSystem, queries: &[EngineQuery], metrics: bool) {
    let started = Instant::now();
    let tickets = sys.submit_batch(queries.iter());
    let mut submit_rejected = 0u64;
    let mut waited: Vec<QueryTicket> = Vec::new();
    for t in tickets {
        match t {
            Ok(t) => waited.push(t),
            Err(EngineError::Overloaded(_)) => submit_rejected += 1,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    let mut shed_outcomes = 0u64;
    for t in waited {
        match t.wait() {
            Ok(o) if o.shed => shed_outcomes += 1,
            Ok(_) => {}
            Err(EngineError::Overloaded(_)) => {}
            Err(e) => panic!("unexpected outcome error: {e}"),
        }
    }
    let wall = started.elapsed().as_secs_f64();
    let s = sys.stats();
    println!(
        "{label:<10} {:>9} {:>6} {:>9} {:>10.2} {:>9.2} {:>9.2} {:>9.2} {:>10}",
        s.completed,
        s.shed,
        s.rejected,
        s.deadline_hit_ratio(),
        s.p50_latency_secs() * 1e3,
        s.p95_latency_secs() * 1e3,
        s.p99_latency_secs() * 1e3,
        s.admission_peak_depth,
    );
    debug_assert_eq!(s.shed, shed_outcomes);
    let _ = submit_rejected;
    eprintln!(
        "  ({label}: {} queries in {:.2} s = {:.0} q/s wall)",
        queries.len(),
        wall,
        queries.len() as f64 / wall
    );
    if metrics {
        if let Some(text) = sys.metrics_text() {
            println!("--- {label} metrics ---\n{text}");
        }
    }
}

/// All-feasible mixed workload for the fault matrix: half coarse
/// cube-resident queries, half finest-level queries that must run on the
/// (faulty) GPU partitions. Generous deadlines — availability, not
/// shedding, is what this mode measures.
fn fault_workload(n: usize) -> Vec<EngineQuery> {
    (0..n)
        .map(|i| {
            let v = i as u32;
            if i % 2 == 0 {
                EngineQuery::new().range(0, 1, v % 3, 3).deadline(10.0)
            } else {
                EngineQuery::new()
                    .range(0, 3, v % 5, 5 + v % 5)
                    .deadline(10.0)
            }
        })
        .collect()
}

fn run_fault_matrix(queries: usize, rows: usize, seed: u64, out: &str) {
    let mix = fault_workload(queries);
    println!(
        "fault matrix: {queries} queries, {rows} rows, seed {seed} (faulty rows also kill partition 0)"
    );
    println!(
        "{:<10} {:>12} {:>9} {:>9} {:>9} {:>12} {:>11} {:>8}",
        "config",
        "availability",
        "p99(ms)",
        "rerouted",
        "retries",
        "quarantines",
        "part-fails",
        "failed"
    );
    let mut configs = Vec::new();
    for &(label, rate, dead) in &[
        ("baseline", 0.0, false),
        ("faults-1%", 0.01, true),
        ("faults-5%", 0.05, true),
    ] {
        let mut plan = FaultPlan::new(seed);
        if rate > 0.0 {
            plan = plan.with_failure_rate(rate, FaultKind::Error);
        }
        if dead {
            plan = plan.with_dead_partition(0);
        }
        let sys = build_with_faults(rows, AdmissionConfig::default(), Some(plan));
        let tickets = sys.submit_batch(mix.iter());
        let mut answered = 0u64;
        let mut errored = 0u64;
        for t in tickets {
            match t.and_then(|t| t.wait()) {
                Ok(_) => answered += 1,
                Err(_) => errored += 1,
            }
        }
        let s = sys.stats();
        let availability = 100.0 * answered as f64 / queries.max(1) as f64;
        println!(
            "{label:<10} {availability:>11.1}% {:>9.2} {:>9} {:>9} {:>12} {:>11} {:>8}",
            s.p99_latency_secs() * 1e3,
            s.rerouted,
            s.retries,
            s.quarantines,
            s.partition_failures,
            s.failed,
        );
        configs.push(serde_json::json!({
            "label": label,
            "failure_rate": rate,
            "dead_partition": if dead { Some(0) } else { None },
            "availability_pct": availability,
            "answered": answered,
            "errors": errored,
            "p99_latency_ms": s.p99_latency_secs() * 1e3,
            "p50_latency_ms": s.p50_latency_secs() * 1e3,
            "rerouted": s.rerouted,
            "retries": s.retries,
            "timeouts": s.timeouts,
            "partition_failures": s.partition_failures,
            "quarantines": s.quarantines,
            "readmissions": s.readmissions,
            "failed": s.failed,
        }));
    }
    let report = serde_json::json!({
        "benchmark": "fault_tolerance",
        "queries": queries,
        "rows": rows,
        "seed": seed,
        "configs": configs,
    });
    std::fs::write(out, serde_json::to_string_pretty(&report).unwrap() + "\n")
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries = parse_flag(&args, "--queries", 400);
    let rows = parse_flag(&args, "--rows", 30_000);
    if args.iter().any(|a| a == "--faults") {
        let seed = parse_flag(&args, "--seed", 5) as u64;
        let out = args
            .iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_faults.json".to_owned());
        run_fault_matrix(queries, rows, seed, &out);
        return;
    }
    let metrics = args.iter().any(|a| a == "--metrics");
    let mix = workload(queries);

    println!(
        "overload demo: {queries} queries (half feasible / half hopeless-deadline), {rows} rows"
    );
    println!(
        "{:<10} {:>9} {:>6} {:>9} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "config",
        "completed",
        "shed",
        "rejected",
        "hit-ratio",
        "p50(ms)",
        "p95(ms)",
        "p99(ms)",
        "peak-depth"
    );

    let baseline = build(rows, AdmissionConfig::default());
    run("baseline", &baseline, &mix, metrics);

    let shedding = build(
        rows,
        AdmissionConfig {
            shedding: SheddingPolicy::Shed,
            ..AdmissionConfig::default()
        },
    );
    run("shedding", &shedding, &mix, metrics);

    let rejecting = build(
        rows,
        AdmissionConfig {
            queue_capacity: 1,
            partition_queue_capacity: 1,
            backpressure: BackpressurePolicy::Reject,
            ..AdmissionConfig::default()
        },
    );
    run("reject", &rejecting, &mix, metrics);
}
