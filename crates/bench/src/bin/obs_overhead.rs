//! Observability overhead smoke: runs the same scan-heavy workload on two
//! identical systems — one with observability disabled, one with the full
//! metrics registry + flight recorder enabled — and fails if the enabled
//! run is more than `--max-pct` slower (default 5 %, overridable with the
//! `OBS_OVERHEAD_MAX_PCT` environment variable for noisy CI runners).
//!
//! ```text
//! obs_overhead [--queries N] [--rows N] [--rounds N] [--max-pct F] [--out PATH]
//! ```
//!
//! Each round interleaves the two modes (disabled, enabled, disabled, …)
//! so slow-start effects hit both equally, and the comparison uses the
//! best round per mode — the standard cure for scheduler noise in smoke
//! benches. Emits `BENCH_obs.json` with the timings, the verdict, and the
//! enabled system's full metrics snapshot as the artifact CI uploads.

use holap_core::{EngineQuery, HybridSystem, SystemConfig};
use holap_dict::DictKind;
use holap_obs::ObsConfig;
use holap_workload::{FactsSpec, NameStyle, PaperHierarchy, SyntheticFacts, TextLevel};
use std::time::Instant;

fn parse_flag(args: &[String], key: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn build(rows: usize, obs: ObsConfig) -> HybridSystem {
    let h = PaperHierarchy::scaled_down(8);
    let facts = SyntheticFacts::generate(&FactsSpec {
        schema: h.table_schema(),
        rows,
        text_levels: vec![TextLevel {
            dim: 1,
            level: 3,
            style: NameStyle::City,
        }],
        dict_kind: DictKind::Sorted,
        skew: None,
        seed: 7,
    });
    HybridSystem::builder(SystemConfig {
        obs,
        ..SystemConfig::default()
    })
    .facts(facts)
    .cube_at(1)
    .build()
    .expect("system builds")
}

/// Finest-level range queries: cube-free, so every one runs the
/// vectorized fact-table scan on a GPU partition.
fn workload(n: usize) -> Vec<EngineQuery> {
    (0..n)
        .map(|i| {
            let v = i as u32;
            EngineQuery::new()
                .range(0, 3, v % 40, v % 40 + 30)
                .deadline(10.0)
        })
        .collect()
}

/// Wall seconds to answer the whole batch.
fn time_batch(sys: &HybridSystem, queries: &[EngineQuery]) -> f64 {
    let started = Instant::now();
    for t in sys.submit_batch(queries.iter()) {
        t.expect("submit").wait().expect("outcome");
    }
    started.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries = parse_flag(&args, "--queries", 200);
    let rows = parse_flag(&args, "--rows", 30_000);
    let rounds = parse_flag(&args, "--rounds", 3).max(1);
    let max_pct: f64 = std::env::var("OBS_OVERHEAD_MAX_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            args.iter()
                .position(|a| a == "--max-pct")
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
                .unwrap_or(5.0)
        });
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_obs.json".to_owned());

    let mix = workload(queries);
    let disabled = build(rows, ObsConfig::disabled());
    let enabled = build(rows, ObsConfig::default());
    assert!(!disabled.obs_enabled() && enabled.obs_enabled());

    // Warm both systems (thread pools, caches) before timing anything.
    time_batch(&disabled, &mix[..queries.min(20)]);
    time_batch(&enabled, &mix[..queries.min(20)]);

    let mut best_disabled = f64::INFINITY;
    let mut best_enabled = f64::INFINITY;
    for round in 0..rounds {
        let d = time_batch(&disabled, &mix);
        let e = time_batch(&enabled, &mix);
        best_disabled = best_disabled.min(d);
        best_enabled = best_enabled.min(e);
        eprintln!(
            "round {round}: disabled {:.1} ms, enabled {:.1} ms",
            d * 1e3,
            e * 1e3
        );
    }

    let overhead_pct = 100.0 * (best_enabled - best_disabled) / best_disabled;
    let pass = overhead_pct <= max_pct;
    println!(
        "obs overhead: disabled {:.1} ms, enabled {:.1} ms → {overhead_pct:+.2}% (limit {max_pct}%) — {}",
        best_disabled * 1e3,
        best_enabled * 1e3,
        if pass { "PASS" } else { "FAIL" }
    );

    let metrics_text = enabled.metrics_text().unwrap_or_default();
    let report = serde_json::json!({
        "benchmark": "obs_overhead",
        "queries": queries,
        "rows": rows,
        "rounds": rounds,
        "best_disabled_secs": best_disabled,
        "best_enabled_secs": best_enabled,
        "overhead_pct": overhead_pct,
        "max_pct": max_pct,
        "pass": pass,
        "traces_recorded": enabled.recent_traces(usize::MAX).len(),
        "metrics": metrics_text,
    });
    std::fs::write(&out, serde_json::to_string_pretty(&report).unwrap() + "\n")
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");
    if !pass {
        std::process::exit(1);
    }
}
