//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro tables     # Tables 1–3 + the GPU translation experiment (simulated, fast)
//! repro figures    # Figures 3, 4, 5, 8, 9 (host measurements; pass --quick to shrink)
//! repro ablations  # scheduler-policy and dictionary-implementation ablations
//! repro all        # everything
//! ```

use holap_bench::{
    fig3_bandwidth_series, fig45_time_series, fig8_series, fig8_table, fig9_dictionary_series,
    fit_dict_model, print_rate_table, print_series, SeriesPoint,
};
use holap_dict::{DictKind, Dictionary, DictionarySet};
use holap_model::{CpuPerfModel, GpuModelSet};
use holap_sim::scenarios;
use holap_workload::{name_pool, NameStyle};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what = args.first().map(String::as_str).unwrap_or("all");
    match what {
        "tables" => tables(),
        "figures" => figures(quick),
        "ablations" => ablations(),
        "optimize" => optimize(),
        "all" => {
            tables();
            figures(quick);
            ablations();
            optimize();
        }
        other => {
            eprintln!(
                "unknown command `{other}`; use tables|figures|ablations|optimize|all [--quick]"
            );
            std::process::exit(2);
        }
    }
}

fn tables() {
    println!("== Simulated system-model evaluation (paper Section IV) ==");

    // Fig. 1 is a diagram (cube size vs resolution with the memory level M
    // and the equilibrium level G); its quantitative content is the cube
    // geometry, which we print for completeness.
    let h = holap_workload::PaperHierarchy::default();
    let schema = h.cube_schema();
    println!("\nFigure 1 — cube size per resolution (paper: ~4 KB / ~500 KB / ~500 MB / ~32 GB)");
    println!("{:-<78}", "");
    for r in 0..=schema.max_resolution() {
        let mb = schema.size_mb_at(r);
        let note = match r {
            2 => "  <- level M in Fig. 1: last cube that fits CPU memory comfortably",
            3 => "  <- level G: pre-calculation no longer pays off; GPU answers from raw rows",
            _ => "",
        };
        println!(
            "resolution {r}: shape {:?} = {:>12.3} MB{note}",
            schema.shape_at(r),
            mb
        );
    }
    print_rate_table(
        "Table 1 — CPU-only rate, cube set {~4 KB, ~500 KB, ~500 MB}",
        &scenarios::table1(),
    );
    print_rate_table(
        "Table 2 — CPU-only rate with the ~32 GB cube added",
        &scenarios::table2(),
    );
    print_rate_table(
        "Table 3 — full hybrid system (CPU + 6 GPU partitions + translation)",
        &scenarios::table3(),
    );
    print_rate_table(
        "§IV in-text — GPU-only, effect of text-to-integer translation",
        &scenarios::gpu_translation_effect(),
    );
}

fn figures(quick: bool) {
    println!(
        "\n== Host measurements (this machine; shapes, not the paper's Xeon/Fermi absolutes) =="
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} CPU(s)");
    if cores < 8 {
        println!(
            "NOTE: fewer than 8 CPUs — the multi-thread series below time-share\n\
             cores and cannot show the paper's thread scaling; the calibrated\n\
             models (Tables 1–3) carry that shape instead."
        );
    }
    let reps = if quick { 2 } else { 4 };

    // Fig. 3 — aggregation bandwidth vs cube size, 1/4/8 threads.
    let sizes: Vec<f64> = if quick {
        vec![1.0, 4.0, 16.0, 64.0]
    } else {
        vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0]
    };
    let series: Vec<(String, Vec<SeriesPoint>)> = [1usize, 4, 8]
        .iter()
        .map(|&t| {
            (
                format!("{t} thread(s)"),
                fig3_bandwidth_series(&sizes, t, reps),
            )
        })
        .collect();
    print_series(
        "Figure 3 — cube-processing memory bandwidth (paper: 1T ≈ 5 GB/s, 8T plateaus at 15–20 GB/s)",
        "size (MB)",
        "MB/s",
        &series,
    );

    // Fig. 4/5 — processing time vs sub-cube size + piecewise fits.
    for (threads, fig, paper) in [
        (
            4usize,
            "Figure 4",
            "f_A = 1.0e-4·x^0.9341, f_B = 5e-5·x + 0.0096",
        ),
        (8, "Figure 5", "f_A = 6e-5·x^0.984,  f_B = 4e-5·x + 0.0146"),
    ] {
        let pts = fig45_time_series(&sizes, threads, reps);
        print_series(
            &format!("{fig} — processing time, {threads} threads (paper fit: {paper})"),
            "size (MB)",
            "seconds",
            &[(format!("{threads} threads"), pts.clone())],
        );
        if pts.len() >= 4 {
            let xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
            let split = if xs.iter().any(|&x| x >= 64.0) {
                64.0
            } else {
                8.0
            };
            if xs.iter().filter(|&&x| x < split).count() >= 2
                && xs.iter().filter(|&&x| x >= split).count() >= 2
            {
                let fitted = CpuPerfModel::fit(&xs, &ys, split);
                let m = fitted.metrics(&xs, &ys);
                println!(
                    "  host fit: f_A = {:.3e}·x^{:.4}, f_B = {:.3e}·x + {:.3e} (split {split} MB, R² = {:.4})",
                    fitted.range_a.coeff,
                    fitted.range_a.exponent,
                    fitted.range_b.slope,
                    fitted.range_b.intercept,
                    m.r_squared
                );
            }
        }
    }

    // Fig. 8 — simulated-GPU scan time vs column fraction per partition size.
    let table_mb = if quick { 16.0 } else { 256.0 };
    let table = fig8_table(table_mb);
    let model = GpuModelSet::paper_c2070();
    let mut fig8: Vec<(String, Vec<SeriesPoint>)> = Vec::new();
    for sms in [1u32, 2, 4] {
        let measured = fig8_series(&table, sms, reps);
        let modeled: Vec<SeriesPoint> = measured
            .iter()
            .map(|p| SeriesPoint {
                x: p.x,
                y: model.estimate_secs(sms, p.x.min(1.0)),
            })
            .collect();
        fig8.push((format!("{sms} SM measured"), measured));
        fig8.push((format!("{sms} SM paper model"), modeled));
    }
    print_series(
        &format!(
            "Figure 8 — scan kernel time vs fraction of columns read ({} MB table; paper table: 4 GB)",
            table_mb
        ),
        "C / C_TOT",
        "seconds",
        &fig8,
    );

    // Fig. 9 — dictionary search time vs dictionary length.
    let lens: Vec<usize> = if quick {
        vec![10_000, 40_000, 160_000]
    } else {
        vec![10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000]
    };
    let pts = fig9_dictionary_series(&lens, reps.max(3));
    let fitted = fit_dict_model(&pts);
    print_series(
        "Figure 9 — linear-dictionary worst-case lookup time (paper: 0.0138 µs/entry)",
        "entries",
        "seconds",
        &[("linear dict".to_owned(), pts)],
    );
    println!(
        "  host fit: {:.4} ns/entry (paper: 13.8 ns/entry on one Xeon X5667 core)",
        fitted.secs_per_entry * 1e9
    );
}

fn optimize() {
    use holap_sim::optimize_layout;
    use holap_sim::SimConfig;
    println!("\n== GPU partition-layout search (the paper's \"optimized for the C2070\" claim) ==");
    let mut base = SimConfig::paper(holap_sched::Policy::Paper, 8, 1500);
    base.workers = 128;
    let h = holap_workload::PaperHierarchy::default();
    let ranking = optimize_layout(
        &base,
        &h,
        holap_workload::WorkloadPreset::Table3.mix(),
        6,
        77,
    );
    println!("{:<26} {:>10} {:>12}", "layout (SMs)", "Q/s", "deadline %");
    for c in ranking.iter().take(8) {
        println!(
            "{:<26} {:>10.1} {:>11.1}%",
            format!("{:?}", c.sms),
            c.qps,
            c.deadline_hit_ratio * 100.0
        );
    }
    let paper = ranking.iter().position(|c| c.sms == vec![1, 1, 2, 2, 4, 4]);
    match paper {
        Some(i) => println!(
            "\npaper's 1/1/2/2/4/4 ranks #{} of {} ({:.1} Q/s)",
            i + 1,
            ranking.len(),
            ranking[i].qps
        ),
        None => println!("\npaper's layout not in the ≤6-part search space?!"),
    }
}

fn ablations() {
    println!("\n== Ablations (not in the paper) ==");
    print_rate_table(
        "Scheduler policy ablation — full Table-3 scenario, 8-thread CPU",
        &scenarios::policy_ablation(),
    );

    // Dictionary-implementation ablation: the paper's future-work
    // "advanced translation mechanism", realised.
    println!("\nDictionary ablation — worst-case lookup over a 1 M-entry column");
    println!("{:-<78}", "");
    let names = name_pool(1_000_000, NameStyle::City, 9);
    for kind in [DictKind::Linear, DictKind::Sorted, DictKind::Hashed] {
        let mut set = DictionarySet::new(kind);
        set.build_column("city", names.iter().map(String::as_str));
        let dict = set.dictionary("city").unwrap();
        let needle = names.last().unwrap();
        let reps = if kind == DictKind::Linear { 5 } else { 10_000 };
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(dict.encode(needle));
        }
        let per = t0.elapsed().as_secs_f64() / reps as f64;
        println!(
            "{:<10}  probe bound {:>8}   measured lookup {:>12.3} µs",
            format!("{kind:?}"),
            dict.probe_bound(),
            per * 1e6
        );
    }
    println!(
        "\n(The sorted/hashed dictionaries are the paper's conclusion's planned\n\
         \"more sophisticated translation algorithm\": they cut the Eq. 17 cost\n\
         from linear to logarithmic/constant, shrinking the 7 % GPU-side\n\
         translation overhead to noise.)"
    );
}
