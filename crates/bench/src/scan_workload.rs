//! The shared workload behind the vectorized-scan benchmarks
//! (`benches/vectorized_scan.rs` and `src/bin/scan_bench.rs`): one fact
//! table and three queries chosen so each exercises a different part of
//! the engine.
//!
//! * a **clustered** dimension (`t.bucket`, monotone in row order) whose
//!   per-block zone maps are tight — a narrow range on it lets the
//!   vectorized scan skip nearly every block;
//! * a **scattered** dimension (`v.val`, pseudo-random) whose zone maps
//!   are useless — a wide range on it measures raw predicate + aggregate
//!   throughput with no skipping help;
//! * a **small-domain** key (`g.key`) that takes the dense slot-array
//!   group path.

use holap_table::{
    AggOp, AggSpec, ColumnId, FactTable, FactTableBuilder, GroupByQuery, Predicate, ScanQuery,
    TableSchema,
};

/// Default row count: a couple of thousand zone-map blocks.
pub const ROWS: usize = 2_000_000;

/// Cardinality of the clustered `t.bucket` column.
pub const BUCKETS: u32 = 64;

/// Cardinality of the scattered `v.val` column.
pub const VALS: u32 = 4096;

/// Cardinality of the `g.key` group column (dense group path).
pub const KEYS: u32 = 256;

/// Builds the benchmark fact table deterministically.
pub fn table(rows: usize) -> FactTable {
    let schema = TableSchema::builder()
        .dimension("t", &[("bucket", BUCKETS)])
        .dimension("v", &[("val", VALS)])
        .dimension("g", &[("key", KEYS)])
        .measure("m")
        .build();
    let mut b = FactTableBuilder::new(schema);
    let mut x = 0x9e3779b9u32;
    for i in 0..rows {
        // Clustered: bucket grows monotonically with the row index.
        let bucket = (i as u64 * u64::from(BUCKETS) / rows as u64) as u32;
        // Scattered: xorshift32.
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        b.push_row(
            &[bucket, x % VALS, (x >> 12) % KEYS],
            &[f64::from(x % 1000) * 0.25],
        )
        .unwrap();
    }
    b.finish()
}

/// The three benchmark queries.
pub struct ScanQueries {
    /// Unselective range on the scattered column (~50% of rows match).
    pub filtered: ScanQuery,
    /// Narrow range on the clustered column (~1/64 of rows, zone-skippable).
    pub selective: ScanQuery,
    /// Grouped SUM over the small-domain key, filtered like `filtered`.
    pub grouped: GroupByQuery,
}

/// Builds the three queries.
pub fn queries() -> ScanQueries {
    let filtered = ScanQuery::new()
        .filter(Predicate::range(ColumnId::dim(1, 0), 0, VALS / 2 - 1))
        .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
        .aggregate(AggSpec::count_star());
    let selective = ScanQuery::new()
        .filter(Predicate::range(ColumnId::dim(0, 0), 17, 17))
        .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
        .aggregate(AggSpec::count_star());
    let grouped = GroupByQuery::new(
        ScanQuery::new()
            .filter(Predicate::range(ColumnId::dim(1, 0), 0, VALS / 2 - 1))
            .aggregate(AggSpec::new(AggOp::Sum, Some(0))),
        vec![ColumnId::dim(2, 0)],
    );
    ScanQueries {
        filtered,
        selective,
        grouped,
    }
}
