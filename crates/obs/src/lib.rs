//! Observability substrate for the hybrid OLAP engine.
//!
//! Three pieces, shared by the engine, the simulator and the benches:
//!
//! * a [`MetricsRegistry`] of named, labeled instruments — atomic
//!   [`Counter`]s, [`Gauge`]s and geometric [`AtomicHistogram`]s — with
//!   Prometheus-style text exposition;
//! * structured [`QueryTrace`]s: timestamped [`SpanKind`] events covering
//!   a query's whole life (admission → translation → scheduling → kernel
//!   execution → completion) including the scheduling candidate set and
//!   the estimate-vs-actual residual;
//! * a bounded [`FlightRecorder`] keeping the last N completed traces
//!   plus all anomalous ones (faults, retries, timeouts, sheds,
//!   quarantines), dumpable as JSON.
//!
//! Everything is runtime-gated by [`ObsConfig`]: with `enabled = false`
//! the engine allocates no traces and touches no instruments.

#![warn(missing_docs)]

mod histogram;
mod recorder;
mod registry;
mod trace;

pub use histogram::{AtomicHistogram, Histogram, DEFAULT_BUCKETS, DEFAULT_MIN, DEFAULT_RATIO};
pub use recorder::{traces_to_json, FlightRecorder, RecorderDump};
pub use registry::{
    Counter, Gauge, HistogramHandle, MetricSample, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{Anomaly, QueryClass, QueryTrace, SpanEvent, SpanKind, TraceStatus};

use serde::{Deserialize, Serialize};

fn default_true() -> bool {
    true
}

fn default_recorder_capacity() -> usize {
    128
}

fn default_anomaly_capacity() -> usize {
    64
}

/// Runtime observability switches.
///
/// The default keeps tracing and metrics **on**: per-query overhead is a
/// handful of relaxed atomics and one small allocation, measured well
/// under the 5% budget (DESIGN.md §9). [`ObsConfig::disabled`] turns the
/// whole subsystem off for benchmark baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Master switch: when false, no traces are allocated and no
    /// instruments are updated.
    #[serde(default = "default_true")]
    pub enabled: bool,
    /// Completed traces the flight recorder retains.
    #[serde(default = "default_recorder_capacity")]
    pub recorder_capacity: usize,
    /// Anomalous traces retained beyond the recent ring.
    #[serde(default = "default_anomaly_capacity")]
    pub anomaly_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            recorder_capacity: default_recorder_capacity(),
            anomaly_capacity: default_anomaly_capacity(),
        }
    }
}

impl ObsConfig {
    /// Observability fully off (benchmark baseline).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_on_with_bounded_buffers() {
        let c = ObsConfig::default();
        assert!(c.enabled);
        assert!(c.recorder_capacity > 0);
        assert!(c.anomaly_capacity > 0);
        assert!(!ObsConfig::disabled().enabled);
    }

    #[test]
    fn config_deserializes_with_defaults() {
        let c: ObsConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(c, ObsConfig::default());
        let c: ObsConfig = serde_json::from_str(r#"{"enabled":false}"#).unwrap();
        assert!(!c.enabled);
        assert_eq!(c.recorder_capacity, 128);
    }
}
