//! Fixed-bucket geometric histograms — one plain/serializable flavour and
//! one atomic flavour for the metrics registry.
//!
//! Both share the same bucket geometry: bucket `i` counts observations in
//! `(upper(i-1), upper(i)]` where `upper(i) = min × ratio^i`. Quantile
//! queries return the upper bound of the bucket holding the requested
//! rank, so reported percentiles overestimate by at most one bucket
//! ratio — a bounded, documented error instead of an unbounded one.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of geometric buckets in the default (latency) scheme.
pub const DEFAULT_BUCKETS: usize = 64;
/// Upper bound of the first bucket in the default scheme, seconds.
pub const DEFAULT_MIN: f64 = 1e-6;
/// Geometric growth ratio of the default scheme. 64 buckets at 1.4×
/// cover 1 µs .. ~2400 s, wider than any plausible query latency.
pub const DEFAULT_RATIO: f64 = 1.4;

fn default_min() -> f64 {
    DEFAULT_MIN
}

fn default_ratio() -> f64 {
    DEFAULT_RATIO
}

fn bucket_of(value: f64, min: f64, ratio: f64, buckets: usize) -> usize {
    if value <= min {
        return 0;
    }
    let idx = ((value / min).ln() / ratio.ln()).ceil();
    (idx as usize).min(buckets - 1)
}

/// Plain (single-writer, serializable) geometric histogram.
///
/// The default scheme is the engine's latency scheme and is serde-
/// compatible with snapshots written by the old
/// `holap_core::LatencyHistogram` (the scheme fields default when
/// absent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    count: u64,
    buckets: Vec<u64>,
    #[serde(default = "default_min")]
    min: f64,
    #[serde(default = "default_ratio")]
    ratio: f64,
    #[serde(default)]
    sum: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::with_scheme(DEFAULT_MIN, DEFAULT_RATIO, DEFAULT_BUCKETS)
    }
}

impl Histogram {
    /// A histogram over `buckets` geometric buckets with first upper
    /// bound `min` and growth `ratio`.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive `min`, a `ratio` ≤ 1 or zero buckets.
    pub fn with_scheme(min: f64, ratio: f64, buckets: usize) -> Self {
        assert!(min > 0.0, "bucket minimum must be positive");
        assert!(ratio > 1.0, "bucket ratio must exceed 1");
        assert!(buckets > 0, "at least one bucket");
        Self {
            count: 0,
            buckets: vec![0; buckets],
            min,
            ratio,
            sum: 0.0,
        }
    }

    /// Records one observation (negative values clamp to 0).
    pub fn observe(&mut self, value: f64) {
        if self.min == DEFAULT_MIN
            && self.ratio == DEFAULT_RATIO
            && self.buckets.len() < DEFAULT_BUCKETS
        {
            // Deserialized from an older snapshot with fewer buckets.
            self.buckets.resize(DEFAULT_BUCKETS, 0);
        }
        let v = value.max(0.0);
        self.count += 1;
        self.sum += v;
        let i = bucket_of(v, self.min, self.ratio, self.buckets.len());
        self.buckets[i] += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of all observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of bucket `i`.
    pub fn bucket_upper(&self, i: usize) -> f64 {
        self.min * self.ratio.powi(i as i32)
    }

    /// Per-bucket counts (not cumulative).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// The value at quantile `q` in `[0, 1]` — the upper bound of the
    /// bucket containing the `⌈q·count⌉`-th smallest observation.
    /// Returns 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_upper(i);
            }
        }
        self.bucket_upper(self.buckets.len() - 1)
    }

    /// Alias of [`Histogram::quantile`] kept for the engine's historical
    /// latency-histogram API (all engine histograms are in seconds).
    pub fn quantile_secs(&self, q: f64) -> f64 {
        self.quantile(q)
    }

    /// Adds every observation of `other` into `self`. Both histograms
    /// must share a bucket scheme.
    ///
    /// # Panics
    ///
    /// Panics when the schemes differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.min == other.min
                && self.ratio == other.ratio
                && self.buckets.len() == other.buckets.len(),
            "cannot merge histograms with different bucket schemes"
        );
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// Lock-free geometric histogram for the metrics registry: every bucket
/// is a relaxed atomic, the sum is accumulated in integer micro-units so
/// `observe` is wait-free (two `fetch_add`s and one increment, no CAS
/// loops).
#[derive(Debug)]
pub struct AtomicHistogram {
    min: f64,
    ratio: f64,
    count: AtomicU64,
    /// Σ value × 1e6, rounded — exact enough for means and rate maths,
    /// immune to torn f64 read-modify-writes.
    sum_micros: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::with_scheme(DEFAULT_MIN, DEFAULT_RATIO, DEFAULT_BUCKETS)
    }
}

impl AtomicHistogram {
    /// An atomic histogram with the given scheme (see
    /// [`Histogram::with_scheme`]).
    pub fn with_scheme(min: f64, ratio: f64, buckets: usize) -> Self {
        assert!(min > 0.0, "bucket minimum must be positive");
        assert!(ratio > 1.0, "bucket ratio must exceed 1");
        assert!(buckets > 0, "at least one bucket");
        Self {
            min,
            ratio,
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            buckets: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one observation (negative values clamp to 0).
    pub fn observe(&self, value: f64) {
        let v = value.max(0.0);
        let i = bucket_of(v, self.min, self.ratio, self.buckets.len());
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.sum_micros
            .fetch_add((v * 1e6).round() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// A point-in-time plain copy (buckets are read relaxed, so a
    /// snapshot taken under concurrent writes may be off by in-flight
    /// observations — never torn within one bucket).
    pub fn snapshot(&self) -> Histogram {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        Histogram {
            count,
            buckets,
            min: self.min,
            ratio: self.ratio,
            sum: self.sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::default();
        for i in 1..=100u32 {
            h.observe(i as f64 * 1e-3); // 1 ms .. 100 ms
        }
        let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "quantiles are monotone");
        // Bucketed estimates overestimate by at most the ratio.
        assert!(p50 >= 0.050 && p50 <= 0.050 * DEFAULT_RATIO);
        assert!(p95 >= 0.095 && p95 <= 0.095 * DEFAULT_RATIO);
        assert!(p99 >= 0.099 && p99 <= 0.099 * DEFAULT_RATIO);
    }

    #[test]
    fn uniform_distribution_quantile_error_is_one_bucket() {
        // Known distribution: uniform over [0, 1]. Every quantile
        // estimate must land in [true, true × ratio].
        let mut h = Histogram::default();
        let n = 10_000;
        for i in 1..=n {
            h.observe(i as f64 / n as f64);
        }
        for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99] {
            let truth = q; // uniform: quantile(q) = q
            let est = h.quantile(q);
            assert!(
                est >= truth * 0.999 && est <= truth * DEFAULT_RATIO * 1.001,
                "q={q}: estimate {est} outside [{truth}, {}]",
                truth * DEFAULT_RATIO
            );
        }
    }

    #[test]
    fn geometric_distribution_quantile_error_is_one_bucket() {
        // Known heavy-tailed distribution: value = 1.1^k µs, k = 0..200.
        let mut h = Histogram::default();
        let values: Vec<f64> = (0..200).map(|k| 1e-6 * 1.1f64.powi(k)).collect();
        for &v in &values {
            h.observe(v);
        }
        for q in [0.50, 0.90, 0.99] {
            let rank = ((q * values.len() as f64).ceil() as usize).max(1) - 1;
            let truth = values[rank];
            let est = h.quantile(q);
            assert!(
                est >= truth * 0.999 && est <= truth * DEFAULT_RATIO * 1.001,
                "q={q}: estimate {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn point_mass_distribution_is_exact_to_one_bucket() {
        let mut h = Histogram::default();
        for _ in 0..1000 {
            h.observe(0.010);
        }
        for q in [0.01, 0.5, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!(est >= 0.010 && est <= 0.010 * DEFAULT_RATIO);
        }
    }

    #[test]
    fn extremes_clamp_to_end_buckets() {
        let mut h = Histogram::default();
        h.observe(0.0);
        h.observe(1e9);
        assert_eq!(h.count(), 2);
        assert!((h.quantile(0.0) - DEFAULT_MIN).abs() < 1e-18);
        assert_eq!(h.quantile(1.0), h.bucket_upper(DEFAULT_BUCKETS - 1));
    }

    #[test]
    fn sum_and_mean_track_observations() {
        let mut h = Histogram::default();
        h.observe(0.1);
        h.observe(0.3);
        assert!((h.sum() - 0.4).abs() < 1e-12);
        assert!((h.mean() - 0.2).abs() < 1e-12);
        assert_eq!(Histogram::default().mean(), 0.0);
    }

    #[test]
    fn custom_scheme_roundtrips_through_serde() {
        let mut h = Histogram::with_scheme(0.5, 2.0, 8);
        h.observe(3.0);
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn legacy_snapshot_without_scheme_fields_deserializes() {
        // The shape the old core LatencyHistogram serialized.
        let legacy = r#"{"count":2,"buckets":[1,1]}"#;
        let mut h: Histogram = serde_json::from_str(legacy).unwrap();
        assert_eq!(h.count(), 2);
        // Observing resizes the short bucket vector to the default.
        h.observe(1.0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket_counts().len(), DEFAULT_BUCKETS);
    }

    #[test]
    fn merge_accumulates_matching_schemes() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.observe(0.001);
        b.observe(0.002);
        b.observe(0.004);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.sum() - 0.007).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different bucket schemes")]
    fn merge_rejects_mismatched_schemes() {
        let mut a = Histogram::default();
        a.merge(&Histogram::with_scheme(0.5, 2.0, 8));
    }

    #[test]
    fn atomic_histogram_matches_plain_under_threads() {
        use std::sync::Arc;
        let h = Arc::new(AtomicHistogram::default());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u32 {
                        h.observe((t * 1000 + i) as f64 * 1e-6);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 4000);
        assert_eq!(h.count(), 4000);
        let mut plain = Histogram::default();
        for v in 0..4000u32 {
            plain.observe(v as f64 * 1e-6);
        }
        assert_eq!(snap.bucket_counts(), plain.bucket_counts());
        assert!((snap.sum() - plain.sum()).abs() < 1e-3);
    }
}
