//! The flight recorder: a bounded ring of the last N completed traces
//! plus a separate bounded buffer that retains anomalous traces under
//! eviction pressure.
//!
//! Writers never contend on a global lock: the ring cursor is a single
//! atomic `fetch_add`, and each slot has its own tiny mutex touched only
//! to swap the slot's `Arc` (contended only when two writers wrap onto
//! the same slot simultaneously). Anomalous traces additionally enter a
//! dedicated deque so a burst of healthy traffic cannot evict the
//! evidence of a fault storm.

use crate::trace::QueryTrace;
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Bounded recorder of completed [`QueryTrace`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Mutex<Option<Arc<QueryTrace>>>]>,
    cursor: AtomicUsize,
    anomalies: Mutex<VecDeque<Arc<QueryTrace>>>,
    anomaly_capacity: usize,
    recorded: AtomicU64,
    anomalies_evicted: AtomicU64,
}

/// Serializable dump of a recorder's contents (the CLI's JSON output).
#[derive(Debug, Serialize)]
pub struct RecorderDump<'a> {
    /// Traces recorded so far (lifetime total, not retained count).
    pub recorded: u64,
    /// Anomalous traces evicted from the anomaly buffer.
    pub anomalies_evicted: u64,
    /// Retained recent traces, oldest first.
    pub recent: Vec<&'a QueryTrace>,
    /// Retained anomalous traces, oldest first.
    pub anomalies: Vec<&'a QueryTrace>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` traces and up to
    /// `anomaly_capacity` anomalous ones (both floored at 1).
    pub fn new(capacity: usize, anomaly_capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            anomalies: Mutex::new(VecDeque::new()),
            anomaly_capacity: anomaly_capacity.max(1),
            recorded: AtomicU64::new(0),
            anomalies_evicted: AtomicU64::new(0),
        }
    }

    /// Records a completed trace.
    pub fn record(&self, trace: QueryTrace) {
        let trace = Arc::new(trace);
        if trace.is_anomalous() {
            let mut anomalies = self.anomalies.lock();
            if anomalies.len() == self.anomaly_capacity {
                anomalies.pop_front();
                self.anomalies_evicted.fetch_add(1, Ordering::Relaxed);
            }
            anomalies.push_back(Arc::clone(&trace));
        }
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[i].lock() = Some(trace);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Traces recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// The retained recent traces, oldest first.
    pub fn recent(&self) -> Vec<Arc<QueryTrace>> {
        let mut out: Vec<Arc<QueryTrace>> =
            self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        // Concurrent completion makes slot order approximate; the
        // submission timeline is the stable presentation order.
        out.sort_by(|a, b| {
            (a.finished_at, a.query_id)
                .partial_cmp(&(b.finished_at, b.query_id))
                .expect("trace times are comparable")
        });
        out
    }

    /// The last `n` retained recent traces, oldest first.
    pub fn last(&self, n: usize) -> Vec<Arc<QueryTrace>> {
        let all = self.recent();
        let skip = all.len().saturating_sub(n);
        all.into_iter().skip(skip).collect()
    }

    /// The retained anomalous traces, oldest first.
    pub fn anomalies(&self) -> Vec<Arc<QueryTrace>> {
        self.anomalies.lock().iter().cloned().collect()
    }

    /// Finds a trace by query id, searching the anomaly buffer first
    /// (it retains evidence longer than the ring).
    pub fn find(&self, query_id: u64) -> Option<Arc<QueryTrace>> {
        if let Some(t) = self
            .anomalies
            .lock()
            .iter()
            .find(|t| t.query_id == query_id)
        {
            return Some(Arc::clone(t));
        }
        self.slots.iter().find_map(|s| {
            s.lock()
                .as_ref()
                .filter(|t| t.query_id == query_id)
                .cloned()
        })
    }

    /// A JSON dump of the retained traces (see [`RecorderDump`]).
    pub fn dump_json(&self, pretty: bool) -> String {
        let recent = self.recent();
        let anomalies = self.anomalies();
        let dump = RecorderDump {
            recorded: self.recorded(),
            anomalies_evicted: self.anomalies_evicted.load(Ordering::Relaxed),
            recent: recent.iter().map(Arc::as_ref).collect(),
            anomalies: anomalies.iter().map(Arc::as_ref).collect(),
        };
        if pretty {
            serde_json::to_string_pretty(&dump).expect("traces serialize")
        } else {
            serde_json::to_string(&dump).expect("traces serialize")
        }
    }
}

/// Serializes an arbitrary trace selection (e.g. `last(5)`, anomalies
/// only) as a JSON array, for callers without their own JSON dependency.
pub fn traces_to_json(traces: &[Arc<QueryTrace>], pretty: bool) -> String {
    let refs: Vec<&QueryTrace> = traces.iter().map(Arc::as_ref).collect();
    if pretty {
        serde_json::to_string_pretty(&refs).expect("traces serialize")
    } else {
        serde_json::to_string(&refs).expect("traces serialize")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanKind, TraceStatus};

    fn clean(id: u64, at: f64) -> QueryTrace {
        let mut t = QueryTrace::new(id, at);
        t.finish(at + 0.1, TraceStatus::Completed);
        t
    }

    fn faulty(id: u64, at: f64) -> QueryTrace {
        let mut t = QueryTrace::new(id, at);
        t.push(
            at,
            SpanKind::Fault {
                partition: 0,
                attempt: 0,
                error: "injected".into(),
                timed_out: false,
            },
        );
        t.finish(at + 0.1, TraceStatus::Completed);
        t
    }

    #[test]
    fn ring_keeps_the_last_n() {
        let r = FlightRecorder::new(4, 4);
        for i in 0..10 {
            r.record(clean(i, i as f64));
        }
        let recent = r.recent();
        assert_eq!(recent.len(), 4);
        let ids: Vec<u64> = recent.iter().map(|t| t.query_id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn last_n_trims_from_the_front() {
        let r = FlightRecorder::new(8, 4);
        for i in 0..5 {
            r.record(clean(i, i as f64));
        }
        let ids: Vec<u64> = r.last(2).iter().map(|t| t.query_id).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn anomalies_survive_eviction_pressure() {
        let r = FlightRecorder::new(4, 8);
        r.record(faulty(0, 0.0));
        // 100 healthy traces wrap the ring many times over.
        for i in 1..=100 {
            r.record(clean(i, i as f64));
        }
        assert!(
            r.recent().iter().all(|t| t.query_id != 0),
            "evicted from the ring"
        );
        let anomalies = r.anomalies();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].query_id, 0);
        assert!(r.find(0).is_some(), "still findable by id");
    }

    #[test]
    fn anomaly_buffer_is_bounded_too() {
        let r = FlightRecorder::new(2, 3);
        for i in 0..5 {
            r.record(faulty(i, i as f64));
        }
        let ids: Vec<u64> = r.anomalies().iter().map(|t| t.query_id).collect();
        assert_eq!(ids, vec![2, 3, 4], "oldest anomalies evicted first");
    }

    #[test]
    fn dump_json_contains_both_sections() {
        let r = FlightRecorder::new(4, 4);
        r.record(clean(1, 0.0));
        r.record(faulty(2, 1.0));
        let json = r.dump_json(false);
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["recorded"], 2);
        assert_eq!(v["recent"].as_array().unwrap().len(), 2);
        assert_eq!(v["anomalies"].as_array().unwrap().len(), 1);
        assert_eq!(v["anomalies"][0]["query_id"], 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing_countable() {
        let r = Arc::new(FlightRecorder::new(64, 64));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        r.record(clean(t * 100 + i, i as f64));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.recorded(), 400);
        assert_eq!(r.recent().len(), 64, "ring stays full and bounded");
    }
}
