//! Structured per-query traces: timestamped span events from admission to
//! completion, with anomaly flags driving flight-recorder retention.

use holap_sched::{DecisionTrace, HealthState, Placement};
use serde::{Deserialize, Serialize};

/// Broad class of a query, used as a metric label and recorded on the
/// trace: whether a resident MOLAP cube could answer it (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum QueryClass {
    /// A resident cube can answer — the CPU processing partition is a
    /// placement candidate.
    Molap,
    /// Only a fact-table scan can answer — GPU partitions (or the CPU
    /// failover scan) must run it.
    Rolap,
}

impl QueryClass {
    /// The metric-label spelling.
    pub fn label(&self) -> &'static str {
        match self {
            QueryClass::Molap => "molap",
            QueryClass::Rolap => "rolap",
        }
    }
}

/// Why a trace is retained in the flight recorder's anomaly buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Anomaly {
    /// A kernel attempt failed.
    Fault,
    /// The query was retried after a transient failure.
    Retry,
    /// A watchdog expired waiting for a partition.
    Timeout,
    /// Deadline-aware admission control dropped the query.
    Shed,
    /// Backpressure or shedding rejected the query with an error.
    Rejected,
    /// A partition transitioned into quarantine while running it.
    Quarantine,
    /// The query failed over to the CPU after its partition misbehaved.
    Failover,
    /// The scheduler's first choice was overridden (quarantine re-route).
    Reroute,
    /// The query's ticket resolved to an error.
    Failed,
}

/// One timestamped event in a query's life. `at` is seconds since the
/// engine epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Seconds since the engine epoch.
    pub at: f64,
    /// What happened.
    #[serde(flatten)]
    pub kind: SpanKind,
}

/// The span taxonomy — every stage a query can pass through (see
/// DESIGN.md §9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum SpanKind {
    /// The query entered `submit()`.
    Submitted {
        /// MOLAP (cube-answerable) or ROLAP (scan-only).
        class: QueryClass,
        /// Whether text parameters require dictionary translation on a
        /// GPU placement.
        needs_translation: bool,
    },
    /// Answered from the result cache without scheduling.
    CacheHit,
    /// The predicate was provably empty; answered without scheduling.
    ProvablyEmpty,
    /// The dispatcher popped the query off the admission queue.
    Dispatched {
        /// Admission-queue depth observed after the pop.
        queue_depth: u64,
    },
    /// Deadline-aware admission control dropped the query.
    Shed {
        /// The scheduler's minimum predicted response time, seconds
        /// since epoch.
        min_response_at: f64,
        /// The absolute deadline it exceeded.
        deadline: f64,
    },
    /// The scheduler placed the query (Fig. 10).
    Scheduled {
        /// Chosen partition.
        placement: Placement,
        /// Whether the translation partition is involved.
        with_translation: bool,
        /// Estimated processing seconds charged to the chosen queue.
        estimated_proc_secs: f64,
        /// Absolute estimated response time.
        estimated_response_at: f64,
        /// Absolute deadline.
        deadline: f64,
        /// Whether the placement was predicted to meet the deadline.
        before_deadline: bool,
        /// Whether the policy's pick was overridden off a quarantined
        /// partition.
        rerouted: bool,
        /// The candidate set considered: per-partition response times and
        /// health states (Fig. 10 step 3 inputs).
        candidates: DecisionTrace,
    },
    /// The translation partition finished the text→integer lookups.
    TranslationDone {
        /// Wall seconds spent translating.
        secs: f64,
        /// Number of text parameters translated.
        lookups: u64,
    },
    /// A kernel attempt was launched on a GPU partition.
    KernelStart {
        /// GPU partition index.
        partition: usize,
        /// 0-based attempt number (0 = first try).
        attempt: u32,
    },
    /// A kernel attempt completed successfully.
    KernelEnd {
        /// GPU partition index.
        partition: usize,
        /// 0-based attempt number.
        attempt: u32,
        /// SMs the partition dedicates to the kernel (occupancy).
        sms: u32,
        /// The performance model's predicted kernel seconds.
        modeled_secs: f64,
        /// Measured wall seconds of the kernel.
        wall_secs: f64,
        /// Columns the scan touched.
        columns_accessed: u64,
    },
    /// The CPU partition answered (cube lookup or failover scan).
    CpuExec {
        /// Wall seconds of the CPU-side execution.
        secs: f64,
    },
    /// A kernel attempt failed.
    Fault {
        /// GPU partition index.
        partition: usize,
        /// 0-based attempt number.
        attempt: u32,
        /// The error, rendered.
        error: String,
        /// Whether the watchdog expired (vs. a reported failure).
        timed_out: bool,
    },
    /// The runner scheduled another attempt after a transient fault.
    Retry {
        /// 1-based retry number.
        retry: u32,
        /// Backoff slept before the attempt, seconds.
        backoff_secs: f64,
    },
    /// A partition's health state changed while running this query.
    HealthTransition {
        /// GPU partition index.
        partition: usize,
        /// Resulting state.
        state: HealthState,
    },
    /// The query failed over to the CPU scan path.
    Failover {
        /// The GPU partition it abandoned.
        from_partition: usize,
    },
    /// The query completed with an answer.
    Completed {
        /// Partition that produced the answer (differs from the
        /// scheduled placement after a failover).
        placement: Placement,
        /// End-to-end wall latency, seconds.
        latency_secs: f64,
        /// Whether the deadline was met.
        met_deadline: bool,
        /// The scheduler's estimated processing seconds.
        estimated_secs: f64,
        /// Measured processing seconds.
        actual_secs: f64,
        /// `actual − estimated`: the calibration residual fed back into
        /// the queue clocks (§III-G).
        residual_secs: f64,
    },
    /// The query's ticket resolved to an error.
    Failed {
        /// The error, rendered.
        error: String,
    },
}

/// Final status summary of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TraceStatus {
    /// Still in flight (only seen on traces not yet recorded).
    InFlight,
    /// Completed with an answer.
    Completed,
    /// Answered from the cache (or provably empty) without scheduling.
    Immediate,
    /// Dropped by load shedding.
    Shed,
    /// Rejected by backpressure or `SheddingPolicy::Reject`.
    Rejected,
    /// Resolved to an error.
    Failed,
}

/// One query's recorded life, from `submit()` to resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTrace {
    /// Ticket id assigned at submission.
    pub query_id: u64,
    /// Seconds since the engine epoch at submission.
    pub submitted_at: f64,
    /// Seconds since the engine epoch at resolution (0 while in flight).
    pub finished_at: f64,
    /// Final status.
    pub status: TraceStatus,
    /// Ordered span events.
    pub events: Vec<SpanEvent>,
    /// Why this trace is anomalous (empty for a clean run).
    pub anomalies: Vec<Anomaly>,
}

impl QueryTrace {
    /// A fresh trace for query `query_id` submitted at `at` (seconds
    /// since the engine epoch).
    pub fn new(query_id: u64, at: f64) -> Self {
        Self {
            query_id,
            submitted_at: at,
            finished_at: 0.0,
            status: TraceStatus::InFlight,
            events: Vec::with_capacity(8),
            anomalies: Vec::new(),
        }
    }

    /// Appends an event at `at` seconds since the engine epoch, flagging
    /// the anomalies it implies.
    pub fn push(&mut self, at: f64, kind: SpanKind) {
        match &kind {
            SpanKind::Fault { timed_out, .. } => {
                self.flag(Anomaly::Fault);
                if *timed_out {
                    self.flag(Anomaly::Timeout);
                }
            }
            SpanKind::Retry { .. } => self.flag(Anomaly::Retry),
            SpanKind::Shed { .. } => self.flag(Anomaly::Shed),
            SpanKind::HealthTransition { state, .. } => {
                if *state == HealthState::Quarantined {
                    self.flag(Anomaly::Quarantine);
                }
            }
            SpanKind::Failover { .. } => self.flag(Anomaly::Failover),
            SpanKind::Scheduled { rerouted, .. } => {
                if *rerouted {
                    self.flag(Anomaly::Reroute);
                }
            }
            SpanKind::Failed { .. } => self.flag(Anomaly::Failed),
            _ => {}
        }
        self.events.push(SpanEvent { at, kind });
    }

    /// Seals the trace with its final status at `at`.
    pub fn finish(&mut self, at: f64, status: TraceStatus) {
        self.finished_at = at;
        self.status = status;
        match status {
            TraceStatus::Rejected => self.flag(Anomaly::Rejected),
            TraceStatus::Shed => self.flag(Anomaly::Shed),
            TraceStatus::Failed => self.flag(Anomaly::Failed),
            _ => {}
        }
    }

    fn flag(&mut self, a: Anomaly) {
        if !self.anomalies.contains(&a) {
            self.anomalies.push(a);
        }
    }

    /// Whether the flight recorder must retain this trace beyond the
    /// recent-ring capacity.
    pub fn is_anomalous(&self) -> bool {
        !self.anomalies.is_empty()
    }

    /// Whether the trace carries anomaly `a`.
    pub fn has_anomaly(&self, a: Anomaly) -> bool {
        self.anomalies.contains(&a)
    }

    /// Seconds between submission and the dispatcher pop (`None` for
    /// queries answered before dispatch).
    pub fn admission_wait_secs(&self) -> Option<f64> {
        self.events.iter().find_map(|e| match e.kind {
            SpanKind::Dispatched { .. } => Some(e.at - self.submitted_at),
            _ => None,
        })
    }

    /// Number of retry events recorded.
    pub fn retry_count(&self) -> u32 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, SpanKind::Retry { .. }))
            .count() as u32
    }

    /// Number of fault events recorded.
    pub fn fault_count(&self) -> u32 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, SpanKind::Fault { .. }))
            .count() as u32
    }

    /// The partition that finally answered, from the `Completed` event.
    pub fn final_placement(&self) -> Option<Placement> {
        self.events.iter().rev().find_map(|e| match e.kind {
            SpanKind::Completed { placement, .. } => Some(placement),
            _ => None,
        })
    }

    /// The scheduler's placement decision event, if the query got that
    /// far.
    pub fn scheduled_event(&self) -> Option<&SpanEvent> {
        self.events
            .iter()
            .find(|e| matches!(e.kind, SpanKind::Scheduled { .. }))
    }

    /// The estimate-vs-actual residual from the `Completed` event.
    pub fn residual_secs(&self) -> Option<f64> {
        self.events.iter().rev().find_map(|e| match e.kind {
            SpanKind::Completed { residual_secs, .. } => Some(residual_secs),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_accumulate_in_order_with_anomaly_flags() {
        let mut t = QueryTrace::new(7, 1.0);
        t.push(
            1.0,
            SpanKind::Submitted {
                class: QueryClass::Rolap,
                needs_translation: true,
            },
        );
        t.push(1.1, SpanKind::Dispatched { queue_depth: 3 });
        t.push(
            1.2,
            SpanKind::Fault {
                partition: 2,
                attempt: 0,
                error: "injected".into(),
                timed_out: false,
            },
        );
        t.push(
            1.3,
            SpanKind::Retry {
                retry: 1,
                backoff_secs: 0.0005,
            },
        );
        t.finish(1.5, TraceStatus::Completed);
        assert_eq!(t.events.len(), 4);
        assert!(t.has_anomaly(Anomaly::Fault));
        assert!(t.has_anomaly(Anomaly::Retry));
        assert!(!t.has_anomaly(Anomaly::Timeout));
        assert_eq!(t.retry_count(), 1);
        assert_eq!(t.fault_count(), 1);
        assert!((t.admission_wait_secs().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn timeout_fault_flags_both_anomalies() {
        let mut t = QueryTrace::new(1, 0.0);
        t.push(
            0.1,
            SpanKind::Fault {
                partition: 0,
                attempt: 0,
                error: "watchdog".into(),
                timed_out: true,
            },
        );
        assert!(t.has_anomaly(Anomaly::Fault));
        assert!(t.has_anomaly(Anomaly::Timeout));
    }

    #[test]
    fn quarantine_transition_is_anomalous_but_degraded_is_not() {
        let mut t = QueryTrace::new(1, 0.0);
        t.push(
            0.1,
            SpanKind::HealthTransition {
                partition: 1,
                state: HealthState::Degraded,
            },
        );
        assert!(!t.is_anomalous());
        t.push(
            0.2,
            SpanKind::HealthTransition {
                partition: 1,
                state: HealthState::Quarantined,
            },
        );
        assert!(t.has_anomaly(Anomaly::Quarantine));
    }

    #[test]
    fn shed_status_marks_anomaly() {
        let mut t = QueryTrace::new(1, 0.0);
        t.finish(0.1, TraceStatus::Shed);
        assert!(t.has_anomaly(Anomaly::Shed));
        assert_eq!(t.status, TraceStatus::Shed);
    }

    #[test]
    fn duplicate_anomalies_collapse() {
        let mut t = QueryTrace::new(1, 0.0);
        for attempt in 0..3 {
            t.push(
                0.1,
                SpanKind::Fault {
                    partition: 0,
                    attempt,
                    error: "x".into(),
                    timed_out: false,
                },
            );
        }
        assert_eq!(t.fault_count(), 3);
        assert_eq!(t.anomalies, vec![Anomaly::Fault]);
    }

    #[test]
    fn final_placement_reads_the_completed_event() {
        let mut t = QueryTrace::new(1, 0.0);
        assert_eq!(t.final_placement(), None);
        t.push(
            0.5,
            SpanKind::Completed {
                placement: Placement::Cpu,
                latency_secs: 0.5,
                met_deadline: true,
                estimated_secs: 0.4,
                actual_secs: 0.45,
                residual_secs: 0.05,
            },
        );
        assert_eq!(t.final_placement(), Some(Placement::Cpu));
        assert!((t.residual_secs().unwrap() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn trace_roundtrips_through_json() {
        let mut t = QueryTrace::new(42, 0.25);
        t.push(
            0.25,
            SpanKind::Submitted {
                class: QueryClass::Molap,
                needs_translation: false,
            },
        );
        t.push(
            0.30,
            SpanKind::Completed {
                placement: Placement::Gpu { partition: 3 },
                latency_secs: 0.05,
                met_deadline: true,
                estimated_secs: 0.04,
                actual_secs: 0.05,
                residual_secs: 0.01,
            },
        );
        t.finish(0.30, TraceStatus::Completed);
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("\"event\":\"submitted\""), "tagged events");
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
