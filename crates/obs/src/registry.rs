//! The metrics registry: named, labeled instruments with Prometheus-style
//! text exposition.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a write lock
//! once per instrument; callers hold on to the returned handle and every
//! subsequent increment is a relaxed atomic operation — no lock, no
//! allocation, no formatting on the hot path. Instrument names follow
//! `holap_<subsystem>_<quantity>[_total]` with snake_case label keys
//! (see DESIGN.md §9 for the full naming scheme).

use crate::histogram::{AtomicHistogram, Histogram};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter handle. Cloning shares the
/// underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle holding one `f64` (stored as bits in an atomic so
/// writes are single stores). Cloning shares the underlying atomic.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    /// Correct for non-negative values, whose IEEE-754 bit patterns
    /// order like the values themselves.
    pub fn set_max(&self, v: f64) {
        self.0.fetch_max(v.max(0.0).to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram handle. Cloning shares the underlying buckets.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Arc<AtomicHistogram>);

impl HistogramHandle {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        self.0.observe(v);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count()
    }

    /// A point-in-time plain copy.
    pub fn snapshot(&self) -> Histogram {
        self.0.snapshot()
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

impl Instrument {
    fn type_name(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// Identity of one instrument: name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        Self {
            name: name.to_string(),
            labels,
        }
    }
}

/// One instrument's value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum MetricValue {
    /// A counter value.
    Counter {
        /// Current count.
        value: u64,
    },
    /// A gauge value.
    Gauge {
        /// Current value.
        value: f64,
    },
    /// A histogram value.
    Histogram {
        /// Point-in-time copy of the histogram.
        histogram: Histogram,
    },
}

/// One instrument in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Instrument name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value.
    #[serde(flatten)]
    pub value: MetricValue,
}

/// A point-in-time copy of every registered instrument, serializable as
/// a JSON artifact.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All samples sorted by name then labels.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// The sample with `name` and exactly `labels` (order-insensitive).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        let key = MetricKey::new(name, labels);
        self.samples
            .iter()
            .find(|s| s.name == key.name && s.labels == key.labels)
    }

    /// The counter value with `name`/`labels`, 0 when absent.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels).map(|s| &s.value) {
            Some(&MetricValue::Counter { value }) => value,
            _ => 0,
        }
    }

    /// The gauge value with `name`/`labels`, 0 when absent.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        match self.get(name, labels).map(|s| &s.value) {
            Some(&MetricValue::Gauge { value }) => value,
            _ => 0.0,
        }
    }
}

/// The registry proper. Cheap to share behind an `Arc`; all instrument
/// handles stay valid for the registry's lifetime.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<MetricKey, Instrument>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        pick: impl Fn(&Instrument) -> Option<T>,
        make: impl FnOnce() -> (Instrument, T),
    ) -> T {
        let key = MetricKey::new(name, labels);
        if let Some(existing) = self.metrics.read().get(&key) {
            return pick(existing).unwrap_or_else(|| {
                panic!(
                    "metric {name} already registered as a {}",
                    existing.type_name()
                )
            });
        }
        let mut metrics = self.metrics.write();
        if let Some(existing) = metrics.get(&key) {
            return pick(existing).unwrap_or_else(|| {
                panic!(
                    "metric {name} already registered as a {}",
                    existing.type_name()
                )
            });
        }
        let (instrument, handle) = make();
        metrics.insert(key, instrument);
        handle
    }

    /// Registers (or fetches) the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as another type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.get_or_insert(
            name,
            labels,
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Counter::default();
                (Instrument::Counter(c.clone()), c)
            },
        )
    }

    /// Registers (or fetches) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as another type.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.get_or_insert(
            name,
            labels,
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Gauge::default();
                (Instrument::Gauge(g.clone()), g)
            },
        )
    }

    /// Registers (or fetches) the histogram `name{labels}` with the
    /// default latency bucket scheme.
    ///
    /// # Panics
    ///
    /// Panics if the same name+labels was registered as another type.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        self.get_or_insert(
            name,
            labels,
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = HistogramHandle::default();
                (Instrument::Histogram(h.clone()), h)
            },
        )
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.read();
        let samples = metrics
            .iter()
            .map(|(key, instrument)| MetricSample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: match instrument {
                    Instrument::Counter(c) => MetricValue::Counter { value: c.get() },
                    Instrument::Gauge(g) => MetricValue::Gauge { value: g.get() },
                    Instrument::Histogram(h) => MetricValue::Histogram {
                        histogram: h.snapshot(),
                    },
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// Prometheus-style text exposition: `# TYPE` headers, one sample
    /// line per instrument, histograms expanded into cumulative
    /// `_bucket{le=…}` / `_sum` / `_count` series. Output is sorted by
    /// name then labels, so it is diff-stable.
    pub fn expose(&self) -> String {
        let metrics = self.metrics.read();
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for (key, instrument) in metrics.iter() {
            if last_name != Some(key.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", key.name, instrument.type_name());
                last_name = Some(key.name.as_str());
            }
            match instrument {
                Instrument::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        key.name,
                        format_labels(&key.labels, None),
                        c.get()
                    );
                }
                Instrument::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        key.name,
                        format_labels(&key.labels, None),
                        g.get()
                    );
                }
                Instrument::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (i, &c) in snap.bucket_counts().iter().enumerate() {
                        if c == 0 && i + 1 != snap.bucket_counts().len() {
                            continue; // keep the exposition compact
                        }
                        cumulative += c;
                        let le = if i + 1 == snap.bucket_counts().len() {
                            "+Inf".to_string()
                        } else {
                            format!("{:.9}", snap.bucket_upper(i))
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            key.name,
                            format_labels(&key.labels, Some(&le)),
                            cumulative
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        key.name,
                        format_labels(&key.labels, None),
                        snap.sum()
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        key.name,
                        format_labels(&key.labels, None),
                        snap.count()
                    );
                }
            }
        }
        out
    }
}

fn format_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handle_survives_reregistration() {
        let r = MetricsRegistry::new();
        let a = r.counter("holap_queries_total", &[("placement", "cpu")]);
        a.inc();
        let b = r.counter("holap_queries_total", &[("placement", "cpu")]);
        b.add(2);
        assert_eq!(a.get(), 3, "both handles share the atomic");
    }

    #[test]
    fn label_order_does_not_split_instruments() {
        let r = MetricsRegistry::new();
        let a = r.counter("m", &[("a", "1"), ("b", "2")]);
        let b = r.counter("m", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.snapshot().samples.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_conflict_panics() {
        let r = MetricsRegistry::new();
        r.counter("m", &[]);
        r.gauge("m", &[]);
    }

    #[test]
    fn gauge_set_max_is_a_high_water_mark() {
        let g = Gauge::default();
        g.set_max(3.0);
        g.set_max(1.0);
        assert_eq!(g.get(), 3.0);
        g.set(0.5);
        assert_eq!(g.get(), 0.5);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let r = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("holap_hits_total", &[]);
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(r.counter("holap_hits_total", &[]).get(), 80_000);
    }

    #[test]
    fn exposition_is_sorted_and_typed() {
        let r = MetricsRegistry::new();
        r.counter("holap_b_total", &[("partition", "1")]).add(2);
        r.counter("holap_b_total", &[("partition", "0")]).add(1);
        r.gauge("holap_a_depth", &[]).set(4.0);
        let text = r.expose();
        let a = text.find("# TYPE holap_a_depth gauge").unwrap();
        let b = text.find("# TYPE holap_b_total counter").unwrap();
        assert!(a < b, "sorted by name");
        let p0 = text.find("holap_b_total{partition=\"0\"} 1").unwrap();
        let p1 = text.find("holap_b_total{partition=\"1\"} 2").unwrap();
        assert!(p0 < p1, "sorted by labels");
        assert!(text.contains("holap_a_depth 4"));
        // One TYPE header per name, not per labelled series.
        assert_eq!(text.matches("# TYPE holap_b_total").count(), 1);
    }

    #[test]
    fn histogram_exposition_is_cumulative() {
        let r = MetricsRegistry::new();
        let h = r.histogram("holap_latency_seconds", &[]);
        h.observe(0.5e-6); // bucket 0
        h.observe(0.5e-6);
        h.observe(1e3); // clamps into the last bucket
        let text = r.expose();
        assert!(text.contains("# TYPE holap_latency_seconds histogram"));
        assert!(text.contains("holap_latency_seconds_bucket{le=\"0.000001000\"} 2"));
        assert!(text.contains("holap_latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("holap_latency_seconds_count 3"));
    }

    #[test]
    fn label_values_are_escaped() {
        let r = MetricsRegistry::new();
        r.counter("m", &[("q", "say \"hi\"\n")]).inc();
        assert!(r.expose().contains("m{q=\"say \\\"hi\\\"\\n\"} 1"));
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let r = MetricsRegistry::new();
        r.counter("c", &[("x", "1")]).add(7);
        r.gauge("g", &[]).set(1.5);
        r.histogram("h", &[]).observe(0.01);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c", &[("x", "1")]), 7);
        assert_eq!(snap.counter("c", &[("x", "2")]), 0);
        assert_eq!(snap.gauge("g", &[]), 1.5);
        match &snap.get("h", &[]).unwrap().value {
            MetricValue::Histogram { histogram } => assert_eq!(histogram.count(), 1),
            other => panic!("expected histogram, got {other:?}"),
        }
        // Snapshots roundtrip through JSON for the CI artifact.
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
