//! Simulation output metrics.

use holap_sched::SchedStats;
use serde::{Deserialize, Serialize};

/// Everything one simulation run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Queries completed.
    pub queries: u64,
    /// Virtual time from first submission to last completion, seconds.
    pub makespan_secs: f64,
    /// Saturation throughput, queries per second.
    pub throughput_qps: f64,
    /// Queries whose response met their deadline.
    pub met_deadline: u64,
    /// Queries that missed their deadline.
    pub missed_deadline: u64,
    /// Mean response latency (completion − submission), seconds.
    pub mean_latency_secs: f64,
    /// Maximum response latency, seconds.
    pub max_latency_secs: f64,
    /// Scheduler counters (placements, translations, feasibility).
    pub sched: SchedStats,
    /// Completed queries per GPU partition, in layout order.
    pub per_gpu_partition: Vec<u64>,
}

impl SimReport {
    /// Fraction of queries that met their deadline.
    pub fn deadline_hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            return 1.0;
        }
        self.met_deadline as f64 / self.queries as f64
    }

    /// Fraction of queries answered by the CPU partition.
    pub fn cpu_share(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.sched.cpu_queries as f64 / self.queries as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let r = SimReport {
            queries: 10,
            makespan_secs: 1.0,
            throughput_qps: 10.0,
            met_deadline: 7,
            missed_deadline: 3,
            mean_latency_secs: 0.1,
            max_latency_secs: 0.5,
            sched: SchedStats {
                cpu_queries: 4,
                gpu_queries: 6,
                ..Default::default()
            },
            per_gpu_partition: vec![1; 6],
        };
        assert!((r.deadline_hit_ratio() - 0.7).abs() < 1e-12);
        assert!((r.cpu_share() - 0.4).abs() < 1e-12);
    }
}
