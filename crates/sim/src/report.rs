//! Simulation output metrics.

use holap_sched::SchedStats;
use serde::{Deserialize, Serialize};

/// Everything one simulation run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Queries completed.
    pub queries: u64,
    /// Virtual time from first submission to last completion, seconds.
    pub makespan_secs: f64,
    /// Saturation throughput, queries per second.
    pub throughput_qps: f64,
    /// Queries whose response met their deadline.
    pub met_deadline: u64,
    /// Queries that missed their deadline.
    pub missed_deadline: u64,
    /// Mean response latency (completion − submission), seconds.
    pub mean_latency_secs: f64,
    /// Maximum response latency, seconds.
    pub max_latency_secs: f64,
    /// Scheduler counters (placements, translations, feasibility).
    pub sched: SchedStats,
    /// Completed queries per GPU partition, in layout order.
    pub per_gpu_partition: Vec<u64>,
}

impl SimReport {
    /// Fraction of queries that met their deadline.
    pub fn deadline_hit_ratio(&self) -> f64 {
        if self.queries == 0 {
            return 1.0;
        }
        self.met_deadline as f64 / self.queries as f64
    }

    /// Fraction of queries answered by the CPU partition.
    pub fn cpu_share(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.sched.cpu_queries as f64 / self.queries as f64
    }

    /// Publishes the report into a metrics registry under the
    /// `holap_sim_*` namespace, so simulator runs expose the same
    /// Prometheus-style text as the live engine.
    pub fn export_metrics(&self, registry: &holap_obs::MetricsRegistry) {
        registry
            .counter("holap_sim_queries_total", &[])
            .add(self.queries);
        registry
            .counter("holap_sim_deadline_met_total", &[])
            .add(self.met_deadline);
        registry
            .counter("holap_sim_deadline_missed_total", &[])
            .add(self.missed_deadline);
        registry
            .counter("holap_sim_cpu_queries_total", &[])
            .add(self.sched.cpu_queries);
        registry
            .counter("holap_sim_gpu_queries_total", &[])
            .add(self.sched.gpu_queries);
        registry
            .counter("holap_sim_translated_total", &[])
            .add(self.sched.translated_queries);
        registry
            .gauge("holap_sim_makespan_seconds", &[])
            .set(self.makespan_secs);
        registry
            .gauge("holap_sim_throughput_qps", &[])
            .set(self.throughput_qps);
        registry
            .gauge("holap_sim_mean_latency_seconds", &[])
            .set(self.mean_latency_secs);
        registry
            .gauge("holap_sim_max_latency_seconds", &[])
            .set(self.max_latency_secs);
        for (i, &n) in self.per_gpu_partition.iter().enumerate() {
            registry
                .counter(
                    "holap_sim_partition_queries_total",
                    &[("partition", &i.to_string())],
                )
                .add(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let r = SimReport {
            queries: 10,
            makespan_secs: 1.0,
            throughput_qps: 10.0,
            met_deadline: 7,
            missed_deadline: 3,
            mean_latency_secs: 0.1,
            max_latency_secs: 0.5,
            sched: SchedStats {
                cpu_queries: 4,
                gpu_queries: 6,
                ..Default::default()
            },
            per_gpu_partition: vec![1; 6],
        };
        assert!((r.deadline_hit_ratio() - 0.7).abs() < 1e-12);
        assert!((r.cpu_share() - 0.4).abs() < 1e-12);

        let registry = holap_obs::MetricsRegistry::new();
        r.export_metrics(&registry);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("holap_sim_queries_total", &[]), 10);
        assert_eq!(snap.counter("holap_sim_deadline_met_total", &[]), 7);
        assert_eq!(snap.counter("holap_sim_gpu_queries_total", &[]), 6);
        assert_eq!(
            snap.counter("holap_sim_partition_queries_total", &[("partition", "0")]),
            1
        );
        assert!((snap.gauge("holap_sim_throughput_qps", &[]) - 10.0).abs() < 1e-12);
    }
}
