//! Ready-made runs for every table of the paper's Section IV (plus the
//! in-text GPU translation-overhead experiment and the scheduler-policy
//! ablation). The `repro` binary in `holap-bench` prints these.

use crate::report::SimReport;
use crate::runner::{run_closed_loop, SimConfig};
use holap_sched::Policy;
use holap_workload::{PaperHierarchy, QueryGenerator, QueryMix, WorkloadPreset};
use serde::{Deserialize, Serialize};

/// Queries per scenario run — large enough that the closed-loop rate has
/// converged.
const RUN_QUERIES: usize = 4000;

/// One labelled measured rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateRow {
    /// Configuration label (e.g. "sequential", "4 threads").
    pub label: String,
    /// Measured saturation throughput, queries/second.
    pub qps: f64,
    /// The value the paper reports for this cell, if any.
    pub paper_qps: Option<f64>,
    /// The full report behind the rate.
    pub report: SimReport,
}

fn generator(preset: WorkloadPreset, seed: u64) -> QueryGenerator {
    QueryGenerator::preset(preset, &PaperHierarchy::default(), seed)
}

fn cpu_only_run(preset: WorkloadPreset, threads: u32, seed: u64) -> SimReport {
    let mut cfg = SimConfig::paper(Policy::CpuOnly, threads, RUN_QUERIES);
    cfg.workers = 2; // a single CPU queue: small population suffices
    run_closed_loop(&cfg, &mut generator(preset, seed))
}

/// **Table 1** — CPU-only processing rate over the {~4 KB, ~500 KB,
/// ~500 MB} cube set, for the sequential baseline and 4/8 threads.
pub fn table1() -> Vec<RateRow> {
    let cells = [
        (1u32, "sequential", 12.0),
        (4, "4 threads", 87.0),
        (8, "8 threads", 110.0),
    ];
    cells
        .iter()
        .map(|&(threads, label, paper)| {
            let report = cpu_only_run(WorkloadPreset::Table1, threads, 101);
            RateRow {
                label: label.to_owned(),
                qps: report.throughput_qps,
                paper_qps: Some(paper),
                report,
            }
        })
        .collect()
}

/// **Table 2** — CPU-only rate once the ~32 GB cube joins the set
/// (4 and 8 threads; the paper does not report a sequential cell).
pub fn table2() -> Vec<RateRow> {
    let cells = [(4u32, "4 threads", 9.0), (8, "8 threads", 11.0)];
    cells
        .iter()
        .map(|&(threads, label, paper)| {
            let report = cpu_only_run(WorkloadPreset::Table2, threads, 102);
            RateRow {
                label: label.to_owned(),
                qps: report.throughput_qps,
                paper_qps: Some(paper),
                report,
            }
        })
        .collect()
}

/// **Table 3** — the whole hybrid system (paper scheduler, all partitions)
/// with the sequential / 4-thread / 8-thread CPU partition.
pub fn table3() -> Vec<RateRow> {
    let cells = [
        (1u32, "sequential", 102.0),
        (4, "4 threads", 206.0),
        (8, "8 threads", 228.0),
    ];
    cells
        .iter()
        .map(|&(threads, label, paper)| {
            let mut cfg = SimConfig::paper(Policy::Paper, threads, RUN_QUERIES);
            // Saturation measurement: a large closed-loop population builds
            // enough backlog that the slowest-feasible-first rule spills
            // past the 1-SM queues and every partition is kept busy.
            cfg.workers = 128;
            let report = run_closed_loop(&cfg, &mut generator(WorkloadPreset::Table3, 103));
            RateRow {
                label: label.to_owned(),
                qps: report.throughput_qps,
                paper_qps: Some(paper),
                report,
            }
        })
        .collect()
}

/// **§IV in-text** — GPU-only processing with and without text-to-integer
/// translation (paper: 69 → 64 Q/s, a ≈7 % slowdown).
pub fn gpu_translation_effect() -> Vec<RateRow> {
    let h = PaperHierarchy::default();
    // Same query stream; the "without translation" variant strips the text
    // parameters (the original system simply could not handle them).
    let with_text = WorkloadPreset::Table3.mix();
    let without_text = QueryMix {
        classes: with_text
            .classes
            .iter()
            .cloned()
            .map(|mut c| {
                c.text_prob = 0.0;
                c.dict_len = 0;
                c
            })
            .collect(),
        ..with_text.clone()
    };
    let run = |mix: QueryMix, label: &str, paper: f64| {
        let mut cfg = SimConfig::paper(Policy::GpuOnly, 8, RUN_QUERIES);
        // Interactive (shallow-queue) operation: one query in flight per
        // GPU partition. Translation then sits on the critical path of
        // every translated query — the regime in which the paper observed
        // its ≈7 % slowdown. Under deep backlog the same translation work
        // is hidden behind queueing and the effect vanishes.
        cfg.workers = cfg.layout.gpu_partitions();
        let mut g = QueryGenerator::new(
            h.catalog(WorkloadPreset::Table3.resolutions()),
            h.total_columns(),
            mix,
            104,
        );
        let report = run_closed_loop(&cfg, &mut g);
        RateRow {
            label: label.to_owned(),
            qps: report.throughput_qps,
            paper_qps: Some(paper),
            report,
        }
    };
    vec![
        run(without_text, "GPU only, no translation", 69.0),
        run(with_text, "GPU only, with translation", 64.0),
    ]
}

/// **Ablation** — every scheduling policy on the full Table-3 scenario
/// (8-thread CPU partition). Not in the paper; quantifies what the
/// Figure-10 algorithm buys over the related-work heuristics it cites.
pub fn policy_ablation() -> Vec<RateRow> {
    Policy::ALL
        .iter()
        .map(|&policy| {
            let mut cfg = SimConfig::paper(policy, 8, RUN_QUERIES);
            cfg.workers = 128; // saturation, as in table3()
            let report = run_closed_loop(&cfg, &mut generator(WorkloadPreset::Table3, 105));
            RateRow {
                label: policy.name().to_owned(),
                qps: report.throughput_qps,
                paper_qps: None,
                report,
            }
        })
        .collect()
}

/// **Degradation** — the full hybrid Table-3 system with 0, 1 and 2 GPU
/// partitions permanently failed (quarantined from t = 0). Not in the
/// paper; quantifies the throughput the quarantine ladder preserves by
/// routing around dead partitions instead of queueing on them.
pub fn partition_failure_effect() -> Vec<RateRow> {
    let cases: [(&str, &[usize]); 3] = [
        ("all partitions healthy", &[]),
        ("one GPU partition failed", &[0]),
        ("two GPU partitions failed", &[0, 1]),
    ];
    cases
        .iter()
        .map(|&(label, failed)| {
            let mut cfg = SimConfig::paper(Policy::Paper, 8, RUN_QUERIES);
            cfg.workers = 128; // saturation, as in table3()
            cfg.failed_partitions = failed.to_vec();
            let report = run_closed_loop(&cfg, &mut generator(WorkloadPreset::Table3, 106));
            RateRow {
                label: label.to_owned(),
                qps: report.throughput_qps,
                paper_qps: None,
                report,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let rows = table1();
        assert_eq!(rows.len(), 3);
        let (seq, t4, t8) = (rows[0].qps, rows[1].qps, rows[2].qps);
        assert!(seq < t4 && t4 < t8, "{seq} {t4} {t8}");
        // Paper speed-ups: 4T ≈ 7.3×, 8T ≈ 9.2× over sequential. Allow a
        // generous band — the shape, not the third digit, must transfer.
        assert!(t4 / seq > 4.0 && t4 / seq < 16.0, "4T/seq = {}", t4 / seq);
        assert!(t8 / t4 > 1.05 && t8 / t4 < 2.0, "8T/4T = {}", t8 / t4);
    }

    #[test]
    fn table2_big_cube_slows_cpu_to_single_digits() {
        let rows = table2();
        for r in &rows {
            assert!(r.qps < 25.0, "{}: {}", r.label, r.qps);
            assert!(r.qps > 3.0, "{}: {}", r.label, r.qps);
        }
        assert!(rows[0].qps < rows[1].qps, "8T beats 4T");
    }

    #[test]
    fn table3_hybrid_beats_its_parts() {
        let hybrid = table3();
        let t1 = table1();
        let gpu = gpu_translation_effect();
        // 8T hybrid > 8T CPU alone and > GPU alone.
        assert!(
            hybrid[2].qps > t1[2].qps,
            "{} vs {}",
            hybrid[2].qps,
            t1[2].qps
        );
        assert!(
            hybrid[2].qps > gpu[1].qps,
            "{} vs {}",
            hybrid[2].qps,
            gpu[1].qps
        );
        // Parallelising the CPU partition lifts the hybrid total ≈2×
        // (paper: 102 → 228, i.e. 2.24×).
        let lift = hybrid[2].qps / hybrid[0].qps;
        assert!(lift > 1.3, "lift = {lift}");
    }

    #[test]
    fn translation_costs_single_digit_percent() {
        let rows = gpu_translation_effect();
        let (without, with) = (rows[0].qps, rows[1].qps);
        let slowdown = 1.0 - with / without;
        assert!(
            slowdown > 0.01 && slowdown < 0.20,
            "translation slowdown = {slowdown} ({without} → {with})"
        );
    }

    #[test]
    fn failed_partitions_degrade_but_never_stall() {
        let rows = partition_failure_effect();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            // Every run still completes the whole workload — no query ever
            // waits on a quarantined partition.
            assert_eq!(r.report.queries, RUN_QUERIES as u64, "{}", r.label);
        }
        // Quarantined partitions receive zero work.
        assert_eq!(rows[1].report.per_gpu_partition[0], 0);
        assert_eq!(rows[2].report.per_gpu_partition[0], 0);
        assert_eq!(rows[2].report.per_gpu_partition[1], 0);
        assert!(
            rows[0].report.per_gpu_partition[0] > 0,
            "healthy baseline uses partition 0"
        );
        // Losing capacity costs throughput, but gracefully: two partitions
        // down must still retain most of the healthy rate.
        let (healthy, one, two) = (rows[0].qps, rows[1].qps, rows[2].qps);
        assert!(one <= healthy, "{one} vs {healthy}");
        assert!(two <= one, "{two} vs {one}");
        assert!(
            two > healthy * 0.4,
            "two-failure rate collapsed: {two} vs {healthy}"
        );
    }

    #[test]
    fn paper_policy_is_competitive_in_ablation() {
        let rows = policy_ablation();
        let paper = rows.iter().find(|r| r.label == "paper").unwrap().qps;
        let met = rows.iter().find(|r| r.label == "met").unwrap().qps;
        let cpu_only = rows.iter().find(|r| r.label == "cpu-only").unwrap().qps;
        // The deadline-aware policy must beat the load-blind MET heuristic
        // and single-resource scheduling on the hybrid workload.
        assert!(paper > met, "paper {paper} vs met {met}");
        assert!(paper > cpu_only, "paper {paper} vs cpu-only {cpu_only}");
    }
}
