//! GPU partition-layout optimisation.
//!
//! The paper states its 6-queue split "has been optimized for the Tesla
//! C2070 GPU with its 14 SM units" (§III-G) without showing the search.
//! This module performs that search: enumerate the integer partitions of
//! the device's SMs (optionally capped in part count, since each partition
//! needs a host-side queue and a model), evaluate each candidate layout on
//! a closed-loop simulation of a target workload, and return the ranking.

use crate::report::SimReport;
use crate::runner::{run_closed_loop, SimConfig};
use holap_sched::PartitionLayout;
use holap_workload::{PaperHierarchy, QueryGenerator, QueryMix};
use serde::{Deserialize, Serialize};

/// One evaluated candidate layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutCandidate {
    /// SM count per GPU partition, ascending (the scheduler's
    /// slowest-first queue order).
    pub sms: Vec<u32>,
    /// Saturation throughput on the target workload, queries/second.
    pub qps: f64,
    /// Deadline hit ratio observed during the evaluation run.
    pub deadline_hit_ratio: f64,
    /// Full report of the evaluation run.
    pub report: SimReport,
}

/// Enumerates the integer partitions of `total` with at most `max_parts`
/// parts and parts no smaller than `min_part`, each sorted ascending.
pub fn integer_partitions(total: u32, max_parts: usize, min_part: u32) -> Vec<Vec<u32>> {
    assert!(total > 0 && max_parts > 0 && min_part > 0);
    let mut out = Vec::new();
    let mut current = Vec::new();
    // Non-decreasing parts to avoid permutations.
    fn rec(
        remaining: u32,
        min_next: u32,
        max_parts: usize,
        current: &mut Vec<u32>,
        out: &mut Vec<Vec<u32>>,
    ) {
        if remaining == 0 {
            out.push(current.clone());
            return;
        }
        if current.len() == max_parts {
            return;
        }
        let mut part = min_next;
        while part <= remaining {
            current.push(part);
            rec(remaining - part, part, max_parts, current, out);
            current.pop();
            part += 1;
        }
    }
    rec(total, min_part, max_parts, &mut current, &mut out);
    out
}

/// Searches all layouts of the configured device for the one with the
/// highest saturation throughput on `mix`, holding everything else in
/// `base` fixed. Returns candidates sorted best-first.
///
/// `max_parts` bounds the queue count (the paper uses 6); the search cost
/// is the number of integer partitions (`p(14) = 135` unbounded, far less
/// when capped), each costing one closed-loop run.
pub fn optimize_layout(
    base: &SimConfig,
    hierarchy: &PaperHierarchy,
    mix: QueryMix,
    max_parts: usize,
    seed: u64,
) -> Vec<LayoutCandidate> {
    let total_sms: u32 = base.layout.gpu_partition_sms.iter().sum();
    let mut candidates = Vec::new();
    for sms in integer_partitions(total_sms, max_parts, 1) {
        let mut cfg = base.clone();
        cfg.layout = PartitionLayout::new(
            sms.clone(),
            base.layout.cpu_threads,
            base.layout.translation_threads,
        );
        let mut generator = QueryGenerator::new(
            hierarchy.catalog(&[0, 1, 2, 3]),
            hierarchy.total_columns(),
            mix.clone(),
            seed,
        );
        let report = run_closed_loop(&cfg, &mut generator);
        candidates.push(LayoutCandidate {
            sms,
            qps: report.throughput_qps,
            deadline_hit_ratio: report.deadline_hit_ratio(),
            report,
        });
    }
    candidates.sort_by(|a, b| b.qps.total_cmp(&a.qps));
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use holap_sched::Policy;
    use holap_workload::WorkloadPreset;

    #[test]
    fn partitions_of_small_numbers() {
        assert_eq!(
            integer_partitions(3, 3, 1),
            vec![vec![1, 1, 1], vec![1, 2], vec![3],]
        );
        assert_eq!(
            integer_partitions(4, 2, 1),
            vec![vec![1, 3], vec![2, 2], vec![4],]
        );
        // Min part size filters.
        assert_eq!(integer_partitions(4, 4, 2), vec![vec![2, 2], vec![4]]);
    }

    #[test]
    fn partitions_are_valid_and_distinct() {
        let parts = integer_partitions(14, 6, 1);
        assert!(!parts.is_empty());
        let mut seen = std::collections::HashSet::new();
        for p in &parts {
            assert_eq!(p.iter().sum::<u32>(), 14, "{p:?}");
            assert!(p.len() <= 6);
            assert!(p.windows(2).all(|w| w[0] <= w[1]), "{p:?} not sorted");
            assert!(seen.insert(p.clone()), "duplicate {p:?}");
        }
        // p(14) with ≤6 parts = 90.
        assert_eq!(parts.len(), 90);
    }

    #[test]
    fn optimizer_ranks_layouts_and_includes_papers() {
        let mut base = SimConfig::paper(Policy::Paper, 8, 600);
        base.workers = 64;
        let h = PaperHierarchy::default();
        // Small search space for test speed: at most 3 partitions.
        let ranking = optimize_layout(&base, &h, WorkloadPreset::Table3.mix(), 3, 7);
        assert!(!ranking.is_empty());
        // Best-first ordering.
        for w in ranking.windows(2) {
            assert!(w[0].qps >= w[1].qps);
        }
        // Every candidate used all 14 SMs.
        for c in &ranking {
            assert_eq!(c.sms.iter().sum::<u32>(), 14);
        }
        // More queues generally wins under saturation: the best candidate
        // should not be the monolithic device.
        assert_ne!(ranking[0].sms, vec![14]);
    }
}
