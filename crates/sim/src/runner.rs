//! The event loops: closed-loop saturation and open-loop Poisson arrivals.

use crate::report::SimReport;
use holap_model::SystemProfile;
use holap_sched::{Estimator, PartitionLayout, Placement, Policy, Scheduler, TaskEstimate};
use holap_workload::QueryGenerator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Calibrated host-side overhead per GPU-bound query, seconds (see the
/// crate docs and EXPERIMENTS.md for the derivation against the paper's
/// GPU-only 69 Q/s).
pub const DEFAULT_GPU_DISPATCH_OVERHEAD: f64 = 0.0705;

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Placement policy.
    pub policy: Policy,
    /// Partition layout (its `cpu_threads` selects the CPU model: 1 →
    /// legacy sequential baseline, 4/8 → the parallel models).
    pub layout: PartitionLayout,
    /// Measured performance profile.
    pub profile: SystemProfile,
    /// Host-side per-query overhead added to every GPU class estimate.
    pub gpu_dispatch_overhead: f64,
    /// Queries to complete.
    pub queries: usize,
    /// Closed-loop worker population (ignored by the open loop).
    pub workers: usize,
    /// Optional estimation noise: actual service time is the estimate
    /// scaled by a uniform factor in `[1−σ, 1+σ]`, and the scheduler's
    /// completion feedback corrects the queue clocks. `None` = exact model.
    pub estimation_noise: Option<f64>,
    /// RNG seed for the noise stream.
    pub seed: u64,
    /// GPU partitions that are permanently failed for the whole run: they
    /// enter the simulation quarantined and (with no probe loop in virtual
    /// time) never re-admit, so the scheduler routes around them — the
    /// discrete-event counterpart of the engine's partition quarantine.
    #[serde(default)]
    pub failed_partitions: Vec<usize>,
}

impl SimConfig {
    /// A paper-profile configuration with the given policy and CPU threads.
    ///
    /// The legacy (sequential) CPU model is the Table-1-calibrated variant,
    /// so `cpu_threads == 1` reproduces the paper's 12 Q/s baseline.
    pub fn paper(policy: Policy, cpu_threads: u32, queries: usize) -> Self {
        let layout = PartitionLayout {
            cpu_threads,
            ..PartitionLayout::paper()
        };
        let mut profile = SystemProfile::paper();
        profile.legacy_cpu = holap_model::LegacyCpuModel::calibrated_table1();
        Self {
            policy,
            layout,
            profile,
            gpu_dispatch_overhead: DEFAULT_GPU_DISPATCH_OVERHEAD,
            queries,
            workers: 8,
            estimation_noise: None,
            seed: 0x5eed,
            failed_partitions: Vec::new(),
        }
    }
}

/// `f64` ordered by `total_cmp` so completions can sit in a binary heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct RunState {
    sched: Scheduler,
    estimator: Estimator,
    overhead: f64,
    noise: Option<f64>,
    rng: StdRng,
    completed: u64,
    met: u64,
    latency_sum: f64,
    latency_max: f64,
    last_completion: f64,
    per_gpu: Vec<u64>,
}

impl RunState {
    fn new(cfg: &SimConfig) -> Self {
        let mut sched = Scheduler::new(cfg.layout.clone(), cfg.policy);
        let quarantine_after = sched.health_config().quarantine_after;
        for &p in &cfg.failed_partitions {
            for _ in 0..quarantine_after {
                sched.record_partition_failure(p, 0.0);
            }
        }
        Self {
            sched,
            estimator: Estimator::new(cfg.profile.clone(), cfg.layout.clone()),
            overhead: cfg.gpu_dispatch_overhead,
            noise: cfg.estimation_noise,
            rng: StdRng::seed_from_u64(cfg.seed),
            completed: 0,
            met: 0,
            latency_sum: 0.0,
            latency_max: 0.0,
            last_completion: 0.0,
            per_gpu: vec![0; cfg.layout.gpu_partitions()],
        }
    }

    /// Schedules one generated query at `now`; returns its completion time.
    fn submit(&mut self, now: f64, generator: &mut QueryGenerator) -> f64 {
        let q = generator.next_query();
        let mut est: TaskEstimate = self.estimator.estimate(&q.features);
        for t in &mut est.t_gpu_by_class {
            *t += self.overhead;
        }
        let decision = self.sched.schedule(now, &est, q.deadline_secs);
        let mut completion = decision.response_time;
        if let Some(sigma) = self.noise {
            let factor = self.rng.gen_range(1.0 - sigma..1.0 + sigma);
            let actual = decision.t_proc * factor;
            self.sched
                .complete(decision.placement.partition_id(), decision.t_proc, actual);
            completion += actual - decision.t_proc;
        }
        if let Placement::Gpu { partition } = decision.placement {
            self.per_gpu[partition] += 1;
        }
        // Deadline accounting uses the (possibly noise-shifted) completion.
        if completion <= decision.deadline {
            self.met += 1;
        }
        self.completed += 1;
        let latency = completion - now;
        self.latency_sum += latency;
        self.latency_max = self.latency_max.max(latency);
        self.last_completion = self.last_completion.max(completion);
        completion
    }

    fn report(self, queries: u64) -> SimReport {
        let makespan = self.last_completion.max(f64::MIN_POSITIVE);
        SimReport {
            queries,
            makespan_secs: makespan,
            throughput_qps: queries as f64 / makespan,
            met_deadline: self.met,
            missed_deadline: queries - self.met,
            mean_latency_secs: self.latency_sum / queries as f64,
            max_latency_secs: self.latency_max,
            sched: self.sched.stats().clone(),
            per_gpu_partition: self.per_gpu,
        }
    }
}

/// Closed-loop saturation run: `cfg.workers` workers each keep exactly one
/// query in flight. Reports saturation throughput — the "queries per
/// second" metric of the paper's Tables 1–3.
pub fn run_closed_loop(cfg: &SimConfig, generator: &mut QueryGenerator) -> SimReport {
    assert!(cfg.workers > 0 && cfg.queries > 0);
    let mut state = RunState::new(cfg);
    let mut heap: BinaryHeap<Reverse<OrdF64>> = BinaryHeap::new();
    let mut submitted = 0usize;
    for _ in 0..cfg.workers.min(cfg.queries) {
        let c = state.submit(0.0, generator);
        heap.push(Reverse(OrdF64(c)));
        submitted += 1;
    }
    while let Some(Reverse(OrdF64(t))) = heap.pop() {
        if submitted < cfg.queries {
            let c = state.submit(t, generator);
            heap.push(Reverse(OrdF64(c)));
            submitted += 1;
        }
    }
    state.report(cfg.queries as u64)
}

/// Open-loop run: Poisson arrivals at `lambda_qps` until `cfg.queries`
/// queries have been submitted. Reports the deadline hit ratio and latency
/// under that offered load.
pub fn run_open_loop(
    cfg: &SimConfig,
    generator: &mut QueryGenerator,
    lambda_qps: f64,
) -> SimReport {
    assert!(lambda_qps > 0.0 && cfg.queries > 0);
    let mut state = RunState::new(cfg);
    let mut arrival_rng = StdRng::seed_from_u64(cfg.seed ^ 0x00a1_1ce5);
    let mut now = 0.0f64;
    for _ in 0..cfg.queries {
        let u: f64 = arrival_rng.gen_range(f64::MIN_POSITIVE..1.0);
        now += -u.ln() / lambda_qps; // exponential inter-arrival
        state.submit(now, generator);
    }
    state.report(cfg.queries as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use holap_workload::{PaperHierarchy, WorkloadPreset};

    fn generator(preset: WorkloadPreset, seed: u64) -> QueryGenerator {
        QueryGenerator::preset(preset, &PaperHierarchy::default(), seed)
    }

    #[test]
    fn closed_loop_counts_all_queries() {
        let cfg = SimConfig::paper(Policy::Paper, 8, 500);
        let mut g = generator(WorkloadPreset::Table3, 1);
        let r = run_closed_loop(&cfg, &mut g);
        assert_eq!(r.queries, 500);
        assert_eq!(r.met_deadline + r.missed_deadline, 500);
        assert_eq!(
            r.sched.cpu_queries + r.sched.gpu_queries,
            500,
            "every query placed exactly once"
        );
        assert!(r.throughput_qps > 0.0);
        assert!(r.mean_latency_secs > 0.0);
        assert!(r.max_latency_secs >= r.mean_latency_secs);
    }

    #[test]
    fn cpu_only_table1_is_single_queue_rate() {
        // Closed-loop CPU-only throughput must equal 1 / mean service time.
        let mut cfg = SimConfig::paper(Policy::CpuOnly, 8, 400);
        cfg.workers = 2;
        let mut g = generator(WorkloadPreset::Table1, 2);
        let r = run_closed_loop(&cfg, &mut g);
        assert_eq!(
            r.sched.gpu_queries, 0,
            "Table 1 queries are all CPU-answerable"
        );
        // 8T model at ~160 MB: ≈ 8.9 ms → ≈ 112 Q/s.
        assert!(
            r.throughput_qps > 95.0 && r.throughput_qps < 130.0,
            "qps = {}",
            r.throughput_qps
        );
    }

    #[test]
    fn sequential_layout_uses_legacy_model() {
        let mut cfg = SimConfig::paper(Policy::CpuOnly, 1, 300);
        cfg.workers = 2;
        let mut g = generator(WorkloadPreset::Table1, 3);
        let r = run_closed_loop(&cfg, &mut g);
        // Legacy 1 GB/s model: ~160 MB → ≈ 157 ms → ≈ 6.4 Q/s.
        assert!(r.throughput_qps < 20.0, "qps = {}", r.throughput_qps);
    }

    #[test]
    fn more_cpu_threads_means_more_throughput() {
        let mut rates = Vec::new();
        for threads in [1u32, 4, 8] {
            let mut cfg = SimConfig::paper(Policy::CpuOnly, threads, 300);
            cfg.workers = 2;
            let mut g = generator(WorkloadPreset::Table1, 4);
            rates.push(run_closed_loop(&cfg, &mut g).throughput_qps);
        }
        assert!(rates[0] < rates[1] && rates[1] < rates[2], "{rates:?}");
    }

    #[test]
    fn gpu_only_uses_all_partitions() {
        let cfg = SimConfig::paper(Policy::GpuOnly, 8, 600);
        let mut g = generator(WorkloadPreset::Table1, 5);
        let r = run_closed_loop(&cfg, &mut g);
        assert_eq!(r.sched.cpu_queries, 0);
        for (i, &n) in r.per_gpu_partition.iter().enumerate() {
            assert!(n > 0, "partition {i} unused");
        }
    }

    #[test]
    fn open_loop_low_load_meets_deadlines() {
        let cfg = SimConfig::paper(Policy::Paper, 8, 300);
        let mut g = generator(WorkloadPreset::Table3, 6);
        let light = run_open_loop(&cfg, &mut g, 5.0);
        assert!(
            light.deadline_hit_ratio() > 0.95,
            "{}",
            light.deadline_hit_ratio()
        );
    }

    #[test]
    fn open_loop_overload_misses_deadlines() {
        let cfg = SimConfig::paper(Policy::Paper, 8, 2000);
        let mut g = generator(WorkloadPreset::Table3, 7);
        let heavy = run_open_loop(&cfg, &mut g, 500.0);
        assert!(
            heavy.deadline_hit_ratio() < 0.5,
            "{}",
            heavy.deadline_hit_ratio()
        );
    }

    #[test]
    fn noise_with_feedback_preserves_throughput_scale() {
        let base_cfg = SimConfig::paper(Policy::Paper, 8, 800);
        let mut g1 = generator(WorkloadPreset::Table3, 8);
        let base = run_closed_loop(&base_cfg, &mut g1);
        let mut noisy_cfg = base_cfg.clone();
        noisy_cfg.estimation_noise = Some(0.2);
        let mut g2 = generator(WorkloadPreset::Table3, 8);
        let noisy = run_closed_loop(&noisy_cfg, &mut g2);
        let ratio = noisy.throughput_qps / base.throughput_qps;
        assert!((0.8..1.2).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = SimConfig::paper(Policy::Paper, 4, 300);
        let mut g1 = generator(WorkloadPreset::Table2, 9);
        let mut g2 = generator(WorkloadPreset::Table2, 9);
        assert_eq!(
            run_closed_loop(&cfg, &mut g1),
            run_closed_loop(&cfg, &mut g2)
        );
    }
}
