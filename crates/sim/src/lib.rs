//! Discrete-event simulation of the whole hybrid OLAP system — the
//! reproduction of the paper's own evaluation method.
//!
//! Section IV of the paper does **not** measure a live cluster: "to test
//! the efficiency of the proposed hybrid OLAP solution … we have developed
//! a system model. The setup of the model is done based on characteristics
//! extracted from performance measurements." This crate is that system
//! model: service times come from the calibrated performance functions
//! (`holap-model`), placement comes from the real scheduler
//! (`holap-sched`), queries come from the calibrated generators
//! (`holap-workload`), and the simulation advances in virtual time.
//!
//! Two drive modes are provided:
//!
//! * [`run_closed_loop`] — a fixed population of workers, each submitting
//!   its next query the moment the previous one completes. Saturation
//!   throughput in queries/second is what the paper's Tables 1–3 report.
//! * [`run_open_loop`] — Poisson arrivals at a chosen rate; reports the
//!   deadline hit ratio and latency, exercising the scheduler's `P_BD`
//!   machinery under varying load.
//!
//! One modelling addition is made explicit: a per-query **GPU dispatch
//! overhead** `h` (default [`DEFAULT_GPU_DISPATCH_OVERHEAD`]). The paper's
//! Eq. 14 kernel-cost functions alone imply a GPU saturation rate of
//! several hundred queries/second, yet §IV reports 69 Q/s for the GPU-only
//! configuration — the difference is host-side work (query setup, PCIe
//! parameter/result transfer, driver launch latency) that their end-to-end
//! rates include but their kernel model omits. `h` is calibrated once so
//! the GPU-only no-translation rate lands at the paper's 69 Q/s, and then
//! held fixed across every other scenario. See EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod optimizer;
pub mod report;
pub mod runner;
pub mod scenarios;

pub use optimizer::{integer_partitions, optimize_layout, LayoutCandidate};
pub use report::SimReport;
pub use runner::{run_closed_loop, run_open_loop, SimConfig, DEFAULT_GPU_DISPATCH_OVERHEAD};
