//! The paper's dictionary: an append-ordered array scanned linearly.

use crate::{Code, Dictionary};
use serde::{Deserialize, Serialize};

/// Unordered dictionary with linear-scan lookup.
///
/// Codes are assigned in first-seen order, so encoding a column preserves a
/// stable mapping regardless of value frequency. Lookup walks the entry
/// array front to back — `Θ(len)` worst case — which is exactly the cost
/// behaviour the paper measured for Fig. 9 and modelled as Eq. 17.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearDict {
    entries: Vec<String>,
}

impl LinearDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dictionary from an iterator of values, keeping first-seen
    /// order and dropping duplicates.
    ///
    /// Construction uses a transient hash index so building a large
    /// dictionary is `O(n)`, not `O(n²)` — only *lookups* pay the linear
    /// scan the paper's Eq. 17 models.
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(values: I) -> Self {
        let mut dict = Self::new();
        let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for v in values {
            if seen.insert(v) {
                dict.entries.push(v.to_owned());
            }
        }
        assert!(Code::try_from(dict.entries.len().saturating_sub(1)).is_ok() || dict.is_empty());
        dict
    }

    /// Returns the code of `s`, inserting it if absent.
    ///
    /// # Panics
    ///
    /// Panics if the dictionary would exceed `u32::MAX` entries.
    pub fn get_or_insert(&mut self, s: &str) -> Code {
        if let Some(code) = self.encode(s) {
            return code;
        }
        let code = Code::try_from(self.entries.len()).expect("dictionary overflow");
        self.entries.push(s.to_owned());
        code
    }

    /// Iterates over `(code, entry)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (Code, &str)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, s)| (i as Code, s.as_str()))
    }
}

impl Dictionary for LinearDict {
    fn encode(&self, s: &str) -> Option<Code> {
        self.entries.iter().position(|e| e == s).map(|i| i as Code)
    }

    fn decode(&self, code: Code) -> Option<&str> {
        self.entries.get(code as usize).map(String::as_str)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn probe_bound(&self) -> usize {
        self.entries.len()
    }

    fn order_preserving(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_follow_first_seen_order() {
        let d = LinearDict::build(["b", "a", "c", "a", "b"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.encode("b"), Some(0));
        assert_eq!(d.encode("a"), Some(1));
        assert_eq!(d.encode("c"), Some(2));
    }

    #[test]
    fn roundtrip() {
        let d = LinearDict::build(["x", "y", "z"]);
        for code in 0..3 {
            let s = d.decode(code).unwrap();
            assert_eq!(d.encode(s), Some(code));
        }
    }

    #[test]
    fn missing_entries() {
        let d = LinearDict::build(["x"]);
        assert_eq!(d.encode("missing"), None);
        assert_eq!(d.decode(5), None);
    }

    #[test]
    fn get_or_insert_is_idempotent() {
        let mut d = LinearDict::new();
        let a = d.get_or_insert("hello");
        let b = d.get_or_insert("hello");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn probe_bound_is_length() {
        let d = LinearDict::build(["a", "b", "c", "d"]);
        assert_eq!(d.probe_bound(), 4);
        assert!(!d.order_preserving());
        assert_eq!(d.encode_range("a", "b"), None);
    }

    #[test]
    fn empty_dictionary() {
        let d = LinearDict::new();
        assert!(d.is_empty());
        assert_eq!(d.encode("anything"), None);
    }
}
