//! Text predicates and the errors raised when translating them to codes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A predicate on a text column, as it arrives in an incoming query.
///
/// Both variants translate to an inclusive code range `(lo, hi)` — equality
/// becomes the degenerate range `(c, c)` — matching the paper's uniform
/// `C_L(f, t, l)` condition form (Eq. 11).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TextCondition {
    /// `column = value`.
    Eq(String),
    /// `from <= column <= to` (lexicographic, inclusive).
    Range {
        /// Lower bound (inclusive).
        from: String,
        /// Upper bound (inclusive).
        to: String,
    },
    /// `column contains any of the patterns` (substring match). Unlike the
    /// other variants this translates to a *set* of codes, generally not
    /// contiguous, so it can only be answered by the fact-table scan
    /// engine (never by a cube region).
    Contains(Vec<String>),
}

impl TextCondition {
    /// Convenience constructor for an equality condition.
    pub fn eq(value: impl Into<String>) -> Self {
        Self::Eq(value.into())
    }

    /// Convenience constructor for a range condition.
    pub fn range(from: impl Into<String>, to: impl Into<String>) -> Self {
        Self::Range {
            from: from.into(),
            to: to.into(),
        }
    }

    /// Convenience constructor for a substring condition.
    pub fn contains<S: Into<String>, I: IntoIterator<Item = S>>(patterns: I) -> Self {
        Self::Contains(patterns.into_iter().map(Into::into).collect())
    }

    /// Number of whole-dictionary-scan-equivalent lookups this condition
    /// costs (`CDT` contribution in Eq. 16): one for equality, two for a
    /// range (both bounds), one for a substring scan (a single streaming
    /// pass over the dictionary, whatever the pattern count).
    pub fn lookup_count(&self) -> usize {
        match self {
            Self::Eq(_) => 1,
            Self::Range { .. } => 2,
            Self::Contains(_) => 1,
        }
    }
}

/// Errors raised by query translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The named column has no dictionary (not a text column).
    UnknownColumn(String),
    /// The value is not present in the column's dictionary, so no row can
    /// match. Carries column and value for diagnostics; callers typically
    /// turn this into an empty result rather than an error.
    ValueNotFound {
        /// Column whose dictionary was probed.
        column: String,
        /// The missing value.
        value: String,
    },
    /// A range condition was used with a dictionary whose codes do not
    /// preserve key order (linear/hashed dictionaries).
    RangeUnsupported {
        /// Column whose dictionary cannot translate ranges.
        column: String,
    },
    /// A supported range condition matched no dictionary entry; no row can
    /// match.
    EmptyRange {
        /// Column whose dictionary was probed.
        column: String,
    },
    /// The condition translates to a code *set*, but the caller asked for
    /// a contiguous range (cube-side translation of a substring predicate).
    NotARange {
        /// Column the condition targets.
        column: String,
    },
    /// A substring condition carried no (or only empty) patterns.
    BadPattern {
        /// Column the condition targets.
        column: String,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownColumn(c) => write!(f, "column `{c}` has no dictionary"),
            Self::ValueNotFound { column, value } => {
                write!(
                    f,
                    "value `{value}` not found in dictionary of column `{column}`"
                )
            }
            Self::RangeUnsupported { column } => write!(
                f,
                "dictionary of column `{column}` is not order-preserving; \
                 range predicates require the sorted dictionary"
            ),
            Self::EmptyRange { column } => {
                write!(
                    f,
                    "range matches no entry in dictionary of column `{column}`"
                )
            }
            Self::NotARange { column } => write!(
                f,
                "substring condition on `{column}` yields a code set, not a range"
            ),
            Self::BadPattern { column } => {
                write!(f, "substring condition on `{column}` has no usable pattern")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_counts() {
        assert_eq!(TextCondition::eq("x").lookup_count(), 1);
        assert_eq!(TextCondition::range("a", "b").lookup_count(), 2);
    }

    #[test]
    fn errors_display() {
        let e = TranslateError::ValueNotFound {
            column: "city".into(),
            value: "Atlantis".into(),
        };
        assert!(e.to_string().contains("Atlantis"));
        let e = TranslateError::RangeUnsupported {
            column: "city".into(),
        };
        assert!(e.to_string().contains("order-preserving"));
    }

    #[test]
    fn conditions_roundtrip_serde() {
        let c = TextCondition::range("a", "m");
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<TextCondition>(&json).unwrap(), c);
    }
}
