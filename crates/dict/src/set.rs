//! One dictionary per text column, plus whole-query translation.

use crate::{Code, Dictionary, HashDict, LinearDict, SortedDict, TextCondition, TranslateError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which dictionary implementation a [`DictionarySet`] builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DictKind {
    /// The paper's linear-scan dictionary (Eq. 17 cost behaviour).
    Linear,
    /// Order-preserving binary-search dictionary (supports string ranges).
    Sorted,
    /// FNV-hashed dictionary (fastest equality lookup).
    Hashed,
}

/// Type-erased dictionary so a set can hold any implementation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AnyDictionary {
    /// Linear-scan dictionary.
    Linear(LinearDict),
    /// Sorted, order-preserving dictionary.
    Sorted(SortedDict),
    /// Hashed dictionary.
    Hashed(HashDict),
}

impl AnyDictionary {
    fn as_dyn(&self) -> &dyn Dictionary {
        match self {
            Self::Linear(d) => d,
            Self::Sorted(d) => d,
            Self::Hashed(d) => d,
        }
    }

    /// Kind tag of the contained implementation.
    pub fn kind(&self) -> DictKind {
        match self {
            Self::Linear(_) => DictKind::Linear,
            Self::Sorted(_) => DictKind::Sorted,
            Self::Hashed(_) => DictKind::Hashed,
        }
    }
}

impl Dictionary for AnyDictionary {
    fn encode(&self, s: &str) -> Option<Code> {
        self.as_dyn().encode(s)
    }
    fn decode(&self, code: Code) -> Option<&str> {
        self.as_dyn().decode(code)
    }
    fn len(&self) -> usize {
        self.as_dyn().len()
    }
    fn probe_bound(&self) -> usize {
        self.as_dyn().probe_bound()
    }
    fn order_preserving(&self) -> bool {
        self.as_dyn().order_preserving()
    }
    fn encode_range(&self, from: &str, to: &str) -> Option<Option<(Code, Code)>> {
        self.as_dyn().encode_range(from, to)
    }
}

/// What a text condition translates to: a contiguous code range (equality
/// and lexicographic ranges) or an explicit code set (substring matches).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodeSelection {
    /// Inclusive contiguous code range.
    Range(Code, Code),
    /// Sorted set of codes (possibly empty).
    Set(Vec<Code>),
}

/// The per-table collection of per-column dictionaries (paper §III-F:
/// "a smaller dictionary for each text column … rather than one large
/// dictionary for all text columns").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DictionarySet {
    kind: DictKind,
    columns: BTreeMap<String, AnyDictionary>,
}

impl DictionarySet {
    /// Creates an empty set that will build dictionaries of `kind`.
    pub fn new(kind: DictKind) -> Self {
        Self {
            kind,
            columns: BTreeMap::new(),
        }
    }

    /// The implementation kind this set builds.
    pub fn kind(&self) -> DictKind {
        self.kind
    }

    /// Builds (or replaces) the dictionary for `column` from its values and
    /// returns the encoded column: one code per input value, in order.
    pub fn build_column<'a, I>(&mut self, column: &str, values: I) -> Vec<Code>
    where
        I: IntoIterator<Item = &'a str>,
        I::IntoIter: Clone,
    {
        let it = values.into_iter();
        let dict = match self.kind {
            DictKind::Linear => AnyDictionary::Linear(LinearDict::build(it.clone())),
            DictKind::Sorted => AnyDictionary::Sorted(SortedDict::build(it.clone())),
            DictKind::Hashed => AnyDictionary::Hashed(HashDict::build(it.clone())),
        };
        // Encode through a transient hash index: encoding a large column
        // through the linear dictionary's lookup would be O(n²).
        let index: std::collections::HashMap<&str, Code> = (0..dict.len() as Code)
            .map(|c| (dict.decode(c).expect("dense codes"), c))
            .collect();
        let codes = it.map(|v| index[v]).collect();
        drop(index);
        self.columns.insert(column.to_owned(), dict);
        codes
    }

    /// The dictionary of `column`, if it is a text column.
    pub fn dictionary(&self, column: &str) -> Option<&AnyDictionary> {
        self.columns.get(column)
    }

    /// Whether `column` has a dictionary (i.e. is a text column).
    pub fn has_column(&self, column: &str) -> bool {
        self.columns.contains_key(column)
    }

    /// Column names with dictionaries, in name order.
    pub fn columns(&self) -> impl Iterator<Item = &str> {
        self.columns.keys().map(String::as_str)
    }

    /// Number of text columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the set holds no dictionaries.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Dictionary length of `column` (0 if it has no dictionary) — the
    /// `D_L|i` parameter of the translation cost bound (Eq. 17).
    pub fn dict_len(&self, column: &str) -> usize {
        self.columns.get(column).map_or(0, |d| d.len())
    }

    /// Translates a text condition on `column` into an inclusive code range
    /// — the core of the preprocessing partition's job. Substring
    /// conditions are rejected here (they are sets, not ranges); use
    /// [`DictionarySet::translate_selection`] for those.
    pub fn translate(
        &self,
        column: &str,
        condition: &TextCondition,
    ) -> Result<(Code, Code), TranslateError> {
        match self.translate_selection(column, condition)? {
            CodeSelection::Range(lo, hi) => Ok((lo, hi)),
            CodeSelection::Set(_) => Err(TranslateError::NotARange {
                column: column.to_owned(),
            }),
        }
    }

    /// Translates any text condition on `column` into a [`CodeSelection`]:
    /// equality and lexicographic ranges become contiguous code ranges;
    /// substring conditions stream the dictionary through an Aho–Corasick
    /// automaton built from the patterns and yield the (possibly empty)
    /// set of matching codes.
    pub fn translate_selection(
        &self,
        column: &str,
        condition: &TextCondition,
    ) -> Result<CodeSelection, TranslateError> {
        let dict = self
            .columns
            .get(column)
            .ok_or_else(|| TranslateError::UnknownColumn(column.to_owned()))?;
        match condition {
            TextCondition::Eq(value) => dict
                .encode(value)
                .map(|c| CodeSelection::Range(c, c))
                .ok_or_else(|| TranslateError::ValueNotFound {
                    column: column.to_owned(),
                    value: value.clone(),
                }),
            TextCondition::Range { from, to } => match dict.encode_range(from, to) {
                None => Err(TranslateError::RangeUnsupported {
                    column: column.to_owned(),
                }),
                Some(None) => Err(TranslateError::EmptyRange {
                    column: column.to_owned(),
                }),
                Some(Some((lo, hi))) => Ok(CodeSelection::Range(lo, hi)),
            },
            TextCondition::Contains(patterns) => {
                let usable: Vec<&str> = patterns
                    .iter()
                    .map(String::as_str)
                    .filter(|p| !p.is_empty())
                    .collect();
                if usable.is_empty() {
                    return Err(TranslateError::BadPattern {
                        column: column.to_owned(),
                    });
                }
                let ac = crate::ac::AhoCorasick::build(&usable);
                Ok(CodeSelection::Set(ac.matching_codes(dict)))
            }
        }
    }

    /// Decodes a code back to its string on `column`.
    pub fn decode(&self, column: &str, code: Code) -> Option<&str> {
        self.columns.get(column)?.decode(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cities() -> Vec<&'static str> {
        vec!["Boston", "Austin", "Chicago", "Boston", "Denver", "Austin"]
    }

    #[test]
    fn build_column_returns_encoding_of_input() {
        for kind in [DictKind::Linear, DictKind::Sorted, DictKind::Hashed] {
            let mut set = DictionarySet::new(kind);
            let codes = set.build_column("city", cities());
            assert_eq!(codes.len(), 6);
            // Duplicates encode identically.
            assert_eq!(codes[0], codes[3], "{kind:?}");
            assert_eq!(codes[1], codes[5], "{kind:?}");
            // Decoding recovers the original values.
            for (code, value) in codes.iter().zip(cities()) {
                assert_eq!(set.decode("city", *code), Some(value), "{kind:?}");
            }
        }
    }

    #[test]
    fn eq_translation_works_for_all_kinds() {
        for kind in [DictKind::Linear, DictKind::Sorted, DictKind::Hashed] {
            let mut set = DictionarySet::new(kind);
            set.build_column("city", cities());
            let (lo, hi) = set
                .translate("city", &TextCondition::eq("Chicago"))
                .unwrap();
            assert_eq!(lo, hi, "{kind:?}");
            assert_eq!(set.decode("city", lo), Some("Chicago"), "{kind:?}");
        }
    }

    #[test]
    fn range_translation_only_for_sorted() {
        let cond = TextCondition::range("B", "Ch");
        for kind in [DictKind::Linear, DictKind::Hashed] {
            let mut set = DictionarySet::new(kind);
            set.build_column("city", cities());
            assert_eq!(
                set.translate("city", &cond),
                Err(TranslateError::RangeUnsupported {
                    column: "city".into()
                })
            );
        }
        let mut set = DictionarySet::new(DictKind::Sorted);
        set.build_column("city", cities());
        let (lo, hi) = set.translate("city", &cond).unwrap();
        // ["B", "Ch"] covers exactly "Boston" (Chicago > "Ch").
        assert_eq!(set.decode("city", lo), Some("Boston"));
        assert_eq!(lo, hi);
    }

    #[test]
    fn missing_value_is_reported() {
        let mut set = DictionarySet::new(DictKind::Sorted);
        set.build_column("city", cities());
        let err = set
            .translate("city", &TextCondition::eq("Atlantis"))
            .unwrap_err();
        assert!(matches!(err, TranslateError::ValueNotFound { .. }));
    }

    #[test]
    fn unknown_column_is_reported() {
        let set = DictionarySet::new(DictKind::Linear);
        let err = set.translate("nope", &TextCondition::eq("x")).unwrap_err();
        assert_eq!(err, TranslateError::UnknownColumn("nope".into()));
    }

    #[test]
    fn dict_len_feeds_cost_model() {
        let mut set = DictionarySet::new(DictKind::Linear);
        set.build_column("city", cities());
        assert_eq!(set.dict_len("city"), 4); // 4 distinct cities
        assert_eq!(set.dict_len("absent"), 0);
    }

    #[test]
    fn contains_translates_to_code_sets() {
        for kind in [DictKind::Linear, DictKind::Sorted, DictKind::Hashed] {
            let mut set = DictionarySet::new(kind);
            set.build_column(
                "city",
                ["Newburg", "Hamilton", "Oakburg", "Plainfield", "Dayton"],
            );
            let sel = set
                .translate_selection("city", &TextCondition::contains(["burg"]))
                .unwrap();
            let CodeSelection::Set(codes) = sel else {
                panic!("expected set")
            };
            let mut names: Vec<&str> = codes
                .iter()
                .map(|&c| set.decode("city", c).unwrap())
                .collect();
            names.sort_unstable();
            assert_eq!(names, vec!["Newburg", "Oakburg"], "{kind:?}");
            // Multiple patterns union.
            let sel = set
                .translate_selection("city", &TextCondition::contains(["burg", "ton"]))
                .unwrap();
            let CodeSelection::Set(codes) = sel else {
                panic!("expected set")
            };
            assert_eq!(codes.len(), 4, "{kind:?}"); // + Hamilton, Dayton
                                                    // The range-only API refuses substring conditions.
            assert_eq!(
                set.translate("city", &TextCondition::contains(["burg"])),
                Err(TranslateError::NotARange {
                    column: "city".into()
                })
            );
        }
    }

    #[test]
    fn contains_with_no_usable_pattern_is_an_error() {
        let mut set = DictionarySet::new(DictKind::Sorted);
        set.build_column("c", ["a"]);
        assert_eq!(
            set.translate_selection("c", &TextCondition::contains(Vec::<String>::new())),
            Err(TranslateError::BadPattern { column: "c".into() })
        );
        assert_eq!(
            set.translate_selection("c", &TextCondition::contains([""])),
            Err(TranslateError::BadPattern { column: "c".into() })
        );
    }

    #[test]
    fn contains_with_no_matches_is_an_empty_set() {
        let mut set = DictionarySet::new(DictKind::Sorted);
        set.build_column("c", ["alpha", "beta"]);
        let sel = set
            .translate_selection("c", &TextCondition::contains(["zzz"]))
            .unwrap();
        assert_eq!(sel, CodeSelection::Set(vec![]));
    }

    #[test]
    fn separate_columns_have_separate_dictionaries() {
        let mut set = DictionarySet::new(DictKind::Sorted);
        set.build_column("city", ["a", "b"]);
        set.build_column("brand", ["x", "y", "z"]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.dict_len("city"), 2);
        assert_eq!(set.dict_len("brand"), 3);
        assert_eq!(set.columns().collect::<Vec<_>>(), vec!["brand", "city"]);
    }
}
