//! Hashed dictionary with expected-`O(1)` lookup.

use crate::{Code, Dictionary};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, a small fast hash suitable for short dictionary keys.
///
/// Implemented in-crate to keep the dependency set to the approved list;
/// dictionary keys come from our own data generators, so HashDoS hardening
/// is not a concern here.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fnv1a(u64);

impl Hasher for Fnv1a {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }
}

type FnvBuild = BuildHasherDefault<Fnv1a>;

/// Dictionary backed by an FNV-hashed map plus a decode array.
///
/// Codes are assigned in first-seen order (like [`crate::LinearDict`], so
/// the two produce identical encodings for the same input stream) but lookup
/// is a single expected-constant-time probe. One realisation of the paper's
/// future-work "advanced translation mechanism".
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HashDict {
    #[serde(skip)]
    index: HashMap<String, Code, FnvBuild>,
    entries: Vec<String>,
}

impl HashDict {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dictionary from an iterator of values, keeping first-seen
    /// order and dropping duplicates.
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(values: I) -> Self {
        let mut dict = Self::new();
        for v in values {
            dict.get_or_insert(v);
        }
        dict
    }

    /// Returns the code of `s`, inserting it if absent.
    ///
    /// # Panics
    ///
    /// Panics if the dictionary would exceed `u32::MAX` entries.
    pub fn get_or_insert(&mut self, s: &str) -> Code {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = Code::try_from(self.entries.len()).expect("dictionary overflow");
        self.entries.push(s.to_owned());
        self.index.insert(s.to_owned(), code);
        code
    }

    /// Rebuilds the (non-serialised) hash index from the entry array.
    /// Must be called after deserialising.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as Code))
            .collect();
    }

    /// Iterates over `(code, entry)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (Code, &str)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, s)| (i as Code, s.as_str()))
    }
}

impl PartialEq for HashDict {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}
impl Eq for HashDict {}

impl Dictionary for HashDict {
    fn encode(&self, s: &str) -> Option<Code> {
        self.index.get(s).copied()
    }

    fn decode(&self, code: Code) -> Option<&str> {
        self.entries.get(code as usize).map(String::as_str)
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn probe_bound(&self) -> usize {
        1
    }

    fn order_preserving(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_codes_as_linear_for_same_stream() {
        use crate::LinearDict;
        let stream = ["b", "a", "c", "a", "b", "d"];
        let h = HashDict::build(stream);
        let l = LinearDict::build(stream);
        for s in ["a", "b", "c", "d"] {
            assert_eq!(h.encode(s), l.encode(s), "code mismatch for {s}");
        }
    }

    #[test]
    fn roundtrip() {
        let d = HashDict::build(["x", "y", "z"]);
        for code in 0..3 {
            assert_eq!(d.encode(d.decode(code).unwrap()), Some(code));
        }
    }

    #[test]
    fn constant_probe_bound() {
        let values: Vec<String> = (0..10_000).map(|i| format!("v{i}")).collect();
        let d = HashDict::build(values.iter().map(String::as_str));
        assert_eq!(d.probe_bound(), 1);
        assert_eq!(d.len(), 10_000);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let d = HashDict::build(["p", "q"]);
        let json = serde_json::to_string(&d).unwrap();
        let mut back: HashDict = serde_json::from_str(&json).unwrap();
        assert_eq!(back.encode("p"), None, "index is skipped by serde");
        back.rebuild_index();
        assert_eq!(back.encode("p"), Some(0));
        assert_eq!(back.encode("q"), Some(1));
        assert_eq!(back, d);
    }

    #[test]
    fn fnv_distinguishes_keys() {
        // Smoke test that the in-crate hasher actually varies with input.
        use std::hash::BuildHasher;
        let b = FnvBuild::default();
        assert_ne!(b.hash_one("abc"), b.hash_one("abd"));
    }
}
