//! Per-column string dictionaries and text-to-integer query translation
//! (paper §III-F).
//!
//! The GPU side of the hybrid system never stores text: when the fact table
//! is built, every string column is replaced by a column of integer codes,
//! and each text column gets its own dictionary ("a smaller dictionary for
//! each text column … rather than one large dictionary", which keeps the
//! per-query translation-time bound tight). At query time, every text
//! parameter of a GPU-bound query is translated to its integer code before
//! the query is submitted — the job of the scheduler's *translation
//! partition*.
//!
//! Three dictionary implementations are provided:
//!
//! * [`LinearDict`] — the paper's implementation: an unordered array scanned
//!   linearly. Lookup cost is `Θ(len)`, which is what produces the linear
//!   `P_DICT` cost function of Fig. 9 / Eq. 17.
//! * [`SortedDict`] — binary search over a sorted key array with
//!   **order-preserving codes** (`s₁ < s₂ ⇔ code(s₁) < code(s₂)`), which
//!   additionally lets string *range* predicates translate to integer code
//!   ranges. This is one realisation of the "more sophisticated translation
//!   algorithm" the paper's conclusion defers to future work.
//! * [`HashDict`] — FNV-1a hashed lookup, `O(1)` expected; the other
//!   future-work realisation (no range support).
//!
//! [`DictionarySet`] bundles one dictionary per text column of a table and
//! performs whole-query translation; [`translate`] defines the predicate
//! types exchanged with the scheduler and table engine.
//!
//! # Example
//!
//! ```
//! use holap_dict::{DictKind, DictionarySet, TextCondition};
//!
//! let mut set = DictionarySet::new(DictKind::Sorted);
//! set.build_column("city", ["Boston", "Austin", "Chicago"].iter().copied());
//! let codes = set.translate("city", &TextCondition::eq("Boston")).unwrap();
//! // Order-preserving: Austin=0, Boston=1, Chicago=2.
//! assert_eq!(codes, (1, 1));
//! let range = set
//!     .translate("city", &TextCondition::range("B", "Ch"))
//!     .unwrap();
//! assert_eq!(range, (1, 1)); // only "Boston" falls in ["B", "Ch"]
//! ```

#![warn(missing_docs)]

pub mod ac;
mod hashed;
mod linear;
mod set;
mod sorted;
pub mod translate;

pub use ac::AhoCorasick;
pub use hashed::HashDict;
pub use linear::LinearDict;
pub use set::{AnyDictionary, CodeSelection, DictKind, DictionarySet};
pub use sorted::SortedDict;
pub use translate::{TextCondition, TranslateError};

/// Integer code assigned to a dictionary entry.
///
/// 32 bits matches the paper's goal of shrinking GPU-resident columns: a
/// code column costs 4 bytes/row regardless of string length.
pub type Code = u32;

/// Common behaviour of all dictionary implementations.
pub trait Dictionary {
    /// Looks up the code of `s`, if present.
    fn encode(&self, s: &str) -> Option<Code>;

    /// Returns the string for `code`, if valid.
    fn decode(&self, code: Code) -> Option<&str>;

    /// Number of distinct entries.
    fn len(&self) -> usize;

    /// Whether the dictionary is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Worst-case number of key comparisons (or probes) one lookup costs.
    ///
    /// This is the quantity the translation cost model charges for: `len`
    /// for the linear dictionary, `⌈log₂ len⌉ + 1` for the sorted one, and
    /// `1` for the hashed one.
    fn probe_bound(&self) -> usize;

    /// Whether codes preserve the lexicographic order of the keys, i.e.
    /// whether string range predicates can be translated to code ranges.
    fn order_preserving(&self) -> bool;

    /// Translates an inclusive string range `[from, to]` into an inclusive
    /// code range, if this dictionary supports range translation.
    ///
    /// Returns `None` when unsupported; `Some(None)` when supported but the
    /// range matches no entry.
    fn encode_range(&self, from: &str, to: &str) -> Option<Option<(Code, Code)>> {
        let _ = (from, to);
        None
    }
}
