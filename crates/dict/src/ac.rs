//! Aho–Corasick multi-pattern matching over dictionary entries.
//!
//! The paper's related work (§II-E) leans on Aho & Corasick's automaton
//! for "occurrences of large numbers of keywords in text strings" — the
//! machinery behind high-throughput dictionary search. Here it powers
//! **substring predicates** on text dimensions: a condition like
//! `city contains 'burg'` (or several alternatives at once) is answered by
//! building the automaton from the needles and streaming every dictionary
//! entry through it once, yielding the set of matching codes that the scan
//! engine then filters with.
//!
//! The implementation is the textbook construction: a byte-level trie with
//! BFS-computed failure links and output sets, `O(Σ|patterns|)` build,
//! `O(|text| + matches)` search.

use crate::{Code, Dictionary};

/// One node of the automaton.
#[derive(Debug, Clone)]
struct Node {
    /// Byte transitions (sparse: sorted by byte).
    next: Vec<(u8, u32)>,
    /// Failure link.
    fail: u32,
    /// Pattern indices ending at this node (own outputs only; search
    /// follows fail links for inherited ones — kept explicit for clarity).
    out: Vec<u32>,
}

impl Node {
    fn new() -> Self {
        Self {
            next: Vec::new(),
            fail: 0,
            out: Vec::new(),
        }
    }

    fn step(&self, b: u8) -> Option<u32> {
        self.next
            .binary_search_by_key(&b, |&(byte, _)| byte)
            .ok()
            .map(|i| self.next[i].1)
    }

    fn insert(&mut self, b: u8, to: u32) {
        match self.next.binary_search_by_key(&b, |&(byte, _)| byte) {
            Ok(i) => self.next[i].1 = to,
            Err(i) => self.next.insert(i, (b, to)),
        }
    }
}

/// An immutable Aho–Corasick automaton over a pattern set.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    patterns: usize,
}

impl AhoCorasick {
    /// Builds the automaton from patterns. Empty patterns are rejected —
    /// they would match everywhere and signal a malformed query upstream.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty or contains an empty string.
    pub fn build<S: AsRef<str>>(patterns: &[S]) -> Self {
        assert!(!patterns.is_empty(), "need at least one pattern");
        let mut nodes = vec![Node::new()];
        // Phase 1: trie.
        for (pi, p) in patterns.iter().enumerate() {
            let bytes = p.as_ref().as_bytes();
            assert!(!bytes.is_empty(), "empty pattern");
            let mut at = 0u32;
            for &b in bytes {
                at = match nodes[at as usize].step(b) {
                    Some(n) => n,
                    None => {
                        let n = nodes.len() as u32;
                        nodes.push(Node::new());
                        nodes[at as usize].insert(b, n);
                        n
                    }
                };
            }
            nodes[at as usize].out.push(pi as u32);
        }
        // Phase 2: BFS failure links.
        let mut queue = std::collections::VecDeque::new();
        let root_children: Vec<(u8, u32)> = nodes[0].next.clone();
        for &(_, child) in &root_children {
            nodes[child as usize].fail = 0;
            queue.push_back(child);
        }
        while let Some(u) = queue.pop_front() {
            let transitions: Vec<(u8, u32)> = nodes[u as usize].next.clone();
            for (b, v) in transitions {
                // Follow fails from u's fail to find v's fail.
                let mut f = nodes[u as usize].fail;
                let vfail = loop {
                    if let Some(n) = nodes[f as usize].step(b) {
                        break n;
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = nodes[f as usize].fail;
                };
                nodes[v as usize].fail = if vfail == v { 0 } else { vfail };
                queue.push_back(v);
            }
        }
        Self {
            nodes,
            patterns: patterns.len(),
        }
    }

    /// Number of patterns the automaton was built from.
    pub fn pattern_count(&self) -> usize {
        self.patterns
    }

    /// Number of automaton states (diagnostic).
    pub fn state_count(&self) -> usize {
        self.nodes.len()
    }

    fn step_from(&self, mut at: u32, b: u8) -> u32 {
        loop {
            if let Some(n) = self.nodes[at as usize].step(b) {
                return n;
            }
            if at == 0 {
                return 0;
            }
            at = self.nodes[at as usize].fail;
        }
    }

    /// Whether any pattern occurs in `text`.
    pub fn matches_any(&self, text: &str) -> bool {
        let mut at = 0u32;
        for &b in text.as_bytes() {
            at = self.step_from(at, b);
            // Check outputs along the fail chain.
            let mut f = at;
            loop {
                if !self.nodes[f as usize].out.is_empty() {
                    return true;
                }
                if f == 0 {
                    break;
                }
                f = self.nodes[f as usize].fail;
            }
        }
        false
    }

    /// All `(pattern index, byte offset past the match)` occurrences in
    /// `text`, in scan order.
    pub fn find_all(&self, text: &str) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut at = 0u32;
        for (i, &b) in text.as_bytes().iter().enumerate() {
            at = self.step_from(at, b);
            let mut f = at;
            loop {
                for &p in &self.nodes[f as usize].out {
                    out.push((p as usize, i + 1));
                }
                if f == 0 {
                    break;
                }
                f = self.nodes[f as usize].fail;
            }
        }
        out
    }

    /// Scans a whole dictionary: the sorted codes of all entries that
    /// contain at least one pattern.
    pub fn matching_codes<D: Dictionary + ?Sized>(&self, dict: &D) -> Vec<Code> {
        let mut out = Vec::new();
        for code in 0..dict.len() as Code {
            let entry = dict.decode(code).expect("dense codes");
            if self.matches_any(entry) {
                out.push(code);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SortedDict;

    #[test]
    fn classic_aho_corasick_example() {
        // The canonical {he, she, his, hers} over "ushers".
        let ac = AhoCorasick::build(&["he", "she", "his", "hers"]);
        let hits = ac.find_all("ushers");
        // "she" ends at 4, "he" ends at 4, "hers" ends at 6.
        let mut pats: Vec<usize> = hits.iter().map(|&(p, _)| p).collect();
        pats.sort_unstable();
        assert_eq!(pats, vec![0, 1, 3]);
        assert!(ac.matches_any("ushers"));
        assert!(ac.matches_any("ushe"), "contains `she` and `he`");
        assert!(!ac.matches_any("usr"));
    }

    #[test]
    fn overlapping_patterns_all_reported() {
        let ac = AhoCorasick::build(&["aa", "aaa"]);
        let hits = ac.find_all("aaaa");
        // "aa" at ends 2,3,4; "aaa" at ends 3,4.
        assert_eq!(hits.iter().filter(|&&(p, _)| p == 0).count(), 3);
        assert_eq!(hits.iter().filter(|&&(p, _)| p == 1).count(), 2);
    }

    #[test]
    fn matches_agree_with_naive_contains() {
        let patterns = ["burg", "ton", "new", "x"];
        let ac = AhoCorasick::build(&patterns);
        let texts = [
            "newburg",
            "hamilton",
            "plainville",
            "burgton",
            "xyz",
            "",
            "bur",
            "to n",
            "NEWBURG",
            "tonton",
        ];
        for t in texts {
            let naive = patterns.iter().any(|p| t.contains(p));
            assert_eq!(ac.matches_any(t), naive, "text `{t}`");
        }
    }

    #[test]
    fn unicode_is_byte_exact() {
        let ac = AhoCorasick::build(&["öl"]);
        assert!(ac.matches_any("köln öl"));
        assert!(!ac.matches_any("kolon"));
    }

    #[test]
    fn matching_codes_over_dictionary() {
        let d = SortedDict::build(["Newburg", "Hamilton", "Oakburg", "Plainfield", "Harburg"]);
        let ac = AhoCorasick::build(&["burg"]);
        let codes = ac.matching_codes(&d);
        let names: Vec<&str> = codes.iter().map(|&c| d.decode(c).unwrap()).collect();
        assert_eq!(names, vec!["Harburg", "Newburg", "Oakburg"]);
        // Codes ascend.
        assert!(codes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn single_byte_patterns() {
        let ac = AhoCorasick::build(&["a", "b"]);
        assert!(ac.matches_any("xyza"));
        assert!(ac.matches_any("b"));
        assert!(!ac.matches_any("xyz"));
        assert_eq!(ac.find_all("ab").len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty pattern")]
    fn empty_pattern_rejected() {
        AhoCorasick::build(&[""]);
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn empty_pattern_set_rejected() {
        AhoCorasick::build::<&str>(&[]);
    }

    #[test]
    fn state_count_is_bounded_by_total_pattern_length() {
        let pats = ["abcde", "abxyz", "q"];
        let ac = AhoCorasick::build(&pats);
        let total: usize = pats.iter().map(|p| p.len()).sum();
        assert!(ac.state_count() <= total + 1);
        assert_eq!(ac.pattern_count(), 3);
    }
}
