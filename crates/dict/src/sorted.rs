//! Order-preserving dictionary with binary-search lookup.

use crate::{Code, Dictionary};
use serde::{Deserialize, Serialize};

/// Dictionary whose codes are the ranks of the keys in lexicographic order.
///
/// Because `s₁ < s₂ ⇔ code(s₁) < code(s₂)`, string range predicates
/// translate directly to code range predicates — the property the columnar
/// scan engine needs to filter encoded text columns with the same range
/// machinery it uses for numeric dimensions. Lookup is `O(log len)`.
///
/// The code assignment is fixed at build time, so the dictionary is
/// immutable; rebuilding is required to admit new values (the usual
/// trade-off for order-preserving encodings).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortedDict {
    /// Sorted, deduplicated keys; index == code.
    keys: Vec<String>,
}

impl SortedDict {
    /// Builds the dictionary from an iterator of values (duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if there are more than `u32::MAX` distinct values.
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(values: I) -> Self {
        let mut keys: Vec<String> = values.into_iter().map(str::to_owned).collect();
        keys.sort_unstable();
        keys.dedup();
        assert!(Code::try_from(keys.len().saturating_sub(1)).is_ok() || keys.is_empty());
        Self { keys }
    }

    /// Smallest code whose key is `>= bound`, or `len` if none.
    fn lower_bound(&self, bound: &str) -> usize {
        self.keys.partition_point(|k| k.as_str() < bound)
    }

    /// Smallest code whose key is `> bound`, or `len` if none.
    fn upper_bound(&self, bound: &str) -> usize {
        self.keys.partition_point(|k| k.as_str() <= bound)
    }

    /// Iterates over `(code, key)` pairs in code (= lexicographic) order.
    pub fn iter(&self) -> impl Iterator<Item = (Code, &str)> {
        self.keys
            .iter()
            .enumerate()
            .map(|(i, s)| (i as Code, s.as_str()))
    }
}

impl Dictionary for SortedDict {
    fn encode(&self, s: &str) -> Option<Code> {
        self.keys
            .binary_search_by(|k| k.as_str().cmp(s))
            .ok()
            .map(|i| i as Code)
    }

    fn decode(&self, code: Code) -> Option<&str> {
        self.keys.get(code as usize).map(String::as_str)
    }

    fn len(&self) -> usize {
        self.keys.len()
    }

    fn probe_bound(&self) -> usize {
        if self.keys.is_empty() {
            1
        } else {
            (usize::BITS - self.keys.len().leading_zeros()) as usize + 1
        }
    }

    fn order_preserving(&self) -> bool {
        true
    }

    fn encode_range(&self, from: &str, to: &str) -> Option<Option<(Code, Code)>> {
        if from > to {
            return Some(None);
        }
        let lo = self.lower_bound(from);
        let hi = self.upper_bound(to);
        if lo >= hi {
            Some(None) // no key falls inside [from, to]
        } else {
            Some(Some((lo as Code, (hi - 1) as Code)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SortedDict {
        SortedDict::build(["delta", "alpha", "charlie", "bravo", "alpha"])
    }

    #[test]
    fn codes_are_lexicographic_ranks() {
        let d = sample();
        assert_eq!(d.encode("alpha"), Some(0));
        assert_eq!(d.encode("bravo"), Some(1));
        assert_eq!(d.encode("charlie"), Some(2));
        assert_eq!(d.encode("delta"), Some(3));
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn order_preservation_property() {
        let d = sample();
        let pairs: Vec<_> = d.iter().collect();
        for w in pairs.windows(2) {
            assert!(w[0].1 < w[1].1);
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn range_translation_exact_keys() {
        let d = sample();
        assert_eq!(d.encode_range("bravo", "delta"), Some(Some((1, 3))));
    }

    #[test]
    fn range_translation_between_keys() {
        let d = sample();
        // "b".."cz" covers bravo and charlie only.
        assert_eq!(d.encode_range("b", "cz"), Some(Some((1, 2))));
    }

    #[test]
    fn range_translation_empty_window() {
        let d = sample();
        assert_eq!(d.encode_range("be", "bq"), Some(None));
        assert_eq!(d.encode_range("zz", "zzz"), Some(None));
    }

    #[test]
    fn inverted_range_is_empty() {
        let d = sample();
        assert_eq!(d.encode_range("delta", "alpha"), Some(None));
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        for code in 0..d.len() as Code {
            assert_eq!(d.encode(d.decode(code).unwrap()), Some(code));
        }
    }

    #[test]
    fn probe_bound_is_logarithmic() {
        let values: Vec<String> = (0..1024).map(|i| format!("k{i:05}")).collect();
        let d = SortedDict::build(values.iter().map(String::as_str));
        assert_eq!(d.len(), 1024);
        assert!(d.probe_bound() <= 12, "bound = {}", d.probe_bound());
        assert!(d.order_preserving());
    }

    #[test]
    fn full_range_covers_everything() {
        let d = sample();
        assert_eq!(d.encode_range("", "zzzz"), Some(Some((0, 3))));
    }
}
