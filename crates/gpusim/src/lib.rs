//! A simulated Fermi-class GPU device for the hybrid OLAP system.
//!
//! # Why a simulator
//!
//! The paper evaluates on an NVIDIA Tesla C2070 (Fermi, 14 streaming
//! multiprocessors, concurrent kernel execution). Neither the scheduler nor
//! the paper's own Section-IV evaluation ever observes the silicon
//! directly: both consume the *measured performance functions*
//! `P_GPU(C/C_TOT, n_SM)` (Eq. 14–15). This crate therefore reproduces the
//! GPU as the composition the rest of the system actually depends on:
//!
//! * **functional behaviour** — kernels really execute the columnar scan
//!   (`holap-table`) or cube build (`holap-cube`) against tables resident
//!   in the device's global memory, on a per-partition thread pool whose
//!   width scales with the partition's SM count (concurrent kernel
//!   execution across partitions, as Fermi introduced);
//! * **cost behaviour** — every kernel reports a *modeled* execution time
//!   from the calibrated [`holap_model::GpuModelSet`], which is the time
//!   the scheduler and the discrete-event simulator account with.
//!
//! Memory is accounted like a real accelerator: tables must be explicitly
//! loaded into the device's global memory and loading fails when the
//! capacity (6 GB for the C2070) would be exceeded — this is precisely why
//! the paper dictionary-encodes text columns before upload.
//!
//! # Example
//!
//! ```
//! use holap_gpusim::{DeviceConfig, GpuDevice};
//! use holap_model::GpuModelSet;
//! use holap_table::{AggSpec, FactTableBuilder, ScanQuery, TableSchema};
//!
//! let mut device = GpuDevice::new(DeviceConfig::tesla_c2070());
//! let schema = TableSchema::builder()
//!     .dimension("d", &[("l", 10)])
//!     .measure("m")
//!     .build();
//! let mut b = FactTableBuilder::new(schema);
//! for i in 0..10 {
//!     b.push_row(&[i], &[i as f64]).unwrap();
//! }
//! let id = device.load_table("facts", b.finish()).unwrap();
//!
//! let model = GpuModelSet::paper_c2070();
//! let q = ScanQuery::new().aggregate(AggSpec::new(holap_table::AggOp::Sum, Some(0)));
//! let out = device.execute_scan(id, 4, &q, &model).unwrap();
//! assert_eq!(out.result.values[0].value(), Some(45.0));
//! assert!(out.modeled_secs > 0.0);
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod executor;
pub mod fault;
pub mod kernel;

pub use device::{DeviceConfig, DeviceError, GpuDevice, TableId};
pub use executor::{GpuExecutor, KernelJob};
pub use fault::{FaultKind, FaultPlan};
pub use kernel::{KernelError, KernelOutput};
