//! The device model: SM budget and global-memory residency.

use holap_table::FactTable;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Static characteristics of the simulated accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Streaming multiprocessors available for partitioning.
    pub total_sms: u32,
    /// Global memory capacity in bytes.
    pub memory_bytes: usize,
}

impl DeviceConfig {
    /// The paper's accelerator: Tesla C2070 — 14 active SMs, 6 GB GDDR5.
    pub fn tesla_c2070() -> Self {
        Self {
            total_sms: 14,
            memory_bytes: 6 * 1024 * 1024 * 1024,
        }
    }

    /// A small configuration for tests.
    pub fn tiny(memory_bytes: usize) -> Self {
        Self {
            total_sms: 4,
            memory_bytes,
        }
    }
}

/// Handle to a table resident in device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TableId(pub usize);

/// Errors raised by device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Loading the table would exceed global memory.
    OutOfMemory {
        /// Bytes the table needs.
        requested: usize,
        /// Bytes still free.
        free: usize,
    },
    /// The referenced table is not resident.
    UnknownTable(TableId),
    /// A kernel requested more SMs than the device has.
    TooManySms {
        /// SMs requested.
        requested: u32,
        /// SMs on the device.
        available: u32,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "table needs {requested} B, only {free} B of device memory free"
                )
            }
            Self::UnknownTable(id) => write!(f, "table {id:?} is not resident"),
            Self::TooManySms {
                requested,
                available,
            } => {
                write!(
                    f,
                    "kernel requested {requested} SMs, device has {available}"
                )
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// The simulated GPU: global memory holding fact tables, plus the SM
/// budget partitions are carved from.
#[derive(Debug, Clone)]
pub struct GpuDevice {
    config: DeviceConfig,
    tables: Vec<(String, Arc<FactTable>)>,
    used_bytes: usize,
}

impl GpuDevice {
    /// Creates an empty device.
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            config,
            tables: Vec::new(),
            used_bytes: 0,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> DeviceConfig {
        self.config
    }

    /// Bytes of global memory in use.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Bytes of global memory still free.
    pub fn free_bytes(&self) -> usize {
        self.config.memory_bytes - self.used_bytes
    }

    /// Uploads a table into global memory.
    ///
    /// # Errors
    ///
    /// [`DeviceError::OutOfMemory`] when the table does not fit — the
    /// situation dictionary encoding exists to avoid.
    pub fn load_table(&mut self, name: &str, table: FactTable) -> Result<TableId, DeviceError> {
        let bytes = table.bytes();
        let free = self.free_bytes();
        if bytes > free {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                free,
            });
        }
        self.used_bytes += bytes;
        self.tables.push((name.to_owned(), Arc::new(table)));
        Ok(TableId(self.tables.len() - 1))
    }

    /// Shared handle to a resident table.
    pub fn table(&self, id: TableId) -> Result<&Arc<FactTable>, DeviceError> {
        self.tables
            .get(id.0)
            .map(|(_, t)| t)
            .ok_or(DeviceError::UnknownTable(id))
    }

    /// Looks a table up by name.
    pub fn table_by_name(&self, name: &str) -> Option<TableId> {
        self.tables.iter().position(|(n, _)| n == name).map(TableId)
    }

    /// Number of resident tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Validates an SM request against the device budget.
    pub fn check_sms(&self, requested: u32) -> Result<(), DeviceError> {
        if requested == 0 || requested > self.config.total_sms {
            Err(DeviceError::TooManySms {
                requested,
                available: self.config.total_sms,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holap_table::{FactTableBuilder, TableSchema};

    fn small_table(rows: u32) -> FactTable {
        let schema = TableSchema::builder()
            .dimension("d", &[("l", 100)])
            .measure("m")
            .build();
        let mut b = FactTableBuilder::new(schema);
        for i in 0..rows {
            b.push_row(&[i % 100], &[i as f64]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn load_and_lookup() {
        let mut d = GpuDevice::new(DeviceConfig::tiny(1 << 20));
        let t = small_table(10);
        let bytes = t.bytes();
        let id = d.load_table("facts", t).unwrap();
        assert_eq!(d.used_bytes(), bytes);
        assert_eq!(d.table_by_name("facts"), Some(id));
        assert_eq!(d.table(id).unwrap().rows(), 10);
        assert_eq!(d.table_count(), 1);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut d = GpuDevice::new(DeviceConfig::tiny(16));
        let err = d.load_table("big", small_table(100)).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfMemory { .. }));
        assert_eq!(d.table_count(), 0);
        assert_eq!(d.used_bytes(), 0);
    }

    #[test]
    fn unknown_table_is_reported() {
        let d = GpuDevice::new(DeviceConfig::tiny(1 << 20));
        assert_eq!(
            d.table(TableId(3)).unwrap_err(),
            DeviceError::UnknownTable(TableId(3))
        );
        assert_eq!(d.table_by_name("nope"), None);
    }

    #[test]
    fn sm_budget_enforced() {
        let d = GpuDevice::new(DeviceConfig::tesla_c2070());
        assert!(d.check_sms(14).is_ok());
        assert!(d.check_sms(15).is_err());
        assert!(d.check_sms(0).is_err());
    }

    #[test]
    fn c2070_constants() {
        let c = DeviceConfig::tesla_c2070();
        assert_eq!(c.total_sms, 14);
        assert_eq!(c.memory_bytes, 6 * 1024 * 1024 * 1024);
    }
}
