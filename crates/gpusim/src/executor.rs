//! Concurrent kernel execution: one worker per GPU partition.
//!
//! Fermi's headline feature for this system is *concurrent kernel
//! execution*: the device is split into partitions that each process their
//! own queue of kernels in parallel (paper §III-E, Fig. 7). Here every
//! partition is a dedicated worker thread owning a rayon pool whose width
//! equals the partition's SM count, so a 4-SM partition really does drain
//! scans faster than a 1-SM one — concurrently with all its siblings.

use crate::device::{DeviceError, GpuDevice, TableId};
use crate::fault::{FaultKind, FaultPlan};
use crate::kernel::{KernelError, KernelOutput};
use crossbeam::channel::{unbounded, Receiver, Sender};
use holap_model::GpuModelSet;
use holap_table::{AggResult, GroupByQuery, GroupedResult, ScanQuery};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The kernels a partition worker executes.
#[derive(Debug)]
pub enum KernelJob {
    /// Plain filter + aggregate scan.
    Scan {
        /// Resident table to scan.
        table: TableId,
        /// The scan to execute.
        query: ScanQuery,
        /// Channel the worker answers on.
        respond: Sender<Result<KernelOutput<AggResult>, KernelError>>,
    },
    /// Grouped scan (`GROUP BY` over dimension columns).
    GroupBy {
        /// Resident table to scan.
        table: TableId,
        /// The grouped scan to execute.
        query: GroupByQuery,
        /// Channel the worker answers on.
        respond: Sender<Result<KernelOutput<GroupedResult>, KernelError>>,
    },
}

/// Running partition workers over a shared device.
#[derive(Debug)]
pub struct GpuExecutor {
    senders: Vec<Sender<KernelJob>>,
    handles: Vec<JoinHandle<()>>,
    partition_sms: Vec<u32>,
    faults: Option<Arc<FaultPlan>>,
}

/// Renders a caught panic payload for [`KernelError::Panicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "kernel panicked".to_string()
    }
}

/// Runs one kernel under the partition's fault discipline: apply the
/// injected fault (if any) and contain panics — injected or genuine — so
/// the partition worker itself never dies.
fn run_contained<T>(
    fault: Option<FaultKind>,
    partition: usize,
    kernel: u64,
    exec: impl FnOnce() -> Result<KernelOutput<T>, KernelError>,
) -> Result<KernelOutput<T>, KernelError> {
    match fault {
        Some(FaultKind::Error) => return Err(KernelError::Injected { partition, kernel }),
        Some(FaultKind::Hang { secs }) => std::thread::sleep(Duration::from_secs_f64(secs)),
        _ => {}
    }
    let out = catch_unwind(AssertUnwindSafe(|| {
        if matches!(fault, Some(FaultKind::Panic)) {
            panic!("injected kernel panic on partition {partition} (kernel {kernel})");
        }
        exec()
    }))
    .unwrap_or_else(|payload| Err(KernelError::Panicked(panic_message(payload.as_ref()))));
    if let Some(FaultKind::Late { secs }) = fault {
        std::thread::sleep(Duration::from_secs_f64(secs));
    }
    out
}

impl GpuExecutor {
    /// Spawns one worker per entry of `partition_sms` over `device`.
    ///
    /// # Errors
    ///
    /// Fails when the partitions oversubscribe the device's SM budget.
    pub fn spawn(
        device: Arc<GpuDevice>,
        partition_sms: &[u32],
        model: GpuModelSet,
    ) -> Result<Self, DeviceError> {
        Self::spawn_with_faults(device, partition_sms, model, None)
    }

    /// Like [`spawn`](Self::spawn), with an optional [`FaultPlan`] that
    /// every partition worker consults before each kernel launch.
    pub fn spawn_with_faults(
        device: Arc<GpuDevice>,
        partition_sms: &[u32],
        model: GpuModelSet,
        faults: Option<Arc<FaultPlan>>,
    ) -> Result<Self, DeviceError> {
        let total: u32 = partition_sms.iter().sum();
        if total > device.config().total_sms || partition_sms.contains(&0) {
            return Err(DeviceError::TooManySms {
                requested: total,
                available: device.config().total_sms,
            });
        }
        let mut senders = Vec::with_capacity(partition_sms.len());
        let mut handles = Vec::with_capacity(partition_sms.len());
        for (i, &sms) in partition_sms.iter().enumerate() {
            let (tx, rx) = unbounded::<KernelJob>();
            let device = Arc::clone(&device);
            let model = model.clone();
            let faults = faults.clone();
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(sms as usize)
                .thread_name(move |t| format!("gpu-p{i}-sm{t}"))
                .build()
                .expect("failed to build partition pool");
            let handle = std::thread::Builder::new()
                .name(format!("gpu-partition-{i}"))
                .spawn(move || {
                    let mut kernel: u64 = 0;
                    for job in rx {
                        // Only this worker launches kernels on partition
                        // `i`, so this local counter equals the plan's
                        // per-partition launch counter.
                        let fault = faults.as_ref().and_then(|f| f.decide(i));
                        let k = kernel;
                        kernel += 1;
                        // A dropped receiver just means the submitter gave
                        // up waiting; the kernel result is discarded.
                        match job {
                            KernelJob::Scan {
                                table,
                                query,
                                respond,
                            } => {
                                let out = run_contained(fault, i, k, || {
                                    pool.install(|| device.execute_scan(table, sms, &query, &model))
                                });
                                let _ = respond.send(out);
                            }
                            KernelJob::GroupBy {
                                table,
                                query,
                                respond,
                            } => {
                                let out = run_contained(fault, i, k, || {
                                    pool.install(|| {
                                        device.execute_group_by(table, sms, &query, &model)
                                    })
                                });
                                let _ = respond.send(out);
                            }
                        }
                    }
                })
                .expect("failed to spawn partition worker");
            senders.push(tx);
            handles.push(handle);
        }
        Ok(Self {
            senders,
            handles,
            partition_sms: partition_sms.to_vec(),
            faults,
        })
    }

    /// The fault plan the workers consult, when one was installed.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.faults.as_ref()
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.senders.len()
    }

    /// SM count of partition `i`.
    pub fn sms_of(&self, partition: usize) -> u32 {
        self.partition_sms[partition]
    }

    /// Queues a scan onto partition `partition`; the returned receiver
    /// yields the kernel output when the partition reaches it. If the
    /// partition worker is gone the receiver yields
    /// [`KernelError::PartitionLost`] instead of hanging or panicking.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn submit(
        &self,
        partition: usize,
        table: TableId,
        query: ScanQuery,
    ) -> Receiver<Result<KernelOutput<AggResult>, KernelError>> {
        let (tx, rx) = unbounded();
        let job = KernelJob::Scan {
            table,
            query,
            respond: tx.clone(),
        };
        if self.senders[partition].send(job).is_err() {
            let _ = tx.send(Err(KernelError::PartitionLost(partition)));
        }
        rx
    }

    /// Queues a grouped scan onto partition `partition`; a dead partition
    /// worker yields [`KernelError::PartitionLost`] on the receiver.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn submit_group_by(
        &self,
        partition: usize,
        table: TableId,
        query: GroupByQuery,
    ) -> Receiver<Result<KernelOutput<GroupedResult>, KernelError>> {
        let (tx, rx) = unbounded();
        let job = KernelJob::GroupBy {
            table,
            query,
            respond: tx.clone(),
        };
        if self.senders[partition].send(job).is_err() {
            let _ = tx.send(Err(KernelError::PartitionLost(partition)));
        }
        rx
    }
}

impl Drop for GpuExecutor {
    fn drop(&mut self) {
        self.senders.clear(); // close queues → workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use holap_table::{AggOp, AggSpec, ColumnId, FactTableBuilder, Predicate, TableSchema};

    fn device() -> (Arc<GpuDevice>, TableId) {
        let schema = TableSchema::builder()
            .dimension("d", &[("a", 10), ("b", 100)])
            .measure("m")
            .build();
        let mut b = FactTableBuilder::new(schema);
        for i in 0..10_000u32 {
            b.push_row(&[i % 10, i % 100], &[f64::from(i)]).unwrap();
        }
        let mut d = GpuDevice::new(DeviceConfig::tesla_c2070());
        let id = d.load_table("facts", b.finish()).unwrap();
        (Arc::new(d), id)
    }

    #[test]
    fn kernels_run_concurrently_across_partitions() {
        let (device, table) = device();
        let exec =
            GpuExecutor::spawn(device, &[1, 1, 2, 2, 4, 4], GpuModelSet::paper_c2070()).unwrap();
        assert_eq!(exec.partition_count(), 6);
        let q = ScanQuery::new()
            .filter(Predicate::range(ColumnId::dim(0, 1), 10, 60))
            .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
            .aggregate(AggSpec::count_star());
        // One kernel per partition, all in flight at once.
        let rxs: Vec<_> = (0..6).map(|p| exec.submit(p, table, q.clone())).collect();
        let outs: Vec<_> = rxs.iter().map(|rx| rx.recv().unwrap().unwrap()).collect();
        for o in &outs {
            assert_eq!(o.result, outs[0].result, "all partitions agree");
        }
        // Modeled cost differs by class: partition 0 (1 SM) > partition 4 (4 SM).
        assert!(outs[0].modeled_secs > outs[4].modeled_secs);
    }

    #[test]
    fn queue_order_is_preserved_per_partition() {
        let (device, table) = device();
        let exec = GpuExecutor::spawn(device, &[2], GpuModelSet::paper_c2070()).unwrap();
        let mk = |year: u32| {
            ScanQuery::new()
                .filter(Predicate::eq(ColumnId::dim(0, 0), year))
                .aggregate(AggSpec::count_star())
        };
        let rx_a = exec.submit(0, table, mk(1));
        let rx_b = exec.submit(0, table, mk(2));
        let a = rx_a.recv().unwrap().unwrap();
        let b = rx_b.recv().unwrap().unwrap();
        assert_eq!(a.result.matched_rows, 1000);
        assert_eq!(b.result.matched_rows, 1000);
    }

    #[test]
    fn oversubscription_rejected() {
        let (device, _) = device();
        let err = GpuExecutor::spawn(device, &[8, 8], GpuModelSet::paper_c2070()).unwrap_err();
        assert!(matches!(
            err,
            DeviceError::TooManySms {
                requested: 16,
                available: 14
            }
        ));
    }

    #[test]
    fn kernel_errors_are_delivered() {
        let (device, _) = device();
        let exec = GpuExecutor::spawn(device, &[1], GpuModelSet::paper_c2070()).unwrap();
        let rx = exec.submit(0, TableId(42), ScanQuery::new());
        assert!(rx.recv().unwrap().is_err());
    }

    #[test]
    fn injected_error_is_delivered_and_next_kernel_succeeds() {
        let (device, table) = device();
        let plan = Arc::new(FaultPlan::new(1).with_scripted(0, 0, FaultKind::Error));
        let exec = GpuExecutor::spawn_with_faults(
            device,
            &[1],
            GpuModelSet::paper_c2070(),
            Some(Arc::clone(&plan)),
        )
        .unwrap();
        let q = ScanQuery::new().aggregate(AggSpec::count_star());
        let first = exec.submit(0, table, q.clone()).recv().unwrap();
        assert!(matches!(
            first,
            Err(KernelError::Injected {
                partition: 0,
                kernel: 0
            })
        ));
        let second = exec.submit(0, table, q).recv().unwrap().unwrap();
        assert_eq!(second.result.matched_rows, 10_000);
        assert_eq!(plan.injected(), 1);
    }

    #[test]
    fn injected_panic_is_contained_and_worker_survives() {
        let (device, table) = device();
        let plan = Arc::new(FaultPlan::new(1).with_scripted(0, 0, FaultKind::Panic));
        let exec =
            GpuExecutor::spawn_with_faults(device, &[1], GpuModelSet::paper_c2070(), Some(plan))
                .unwrap();
        let q = ScanQuery::new().aggregate(AggSpec::count_star());
        let first = exec.submit(0, table, q.clone()).recv().unwrap();
        match first {
            Err(KernelError::Panicked(msg)) => assert!(msg.contains("injected kernel panic")),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The worker thread caught the unwind and keeps serving kernels.
        let second = exec.submit(0, table, q).recv().unwrap().unwrap();
        assert_eq!(second.result.matched_rows, 10_000);
    }

    #[test]
    fn late_fault_still_returns_correct_result() {
        let (device, table) = device();
        let plan = Arc::new(FaultPlan::new(1).with_scripted(0, 0, FaultKind::Late { secs: 0.02 }));
        let exec =
            GpuExecutor::spawn_with_faults(device, &[1], GpuModelSet::paper_c2070(), Some(plan))
                .unwrap();
        let q = ScanQuery::new().aggregate(AggSpec::count_star());
        let t0 = std::time::Instant::now();
        let out = exec.submit(0, table, q).recv().unwrap().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert_eq!(out.result.matched_rows, 10_000);
    }

    #[test]
    fn transient_classification() {
        assert!(KernelError::Injected {
            partition: 0,
            kernel: 0
        }
        .is_transient());
        assert!(KernelError::Panicked("x".into()).is_transient());
        assert!(KernelError::PartitionLost(3).is_transient());
        assert!(!KernelError::Device(DeviceError::UnknownTable(TableId(9))).is_transient());
    }

    #[test]
    fn grouped_kernel_matches_direct_group_by() {
        let (device, table) = device();
        let exec =
            GpuExecutor::spawn(Arc::clone(&device), &[2], GpuModelSet::paper_c2070()).unwrap();
        let q = GroupByQuery::new(
            ScanQuery::new()
                .filter(Predicate::range(ColumnId::dim(0, 1), 0, 49))
                .aggregate(AggSpec::new(AggOp::Sum, Some(0))),
            vec![ColumnId::dim(0, 0)],
        );
        let rx = exec.submit_group_by(0, table, q.clone());
        let out = rx.recv().unwrap().unwrap();
        let direct = device.table(table).unwrap().group_by_seq(&q).unwrap();
        assert_eq!(out.result.matched_rows, direct.matched_rows);
        assert_eq!(out.result.groups.len(), direct.groups.len());
        // Columns: 1 filter + 1 measure + 1 group key = 3.
        assert_eq!(out.columns_accessed, 3);
        assert!(out.modeled_secs > 0.0);
    }
}
