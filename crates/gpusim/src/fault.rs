//! Deterministic, seedable fault injection for the simulated device.
//!
//! Production GPU engines treat device loss, kernel crashes and stalls as
//! first-class events; the simulator must be able to produce them on
//! demand so every containment path in the layers above is testable. A
//! [`FaultPlan`] decides, per kernel launch, whether the launch fails,
//! panics, hangs or returns late — either probabilistically (a seeded
//! per-kernel coin) or scripted at exact per-partition kernel indices.
//! Decisions depend only on `(seed, partition, nth-kernel-on-partition)`,
//! so a plan replays identically regardless of cross-partition thread
//! interleaving.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// What an injected fault does to the kernel launch it hits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The kernel reports a transient error
    /// ([`KernelError::Injected`](crate::KernelError::Injected)).
    Error,
    /// The kernel panics; the partition worker catches the unwind and
    /// reports [`KernelError::Panicked`](crate::KernelError::Panicked).
    Panic,
    /// The partition stalls for `secs` before executing — long enough and
    /// the caller's watchdog fires while the worker is still wedged.
    Hang {
        /// Stall duration in wall seconds.
        secs: f64,
    },
    /// The kernel executes correctly but the answer is delayed by `secs`.
    Late {
        /// Extra latency in wall seconds.
        secs: f64,
    },
}

/// One scripted fault: the `nth` kernel launched on `partition` (0-based)
/// suffers `kind`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ScriptedFault {
    partition: usize,
    nth: u64,
    kind: FaultKind,
}

/// A deterministic fault schedule shared by all partition workers.
///
/// Build one with the `with_*` methods and hand it to
/// [`GpuExecutor::spawn_with_faults`](crate::GpuExecutor::spawn_with_faults).
/// The same seed and submission order reproduce the same faults.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    /// Probability in `[0, 1]` that any kernel launch suffers
    /// `probabilistic_kind`.
    failure_rate: f64,
    probabilistic_kind: FaultKind,
    scripted: Vec<ScriptedFault>,
    /// Partitions whose every kernel fails — a permanently lost device
    /// partition.
    dead_partitions: Vec<usize>,
    /// Per-partition launch counters (how many kernels each partition has
    /// been asked to run).
    counters: Mutex<HashMap<usize, u64>>,
    /// Total faults injected so far, for observability.
    injected: AtomicU64,
}

impl Default for FaultKind {
    fn default() -> Self {
        FaultKind::Error
    }
}

/// SplitMix64 — the usual small deterministic mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Injects `kind` into each kernel launch with probability `rate`
    /// (seeded, deterministic per `(partition, nth)`).
    pub fn with_failure_rate(mut self, rate: f64, kind: FaultKind) -> Self {
        self.failure_rate = rate.clamp(0.0, 1.0);
        self.probabilistic_kind = kind;
        self
    }

    /// Scripts `kind` onto the `nth` kernel (0-based) launched on
    /// `partition`.
    pub fn with_scripted(mut self, partition: usize, nth: u64, kind: FaultKind) -> Self {
        self.scripted.push(ScriptedFault {
            partition,
            nth,
            kind,
        });
        self
    }

    /// Marks `partition` as permanently failed: every kernel launched on
    /// it errors.
    pub fn with_dead_partition(mut self, partition: usize) -> Self {
        self.dead_partitions.push(partition);
        self
    }

    /// Whether `partition` is marked permanently failed.
    pub fn partition_is_dead(&self, partition: usize) -> bool {
        self.dead_partitions.contains(&partition)
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Total kernel launches observed so far.
    pub fn kernels_seen(&self) -> u64 {
        self.counters.lock().values().sum()
    }

    /// Decides the fate of the next kernel launched on `partition`.
    /// Called once per launch by the partition worker; advances that
    /// partition's launch counter.
    pub fn decide(&self, partition: usize) -> Option<FaultKind> {
        let nth = {
            let mut counters = self.counters.lock();
            let c = counters.entry(partition).or_insert(0);
            let nth = *c;
            *c += 1;
            nth
        };
        let fault = self.fault_for(partition, nth);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// The pure decision function: what happens to the `nth` kernel on
    /// `partition`. Scripted faults win over the dead-partition rule,
    /// which wins over the probabilistic coin.
    fn fault_for(&self, partition: usize, nth: u64) -> Option<FaultKind> {
        if let Some(s) = self
            .scripted
            .iter()
            .find(|s| s.partition == partition && s.nth == nth)
        {
            return Some(s.kind);
        }
        if self.dead_partitions.contains(&partition) {
            return Some(FaultKind::Error);
        }
        if self.failure_rate > 0.0 {
            let h = splitmix64(
                self.seed
                    ^ (partition as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ nth.wrapping_mul(0xc2b2_ae3d_27d4_eb4f),
            );
            // Map the top 53 bits to [0, 1).
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u < self.failure_rate {
                return Some(self.probabilistic_kind);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let p = FaultPlan::new(7);
        for i in 0..100 {
            assert_eq!(p.decide(i % 4), None);
        }
        assert_eq!(p.injected(), 0);
        assert_eq!(p.kernels_seen(), 100);
    }

    #[test]
    fn scripted_fault_hits_exact_index() {
        let p = FaultPlan::new(0).with_scripted(1, 2, FaultKind::Panic);
        assert_eq!(p.decide(1), None); // nth 0
        assert_eq!(p.decide(0), None); // other partition
        assert_eq!(p.decide(1), None); // nth 1
        assert_eq!(p.decide(1), Some(FaultKind::Panic)); // nth 2
        assert_eq!(p.decide(1), None); // nth 3
        assert_eq!(p.injected(), 1);
    }

    #[test]
    fn dead_partition_always_fails() {
        let p = FaultPlan::new(0).with_dead_partition(2);
        for _ in 0..10 {
            assert_eq!(p.decide(2), Some(FaultKind::Error));
            assert_eq!(p.decide(3), None);
        }
        assert!(p.partition_is_dead(2));
        assert!(!p.partition_is_dead(3));
    }

    #[test]
    fn probabilistic_rate_is_deterministic_and_plausible() {
        let mk = || FaultPlan::new(42).with_failure_rate(0.05, FaultKind::Error);
        let a = mk();
        let b = mk();
        let mut hits = 0u32;
        for i in 0..10_000u64 {
            let fa = a.decide((i % 6) as usize);
            let fb = b.decide((i % 6) as usize);
            assert_eq!(fa, fb, "same seed replays identically");
            if fa.is_some() {
                hits += 1;
            }
        }
        // 5% of 10 000 = 500 expected; allow a wide deterministic band.
        assert!((350..650).contains(&hits), "hits = {hits}");
        assert_eq!(u64::from(hits), a.injected());
    }

    #[test]
    fn rate_decision_is_interleaving_independent() {
        // Decisions keyed on (partition, nth) do not change when kernels
        // from different partitions interleave differently.
        let a = FaultPlan::new(9).with_failure_rate(0.2, FaultKind::Error);
        let b = FaultPlan::new(9).with_failure_rate(0.2, FaultKind::Error);
        let mut fa = Vec::new();
        for _ in 0..50 {
            fa.push(a.decide(0));
        }
        for _ in 0..50 {
            a.decide(1);
        }
        let mut fb = Vec::new();
        for i in 0..100 {
            let f = b.decide(i % 2);
            if i % 2 == 0 {
                fb.push(f);
            }
        }
        assert_eq!(fa, fb);
    }
}
