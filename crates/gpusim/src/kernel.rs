//! Kernels: functionally-correct execution with model-charged cost.

use crate::device::{DeviceError, GpuDevice, TableId};
use holap_cube::{CubeSchema, MolapCube};
use holap_model::GpuModelSet;
use holap_table::{AggResult, ScanError, ScanQuery};
use std::fmt;
use std::time::Instant;

/// What one kernel launch produced.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelOutput<T> {
    /// The functional result of the kernel.
    pub result: T,
    /// The cost the calibrated GPU model charges for this kernel — the
    /// time the scheduler and simulator account with.
    pub modeled_secs: f64,
    /// Host wall time the simulated execution actually took (diagnostic
    /// only; the simulation contract is `modeled_secs`).
    pub wall_secs: f64,
    /// Columns the kernel read (`C_QD` of Eq. 12).
    pub columns_accessed: usize,
    /// Streaming multiprocessors the kernel occupied.
    pub sms: u32,
}

/// Errors raised by kernel launches.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// Device-level failure (missing table, bad SM request).
    Device(DeviceError),
    /// The scan query failed validation against the table schema.
    Scan(ScanError),
    /// A [`FaultPlan`](crate::FaultPlan) failed this launch (transient:
    /// a retry draws a fresh coin).
    Injected {
        /// Partition the kernel was launched on.
        partition: usize,
        /// 0-based index of the kernel on that partition.
        kernel: u64,
    },
    /// The kernel panicked; the partition worker caught the unwind and
    /// stayed alive. Carries the panic message.
    Panicked(String),
    /// The partition worker is gone — its queue is closed and the job was
    /// never executed.
    PartitionLost(usize),
}

impl KernelError {
    /// Whether retrying the same kernel could plausibly succeed.
    ///
    /// Injected faults and panics are transient (a retry draws a fresh
    /// fault decision, possibly on another partition); a lost partition is
    /// transient *for the query* because the work can be re-routed.
    /// Device and scan errors are properties of the request itself and
    /// retrying cannot fix them.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Self::Injected { .. } | Self::Panicked(_) | Self::PartitionLost(_)
        )
    }
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Device(e) => write!(f, "device error: {e}"),
            Self::Scan(e) => write!(f, "scan error: {e}"),
            Self::Injected { partition, kernel } => {
                write!(
                    f,
                    "injected fault on partition {partition} (kernel {kernel})"
                )
            }
            Self::Panicked(msg) => write!(f, "kernel panicked: {msg}"),
            Self::PartitionLost(p) => write!(f, "partition {p} worker is gone"),
        }
    }
}

impl std::error::Error for KernelError {}

impl From<DeviceError> for KernelError {
    fn from(e: DeviceError) -> Self {
        Self::Device(e)
    }
}

impl From<ScanError> for KernelError {
    fn from(e: ScanError) -> Self {
        Self::Scan(e)
    }
}

impl GpuDevice {
    /// Launches a scan kernel on a partition of `sms` streaming
    /// multiprocessors: the paper's "parallel table scan + parallel
    /// reduction" steps, executed for real on the host, with the cost
    /// charged by the calibrated model (Eq. 13–14).
    ///
    /// The host execution runs on `holap-table`'s vectorized engine
    /// (selection vectors + zone-map block skipping), so the simulated
    /// kernel evaluates predicates batch-at-a-time exactly like the real
    /// GPU kernel it stands in for — and its results stay equal to the
    /// row-at-a-time scalar reference (see
    /// `vectorized_kernel_matches_scalar_reference`).
    pub fn execute_scan(
        &self,
        table: TableId,
        sms: u32,
        query: &ScanQuery,
        model: &GpuModelSet,
    ) -> Result<KernelOutput<AggResult>, KernelError> {
        self.check_sms(sms)?;
        let table = self.table(table)?;
        let fraction = query.column_fraction(table.schema().total_columns());
        let modeled_secs = model.estimate_secs(sms, fraction);
        let t0 = Instant::now();
        let result = table.scan_par(query)?;
        let wall_secs = t0.elapsed().as_secs_f64();
        Ok(KernelOutput {
            result,
            modeled_secs,
            wall_secs,
            columns_accessed: query.columns_accessed(),
            sms,
        })
    }

    /// Launches a grouped-scan kernel (`GROUP BY` over dimension columns):
    /// the same two-phase parallel aggregation as the plain scan, with the
    /// cost charged for the columns the query reads (group keys included,
    /// Eq. 12 extended).
    pub fn execute_group_by(
        &self,
        table: TableId,
        sms: u32,
        query: &holap_table::GroupByQuery,
        model: &GpuModelSet,
    ) -> Result<KernelOutput<holap_table::GroupedResult>, KernelError> {
        self.check_sms(sms)?;
        let table = self.table(table)?;
        let total = table.schema().total_columns();
        let fraction = (query.columns_accessed() as f64 / total as f64).min(1.0);
        let modeled_secs = model.estimate_secs(sms, fraction);
        let t0 = Instant::now();
        let result = table.group_by_par(query)?;
        let wall_secs = t0.elapsed().as_secs_f64();
        Ok(KernelOutput {
            result,
            modeled_secs,
            wall_secs,
            columns_accessed: query.columns_accessed(),
            sms,
        })
    }

    /// Launches a cube-build kernel: aggregates a resident fact table into
    /// a MOLAP cube at `resolution` — the paper's GPU task "(1) building
    /// the cube from relational tables stored in GPU memory" (§III-A).
    ///
    /// The model charges a full-table pass (`C/C_TOT = 1`), the natural
    /// extension of Eq. 13 to a kernel that must read every column it
    /// aggregates from.
    pub fn execute_cube_build(
        &self,
        table: TableId,
        sms: u32,
        resolution: usize,
        measure_idx: usize,
        model: &GpuModelSet,
    ) -> Result<KernelOutput<MolapCube>, KernelError> {
        self.check_sms(sms)?;
        let table = self.table(table)?;
        let modeled_secs = model.estimate_secs(sms, 1.0);
        let t0 = Instant::now();
        let schema = CubeSchema::from_table_schema(table.schema());
        let mut cube = MolapCube::build_from_table(schema, resolution, table, measure_idx);
        cube.compress();
        let wall_secs = t0.elapsed().as_secs_f64();
        let columns_accessed = table.schema().total_columns();
        Ok(KernelOutput {
            result: cube,
            modeled_secs,
            wall_secs,
            columns_accessed,
            sms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use holap_table::{AggOp, AggSpec, ColumnId, FactTableBuilder, Predicate, TableSchema};

    fn device_with_table() -> (GpuDevice, TableId) {
        let schema = TableSchema::builder()
            .dimension("time", &[("year", 4), ("month", 16)])
            .dimension("geo", &[("city", 8)])
            .measure("sales")
            .build();
        let mut b = FactTableBuilder::new(schema);
        for i in 0..1000u32 {
            b.push_row(&[i % 4, i % 16, i % 8], &[i as f64]).unwrap();
        }
        let mut d = GpuDevice::new(DeviceConfig::tesla_c2070());
        let id = d.load_table("facts", b.finish()).unwrap();
        (d, id)
    }

    #[test]
    fn scan_kernel_is_functionally_correct() {
        let (d, id) = device_with_table();
        let model = GpuModelSet::paper_c2070();
        let q = ScanQuery::new()
            .filter(Predicate::eq(ColumnId::dim(0, 0), 1))
            .aggregate(AggSpec::new(AggOp::Sum, Some(0)));
        let out = d.execute_scan(id, 2, &q, &model).unwrap();
        let expect: f64 = (0..1000u32).filter(|i| i % 4 == 1).map(f64::from).sum();
        assert_eq!(out.result.values[0].value(), Some(expect));
        // Cost: 2 columns of 4 → 2-SM model at 0.5.
        assert_eq!(out.columns_accessed, 2);
        assert!((out.modeled_secs - (0.0015 * 0.5 + 0.013)).abs() < 1e-12);
        assert!(out.wall_secs >= 0.0);
    }

    #[test]
    fn more_sms_model_cheaper() {
        let (d, id) = device_with_table();
        let model = GpuModelSet::paper_c2070();
        let q = ScanQuery::new().aggregate(AggSpec::count_star());
        let slow = d.execute_scan(id, 1, &q, &model).unwrap();
        let fast = d.execute_scan(id, 4, &q, &model).unwrap();
        assert!(fast.modeled_secs < slow.modeled_secs);
        assert_eq!(slow.result, fast.result);
    }

    #[test]
    fn kernel_errors_propagate() {
        let (d, id) = device_with_table();
        let model = GpuModelSet::paper_c2070();
        let q = ScanQuery::new();
        assert!(matches!(
            d.execute_scan(id, 99, &q, &model),
            Err(KernelError::Device(DeviceError::TooManySms { .. }))
        ));
        assert!(matches!(
            d.execute_scan(TableId(9), 1, &q, &model),
            Err(KernelError::Device(DeviceError::UnknownTable(_)))
        ));
        let bad = ScanQuery::new().aggregate(AggSpec::new(AggOp::Sum, Some(7)));
        assert!(matches!(
            d.execute_scan(id, 1, &bad, &model),
            Err(KernelError::Scan(_))
        ));
    }

    #[test]
    fn vectorized_kernel_matches_scalar_reference() {
        // The kernel executes on the vectorized engine (zone maps,
        // selection vectors, set-predicate bitmaps); its answers must be
        // equal to the retained row-at-a-time scalar interpreter.
        let (d, id) = device_with_table();
        let model = GpuModelSet::paper_c2070();
        let table = d.table(id).unwrap();
        let queries = [
            ScanQuery::new()
                .filter(Predicate::range(ColumnId::dim(0, 1), 3, 11))
                .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
                .aggregate(AggSpec::count_star()),
            ScanQuery::new()
                .filter_set(holap_table::SetPredicate::new(
                    ColumnId::dim(1, 0),
                    vec![1, 4, 6],
                ))
                .aggregate(AggSpec::new(AggOp::Min, Some(0)))
                .aggregate(AggSpec::new(AggOp::Avg, Some(0))),
            ScanQuery::new()
                .filter(Predicate::range(ColumnId::dim(0, 0), 3, 2)) // empty
                .aggregate(AggSpec::new(AggOp::Max, Some(0))),
        ];
        for q in &queries {
            let out = d.execute_scan(id, 4, q, &model).unwrap();
            assert_eq!(out.result, table.scan_scalar(q).unwrap());
        }
    }

    #[test]
    fn cube_build_kernel_matches_cpu_build() {
        let (d, id) = device_with_table();
        let model = GpuModelSet::paper_c2070();
        let out = d.execute_cube_build(id, 4, 1, 0, &model).unwrap();
        let table = d.table(id).unwrap();
        let direct =
            MolapCube::build_from_table(CubeSchema::from_table_schema(table.schema()), 1, table, 0);
        let full = holap_cube::Region::full(direct.shape());
        assert_eq!(out.result.aggregate_seq(&full), direct.aggregate_seq(&full));
        // Build is charged as a full-table pass.
        assert!((out.modeled_secs - model.estimate_secs(4, 1.0)).abs() < 1e-12);
        assert_eq!(out.columns_accessed, 4);
    }
}
