//! Partition identities and layouts (paper Fig. 7).

use serde::{Deserialize, Serialize};

/// Identifies one partition/queue of the hybrid system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionId {
    /// The CPU OLAP-cube processing partition (queue `Q_CPU`).
    Cpu,
    /// The CPU text-to-integer translation partition (queue `Q_TRANS`).
    Translation,
    /// GPU partition `i` (queue `Q_G(i+1)`).
    Gpu(usize),
}

/// The static partitioning of the system's resources.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionLayout {
    /// SM count of each GPU partition, in queue order `Q_G1 … Q_Gn`.
    /// The paper orders slowest first so the placement loop naturally
    /// "tasks the slower queues first".
    pub gpu_partition_sms: Vec<u32>,
    /// Threads of the CPU processing partition.
    pub cpu_threads: u32,
    /// Threads of the translation partition.
    pub translation_threads: u32,
}

impl PartitionLayout {
    /// The paper's layout for the Tesla C2070 + dual X5667 testbed:
    /// GPU split 1/1/2/2/4/4 SMs (Fig. 7), 8 CPU processing threads, one
    /// translation thread.
    pub fn paper() -> Self {
        Self {
            gpu_partition_sms: vec![1, 1, 2, 2, 4, 4],
            cpu_threads: 8,
            translation_threads: 1,
        }
    }

    /// The paper's layout but with the 4-thread CPU model (Table 1/3's
    /// middle column).
    pub fn paper_4t() -> Self {
        Self {
            cpu_threads: 4,
            ..Self::paper()
        }
    }

    /// Creates a custom layout.
    ///
    /// # Panics
    ///
    /// Panics on an empty GPU layout or zero thread counts.
    pub fn new(gpu_partition_sms: Vec<u32>, cpu_threads: u32, translation_threads: u32) -> Self {
        assert!(
            !gpu_partition_sms.is_empty(),
            "need at least one GPU partition"
        );
        assert!(
            gpu_partition_sms.iter().all(|&s| s > 0),
            "zero-SM partition"
        );
        assert!(cpu_threads > 0 && translation_threads > 0);
        Self {
            gpu_partition_sms,
            cpu_threads,
            translation_threads,
        }
    }

    /// Number of GPU partitions.
    pub fn gpu_partitions(&self) -> usize {
        self.gpu_partition_sms.len()
    }

    /// SM count of GPU partition `i` — the paper's `j = ⌈i/2⌉` class lookup
    /// generalised to arbitrary layouts.
    pub fn sms_of(&self, gpu_partition: usize) -> u32 {
        self.gpu_partition_sms[gpu_partition]
    }

    /// The distinct SM classes in ascending order — the classes for which
    /// `T_GPU1..T_GPUk` are estimated (paper step 2 estimates one time per
    /// class, not per partition).
    pub fn sm_classes(&self) -> Vec<u32> {
        let mut classes = self.gpu_partition_sms.clone();
        classes.sort_unstable();
        classes.dedup();
        classes
    }

    /// Index of partition `i`'s SM class within [`PartitionLayout::sm_classes`].
    pub fn class_of(&self, gpu_partition: usize) -> usize {
        let sm = self.sms_of(gpu_partition);
        self.sm_classes()
            .iter()
            .position(|&c| c == sm)
            .expect("class must exist")
    }

    /// Total SMs consumed by the layout (must not exceed the device's).
    pub fn total_sms(&self) -> u32 {
        self.gpu_partition_sms.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_matches_fig7() {
        let l = PartitionLayout::paper();
        assert_eq!(l.gpu_partitions(), 6);
        assert_eq!(l.gpu_partition_sms, vec![1, 1, 2, 2, 4, 4]);
        assert_eq!(l.total_sms(), 14);
        assert_eq!(l.sm_classes(), vec![1, 2, 4]);
    }

    #[test]
    fn class_lookup_reproduces_ceil_i_over_2() {
        // Paper: queues Q_G1..Q_G6 use T_GPUj with j = ⌈(i+1)/2⌉.
        let l = PartitionLayout::paper();
        let expect = [0usize, 0, 1, 1, 2, 2];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(l.class_of(i), e, "partition {i}");
        }
    }

    #[test]
    fn custom_layout() {
        let l = PartitionLayout::new(vec![2, 4, 8], 4, 2);
        assert_eq!(l.sm_classes(), vec![2, 4, 8]);
        assert_eq!(l.class_of(2), 2);
        assert_eq!(l.total_sms(), 14);
    }

    #[test]
    #[should_panic(expected = "at least one GPU partition")]
    fn empty_layout_rejected() {
        PartitionLayout::new(vec![], 1, 1);
    }
}
