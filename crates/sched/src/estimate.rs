//! Per-query time estimation (paper Fig. 10 step 2).

use crate::partition::PartitionLayout;
use holap_model::SystemProfile;
use serde::{Deserialize, Serialize};

/// The abstract features of a query the estimator consumes — produced by
/// the engine/simulator from the concrete query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryFeatures {
    /// Estimated sub-cube size in MB if a resident cube can answer the
    /// query (Eq. 3), `None` if the CPU cannot answer it at all.
    pub cpu_subcube_mb: Option<f64>,
    /// Fraction of fact-table columns the GPU scan touches (Eq. 12/13).
    pub gpu_column_fraction: f64,
    /// Dictionary lengths of the text conditions needing translation
    /// (Eq. 16/17); empty when no translation is needed.
    pub translation_dict_lens: Vec<usize>,
}

impl QueryFeatures {
    /// Whether the query needs text-to-integer translation before GPU
    /// processing.
    pub fn needs_translation(&self) -> bool {
        !self.translation_dict_lens.is_empty()
    }
}

/// The estimated processing times of one query on each partition class —
/// what the placement algorithm actually consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskEstimate {
    /// CPU processing time `T_CPU`, `None` when no resident cube can
    /// answer the query (it *must* go to the GPU).
    pub t_cpu: Option<f64>,
    /// GPU processing time per SM class, in the order of
    /// [`PartitionLayout::sm_classes`] (`T_GPU1 … T_GPUk`).
    pub t_gpu_by_class: Vec<f64>,
    /// Translation time `T_TRANS` (0 when no translation is needed).
    pub t_trans: f64,
}

impl TaskEstimate {
    /// Whether the query requires the translation partition.
    pub fn needs_translation(&self) -> bool {
        self.t_trans > 0.0
    }

    /// `T_GPU` of the fastest class (the paper's `T_GPU3` for the 4-SM
    /// class) — the CPU-preference comparison in step 5.
    pub fn t_gpu_fastest(&self) -> f64 {
        self.t_gpu_by_class
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// `T_GPU` of the slowest class — the base of the crude host-scan
    /// fallback estimate used when a GPU-only query is forced onto the
    /// CPU by quarantine.
    pub fn t_gpu_slowest(&self) -> f64 {
        self.t_gpu_by_class.iter().copied().fold(0.0, f64::max)
    }
}

/// Turns query features into a [`TaskEstimate`] using the measured
/// performance models.
#[derive(Debug, Clone)]
pub struct Estimator {
    profile: SystemProfile,
    layout: PartitionLayout,
}

impl Estimator {
    /// Creates an estimator for a profile and partition layout.
    pub fn new(profile: SystemProfile, layout: PartitionLayout) -> Self {
        Self { profile, layout }
    }

    /// The profile in use.
    pub fn profile(&self) -> &SystemProfile {
        &self.profile
    }

    /// The layout in use.
    pub fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    /// Estimates all partition-class times for a query (Fig. 10 step 2).
    pub fn estimate(&self, f: &QueryFeatures) -> TaskEstimate {
        let t_cpu = f.cpu_subcube_mb.map(|mb| {
            self.profile
                .cpu_or_nearest(self.layout.cpu_threads)
                .estimate_secs(mb)
        });
        let t_gpu_by_class = self
            .layout
            .sm_classes()
            .iter()
            .map(|&sm| self.profile.gpu.estimate_secs(sm, f.gpu_column_fraction))
            .collect();
        let t_trans = self
            .profile
            .dict
            .translation_secs(f.translation_dict_lens.iter().copied());
        TaskEstimate {
            t_cpu,
            t_gpu_by_class,
            t_trans,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimator() -> Estimator {
        Estimator::new(SystemProfile::paper(), PartitionLayout::paper())
    }

    #[test]
    fn estimates_use_paper_models() {
        let e = estimator();
        let f = QueryFeatures {
            cpu_subcube_mb: Some(100.0),
            gpu_column_fraction: 0.5,
            translation_dict_lens: vec![100_000],
        };
        let est = e.estimate(&f);
        // 8-thread CPU model, Range A.
        let expect_cpu = 6e-5 * 100f64.powf(0.984);
        assert!((est.t_cpu.unwrap() - expect_cpu).abs() < 1e-12);
        // Three classes: 1, 2, 4 SMs.
        assert_eq!(est.t_gpu_by_class.len(), 3);
        assert!((est.t_gpu_by_class[0] - (0.003 * 0.5 + 0.0258)).abs() < 1e-12);
        assert!((est.t_gpu_by_class[2] - (0.0008 * 0.5 + 0.0065)).abs() < 1e-12);
        assert!((est.t_gpu_fastest() - est.t_gpu_by_class[2]).abs() < 1e-15);
        // Translation: 0.0138 µs × 100 000 = 1.38 ms.
        assert!((est.t_trans - 0.00138).abs() < 1e-9);
        assert!(est.needs_translation());
    }

    #[test]
    fn gpu_only_query_has_no_cpu_estimate() {
        let e = estimator();
        let f = QueryFeatures {
            cpu_subcube_mb: None,
            gpu_column_fraction: 1.0,
            translation_dict_lens: vec![],
        };
        let est = e.estimate(&f);
        assert_eq!(est.t_cpu, None);
        assert!(!est.needs_translation());
        assert_eq!(est.t_trans, 0.0);
    }

    #[test]
    fn class_times_decrease_with_sm_count() {
        let e = estimator();
        let f = QueryFeatures {
            cpu_subcube_mb: None,
            gpu_column_fraction: 0.75,
            translation_dict_lens: vec![],
        };
        let est = e.estimate(&f);
        assert!(est.t_gpu_by_class[0] > est.t_gpu_by_class[1]);
        assert!(est.t_gpu_by_class[1] > est.t_gpu_by_class[2]);
    }
}
