//! The scheduler proper: queue clocks, the Figure-10 placement algorithm,
//! baseline policies and completion feedback.

use crate::estimate::TaskEstimate;
use crate::health::{HealthConfig, HealthState, PartitionHealth};
use crate::partition::{PartitionId, PartitionLayout};
use crate::policy::Policy;
use serde::{Deserialize, Serialize};

/// Multiplier over the slowest GPU class used to estimate a forced host
/// fact-table scan when a query without a CPU estimate must fall back to
/// the CPU (all GPU partitions quarantined). Crude by design: the fallback
/// exists for availability, not for accuracy.
const CPU_FALLBACK_FACTOR: f64 = 2.0;

/// Where a query was placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// The CPU OLAP-cube processing partition.
    Cpu,
    /// GPU partition `partition` (index into the layout).
    Gpu {
        /// Index of the GPU partition within the layout.
        partition: usize,
    },
}

impl Placement {
    /// Whether the query went to the CPU processing partition.
    pub fn is_cpu(&self) -> bool {
        matches!(self, Placement::Cpu)
    }

    /// The partition id of this placement.
    pub fn partition_id(&self) -> PartitionId {
        match *self {
            Placement::Cpu => PartitionId::Cpu,
            Placement::Gpu { partition } => PartitionId::Gpu(partition),
        }
    }
}

/// The scheduler's verdict for one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Chosen partition.
    pub placement: Placement,
    /// Whether the query was also submitted to the translation queue
    /// (GPU placement with text parameters).
    pub with_translation: bool,
    /// Absolute estimated response time `T_R` of the chosen partition.
    pub response_time: f64,
    /// Absolute deadline `T_D = T_Q + T_C`.
    pub deadline: f64,
    /// Whether the chosen partition was estimated to meet the deadline.
    pub before_deadline: bool,
    /// Estimated processing time charged to the chosen queue.
    pub t_proc: f64,
    /// Estimated translation time charged to the translation queue
    /// (0 unless `with_translation`).
    pub t_trans: f64,
    /// Whether the policy's pick was overridden because it landed on a
    /// quarantined partition (work re-routed to a healthy one).
    #[serde(default)]
    pub rerouted: bool,
}

/// Live queue state observed by an admission pipeline sitting in front of
/// the scheduler — real, measured backlog as opposed to the scheduler's own
/// charged queue clocks.
///
/// The clocks assume a query starts draining the moment its backlog clears;
/// in a real pipeline a scheduled query may still be waiting in a bounded
/// dispatch queue, or be running late (the completion-feedback correction
/// only lands when it finishes). `*_inflight_secs` is the engine-measured
/// sum of estimated processing seconds that have been *charged but not yet
/// completed* on each queue. The scheduler uses `now + inflight` as a floor
/// under each queue clock: an idle clock cannot promise an earlier start
/// than the work physically still in flight allows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LiveLoad {
    /// Outstanding estimated seconds on the CPU processing queue.
    pub cpu_inflight_secs: f64,
    /// Outstanding estimated seconds on the translation queue.
    pub trans_inflight_secs: f64,
    /// Outstanding estimated seconds per GPU partition queue, in layout
    /// order. Missing entries are treated as idle.
    pub gpu_inflight_secs: Vec<f64>,
}

impl LiveLoad {
    /// A fully idle load observation for `gpu_partitions` GPU queues.
    pub fn idle(gpu_partitions: usize) -> Self {
        Self {
            cpu_inflight_secs: 0.0,
            trans_inflight_secs: 0.0,
            gpu_inflight_secs: vec![0.0; gpu_partitions],
        }
    }

    fn gpu(&self, i: usize) -> f64 {
        self.gpu_inflight_secs.get(i).copied().unwrap_or(0.0)
    }
}

/// The inputs the scheduler consulted for one placement — Fig. 10 step 3
/// rendered for observability: the full candidate set of per-partition
/// response times and the health states that gated it. Attached to query
/// traces so a mis-scheduled workload can be diagnosed after the fact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTrace {
    /// Policy that made the pick.
    pub policy: Policy,
    /// Submission time the response times were computed at.
    pub now: f64,
    /// Estimated absolute CPU response time (`None` when no resident
    /// cube can answer).
    pub resp_cpu: Option<f64>,
    /// Estimated absolute response time per GPU partition in layout
    /// order; `None` for partitions excluded by quarantine.
    pub resp_gpu: Vec<Option<f64>>,
    /// Health state per GPU partition in layout order.
    pub health: Vec<HealthState>,
}

/// Aggregate counters the scheduler maintains.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedStats {
    /// Queries placed on the CPU partition.
    pub cpu_queries: u64,
    /// Queries placed on GPU partitions (any).
    pub gpu_queries: u64,
    /// Queries that required translation.
    pub translated_queries: u64,
    /// Queries whose chosen partition met the deadline at placement time.
    pub feasible: u64,
    /// Queries placed despite no partition meeting the deadline (step 6).
    pub infeasible: u64,
    /// Partition transitions into quarantine.
    #[serde(default)]
    pub quarantines: u64,
    /// Partition re-admissions after a quarantine cool-down.
    #[serde(default)]
    pub readmissions: u64,
    /// Queries whose placement was re-routed off a quarantined partition.
    #[serde(default)]
    pub rerouted: u64,
}

/// The co-scheduler: one instance owns all queue clocks.
///
/// All times are seconds on a caller-supplied monotonically non-decreasing
/// timeline (`now` arguments). Queue clocks are *absolute completion
/// times*: `T_Q|C`, `T_Q|TRANS`, `T_Q|G1..Gn` in the paper's notation —
/// "each queue is aware of … when all its jobs will be finished".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scheduler {
    layout: PartitionLayout,
    policy: Policy,
    q_cpu: f64,
    q_trans: f64,
    q_gpu: Vec<f64>,
    rr_cursor: usize,
    stats: SchedStats,
    #[serde(default)]
    health: Vec<PartitionHealth>,
    #[serde(default)]
    health_config: HealthConfig,
}

impl Scheduler {
    /// Creates a scheduler with idle queues at time 0.
    pub fn new(layout: PartitionLayout, policy: Policy) -> Self {
        let q_gpu = vec![0.0; layout.gpu_partitions()];
        let health = vec![PartitionHealth::default(); layout.gpu_partitions()];
        Self {
            layout,
            policy,
            q_cpu: 0.0,
            q_trans: 0.0,
            q_gpu,
            rr_cursor: 0,
            stats: SchedStats::default(),
            health,
            health_config: HealthConfig::default(),
        }
    }

    /// The partition layout.
    pub fn layout(&self) -> &PartitionLayout {
        &self.layout
    }

    /// The active policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &SchedStats {
        &self.stats
    }

    /// Replaces the quarantine tuning knobs.
    pub fn set_health_config(&mut self, cfg: HealthConfig) {
        self.health_config = cfg;
    }

    /// The quarantine tuning knobs in use.
    pub fn health_config(&self) -> &HealthConfig {
        &self.health_config
    }

    /// Health state of GPU partition `partition`.
    pub fn partition_health(&self, partition: usize) -> HealthState {
        self.health
            .get(partition)
            .map_or(HealthState::Healthy, |h| h.state)
    }

    /// Whether GPU partition `partition` is currently quarantined.
    pub fn is_quarantined(&self, partition: usize) -> bool {
        self.partition_health(partition) == HealthState::Quarantined
    }

    /// Indices of all currently quarantined GPU partitions.
    pub fn quarantined_partitions(&self) -> Vec<usize> {
        (0..self.layout.gpu_partitions())
            .filter(|&i| self.is_quarantined(i))
            .collect()
    }

    fn health_at_mut(&mut self, partition: usize) -> &mut PartitionHealth {
        // Deserialized snapshots may carry a short (or empty) health vec.
        if self.health.len() < self.layout.gpu_partitions() {
            self.health
                .resize(self.layout.gpu_partitions(), PartitionHealth::default());
        }
        &mut self.health[partition]
    }

    /// Records a failed execution on GPU partition `partition` at `now`
    /// and returns the partition's resulting health state. A transition
    /// into quarantine bumps [`SchedStats::quarantines`].
    pub fn record_partition_failure(&mut self, partition: usize, now: f64) -> HealthState {
        let cfg = self.health_config;
        let was = self.health_at_mut(partition).state;
        let state = self.health_at_mut(partition).record_failure(now, &cfg);
        if state == HealthState::Quarantined && was != HealthState::Quarantined {
            self.stats.quarantines += 1;
        }
        state
    }

    /// Records a successful execution on GPU partition `partition`,
    /// resetting its consecutive-failure streak.
    pub fn record_partition_success(&mut self, partition: usize) {
        self.health_at_mut(partition).record_success();
    }

    /// Re-admits (half-open) every quarantined partition whose cool-down
    /// has expired at `now`; returns the re-admitted indices. Re-admitted
    /// partitions come back Degraded with one failure of headroom, so a
    /// still-broken partition is re-quarantined by its next failure.
    pub fn probe(&mut self, now: f64) -> Vec<usize> {
        let cfg = self.health_config;
        let n = self.layout.gpu_partitions();
        let mut readmitted = Vec::new();
        for i in 0..n {
            if self.health_at_mut(i).probe(now, &cfg) {
                readmitted.push(i);
            }
        }
        self.stats.readmissions += readmitted.len() as u64;
        readmitted
    }

    /// Absolute completion clock of a queue.
    pub fn queue_clock(&self, id: PartitionId) -> f64 {
        match id {
            PartitionId::Cpu => self.q_cpu,
            PartitionId::Translation => self.q_trans,
            PartitionId::Gpu(i) => self.q_gpu[i],
        }
    }

    /// Estimated response times of every partition for `est` at `now` —
    /// Fig. 10 step 3. Index 0 is the CPU (`None` when the CPU cannot
    /// answer), the rest are GPU partitions in layout order. When a
    /// [`LiveLoad`] observation is supplied, each queue's effective ready
    /// time is floored at `now + inflight` (see [`LiveLoad`]).
    fn response_times(
        &self,
        now: f64,
        est: &TaskEstimate,
        load: Option<&LiveLoad>,
    ) -> (Option<f64>, Vec<f64>) {
        let eff = |clock: f64, inflight: f64| clock.max(now + inflight);
        let resp_cpu = est
            .t_cpu
            .map(|t| eff(self.q_cpu, load.map_or(0.0, |l| l.cpu_inflight_secs)) + t);
        let trans_ready = if est.needs_translation() {
            Some(eff(self.q_trans, load.map_or(0.0, |l| l.trans_inflight_secs)) + est.t_trans)
        } else {
            None
        };
        let resp_gpu = (0..self.layout.gpu_partitions())
            .map(|i| {
                if self.is_quarantined(i) {
                    // Excluded from placement: can never be feasible nor
                    // win an argmin against any live partition.
                    return f64::INFINITY;
                }
                let t_gpu = est.t_gpu_by_class[self.layout.class_of(i)];
                let ready = eff(self.q_gpu[i], load.map_or(0.0, |l| l.gpu(i)));
                let start = match trans_ready {
                    // "max(T_Q|Gi, T_Q|TRANS + T_TRANS) + T_GPUj with translation"
                    Some(tr) => ready.max(tr),
                    None => ready,
                };
                start + t_gpu
            })
            .collect();
        (resp_cpu, resp_gpu)
    }

    /// Crude processing-time estimate for a forced host fact-table scan,
    /// used when a query without a CPU estimate is re-routed to the CPU
    /// because no GPU partition is schedulable.
    fn cpu_fallback_secs(est: &TaskEstimate) -> f64 {
        est.t_gpu_slowest() * CPU_FALLBACK_FACTOR
    }

    /// Effective CPU-queue ready time (clock floored by live load).
    fn cpu_ready(&self, now: f64, load: Option<&LiveLoad>) -> f64 {
        self.q_cpu
            .max(now + load.map_or(0.0, |l| l.cpu_inflight_secs))
    }

    /// The earliest response time any partition could deliver for `est`
    /// submitted at `now`, without charging any queue — the admission
    /// pipeline's load-shedding predicate: if even this exceeds the
    /// deadline, running the query anywhere only burns partition time.
    ///
    /// # Panics
    ///
    /// Panics if the estimate's class vector disagrees with the layout.
    pub fn min_response_time(&self, now: f64, est: &TaskEstimate, load: Option<&LiveLoad>) -> f64 {
        assert_eq!(
            est.t_gpu_by_class.len(),
            self.layout.sm_classes().len(),
            "estimate classes must match layout classes"
        );
        let (resp_cpu, resp_gpu) = self.response_times(now, est, load);
        let min = resp_gpu
            .into_iter()
            .chain(resp_cpu)
            .fold(f64::INFINITY, f64::min);
        if min.is_finite() {
            min
        } else {
            // Every GPU partition is quarantined and the cubes cannot
            // answer: the CPU fact-table fallback is still available, so
            // the admission pipeline must not shed on an infinite bound.
            self.cpu_ready(now, load) + Self::cpu_fallback_secs(est)
        }
    }

    /// Schedules one query submitted at `now` with deadline window `t_c`
    /// seconds, charging the chosen queues. Returns the decision.
    ///
    /// Equivalent to [`Scheduler::schedule_with_load`] with no live-load
    /// observation (the queue clocks alone model the backlog).
    ///
    /// # Panics
    ///
    /// Panics if the estimate's class vector disagrees with the layout.
    pub fn schedule(&mut self, now: f64, est: &TaskEstimate, t_c: f64) -> Decision {
        self.schedule_with_load(now, est, t_c, None)
    }

    /// Schedules one query like [`Scheduler::schedule`], additionally
    /// flooring every queue's ready time with a measured [`LiveLoad`]
    /// observation so placements reflect work that is physically queued or
    /// running late, not just the charged clocks.
    ///
    /// # Panics
    ///
    /// Panics if the estimate's class vector disagrees with the layout.
    pub fn schedule_with_load(
        &mut self,
        now: f64,
        est: &TaskEstimate,
        t_c: f64,
        load: Option<&LiveLoad>,
    ) -> Decision {
        assert_eq!(
            est.t_gpu_by_class.len(),
            self.layout.sm_classes().len(),
            "estimate classes must match layout classes"
        );
        assert!(t_c > 0.0, "deadline window must be positive");
        let deadline = now + t_c;
        let (resp_cpu, resp_gpu) = self.response_times(now, est, load);
        let placement = self.choose(now, est, deadline, resp_cpu, &resp_gpu);
        // Load-blind policies (MET, round-robin) and all-quarantined
        // argmins can still land on a quarantined partition: override.
        let (placement, rerouted) = self.enforce_health(placement, &resp_gpu);
        if rerouted {
            self.stats.rerouted += 1;
        }

        // Charge the queues (Fig. 10 steps 5/6 updates).
        let (response_time, t_proc, with_translation) = match placement {
            Placement::Cpu => {
                // A re-routed query may have no CPU estimate (no resident
                // cube can answer it): charge the host-scan fallback.
                let t = est.t_cpu.unwrap_or_else(|| Self::cpu_fallback_secs(est));
                let resp = resp_cpu.unwrap_or_else(|| self.cpu_ready(now, load) + t);
                self.q_cpu = resp; // == max(T_Q|C, now) + T_CPU
                self.stats.cpu_queries += 1;
                (resp, t, false)
            }
            Placement::Gpu { partition } => {
                let t = est.t_gpu_by_class[self.layout.class_of(partition)];
                let resp = resp_gpu[partition];
                let with_trans = est.needs_translation();
                if with_trans {
                    self.q_trans = self.q_trans.max(now) + est.t_trans;
                    self.stats.translated_queries += 1;
                }
                // The partition finishes when the kernel it just accepted
                // finishes; with translation this is the coupled response,
                // which generalises the paper's `T_Q|Gi += T_GPUj` update
                // to the case where the kernel must wait for translation.
                self.q_gpu[partition] = resp;
                self.stats.gpu_queries += 1;
                (resp, t, with_trans)
            }
        };
        let before_deadline = response_time <= deadline;
        if before_deadline {
            self.stats.feasible += 1;
        } else {
            self.stats.infeasible += 1;
        }
        Decision {
            placement,
            with_translation,
            response_time,
            deadline,
            before_deadline,
            t_proc,
            t_trans: if with_translation { est.t_trans } else { 0.0 },
            rerouted,
        }
    }

    /// Schedules one query like [`Scheduler::schedule_with_load`] and
    /// additionally returns the [`DecisionTrace`] of candidates and
    /// health states the choice was made from. The trace costs two small
    /// allocations, so the untraced entry points stay on the fast path.
    ///
    /// # Panics
    ///
    /// Panics if the estimate's class vector disagrees with the layout.
    pub fn schedule_with_load_traced(
        &mut self,
        now: f64,
        est: &TaskEstimate,
        t_c: f64,
        load: Option<&LiveLoad>,
    ) -> (Decision, DecisionTrace) {
        assert_eq!(
            est.t_gpu_by_class.len(),
            self.layout.sm_classes().len(),
            "estimate classes must match layout classes"
        );
        let (resp_cpu, resp_gpu) = self.response_times(now, est, load);
        let trace = DecisionTrace {
            policy: self.policy,
            now,
            resp_cpu,
            resp_gpu: resp_gpu
                .iter()
                .map(|&r| r.is_finite().then_some(r))
                .collect(),
            health: (0..self.layout.gpu_partitions())
                .map(|i| self.partition_health(i))
                .collect(),
        };
        (self.schedule_with_load(now, est, t_c, load), trace)
    }

    /// Overrides a placement that landed on a quarantined partition: the
    /// fastest healthy GPU partition wins, else the CPU (the hybrid
    /// system's always-available fallback).
    fn enforce_health(&self, placement: Placement, resp_gpu: &[f64]) -> (Placement, bool) {
        match placement {
            Placement::Gpu { partition } if self.is_quarantined(partition) => {
                let best = resp_gpu
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| !self.is_quarantined(i))
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("times are comparable"));
                match best {
                    Some((i, _)) => (Placement::Gpu { partition: i }, true),
                    None => (Placement::Cpu, true),
                }
            }
            p => (p, false),
        }
    }

    /// Policy dispatch: picks a partition given the response-time vector.
    fn choose(
        &mut self,
        _now: f64,
        est: &TaskEstimate,
        deadline: f64,
        resp_cpu: Option<f64>,
        resp_gpu: &[f64],
    ) -> Placement {
        match self.policy {
            Policy::Paper => self.choose_paper(est, deadline, resp_cpu, resp_gpu),
            Policy::Mct => Self::argmin_placement(resp_cpu, resp_gpu),
            Policy::Met => self.choose_met(est),
            Policy::RoundRobin => self.choose_round_robin(est),
            Policy::CpuOnly => {
                if resp_cpu.is_some() {
                    Placement::Cpu
                } else {
                    // Forced to the GPU: behave like MCT among GPU queues.
                    Self::argmin_placement(None, resp_gpu)
                }
            }
            Policy::GpuOnly => Self::argmin_placement(None, resp_gpu),
        }
    }

    /// Figure 10 steps 4–6.
    fn choose_paper(
        &self,
        est: &TaskEstimate,
        deadline: f64,
        resp_cpu: Option<f64>,
        resp_gpu: &[f64],
    ) -> Placement {
        // Step 4: the before-deadline set P_BD.
        let cpu_feasible = resp_cpu.is_some_and(|r| deadline - r > 0.0);
        let gpu_feasible: Vec<usize> = resp_gpu
            .iter()
            .enumerate()
            .filter(|&(_, &r)| deadline - r > 0.0)
            .map(|(i, _)| i)
            .collect();

        if cpu_feasible || !gpu_feasible.is_empty() {
            // Step 5. CPU preference: in P_BD *and* faster than the fastest
            // GPU class.
            if cpu_feasible {
                let t_cpu = est.t_cpu.expect("cpu_feasible implies estimate");
                if t_cpu < est.t_gpu_fastest() {
                    return Placement::Cpu;
                }
            }
            // Slowest feasible GPU queue first: layout order is slowest
            // first, and the paper's FOR loop takes the first hit.
            if let Some(&i) = gpu_feasible.first() {
                return Placement::Gpu { partition: i };
            }
            // Only the CPU is feasible but it lost the speed comparison.
            // The paper's step 5 pseudocode would fall through without a
            // placement here; we submit to the CPU (the only partition
            // that still meets the deadline). Documented deviation.
            return Placement::Cpu;
        }
        // Step 6: nothing meets the deadline — earliest response wins
        // (min |T_D − T_R| with every T_R past the deadline).
        Self::argmin_placement(resp_cpu, resp_gpu)
    }

    /// MET: smallest raw execution time, ignoring queues. Deterministically
    /// picks the *first* partition of the winning class — exactly the
    /// load-blindness the heuristic is known for.
    fn choose_met(&self, est: &TaskEstimate) -> Placement {
        let best_gpu_class = est
            .t_gpu_by_class
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("times are comparable"))
            .map(|(c, _)| c)
            .expect("at least one class");
        let gpu_time = est.t_gpu_by_class[best_gpu_class];
        if let Some(t_cpu) = est.t_cpu {
            if t_cpu < gpu_time {
                return Placement::Cpu;
            }
        }
        let partition = (0..self.layout.gpu_partitions())
            .find(|&i| self.layout.class_of(i) == best_gpu_class)
            .expect("class has a partition");
        Placement::Gpu { partition }
    }

    /// Round-robin over CPU + GPU partitions, skipping the CPU when the
    /// query cannot run there.
    fn choose_round_robin(&mut self, est: &TaskEstimate) -> Placement {
        let slots = 1 + self.layout.gpu_partitions();
        for _ in 0..slots {
            let slot = self.rr_cursor % slots;
            self.rr_cursor = (self.rr_cursor + 1) % slots;
            match slot {
                0 if est.t_cpu.is_some() => return Placement::Cpu,
                0 => continue,
                g => return Placement::Gpu { partition: g - 1 },
            }
        }
        unreachable!("at least one GPU partition always exists");
    }

    /// The partition with the earliest response time.
    fn argmin_placement(resp_cpu: Option<f64>, resp_gpu: &[f64]) -> Placement {
        let mut best = resp_cpu.map(|r| (Placement::Cpu, r));
        for (i, &r) in resp_gpu.iter().enumerate() {
            if best.as_ref().is_none_or(|&(_, b)| r < b) {
                best = Some((Placement::Gpu { partition: i }, r));
            }
        }
        best.expect("at least one partition").0
    }

    /// Completion feedback (§III-G last paragraph): the measured processing
    /// time is compared with the estimate and the difference corrects the
    /// owning queue's clock, so systematic model error does not skew later
    /// placements.
    pub fn complete(&mut self, queue: PartitionId, estimated: f64, actual: f64) {
        let delta = actual - estimated;
        match queue {
            PartitionId::Cpu => self.q_cpu += delta,
            PartitionId::Translation => self.q_trans += delta,
            PartitionId::Gpu(i) => self.q_gpu[i] += delta,
        }
    }

    /// Resets all queue clocks, counters and partition health (new
    /// experiment run).
    pub fn reset(&mut self) {
        self.q_cpu = 0.0;
        self.q_trans = 0.0;
        self.q_gpu.iter_mut().for_each(|q| *q = 0.0);
        self.rr_cursor = 0;
        self.stats = SchedStats::default();
        self.health = vec![PartitionHealth::default(); self.layout.gpu_partitions()];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(t_cpu: Option<f64>, gpu: [f64; 3], t_trans: f64) -> TaskEstimate {
        TaskEstimate {
            t_cpu,
            t_gpu_by_class: gpu.to_vec(),
            t_trans,
        }
    }

    fn paper_sched() -> Scheduler {
        Scheduler::new(PartitionLayout::paper(), Policy::Paper)
    }

    // --- Step-by-step traces of Figure 10 ---

    #[test]
    fn step5_cpu_wins_when_faster_than_fastest_gpu() {
        let mut s = paper_sched();
        let e = est(Some(0.002), [0.028, 0.014, 0.007], 0.0);
        let d = s.schedule(0.0, &e, 1.0);
        assert_eq!(d.placement, Placement::Cpu);
        assert!(d.before_deadline);
        assert!((s.queue_clock(PartitionId::Cpu) - 0.002).abs() < 1e-12);
        assert_eq!(s.stats().cpu_queries, 1);
    }

    #[test]
    fn step5_slowest_feasible_gpu_when_cpu_loses() {
        let mut s = paper_sched();
        // CPU slower than the 4-SM class → GPU; all queues idle so the
        // slowest queue (partition 0, 1 SM) is feasible and chosen.
        let e = est(Some(0.050), [0.028, 0.014, 0.007], 0.0);
        let d = s.schedule(0.0, &e, 1.0);
        assert_eq!(d.placement, Placement::Gpu { partition: 0 });
        assert!((s.queue_clock(PartitionId::Gpu(0)) - 0.028).abs() < 1e-12);
    }

    #[test]
    fn step5_skips_infeasible_slow_queues() {
        let mut s = paper_sched();
        // Deadline 0.020: the 1-SM class (0.028) cannot make it, the 2-SM
        // class (0.014) can → partition 2 (first 2-SM queue).
        let e = est(None, [0.028, 0.014, 0.007], 0.0);
        let d = s.schedule(0.0, &e, 0.020);
        assert_eq!(d.placement, Placement::Gpu { partition: 2 });
        assert!(d.before_deadline);
    }

    #[test]
    fn queue_backlog_moves_placement_to_faster_partitions() {
        let mut s = paper_sched();
        let e = est(None, [0.028, 0.014, 0.007], 0.0);
        // Saturate both 1-SM queues so their response exceeds the deadline.
        for _ in 0..4 {
            s.schedule(0.0, &e, 0.060);
        }
        // The four placements: G0, G1 (both 1-SM idle first), then the
        // 1-SM queues are at 0.028 → next response 0.056 < 0.060 still ok…
        // schedule a fifth with a tighter deadline.
        let d = s.schedule(0.0, &e, 0.030);
        assert!(matches!(d.placement, Placement::Gpu { partition } if partition >= 2));
    }

    #[test]
    fn step6_picks_earliest_response_when_nothing_feasible() {
        let mut s = paper_sched();
        // Deadline far too tight for anything.
        let e = est(Some(0.5), [0.9, 0.8, 0.7], 0.0);
        let d = s.schedule(0.0, &e, 0.001);
        assert!(!d.before_deadline);
        assert_eq!(d.placement, Placement::Cpu); // 0.5 is the earliest
        assert_eq!(s.stats().infeasible, 1);
    }

    #[test]
    fn step6_gpu_when_cpu_unavailable() {
        let mut s = paper_sched();
        let e = est(None, [0.9, 0.8, 0.7], 0.0);
        let d = s.schedule(0.0, &e, 0.001);
        // Earliest response among GPUs: a 4-SM partition (first of class).
        assert_eq!(d.placement, Placement::Gpu { partition: 4 });
    }

    #[test]
    fn translation_couples_gpu_response_to_trans_queue() {
        let mut s = paper_sched();
        // Query A: translation 0.010, GPU(1SM) 0.028 → response 0.038.
        let e = est(None, [0.028, 0.014, 0.007], 0.010);
        let d = s.schedule(0.0, &e, 1.0);
        assert_eq!(d.placement, Placement::Gpu { partition: 0 });
        assert!(d.with_translation);
        assert!((d.response_time - 0.038).abs() < 1e-12);
        assert!((s.queue_clock(PartitionId::Translation) - 0.010).abs() < 1e-12);
        assert!((s.queue_clock(PartitionId::Gpu(0)) - 0.038).abs() < 1e-12);
        // Query B immediately after: the slowest queue (partition 0) is
        // still feasible and is picked again; its kernel cannot start
        // before its own backlog (0.038) nor before B's translation is done
        // (0.010 + 0.010 = 0.020) → max(0.038, 0.020) + 0.028 = 0.066.
        let d2 = s.schedule(0.0, &e, 1.0);
        assert_eq!(d2.placement, Placement::Gpu { partition: 0 });
        assert!((d2.response_time - 0.066).abs() < 1e-12);
        assert_eq!(s.stats().translated_queries, 2);
    }

    #[test]
    fn no_translation_queue_charge_for_cpu_placement() {
        let mut s = paper_sched();
        // Query with text parameters but CPU fast enough → CPU placement
        // does not need translation (cubes store raw coordinates).
        let e = est(Some(0.001), [0.028, 0.014, 0.007], 0.010);
        let d = s.schedule(0.0, &e, 1.0);
        assert_eq!(d.placement, Placement::Cpu);
        assert!(!d.with_translation);
        assert_eq!(d.t_trans, 0.0);
        assert_eq!(s.queue_clock(PartitionId::Translation), 0.0);
    }

    #[test]
    fn queue_clocks_drain_with_time() {
        let mut s = paper_sched();
        let e = est(Some(0.002), [0.028, 0.014, 0.007], 0.0);
        s.schedule(0.0, &e, 1.0); // CPU busy until 0.002
                                  // Submitting much later: the queue is idle again, so the response
                                  // starts from `now`.
        let d = s.schedule(10.0, &e, 1.0);
        assert!((d.response_time - 10.002).abs() < 1e-12);
    }

    #[test]
    fn cpu_only_feasible_but_slower_still_goes_cpu() {
        let mut s = paper_sched();
        // GPU responses all past the deadline (busy queues), CPU feasible
        // but slower than the 4-SM class: documented deviation → CPU.
        // Deadline 1.0 forces each 0.9 s query onto a fresh queue, loading
        // all six GPU queues.
        let e = est(None, [0.9, 0.9, 0.9], 0.0);
        for i in 0..6 {
            let d = s.schedule(0.0, &e, 1.0);
            assert_eq!(d.placement, Placement::Gpu { partition: i });
        }
        let e2 = est(Some(0.10), [0.05, 0.04, 0.03], 0.0);
        let d = s.schedule(0.0, &e2, 0.5);
        assert_eq!(d.placement, Placement::Cpu);
        assert!(d.before_deadline);
    }

    // --- Feedback correction ---

    #[test]
    fn completion_feedback_corrects_clock() {
        let mut s = paper_sched();
        let e = est(Some(0.010), [0.1, 0.1, 0.1], 0.0);
        s.schedule(0.0, &e, 1.0);
        assert!((s.queue_clock(PartitionId::Cpu) - 0.010).abs() < 1e-12);
        // Actual run took 0.014 → clock shifts by +0.004.
        s.complete(PartitionId::Cpu, 0.010, 0.014);
        assert!((s.queue_clock(PartitionId::Cpu) - 0.014).abs() < 1e-12);
        // Overestimates shift it back.
        s.complete(PartitionId::Cpu, 0.010, 0.006);
        assert!((s.queue_clock(PartitionId::Cpu) - 0.010).abs() < 1e-12);
    }

    // --- Baseline policies ---

    #[test]
    fn mct_balances_over_queues() {
        let mut s = Scheduler::new(PartitionLayout::paper(), Policy::Mct);
        let e = est(None, [0.028, 0.014, 0.007], 0.0);
        // First placement: fastest response = idle 4-SM partition.
        let d = s.schedule(0.0, &e, 1.0);
        assert_eq!(d.placement, Placement::Gpu { partition: 4 });
        // Second: the other 4-SM partition is now faster.
        let d2 = s.schedule(0.0, &e, 1.0);
        assert_eq!(d2.placement, Placement::Gpu { partition: 5 });
    }

    #[test]
    fn met_is_load_blind() {
        let mut s = Scheduler::new(PartitionLayout::paper(), Policy::Met);
        let e = est(None, [0.028, 0.014, 0.007], 0.0);
        for _ in 0..3 {
            let d = s.schedule(0.0, &e, 1.0);
            assert_eq!(
                d.placement,
                Placement::Gpu { partition: 4 },
                "always same queue"
            );
        }
        assert!(s.queue_clock(PartitionId::Gpu(4)) > 0.02);
        assert_eq!(s.queue_clock(PartitionId::Gpu(5)), 0.0);
    }

    #[test]
    fn met_prefers_cpu_when_faster() {
        let mut s = Scheduler::new(PartitionLayout::paper(), Policy::Met);
        let e = est(Some(0.001), [0.028, 0.014, 0.007], 0.0);
        assert_eq!(s.schedule(0.0, &e, 1.0).placement, Placement::Cpu);
    }

    #[test]
    fn round_robin_cycles_and_skips_unavailable_cpu() {
        let mut s = Scheduler::new(PartitionLayout::paper(), Policy::RoundRobin);
        let with_cpu = est(Some(0.01), [0.028, 0.014, 0.007], 0.0);
        let gpu_only = est(None, [0.028, 0.014, 0.007], 0.0);
        assert_eq!(s.schedule(0.0, &with_cpu, 1.0).placement, Placement::Cpu);
        assert_eq!(
            s.schedule(0.0, &with_cpu, 1.0).placement,
            Placement::Gpu { partition: 0 }
        );
        // Skip several, then a GPU-only query at the CPU slot jumps ahead.
        for expect in 1..=5 {
            assert_eq!(
                s.schedule(0.0, &with_cpu, 1.0).placement,
                Placement::Gpu { partition: expect }
            );
        }
        assert_eq!(
            s.schedule(0.0, &gpu_only, 1.0).placement,
            Placement::Gpu { partition: 0 },
            "CPU slot skipped for a GPU-only query"
        );
    }

    #[test]
    fn cpu_only_falls_back_when_forced() {
        let mut s = Scheduler::new(PartitionLayout::paper(), Policy::CpuOnly);
        let e = est(None, [0.028, 0.014, 0.007], 0.0);
        let d = s.schedule(0.0, &e, 1.0);
        assert!(matches!(d.placement, Placement::Gpu { .. }));
        let e2 = est(Some(5.0), [0.028, 0.014, 0.007], 0.0);
        assert_eq!(s.schedule(0.0, &e2, 1.0).placement, Placement::Cpu);
    }

    #[test]
    fn gpu_only_never_uses_cpu() {
        let mut s = Scheduler::new(PartitionLayout::paper(), Policy::GpuOnly);
        let e = est(Some(0.0001), [0.028, 0.014, 0.007], 0.0);
        for _ in 0..10 {
            assert!(!s.schedule(0.0, &e, 1.0).placement.is_cpu());
        }
        assert_eq!(s.stats().cpu_queries, 0);
        assert_eq!(s.stats().gpu_queries, 10);
    }

    #[test]
    fn reset_clears_state() {
        let mut s = paper_sched();
        let e = est(Some(0.01), [0.028, 0.014, 0.007], 0.005);
        s.schedule(0.0, &e, 1.0);
        s.reset();
        assert_eq!(s.queue_clock(PartitionId::Cpu), 0.0);
        assert_eq!(s.stats(), &SchedStats::default());
    }

    #[test]
    fn deadline_boundary_is_strict_per_paper() {
        // Step 4 requires (T_D − T_R) > 0: a response exactly on the
        // deadline is NOT in P_BD (the paper's strict inequality), so the
        // scheduler falls to step 6 and the decision reports infeasible…
        // but the chosen partition still is the earliest-response one.
        let mut s = paper_sched();
        let e = est(None, [0.028, 0.014, 0.010], 0.0);
        let d = s.schedule(0.0, &e, 0.010);
        assert!(!d.before_deadline || d.response_time < 0.010 + 1e-15);
        assert!(matches!(d.placement, Placement::Gpu { .. }));
    }

    #[test]
    fn gpu_only_query_with_cpu_feasible_goes_gpu() {
        // t_cpu = None means the cube set cannot answer: even a CPU-friendly
        // deadline must not place it on the CPU.
        let mut s = paper_sched();
        let e = est(None, [0.001, 0.001, 0.001], 0.0);
        for _ in 0..5 {
            assert!(!s.schedule(0.0, &e, 10.0).placement.is_cpu());
        }
    }

    #[test]
    fn translation_clock_drains_with_time_like_the_others() {
        let mut s = paper_sched();
        let e = est(None, [0.028, 0.014, 0.007], 0.020);
        s.schedule(0.0, &e, 1.0);
        assert!((s.queue_clock(PartitionId::Translation) - 0.020).abs() < 1e-12);
        // A much later query re-anchors the translation queue at `now`.
        let d = s.schedule(5.0, &e, 1.0);
        assert!((s.queue_clock(PartitionId::Translation) - 5.020).abs() < 1e-12);
        // Its kernel cannot start before its own translation completes.
        assert!(d.response_time >= 5.020 + 0.028 - 1e-12);
    }

    #[test]
    fn stats_feasibility_counters_are_consistent() {
        let mut s = paper_sched();
        let feasible = est(Some(0.001), [0.028, 0.014, 0.007], 0.0);
        let hopeless = est(Some(5.0), [9.0, 8.0, 7.0], 0.0);
        for _ in 0..3 {
            s.schedule(0.0, &feasible, 1.0);
        }
        for _ in 0..2 {
            s.schedule(0.0, &hopeless, 0.01);
        }
        let st = s.stats();
        assert_eq!(st.feasible, 3);
        assert_eq!(st.infeasible, 2);
        assert_eq!(st.feasible + st.infeasible, st.cpu_queries + st.gpu_queries);
    }

    #[test]
    #[should_panic(expected = "classes must match")]
    fn class_mismatch_rejected() {
        let mut s = paper_sched();
        let e = TaskEstimate {
            t_cpu: None,
            t_gpu_by_class: vec![0.1],
            t_trans: 0.0,
        };
        s.schedule(0.0, &e, 1.0);
    }

    // --- Live-load observations ---

    #[test]
    fn idle_live_load_changes_nothing() {
        let e = est(Some(0.002), [0.028, 0.014, 0.007], 0.010);
        let mut a = paper_sched();
        let mut b = paper_sched();
        let load = LiveLoad::idle(a.layout().gpu_partitions());
        for now in [0.0, 0.5, 0.6] {
            let da = a.schedule(now, &e, 1.0);
            let db = b.schedule_with_load(now, &e, 1.0, Some(&load));
            assert_eq!(da, db, "idle load is a no-op at t={now}");
        }
    }

    #[test]
    fn inflight_floor_raises_response_times() {
        // The CPU clock says idle, but 50 ms of charged work is physically
        // still in flight → its response is floored at now + 0.050.
        let mut s = paper_sched();
        let e = est(Some(0.002), [0.028, 0.014, 0.007], 0.0);
        let mut load = LiveLoad::idle(s.layout().gpu_partitions());
        load.cpu_inflight_secs = 0.050;
        let d = s.schedule_with_load(0.0, &e, 1.0, Some(&load));
        // CPU response 0.052 is no longer faster than the idle 4-SM class
        // (0.007), but step 5 compares raw times, so the CPU still wins…
        // unless the deadline filter removed it. With a 1 s deadline both
        // remain feasible and the CPU preference uses T_CPU alone.
        assert_eq!(d.placement, Placement::Cpu);
        assert!((d.response_time - 0.052).abs() < 1e-12);
        // The charged clock absorbed the floor: the next query sees it.
        assert!((s.queue_clock(PartitionId::Cpu) - 0.052).abs() < 1e-12);
    }

    #[test]
    fn inflight_floor_can_move_query_off_a_late_partition() {
        // Tight deadline: floored CPU response misses, GPUs still make it.
        let mut s = paper_sched();
        let e = est(Some(0.002), [0.028, 0.014, 0.007], 0.0);
        let mut load = LiveLoad::idle(s.layout().gpu_partitions());
        load.cpu_inflight_secs = 0.050;
        let d = s.schedule_with_load(0.0, &e, 0.040, Some(&load));
        assert!(matches!(d.placement, Placement::Gpu { .. }));
        assert!(d.before_deadline);
    }

    #[test]
    fn min_response_time_is_a_read_only_lower_bound() {
        let mut s = paper_sched();
        let e = est(Some(0.002), [0.028, 0.014, 0.007], 0.0);
        let before = s.clone();
        let m = s.min_response_time(0.0, &e, None);
        assert!((m - 0.002).abs() < 1e-12, "idle system: fastest is the CPU");
        assert_eq!(s, before, "peeking charges nothing");
        // Every actual placement responds no earlier than the bound.
        let d = s.schedule(0.0, &e, 1.0);
        assert!(d.response_time >= m - 1e-15);
        // GPU-only estimate: bound is the fastest class.
        let e2 = est(None, [0.028, 0.014, 0.007], 0.0);
        let m2 = s.min_response_time(10.0, &e2, None);
        assert!((m2 - 10.007).abs() < 1e-12);
    }

    // --- Partition health / quarantine ---

    fn quarantine(s: &mut Scheduler, partition: usize, now: f64) {
        for _ in 0..s.health_config().quarantine_after {
            s.record_partition_failure(partition, now);
        }
    }

    #[test]
    fn failures_quarantine_and_exclude_a_partition() {
        let mut s = paper_sched();
        assert_eq!(s.partition_health(0), HealthState::Healthy);
        s.record_partition_failure(0, 0.0);
        assert_eq!(s.partition_health(0), HealthState::Degraded);
        s.record_partition_failure(0, 0.0);
        s.record_partition_failure(0, 0.0);
        assert_eq!(s.partition_health(0), HealthState::Quarantined);
        assert_eq!(s.stats().quarantines, 1);
        assert_eq!(s.quarantined_partitions(), vec![0]);
        // Step 5 normally picks the slowest feasible queue (partition 0);
        // quarantined, its sibling 1-SM queue wins instead.
        let e = est(None, [0.028, 0.014, 0.007], 0.0);
        let d = s.schedule(0.0, &e, 1.0);
        assert_eq!(d.placement, Placement::Gpu { partition: 1 });
        assert!(!d.rerouted, "never offered, so not a re-route");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut s = paper_sched();
        s.record_partition_failure(2, 0.0);
        s.record_partition_failure(2, 0.0);
        s.record_partition_success(2);
        assert_eq!(s.partition_health(2), HealthState::Healthy);
        s.record_partition_failure(2, 0.0);
        assert_eq!(s.partition_health(2), HealthState::Degraded);
    }

    #[test]
    fn load_blind_policy_pick_is_rerouted_off_quarantine() {
        // MET always picks the first partition of the fastest class
        // (partition 4); with it quarantined the work must move.
        let mut s = Scheduler::new(PartitionLayout::paper(), Policy::Met);
        quarantine(&mut s, 4, 0.0);
        let e = est(None, [0.028, 0.014, 0.007], 0.0);
        let d = s.schedule(0.0, &e, 1.0);
        assert_eq!(d.placement, Placement::Gpu { partition: 5 });
        assert!(d.rerouted);
        assert_eq!(s.stats().rerouted, 1);
    }

    #[test]
    fn all_gpus_quarantined_falls_back_to_cpu_without_estimate() {
        let mut s = paper_sched();
        for p in 0..s.layout().gpu_partitions() {
            quarantine(&mut s, p, 0.0);
        }
        let e = est(None, [0.028, 0.014, 0.007], 0.0);
        // min_response_time stays finite: shedding must not drop the
        // query when the CPU fallback can still run it.
        let m = s.min_response_time(0.0, &e, None);
        assert!((m - 0.056).abs() < 1e-12, "slowest class × fallback factor");
        let d = s.schedule(0.0, &e, 1.0);
        assert_eq!(d.placement, Placement::Cpu);
        assert!(d.rerouted);
        assert!((d.t_proc - 0.056).abs() < 1e-12);
        assert!((s.queue_clock(PartitionId::Cpu) - 0.056).abs() < 1e-12);
    }

    #[test]
    fn probe_readmits_after_cooldown_half_open() {
        let mut s = paper_sched();
        quarantine(&mut s, 3, 0.0);
        assert!(s.probe(0.1).is_empty(), "cool-down still running");
        let readmitted = s.probe(0.5);
        assert_eq!(readmitted, vec![3]);
        assert_eq!(s.partition_health(3), HealthState::Degraded);
        assert_eq!(s.stats().readmissions, 1);
        // Half-open: a single failure re-quarantines.
        s.record_partition_failure(3, 0.6);
        assert_eq!(s.partition_health(3), HealthState::Quarantined);
        assert_eq!(s.stats().quarantines, 2);
        // A clean recovery instead: probe again, then succeed.
        let t = 0.6 + s.health_config().cooldown_secs;
        assert_eq!(s.probe(t), vec![3]);
        s.record_partition_success(3);
        assert_eq!(s.partition_health(3), HealthState::Healthy);
    }

    #[test]
    fn reset_clears_health() {
        let mut s = paper_sched();
        quarantine(&mut s, 1, 0.0);
        s.reset();
        assert_eq!(s.partition_health(1), HealthState::Healthy);
        assert!(s.quarantined_partitions().is_empty());
    }

    #[test]
    fn quarantine_shifts_feasibility_not_correctness() {
        // With one partition down, a deterministic workload still places
        // every query on live partitions and decisions stay reproducible.
        let mk = || {
            let mut s = paper_sched();
            quarantine(&mut s, 5, 0.0);
            s
        };
        let (mut a, mut b) = (mk(), mk());
        let e = est(Some(0.05), [0.028, 0.014, 0.007], 0.002);
        for i in 0..20 {
            let now = i as f64 * 0.001;
            let da = a.schedule(now, &e, 0.2);
            let db = b.schedule(now, &e, 0.2);
            assert_eq!(da, db);
            assert_ne!(da.placement, Placement::Gpu { partition: 5 });
        }
    }

    #[test]
    fn traced_schedule_matches_untraced_and_exposes_candidates() {
        let mk = || {
            let mut s = paper_sched();
            quarantine(&mut s, 0, 0.0);
            s
        };
        let (mut a, mut b) = (mk(), mk());
        let e = est(Some(0.002), [0.028, 0.014, 0.007], 0.003);
        let da = a.schedule(0.0, &e, 1.0);
        let (db, trace) = b.schedule_with_load_traced(0.0, &e, 1.0, None);
        assert_eq!(da, db, "tracing must not change placement");
        assert_eq!(a, b, "tracing must not change scheduler state");
        assert_eq!(trace.policy, Policy::Paper);
        assert_eq!(trace.resp_gpu.len(), 6);
        assert_eq!(trace.resp_gpu[0], None, "quarantined partition excluded");
        assert!(trace.resp_gpu[1].is_some());
        assert_eq!(trace.health[0], HealthState::Quarantined);
        assert_eq!(trace.health[1], HealthState::Healthy);
        assert!((trace.resp_cpu.unwrap() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn translation_inflight_delays_gpu_responses() {
        let mut s = paper_sched();
        let e = est(None, [0.028, 0.014, 0.007], 0.010);
        let mut load = LiveLoad::idle(s.layout().gpu_partitions());
        load.trans_inflight_secs = 0.100;
        // Kernel start is coupled to translation: ready no earlier than
        // now + 0.100 (floor) + 0.010 (own translation).
        let m = s.min_response_time(0.0, &e, Some(&load));
        assert!((m - (0.100 + 0.010 + 0.007)).abs() < 1e-12);
    }
}
