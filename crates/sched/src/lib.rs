//! Deadline-aware CPU/GPU co-scheduling for hybrid OLAP queries — the
//! paper's third contribution, the Figure-10 algorithm.
//!
//! The system exposes a set of *partitions*, each with its own queue:
//!
//! * one **CPU processing partition** answering queries from resident OLAP
//!   cubes with the parallel (rayon/OpenMP) implementation;
//! * one **CPU translation partition** running text-to-integer translation
//!   for GPU-bound queries ("the scheduler divides multi-core processor(s)
//!   … into a processing partition and a preprocessing partition");
//! * several **GPU partitions** (the paper's layout for the 14-SM Tesla
//!   C2070: 2×1 SM, 2×2 SM, 2×4 SM) answering queries from the fact table
//!   in GPU memory.
//!
//! For each incoming query the scheduler estimates the processing time on
//! every partition class from the measured performance models
//! (`holap-model`), derives per-partition *response times* (queue drain +
//! own processing, with GPU response coupled to the translation queue via
//! `max(T_Q|Gi, T_Q|TRANS + T_TRANS)`), and places the query:
//!
//! 1. among partitions that meet the deadline (`P_BD`), the CPU is chosen
//!    iff it would beat the fastest GPU class outright (`T_CPU < T_GPU3`);
//! 2. otherwise the **slowest feasible GPU queue** is chosen, deliberately
//!    keeping fast partitions free "for the computationally expensive
//!    queries that might be submitted later";
//! 3. if no partition can meet the deadline, the one with the earliest
//!    response time is used ("deliver the answer as soon as possible").
//!
//! Completion feedback corrects queue clocks by the estimation error so the
//! model's inaccuracy does not accumulate (§III-G, last paragraph).
//!
//! Besides the paper policy, classic heuristics from the related work are
//! provided for head-to-head evaluation: MET and MCT (Braun et al.),
//! round-robin, and single-resource (CPU-only / GPU-only) policies.
//!
//! The scheduler is clock-agnostic: all times are `f64` seconds on a caller
//! supplied timeline, so the same code drives both the wall-clock engine
//! (`holap-core`) and the virtual-time simulator (`holap-sim`).
//!
//! # Example
//!
//! ```
//! use holap_sched::{PartitionLayout, Policy, Scheduler, TaskEstimate};
//!
//! let mut sched = Scheduler::new(PartitionLayout::paper(), Policy::Paper);
//! // A query answerable by the CPU in 2 ms, by 1/2/4-SM GPU partitions in
//! // 28/14/7 ms, with no translation needed; deadline window 100 ms.
//! let est = TaskEstimate {
//!     t_cpu: Some(0.002),
//!     t_gpu_by_class: vec![0.028, 0.014, 0.007],
//!     t_trans: 0.0,
//! };
//! let d = sched.schedule(0.0, &est, 0.1);
//! assert!(d.placement.is_cpu()); // CPU beats the fastest GPU class
//! ```

#![warn(missing_docs)]

pub mod estimate;
pub mod health;
pub mod partition;
pub mod policy;
pub mod scheduler;

pub use estimate::{Estimator, QueryFeatures, TaskEstimate};
pub use health::{HealthConfig, HealthState};
pub use partition::{PartitionId, PartitionLayout};
pub use policy::Policy;
pub use scheduler::{Decision, DecisionTrace, LiveLoad, Placement, SchedStats, Scheduler};
