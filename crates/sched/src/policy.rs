//! Placement policies: the paper's algorithm plus the baselines it is
//! evaluated against.

use serde::{Deserialize, Serialize};

/// Which placement policy the scheduler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Policy {
    /// The paper's Figure-10 algorithm: deadline set `P_BD`, CPU preference
    /// when it beats the fastest GPU class, slowest-feasible-GPU-first,
    /// earliest-response fallback.
    Paper,
    /// Minimum Completion Time (Braun et al. \[2\]): always the partition
    /// with the earliest estimated response time, ignoring deadlines.
    Mct,
    /// Minimum Execution Time (Siegel & Ali \[15\]): the partition class
    /// with the smallest raw processing time, ignoring queue state — the
    /// classic load-blind heuristic.
    Met,
    /// Round-robin over all eligible partitions.
    RoundRobin,
    /// CPU whenever a resident cube can answer; GPU only when forced.
    CpuOnly,
    /// GPU always (the "disabled CPU processing" configuration used for
    /// the paper's translation-overhead measurement).
    GpuOnly,
}

impl Policy {
    /// All policies, for sweep-style benchmarks.
    pub const ALL: [Policy; 6] = [
        Policy::Paper,
        Policy::Mct,
        Policy::Met,
        Policy::RoundRobin,
        Policy::CpuOnly,
        Policy::GpuOnly,
    ];

    /// Short stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Paper => "paper",
            Policy::Mct => "mct",
            Policy::Met => "met",
            Policy::RoundRobin => "round-robin",
            Policy::CpuOnly => "cpu-only",
            Policy::GpuOnly => "gpu-only",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Policy::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Policy::ALL.len());
    }
}
