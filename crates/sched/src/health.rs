//! Per-partition health tracking: the quarantine state machine.
//!
//! The Figure-10 algorithm assumes every partition it places work on will
//! finish that work. Under kernel faults that optimism turns one flaky
//! partition into a stream of failed queries, so the scheduler tracks a
//! small health state machine per GPU partition:
//!
//! ```text
//!            failure                consecutive >= quarantine_after
//! Healthy ──────────► Degraded ──────────────────────► Quarantined
//!    ▲                   │  ▲                               │
//!    └───── success ─────┘  └───── probe after cool-down ───┘
//! ```
//!
//! Quarantined partitions are excluded from placement (their response
//! times become infinite) and queued work is re-routed — to another GPU
//! partition when one is healthy, otherwise to the CPU partition, which
//! the paper's hybrid MOLAP/ROLAP split keeps always available. A probe
//! after the cool-down re-admits the partition *half-open*: it re-enters
//! as Degraded with one failure of headroom, so a still-broken partition
//! is re-quarantined by its next failure instead of absorbing another
//! full burst of queries.

use serde::{Deserialize, Serialize};

/// Health of one GPU partition as seen by the scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthState {
    /// No recent failures; fully schedulable.
    #[default]
    Healthy,
    /// Recent failures below the quarantine threshold; still schedulable.
    Degraded,
    /// Too many consecutive failures; excluded from placement until a
    /// probe re-admits it after the cool-down.
    Quarantined,
}

/// Tuning knobs of the quarantine state machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthConfig {
    /// Consecutive failures that quarantine a partition.
    pub quarantine_after: u32,
    /// Seconds a quarantined partition sits out before a probe may
    /// re-admit it.
    pub cooldown_secs: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            quarantine_after: 3,
            cooldown_secs: 0.5,
        }
    }
}

/// Mutable per-partition health record (scheduler internal).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub(crate) struct PartitionHealth {
    pub(crate) state: HealthState,
    pub(crate) consecutive_failures: u32,
    pub(crate) total_failures: u64,
    /// Absolute time the quarantine cool-down expires (meaningful only
    /// while `state == Quarantined`).
    pub(crate) quarantined_until: f64,
}

impl PartitionHealth {
    /// Records one failed execution at `now`. Returns the resulting state.
    pub(crate) fn record_failure(&mut self, now: f64, cfg: &HealthConfig) -> HealthState {
        self.consecutive_failures += 1;
        self.total_failures += 1;
        match self.state {
            HealthState::Quarantined => {
                // A failure while quarantined (e.g. a probe query or work
                // that raced the quarantine) extends the cool-down.
                self.quarantined_until = now + cfg.cooldown_secs;
            }
            _ if self.consecutive_failures >= cfg.quarantine_after => {
                self.state = HealthState::Quarantined;
                self.quarantined_until = now + cfg.cooldown_secs;
            }
            _ => self.state = HealthState::Degraded,
        }
        self.state
    }

    /// Records one successful execution.
    pub(crate) fn record_success(&mut self) {
        self.consecutive_failures = 0;
        // Quarantine exits only through a probe; a late success from work
        // that raced the quarantine must not short-circuit the cool-down.
        if self.state != HealthState::Quarantined {
            self.state = HealthState::Healthy;
        }
    }

    /// Re-admits the partition half-open if its cool-down has expired at
    /// `now`. Returns whether it was re-admitted.
    pub(crate) fn probe(&mut self, now: f64, cfg: &HealthConfig) -> bool {
        if self.state == HealthState::Quarantined && now >= self.quarantined_until {
            self.state = HealthState::Degraded;
            // Half-open: one more failure re-quarantines immediately.
            self.consecutive_failures = cfg.quarantine_after.saturating_sub(1);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failures_walk_the_ladder() {
        let cfg = HealthConfig::default();
        let mut h = PartitionHealth::default();
        assert_eq!(h.record_failure(0.0, &cfg), HealthState::Degraded);
        assert_eq!(h.record_failure(0.0, &cfg), HealthState::Degraded);
        assert_eq!(h.record_failure(0.0, &cfg), HealthState::Quarantined);
        assert_eq!(h.total_failures, 3);
        assert!((h.quarantined_until - 0.5).abs() < 1e-12);
    }

    #[test]
    fn success_heals_degraded_but_not_quarantined() {
        let cfg = HealthConfig::default();
        let mut h = PartitionHealth::default();
        h.record_failure(0.0, &cfg);
        h.record_success();
        assert_eq!(h.state, HealthState::Healthy);
        assert_eq!(h.consecutive_failures, 0);
        for _ in 0..3 {
            h.record_failure(0.0, &cfg);
        }
        h.record_success();
        assert_eq!(h.state, HealthState::Quarantined, "only a probe re-admits");
    }

    #[test]
    fn probe_reopens_half_open_after_cooldown() {
        let cfg = HealthConfig::default();
        let mut h = PartitionHealth::default();
        for _ in 0..3 {
            h.record_failure(0.0, &cfg);
        }
        assert!(!h.probe(0.1, &cfg), "cool-down not expired");
        assert!(h.probe(0.5, &cfg));
        assert_eq!(h.state, HealthState::Degraded);
        // Half-open: one failure re-quarantines.
        assert_eq!(h.record_failure(0.6, &cfg), HealthState::Quarantined);
        assert!((h.quarantined_until - 1.1).abs() < 1e-12);
    }

    #[test]
    fn failure_while_quarantined_extends_cooldown() {
        let cfg = HealthConfig::default();
        let mut h = PartitionHealth::default();
        for _ in 0..3 {
            h.record_failure(0.0, &cfg);
        }
        h.record_failure(0.4, &cfg);
        assert!(!h.probe(0.5, &cfg), "cool-down was extended to 0.9");
        assert!(h.probe(0.9, &cfg));
    }
}
