//! `holap-cli` binary entry point: thin shell over [`holap_cli::run`].

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match holap_cli::run(&raw) {
        Ok(out) => println!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
