//! Command-line front-end over stored OLAP system images.
//!
//! ```text
//! holap-cli generate --out DIR [--rows N] [--scale K] [--skew S] [--dict sorted|linear|hashed] [--seed N]
//! holap-cli cube     --store DIR --resolutions 1,2 [--measure M]
//! holap-cli info     --store DIR
//! holap-cli query    --store DIR 'select sum(measure0) where time.level1 in 0..3'
//! holap-cli batch    --store DIR [--shedding shed] 'query one; query two'
//! ```
//!
//! `generate` writes a synthetic fact table + dictionaries into a store
//! directory; `cube` materialises cubes into it (smallest-parent
//! roll-ups); `info` prints the image's inventory; `query` brings the
//! hybrid system up from the image (prebuilt cubes, no re-aggregation)
//! and executes one DSL query.
//!
//! Argument parsing is hand-rolled (the workspace's dependency policy
//! excludes a CLI framework); every command is a pure function from
//! parsed arguments to an output string, which is what the unit tests
//! drive.

#![warn(missing_docs)]

use holap_core::gpusim::{FaultKind, FaultPlan};
use holap_core::observability::{traces_to_json, QueryTrace, SpanKind};
use holap_core::{
    AdmissionConfig, BackpressurePolicy, EngineQuery, HybridSystem, SheddingPolicy, SystemConfig,
};
use holap_cube::CubeSchema;
use holap_dict::DictKind;
use holap_sched::Policy;
use holap_store::{load_system, save_cube, save_system};
use holap_workload::{FactsSpec, NameStyle, PaperHierarchy, SyntheticFacts, TextLevel};
use std::fmt::Write as _;
use std::path::PathBuf;

/// A fatal CLI error with a user-facing message.
#[derive(Debug, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Flags that take no value: present means `true`.
const BOOL_FLAGS: &[&str] = &["anomalies-only", "json"];

/// Minimal flag parser: `--key value` pairs (plus valueless boolean
/// switches) and positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    pub fn parse(raw: &[String]) -> Result<Self, CliError> {
        let mut out = Args::default();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if BOOL_FLAGS.contains(&key) {
                    out.flags.push((key.to_owned(), "true".to_owned()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| CliError(format!("flag --{key} needs a value")))?;
                out.flags.push((key.to_owned(), value.clone()));
            } else {
                out.positional.push(a.clone());
            }
        }
        Ok(out)
    }

    fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<&str, CliError> {
        self.get(key)
            .ok_or_else(|| CliError(format!("missing required flag --{key}")))
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError(format!("flag --{key}: cannot parse `{v}`"))),
        }
    }
}

fn dict_kind(name: &str) -> Result<DictKind, CliError> {
    match name {
        "sorted" => Ok(DictKind::Sorted),
        "linear" => Ok(DictKind::Linear),
        "hashed" => Ok(DictKind::Hashed),
        other => err(format!(
            "unknown dictionary kind `{other}` (sorted|linear|hashed)"
        )),
    }
}

/// `generate`: synthesise a fact table + dictionaries into a store dir.
pub fn cmd_generate(args: &Args) -> Result<String, CliError> {
    let out: PathBuf = args.required("out")?.into();
    let rows: usize = args.parsed("rows", 100_000)?;
    let scale: u32 = args.parsed("scale", 8)?;
    let seed: u64 = args.parsed("seed", 42)?;
    let skew: f64 = args.parsed("skew", 0.0)?;
    let kind = dict_kind(args.get("dict").unwrap_or("sorted"))?;
    let hierarchy = if scale <= 1 {
        PaperHierarchy::default()
    } else {
        PaperHierarchy::scaled_down(scale)
    };
    let facts = SyntheticFacts::generate(&FactsSpec {
        schema: hierarchy.table_schema(),
        rows,
        text_levels: vec![
            TextLevel {
                dim: 1,
                level: 3,
                style: NameStyle::City,
            },
            TextLevel {
                dim: 2,
                level: 3,
                style: NameStyle::Brand,
            },
        ],
        dict_kind: kind,
        skew: (skew > 0.0).then_some(skew),
        seed,
    });
    save_system(&out, &facts.table, &[], &facts.dicts)
        .map_err(|e| CliError(format!("save failed: {e}")))?;
    Ok(format!(
        "generated {rows} rows ({} MB) with {} text columns into {}",
        facts.table.bytes() / (1024 * 1024),
        facts.text_columns.len(),
        out.display()
    ))
}

/// `cube`: materialise cubes into an existing store dir.
pub fn cmd_cube(args: &Args) -> Result<String, CliError> {
    let store: PathBuf = args.required("store")?.into();
    let measure: usize = args.parsed("measure", 0)?;
    let resolutions: Vec<usize> = args
        .required("resolutions")?
        .split(',')
        .map(|p| p.trim().parse::<usize>())
        .collect::<Result<_, _>>()
        .map_err(|_| CliError("--resolutions expects e.g. `1,2`".into()))?;
    if resolutions.is_empty() {
        return err("--resolutions needs at least one level");
    }
    let (table, _cubes, _dicts) =
        load_system(&store).map_err(|e| CliError(format!("load failed: {e}")))?;
    let schema = CubeSchema::from_table_schema(table.schema());
    let mut set = holap_cube::CubeSet::new(schema);
    set.materialize_from_table(&table, measure, &resolutions);
    let mut out = String::new();
    for r in set.resolutions() {
        let cube = set.cube(r).expect("materialised");
        save_cube(&store.join(format!("cube-r{r}.holap")), cube)
            .map_err(|e| CliError(format!("save failed: {e}")))?;
        let _ = writeln!(
            out,
            "materialised cube r{r}: shape {:?}, {} KB on disk path cube-r{r}.holap",
            cube.shape(),
            cube.bytes() / 1024
        );
    }
    Ok(out.trim_end().to_owned())
}

/// `info`: inventory of a store dir.
pub fn cmd_info(args: &Args) -> Result<String, CliError> {
    let store: PathBuf = args.required("store")?.into();
    let (table, cubes, dicts) =
        load_system(&store).map_err(|e| CliError(format!("load failed: {e}")))?;
    let mut out = String::new();
    let schema = table.schema();
    let _ = writeln!(out, "store: {}", store.display());
    let _ = writeln!(
        out,
        "fact table: {} rows, {} columns, {:.1} MB",
        table.rows(),
        schema.total_columns(),
        table.bytes() as f64 / (1024.0 * 1024.0)
    );
    for (d, dim) in schema.dimensions.iter().enumerate() {
        let levels: Vec<String> = dim
            .levels
            .iter()
            .map(|l| format!("{}({})", l.name, l.cardinality))
            .collect();
        let _ = writeln!(out, "  dim {d} {}: {}", dim.name, levels.join(" -> "));
    }
    for (m, ms) in schema.measures.iter().enumerate() {
        let _ = writeln!(out, "  measure {m}: {}", ms.name);
    }
    let _ = writeln!(out, "dictionaries ({:?}):", dicts.kind());
    for col in dicts.columns() {
        let _ = writeln!(out, "  {col}: {} entries", dicts.dict_len(col));
    }
    if cubes.is_empty() {
        let _ = writeln!(out, "cubes: none (run `holap-cli cube`)");
    }
    for cube in &cubes {
        let _ = writeln!(
            out,
            "cube r{}: shape {:?}, {:.1} MB dense-equivalent, {} KB stored",
            cube.resolution(),
            cube.shape(),
            cube.size_mb(),
            cube.bytes() / 1024
        );
    }
    Ok(out.trim_end().to_owned())
}

fn policy(name: &str) -> Result<Policy, CliError> {
    match name {
        "paper" => Ok(Policy::Paper),
        "mct" => Ok(Policy::Mct),
        "met" => Ok(Policy::Met),
        "round-robin" => Ok(Policy::RoundRobin),
        "cpu-only" => Ok(Policy::CpuOnly),
        "gpu-only" => Ok(Policy::GpuOnly),
        other => err(format!(
            "unknown policy `{other}` (paper|mct|met|round-robin|cpu-only|gpu-only)"
        )),
    }
}

/// `query`: run one DSL query against a store image.
pub fn cmd_query(args: &Args) -> Result<String, CliError> {
    let store: PathBuf = args.required("store")?.into();
    let text = args
        .positional
        .first()
        .ok_or_else(|| CliError("query text expected as a positional argument".into()))?;
    let config = SystemConfig {
        policy: policy(args.get("policy").unwrap_or("paper"))?,
        ..SystemConfig::default()
    };
    let (table, cubes, dicts) =
        load_system(&store).map_err(|e| CliError(format!("load failed: {e}")))?;
    let mut builder = HybridSystem::builder(config).facts((table, dicts));
    for cube in cubes {
        builder = builder.prebuilt_cube(cube);
    }
    let system = builder
        .build()
        .map_err(|e| CliError(format!("build failed: {e}")))?;
    let outcome = system
        .query(text)
        .map_err(|e| CliError(format!("query failed: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "answer: sum = {:.3}, count = {}, avg = {}",
        outcome.answer.sum,
        outcome.answer.count,
        outcome
            .answer
            .avg()
            .map(|a| format!("{a:.3}"))
            .unwrap_or_else(|| "-".into())
    );
    if let Some(groups) = &outcome.groups {
        for (key, a) in groups {
            let _ = writeln!(
                out,
                "  group {key}: sum = {:.3}, count = {}",
                a.sum, a.count
            );
        }
    }
    let _ = writeln!(
        out,
        "ran on {:?}{} in {:.2} ms (deadline {})",
        outcome.placement,
        if outcome.translated {
            " via translation partition"
        } else {
            ""
        },
        outcome.latency_secs * 1e3,
        if outcome.met_deadline {
            "met"
        } else {
            "missed"
        }
    );
    Ok(out.trim_end().to_owned())
}

fn backpressure(name: &str) -> Result<BackpressurePolicy, CliError> {
    match name {
        "block" => Ok(BackpressurePolicy::Block),
        "reject" => Ok(BackpressurePolicy::Reject),
        other => err(format!(
            "unknown backpressure policy `{other}` (block|reject)"
        )),
    }
}

fn shedding(name: &str) -> Result<SheddingPolicy, CliError> {
    match name {
        "off" => Ok(SheddingPolicy::Off),
        "shed" => Ok(SheddingPolicy::Shed),
        "reject" => Ok(SheddingPolicy::Reject),
        other => err(format!(
            "unknown shedding policy `{other}` (off|shed|reject)"
        )),
    }
}

/// `batch`: run many `;`-separated DSL queries through the asynchronous
/// admission pipeline in one call and report per-query outcomes plus the
/// pipeline's statistics (queue peak, shed/rejected, latency percentiles).
pub fn cmd_batch(args: &Args) -> Result<String, CliError> {
    let store: PathBuf = args.required("store")?.into();
    let script = args
        .positional
        .first()
        .ok_or_else(|| CliError("queries expected as one `;`-separated positional".into()))?;
    let texts: Vec<&str> = script
        .split(';')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect();
    if texts.is_empty() {
        return err("no queries in the batch");
    }
    let config = SystemConfig {
        policy: policy(args.get("policy").unwrap_or("paper"))?,
        admission: AdmissionConfig {
            queue_capacity: args.parsed("queue", 256)?,
            partition_queue_capacity: args.parsed("partition-queue", 64)?,
            backpressure: backpressure(args.get("backpressure").unwrap_or("block"))?,
            shedding: shedding(args.get("shedding").unwrap_or("off"))?,
        },
        ..SystemConfig::default()
    };
    let (table, cubes, dicts) =
        load_system(&store).map_err(|e| CliError(format!("load failed: {e}")))?;
    let mut builder = HybridSystem::builder(config).facts((table, dicts));
    for cube in cubes {
        builder = builder.prebuilt_cube(cube);
    }
    let system = builder
        .build()
        .map_err(|e| CliError(format!("build failed: {e}")))?;

    let tickets = system.submit_batch(texts.iter().copied());
    let mut out = String::new();
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.and_then(|t| t.wait()) {
            Ok(o) if o.shed => {
                let _ = writeln!(out, "[{i}] shed (predicted to miss its deadline)");
            }
            Ok(o) => {
                let _ = writeln!(
                    out,
                    "[{i}] sum = {:.3}, count = {} on {:?} in {:.2} ms (deadline {})",
                    o.answer.sum,
                    o.answer.count,
                    o.placement,
                    o.latency_secs * 1e3,
                    if o.met_deadline { "met" } else { "missed" }
                );
            }
            Err(e) => {
                let _ = writeln!(out, "[{i}] error: {e}");
            }
        }
    }
    let s = system.stats();
    let _ = writeln!(
        out,
        "batch: {} completed ({} cpu, {} gpu), {} shed, {} rejected, peak queue depth {}",
        s.completed, s.cpu_queries, s.gpu_queries, s.shed, s.rejected, s.admission_peak_depth
    );
    let _ = writeln!(
        out,
        "latency: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, deadline hit ratio {:.2}",
        s.p50_latency_secs() * 1e3,
        s.p95_latency_secs() * 1e3,
        s.p99_latency_secs() * 1e3,
        s.deadline_hit_ratio()
    );
    Ok(out.trim_end().to_owned())
}

/// A mixed demo workload: coarse cube-resident queries plus finest-level
/// queries that must run on the GPU partitions.
fn demo_mix(queries: usize) -> Vec<EngineQuery> {
    (0..queries)
        .map(|i| {
            let v = i as u32;
            match i % 3 {
                0 => EngineQuery::new().range(0, 1, v % 2, 1 + v % 2),
                1 => EngineQuery::new().range(0, 2, v % 4, 3 + v % 9),
                _ => EngineQuery::new().range(0, 3, v % 5, 5 + v % 5),
            }
        })
        .collect()
}

/// `faults`: run a workload under injected GPU faults and report the
/// degradation ladder — retries, quarantines, failovers, availability.
pub fn cmd_faults(args: &Args) -> Result<String, CliError> {
    let store: PathBuf = args.required("store")?.into();
    let queries: usize = args.parsed("queries", 200)?;
    let rate: f64 = args.parsed("rate", 0.05)?;
    let seed: u64 = args.parsed("seed", 5)?;
    let dead: Vec<usize> = match args.get("dead") {
        None => Vec::new(),
        Some(v) => v
            .split(',')
            .map(|p| p.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| CliError("--dead expects e.g. `0` or `0,2`".into()))?,
    };
    let config = SystemConfig {
        policy: policy(args.get("policy").unwrap_or("paper"))?,
        ..SystemConfig::default()
    };
    let gpu_partitions = config.layout.gpu_partitions();
    let mut plan = FaultPlan::new(seed);
    if rate > 0.0 {
        plan = plan.with_failure_rate(rate, FaultKind::Error);
    }
    for &p in &dead {
        if p >= gpu_partitions {
            return err(format!(
                "--dead partition {p} out of range ({gpu_partitions} GPU partitions)"
            ));
        }
        plan = plan.with_dead_partition(p);
    }
    let (table, cubes, dicts) =
        load_system(&store).map_err(|e| CliError(format!("load failed: {e}")))?;
    let mut builder = HybridSystem::builder(config)
        .facts((table, dicts))
        .fault_plan(plan);
    for cube in cubes {
        builder = builder.prebuilt_cube(cube);
    }
    let system = builder
        .build()
        .map_err(|e| CliError(format!("build failed: {e}")))?;

    let mix = demo_mix(queries);
    let tickets = system.submit_batch(mix.iter());
    let mut answered = 0u64;
    let mut errored = 0u64;
    for t in tickets {
        match t.and_then(|t| t.wait()) {
            Ok(_) => answered += 1,
            Err(_) => errored += 1,
        }
    }

    let s = system.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fault demo: {queries} queries, failure rate {:.1}%, dead partitions {dead:?}, seed {seed}",
        rate * 100.0
    );
    let _ = writeln!(
        out,
        "availability: {:.1}% ({answered}/{queries} answered, {errored} errors)",
        100.0 * answered as f64 / queries.max(1) as f64
    );
    let _ = writeln!(
        out,
        "containment: {} partition failures, {} retries, {} timeouts",
        s.partition_failures, s.retries, s.timeouts
    );
    let _ = writeln!(
        out,
        "degradation: {} quarantines, {} re-admissions, {} rerouted, {} failed",
        s.quarantines, s.readmissions, s.rerouted, s.failed
    );
    let health: Vec<String> = (0..gpu_partitions)
        .map(|p| format!("{p}:{:?}", system.partition_health(p)))
        .collect();
    let _ = writeln!(out, "partition health: {}", health.join(" "));
    let _ = writeln!(
        out,
        "latency: p50 {:.2} ms, p99 {:.2} ms, deadline hit ratio {:.2}",
        s.p50_latency_secs() * 1e3,
        s.p99_latency_secs() * 1e3,
        s.deadline_hit_ratio()
    );
    Ok(out.trim_end().to_owned())
}

fn format_event(kind: &SpanKind) -> String {
    match kind {
        SpanKind::Submitted {
            class,
            needs_translation,
        } => format!("submitted class={class:?} translation={needs_translation}"),
        SpanKind::CacheHit => "cache hit".into(),
        SpanKind::ProvablyEmpty => "provably empty".into(),
        SpanKind::Dispatched { queue_depth } => format!("dispatched queue_depth={queue_depth}"),
        SpanKind::Shed {
            min_response_at,
            deadline,
        } => format!("shed min_response_at={min_response_at:.6} deadline={deadline:.6}"),
        SpanKind::Scheduled {
            placement,
            with_translation,
            estimated_proc_secs,
            before_deadline,
            rerouted,
            ..
        } => format!(
            "scheduled {placement:?} translation={with_translation} est={:.3}ms feasible={before_deadline} rerouted={rerouted}",
            estimated_proc_secs * 1e3
        ),
        SpanKind::TranslationDone { secs, lookups } => {
            format!("translation done {lookups} lookups in {:.3}ms", secs * 1e3)
        }
        SpanKind::KernelStart { partition, attempt } => {
            format!("kernel start gpu{partition} attempt={attempt}")
        }
        SpanKind::KernelEnd {
            partition,
            attempt,
            sms,
            wall_secs,
            ..
        } => format!(
            "kernel end gpu{partition} attempt={attempt} sms={sms} wall={:.3}ms",
            wall_secs * 1e3
        ),
        SpanKind::CpuExec { secs } => format!("cpu exec {:.3}ms", secs * 1e3),
        SpanKind::Fault {
            partition,
            attempt,
            error,
            timed_out,
        } => format!("FAULT gpu{partition} attempt={attempt} timeout={timed_out}: {error}"),
        SpanKind::Retry {
            retry,
            backoff_secs,
        } => format!("retry #{retry} backoff={:.3}ms", backoff_secs * 1e3),
        SpanKind::HealthTransition { partition, state } => {
            format!("health gpu{partition} -> {state:?}")
        }
        SpanKind::Failover { from_partition } => format!("failover gpu{from_partition} -> cpu"),
        SpanKind::Completed {
            placement,
            latency_secs,
            met_deadline,
            residual_secs,
            ..
        } => format!(
            "completed on {placement:?} in {:.3}ms deadline_met={met_deadline} residual={:+.3}ms",
            latency_secs * 1e3,
            residual_secs * 1e3
        ),
        SpanKind::Failed { error } => format!("FAILED: {error}"),
    }
}

fn format_trace(t: &QueryTrace) -> String {
    let mut out = String::new();
    let anomalies = if t.anomalies.is_empty() {
        String::new()
    } else {
        format!(
            " [{}]",
            t.anomalies
                .iter()
                .map(|a| format!("{a:?}"))
                .collect::<Vec<_>>()
                .join(",")
        )
    };
    let _ = writeln!(
        out,
        "query {} — {:?}{anomalies} in {:.3} ms, {} events",
        t.query_id,
        t.status,
        (t.finished_at - t.submitted_at) * 1e3,
        t.events.len()
    );
    for e in &t.events {
        let _ = writeln!(
            out,
            "  +{:.6}s {}",
            e.at - t.submitted_at,
            format_event(&e.kind)
        );
    }
    out
}

/// `trace`: run a workload (optionally with injected faults) and dump the
/// flight recorder — the last K traces or only the anomalous ones, as
/// human-readable timelines or JSON.
pub fn cmd_trace(args: &Args) -> Result<String, CliError> {
    let store: PathBuf = args.required("store")?.into();
    let queries: usize = args.parsed("queries", 60)?;
    let rate: f64 = args.parsed("rate", 0.0)?;
    let seed: u64 = args.parsed("seed", 5)?;
    let last: usize = args.parsed("last", 5)?;
    let anomalies_only = args.flag("anomalies-only");
    let json = args.flag("json");
    let dead: Vec<usize> = match args.get("dead") {
        None => Vec::new(),
        Some(v) => v
            .split(',')
            .map(|p| p.trim().parse::<usize>())
            .collect::<Result<_, _>>()
            .map_err(|_| CliError("--dead expects e.g. `0` or `0,2`".into()))?,
    };
    let config = SystemConfig {
        policy: policy(args.get("policy").unwrap_or("paper"))?,
        ..SystemConfig::default()
    };
    let mut plan = FaultPlan::new(seed);
    if rate > 0.0 {
        plan = plan.with_failure_rate(rate, FaultKind::Error);
    }
    for &p in &dead {
        plan = plan.with_dead_partition(p);
    }
    let (table, cubes, dicts) =
        load_system(&store).map_err(|e| CliError(format!("load failed: {e}")))?;
    let mut builder = HybridSystem::builder(config).facts((table, dicts));
    if rate > 0.0 || !dead.is_empty() {
        builder = builder.fault_plan(plan);
    }
    for cube in cubes {
        builder = builder.prebuilt_cube(cube);
    }
    let system = builder
        .build()
        .map_err(|e| CliError(format!("build failed: {e}")))?;
    if !system.obs_enabled() {
        return err("observability is disabled in this configuration");
    }
    for t in system.submit_batch(demo_mix(queries).iter()) {
        let _ = t.and_then(|t| t.wait());
    }

    let selected = if anomalies_only {
        system.anomalous_traces()
    } else {
        system.recent_traces(last)
    };
    if json {
        return Ok(traces_to_json(&selected, true));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight recorder: {} trace(s){} of {queries} queries",
        selected.len(),
        if anomalies_only {
            " (anomalous only)"
        } else {
            ""
        }
    );
    for t in &selected {
        out.push_str(&format_trace(t));
    }
    Ok(out.trim_end().to_owned())
}

/// `metrics`: run a workload and print the engine's Prometheus-style
/// metrics exposition.
pub fn cmd_metrics(args: &Args) -> Result<String, CliError> {
    let store: PathBuf = args.required("store")?.into();
    let queries: usize = args.parsed("queries", 30)?;
    let config = SystemConfig {
        policy: policy(args.get("policy").unwrap_or("paper"))?,
        ..SystemConfig::default()
    };
    let (table, cubes, dicts) =
        load_system(&store).map_err(|e| CliError(format!("load failed: {e}")))?;
    let mut builder = HybridSystem::builder(config).facts((table, dicts));
    for cube in cubes {
        builder = builder.prebuilt_cube(cube);
    }
    let system = builder
        .build()
        .map_err(|e| CliError(format!("build failed: {e}")))?;
    for t in system.submit_batch(demo_mix(queries).iter()) {
        let _ = t.and_then(|t| t.wait());
    }
    system
        .metrics_text()
        .ok_or_else(|| CliError("observability is disabled in this configuration".into()))
}

/// Usage text.
pub const USAGE: &str = "\
holap-cli — hybrid GPU/CPU OLAP system (reproduction of Malik et al. 2012)

USAGE:
  holap-cli generate --out DIR [--rows N] [--scale K] [--skew S] [--dict sorted|linear|hashed] [--seed N]
  holap-cli cube     --store DIR --resolutions 1,2 [--measure M]
  holap-cli info     --store DIR
  holap-cli query    --store DIR [--policy paper|mct|met|round-robin|cpu-only|gpu-only] \\
                     'select sum(measure0) where time.level1 in 0..3'
  holap-cli batch    --store DIR [--policy P] [--backpressure block|reject] \\
                     [--shedding off|shed|reject] [--queue N] [--partition-queue N] \\
                     'query one; query two; ...'
  holap-cli faults   --store DIR [--queries N] [--rate F] [--dead P,Q] [--seed N] [--policy P]
  holap-cli trace    --store DIR [--queries N] [--rate F] [--dead P,Q] [--seed N] \\
                     [--last K] [--anomalies-only] [--json]
  holap-cli metrics  --store DIR [--queries N] [--policy P]
";

/// Dispatches a full argument vector (excluding the program name).
pub fn run(raw: &[String]) -> Result<String, CliError> {
    let Some(cmd) = raw.first() else {
        return err(USAGE);
    };
    let args = Args::parse(&raw[1..])?;
    match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "cube" => cmd_cube(&args),
        "info" => cmd_info(&args),
        "query" => cmd_query(&args),
        "batch" => cmd_batch(&args),
        "faults" => cmd_faults(&args),
        "trace" => cmd_trace(&args),
        "metrics" => cmd_metrics(&args),
        "help" | "--help" | "-h" => Ok(USAGE.to_owned()),
        other => err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("holap-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn full_workflow_generate_cube_info_query() {
        let dir = tempdir("flow");
        let dirs = dir.to_str().unwrap();

        let out = run(&s(&[
            "generate", "--out", dirs, "--rows", "5000", "--seed", "3",
        ]))
        .unwrap();
        assert!(out.contains("generated 5000 rows"), "{out}");

        let out = run(&s(&["cube", "--store", dirs, "--resolutions", "1,2"])).unwrap();
        assert!(out.contains("cube r1"), "{out}");
        assert!(out.contains("cube r2"), "{out}");

        let out = run(&s(&["info", "--store", dirs])).unwrap();
        assert!(out.contains("fact table: 5000 rows"), "{out}");
        assert!(out.contains("cube r1"), "{out}");
        assert!(out.contains("dictionaries"), "{out}");

        let out = run(&s(&[
            "query",
            "--store",
            dirs,
            "select sum(measure0) where time.level1 in 0..1",
        ]))
        .unwrap();
        assert!(out.contains("answer: sum ="), "{out}");
        assert!(out.contains("ran on"), "{out}");

        // Grouped query through the CLI too.
        let out = run(&s(&[
            "query",
            "--store",
            dirs,
            "select sum(measure0) where time.level1 in 0..3 group by time.level0",
        ]))
        .unwrap();
        assert!(out.contains("group "), "{out}");

        // Policy selection is honoured.
        let out = run(&s(&[
            "query",
            "--store",
            dirs,
            "--policy",
            "gpu-only",
            "select sum(measure0) where time.level1 in 0..3",
        ]))
        .unwrap();
        assert!(out.contains("ran on Gpu"), "{out}");
        assert!(
            run(&s(&["query", "--store", dirs, "--policy", "bogus", "q"]))
                .unwrap_err()
                .0
                .contains("unknown policy")
        );

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn skewed_generation_flag() {
        let dir = tempdir("skew");
        let dirs = dir.to_str().unwrap();
        let out = run(&s(&[
            "generate", "--out", dirs, "--rows", "2000", "--skew", "1.1",
        ]))
        .unwrap();
        assert!(out.contains("generated 2000 rows"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_friendly() {
        assert!(run(&s(&["bogus"]))
            .unwrap_err()
            .0
            .contains("unknown command"));
        assert!(run(&s(&["generate"])).unwrap_err().0.contains("--out"));
        assert!(run(&s(&[
            "cube",
            "--store",
            "/nonexistent",
            "--resolutions",
            "1"
        ]))
        .unwrap_err()
        .0
        .contains("load failed"));
        assert!(run(&s(&["generate", "--out"]))
            .unwrap_err()
            .0
            .contains("needs a value"));
        assert!(run(&s(&["generate", "--out", "/tmp/x", "--rows", "abc"]))
            .unwrap_err()
            .0
            .contains("cannot parse"));
        assert!(run(&[]).unwrap_err().0.contains("USAGE"));
        assert!(run(&s(&["help"])).unwrap().contains("USAGE"));
    }

    #[test]
    fn batch_runs_queries_and_reports_pipeline_stats() {
        let dir = tempdir("batch");
        let dirs = dir.to_str().unwrap();
        run(&s(&[
            "generate", "--out", dirs, "--rows", "4000", "--seed", "5",
        ]))
        .unwrap();
        run(&s(&["cube", "--store", dirs, "--resolutions", "1,2"])).unwrap();

        let out = run(&s(&[
            "batch",
            "--store",
            dirs,
            "select sum(measure0) where time.level1 in 0..1; \
             select sum(measure0) where time.level1 in 0..3 group by time.level0; \
             select sum(measure0) where time.level3 in 0..40",
        ]))
        .unwrap();
        assert!(out.contains("[0] sum ="), "{out}");
        assert!(out.contains("[2] sum ="), "{out}");
        assert!(out.contains("batch: 3 completed"), "{out}");
        assert!(out.contains("latency: p50"), "{out}");

        // Shedding engages for a hopeless deadline.
        let out = run(&s(&[
            "batch",
            "--store",
            dirs,
            "--shedding",
            "shed",
            "select sum(measure0) where time.level3 in 0..40 deadline 0.000001",
        ]))
        .unwrap();
        assert!(out.contains("[0] shed"), "{out}");
        assert!(out.contains("1 shed"), "{out}");

        // A parse error fails that item, not the batch.
        let out = run(&s(&[
            "batch",
            "--store",
            dirs,
            "not a query; select sum(measure0) where time.level1 in 0..1",
        ]))
        .unwrap();
        assert!(out.contains("[0] error:"), "{out}");
        assert!(out.contains("[1] sum ="), "{out}");

        assert!(
            run(&s(&["batch", "--store", dirs, "--shedding", "maybe", "q"]))
                .unwrap_err()
                .0
                .contains("unknown shedding policy")
        );
        assert!(run(&s(&[
            "batch",
            "--store",
            dirs,
            "--backpressure",
            "panic",
            "q"
        ]))
        .unwrap_err()
        .0
        .contains("unknown backpressure policy"));
        assert!(run(&s(&["batch", "--store", dirs, " ; ; "]))
            .unwrap_err()
            .0
            .contains("no queries"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faults_command_reports_degradation_ladder() {
        let dir = tempdir("faults");
        let dirs = dir.to_str().unwrap();
        run(&s(&[
            "generate", "--out", dirs, "--rows", "4000", "--seed", "9",
        ]))
        .unwrap();
        run(&s(&["cube", "--store", dirs, "--resolutions", "1,2"])).unwrap();

        // A dead partition plus a light error rate: everything still
        // answers (retry + quarantine + CPU failover), and the report
        // shows the ladder engaging.
        let out = run(&s(&[
            "faults",
            "--store",
            dirs,
            "--queries",
            "60",
            "--rate",
            "0.02",
            "--dead",
            "0",
            "--seed",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("availability: 100.0%"), "{out}");
        assert!(out.contains("0 failed"), "{out}");
        assert!(out.contains("partition health:"), "{out}");
        assert!(!out.contains("degradation: 0 quarantines"), "{out}");

        // No faults at all: clean run, no degradation counters.
        let out = run(&s(&[
            "faults",
            "--store",
            dirs,
            "--queries",
            "30",
            "--rate",
            "0",
        ]))
        .unwrap();
        assert!(out.contains("availability: 100.0%"), "{out}");
        assert!(out.contains("0 quarantines"), "{out}");

        // Out-of-range dead partition is a friendly error.
        assert!(run(&s(&["faults", "--store", dirs, "--dead", "99"]))
            .unwrap_err()
            .0
            .contains("out of range"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_command_dumps_query_timelines() {
        let dir = tempdir("trace");
        let dirs = dir.to_str().unwrap();
        run(&s(&[
            "generate", "--out", dirs, "--rows", "4000", "--seed", "11",
        ]))
        .unwrap();
        run(&s(&["cube", "--store", dirs, "--resolutions", "1,2"])).unwrap();

        // Clean run: the last 3 traces are readable timelines.
        let out = run(&s(&[
            "trace",
            "--store",
            dirs,
            "--queries",
            "30",
            "--last",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("flight recorder: 3 trace(s)"), "{out}");
        assert!(out.contains("query "), "{out}");
        assert!(out.contains("scheduled"), "{out}");
        assert!(out.contains("completed on"), "{out}");

        // Faulty run, anomalies only, as JSON.
        let out = run(&s(&[
            "trace",
            "--store",
            dirs,
            "--queries",
            "45",
            "--rate",
            "0.05",
            "--dead",
            "0",
            "--anomalies-only",
            "--json",
        ]))
        .unwrap();
        assert!(out.trim_start().starts_with('['), "{out}");
        assert!(out.contains("\"event\""), "{out}");
        assert!(out.contains("fault"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_command_prints_exposition() {
        let dir = tempdir("metrics");
        let dirs = dir.to_str().unwrap();
        run(&s(&[
            "generate", "--out", dirs, "--rows", "4000", "--seed", "13",
        ]))
        .unwrap();
        run(&s(&["cube", "--store", dirs, "--resolutions", "1,2"])).unwrap();

        let out = run(&s(&["metrics", "--store", dirs, "--queries", "12"])).unwrap();
        assert!(out.contains("holap_engine_submitted_total 12"), "{out}");
        assert!(
            out.contains("# TYPE holap_engine_latency_seconds histogram"),
            "{out}"
        );
        assert!(out.contains("holap_engine_admission_depth"), "{out}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_dict_kind_rejected() {
        let e = run(&s(&["generate", "--out", "/tmp/x", "--dict", "btree"])).unwrap_err();
        assert!(e.0.contains("unknown dictionary kind"));
    }
}
