//! End-to-end integration: generated data → hybrid system → answers that
//! match brute force, for every placement path.

use holap::prelude::*;
use std::sync::Arc;

fn facts(rows: usize, kind: DictKind, seed: u64) -> SyntheticFacts {
    let hierarchy = PaperHierarchy::scaled_down(8);
    SyntheticFacts::generate(&FactsSpec {
        schema: hierarchy.table_schema(),
        rows,
        text_levels: vec![
            TextLevel {
                dim: 1,
                level: 3,
                style: NameStyle::City,
            },
            TextLevel {
                dim: 2,
                level: 3,
                style: NameStyle::Brand,
            },
        ],
        dict_kind: kind,
        skew: None,
        seed,
    })
}

/// Brute-force ground truth over the raw table.
fn brute(f: &SyntheticFacts, conds: &[(usize, usize, u32, u32)], measure: usize) -> (f64, u64) {
    let m = f.table.measure_column(measure);
    let cols: Vec<&[u32]> = conds
        .iter()
        .map(|&(d, l, _, _)| f.table.dim_column(d, l))
        .collect();
    let mut sum = 0.0;
    let mut count = 0u64;
    'rows: for row in 0..f.table.rows() {
        for (c, col) in conds.iter().zip(&cols) {
            if col[row] < c.2 || col[row] > c.3 {
                continue 'rows;
            }
        }
        sum += m[row];
        count += 1;
    }
    (sum, count)
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-6 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn hybrid_answers_match_brute_force_across_policies() {
    let data = facts(30_000, DictKind::Sorted, 1);
    let cases: Vec<Vec<(usize, usize, u32, u32)>> = vec![
        vec![(0, 0, 0, 0)],
        vec![(0, 1, 1, 2), (1, 1, 0, 1)],
        vec![(0, 2, 3, 30), (2, 0, 1, 1)],
        vec![(0, 3, 10, 150), (1, 3, 5, 100), (2, 3, 0, 80)],
    ];
    for policy in [Policy::Paper, Policy::CpuOnly, Policy::GpuOnly, Policy::Mct] {
        let system = HybridSystem::builder(SystemConfig {
            policy,
            ..SystemConfig::default()
        })
        .facts(facts(30_000, DictKind::Sorted, 1))
        .cube_at(1)
        .cube_at(2)
        .cube_at(3)
        .build()
        .unwrap();
        for conds in &cases {
            let mut q = EngineQuery::new();
            for &(d, l, f, t) in conds {
                q = q.range(d, l, f, t);
            }
            let out = system.execute(&q).unwrap();
            let (sum, count) = brute(&data, conds, 0);
            assert_eq!(out.answer.count, count, "{policy:?} {conds:?}");
            assert!(close(out.answer.sum, sum), "{policy:?} {conds:?}");
        }
    }
}

#[test]
fn text_queries_agree_between_dictionary_kinds() {
    // The same data stream encoded with each dictionary kind must answer
    // equality text queries identically.
    let reference = facts(10_000, DictKind::Sorted, 2);
    let city = reference.dicts.decode("geo.level3", 9).unwrap().to_owned();
    let mut counts = Vec::new();
    for kind in [DictKind::Linear, DictKind::Sorted, DictKind::Hashed] {
        let system = HybridSystem::builder(SystemConfig::default())
            .facts(facts(10_000, kind, 2))
            .cube_at(2)
            .build()
            .unwrap();
        let out = system
            .execute(&EngineQuery::new().text_eq(1, 3, &city))
            .unwrap();
        counts.push(out.answer.count);
    }
    assert_eq!(counts[0], counts[1]);
    assert_eq!(counts[1], counts[2]);
    assert!(counts[0] > 0, "the city occurs in the data");
}

#[test]
fn dsl_and_builder_agree() {
    let system = HybridSystem::builder(SystemConfig::default())
        .facts(facts(10_000, DictKind::Sorted, 3))
        .cube_at(2)
        .build()
        .unwrap();
    let a = system
        .query("select sum(measure0) where time.level2 in 2..11 and geo.level0 = 1")
        .unwrap();
    let b = system
        .execute(&EngineQuery::new().range(0, 2, 2, 11).range(1, 0, 1, 1))
        .unwrap();
    assert_eq!(a.answer, b.answer);
}

#[test]
fn scheduler_splits_load_between_partitions() {
    let system = Arc::new(
        HybridSystem::builder(SystemConfig::default())
            .facts(facts(50_000, DictKind::Sorted, 4))
            .cube_at(1)
            .cube_at(2)
            .build()
            .unwrap(),
    );
    // Mixed burst: coarse (cube-friendly) and finest-level (GPU-only).
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let system = Arc::clone(&system);
        handles.push(std::thread::spawn(move || {
            for i in 0..20u32 {
                let q = if i % 2 == 0 {
                    EngineQuery::new().range(0, 1, t % 2, 3)
                } else {
                    EngineQuery::new().range(0, 3, i, i + 40)
                };
                system.execute(&q).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = system.stats();
    assert_eq!(s.completed, 80);
    assert!(s.cpu_queries > 0, "coarse queries hit the cubes");
    assert!(s.gpu_queries > 0, "finest-level queries hit the GPU");
}

#[test]
fn multi_level_conditions_agree_across_substrates() {
    // Eq. 11: several conditions on one dimension at different levels.
    let data = facts(25_000, DictKind::Sorted, 11);
    let conds = [(0usize, 0usize, 1u32, 1u32), (0, 2, 15, 55), (1, 1, 0, 2)];
    let (sum, count) = brute(&data, &conds, 0);
    assert!(count > 0, "the conjunction selects something");
    for policy in [Policy::CpuOnly, Policy::GpuOnly, Policy::Paper] {
        let system = HybridSystem::builder(SystemConfig {
            policy,
            ..SystemConfig::default()
        })
        .facts(facts(25_000, DictKind::Sorted, 11))
        .cube_at(2)
        .cube_at(3)
        .build()
        .unwrap();
        let q = EngineQuery::new()
            .range(0, 0, 1, 1)
            .range(0, 2, 15, 55)
            .range(1, 1, 0, 2);
        let out = system.execute(&q).unwrap();
        assert_eq!(out.answer.count, count, "{policy:?}");
        assert!(close(out.answer.sum, sum), "{policy:?}");
        // DSL with a repeated dimension parses and agrees.
        let dsl = system
            .query(
                "select sum(measure0) where time.level0 = 1 \
                 and time.level2 in 15..55 and geo.level1 in 0..2",
            )
            .unwrap();
        assert_eq!(dsl.answer.count, count, "{policy:?} via DSL");
    }
}

#[test]
fn contradictory_conditions_answer_empty_without_error() {
    let system = HybridSystem::builder(SystemConfig::default())
        .facts(facts(5_000, DictKind::Sorted, 12))
        .cube_at(2)
        .build()
        .unwrap();
    // Year 0 but months that belong to year 3 (level1 has 4/ year).
    let out = system
        .execute(&EngineQuery::new().range(0, 0, 0, 0).range(0, 1, 3, 3))
        .unwrap();
    assert_eq!(out.answer.count, 0);
    assert_eq!(out.answer.sum, 0.0);
}

#[test]
fn gpu_memory_pressure_is_enforced() {
    use holap::gpusim::DeviceConfig;
    let err = HybridSystem::builder(SystemConfig::default())
        .facts(facts(50_000, DictKind::Sorted, 5))
        .device(DeviceConfig::tiny(1024)) // 1 KB of "global memory"
        .build();
    assert!(err.is_err(), "a 50k-row table cannot fit in 1 KB");
}

#[test]
fn concurrent_submit_matches_serial_execute() {
    // N threads × M queries through the asynchronous admission pipeline
    // must produce exactly the answers the synchronous path produces on an
    // identically-built system, and the stats totals must line up.
    const THREADS: u32 = 8;
    const PER_THREAD: u32 = 5;
    let build = || {
        HybridSystem::builder(SystemConfig::default())
            .facts(facts(30_000, DictKind::Sorted, 21))
            .cube_at(1)
            .cube_at(2)
            .build()
            .unwrap()
    };
    let serial = build();
    let concurrent = Arc::new(build());
    let query_for = |t: u32, i: u32| {
        if i % 2 == 0 {
            EngineQuery::new().range(0, 1, t % 3, 3)
        } else {
            EngineQuery::new().range(0, 3, t * 7 + i, t * 7 + i + 50)
        }
    };
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let sys = Arc::clone(&concurrent);
        handles.push(std::thread::spawn(move || {
            let mut answers = Vec::new();
            for i in 0..PER_THREAD {
                let ticket = sys.submit(&query_for(t, i)).unwrap();
                answers.push(ticket.wait().unwrap().answer);
            }
            (t, answers)
        }));
    }
    for h in handles {
        let (t, answers) = h.join().unwrap();
        for (i, got) in answers.into_iter().enumerate() {
            let want = serial.execute(&query_for(t, i as u32)).unwrap().answer;
            assert_eq!(got.count, want.count, "thread {t} query {i}");
            assert!(close(got.sum, want.sum), "thread {t} query {i}");
        }
    }
    let s = concurrent.stats();
    assert_eq!(s.completed, (THREADS * PER_THREAD) as u64);
    assert_eq!(s.cpu_queries + s.gpu_queries, s.completed);
    assert_eq!(s.shed, 0);
    assert_eq!(s.rejected, 0);
    assert_eq!(s.admission_depth, 0, "everything drained");
    assert_eq!(s.latency.count(), s.completed);
    assert!(s.p50_latency_secs() <= s.p95_latency_secs());
}

#[test]
fn reject_backpressure_sheds_submissions_not_answers() {
    // Capacity-1 queues + Reject: a burst must produce rejections, and
    // every accepted ticket must still resolve to a real answer.
    let system = HybridSystem::builder(SystemConfig {
        admission: AdmissionConfig {
            queue_capacity: 1,
            partition_queue_capacity: 1,
            backpressure: BackpressurePolicy::Reject,
            ..AdmissionConfig::default()
        },
        ..SystemConfig::default()
    })
    .facts(facts(20_000, DictKind::Sorted, 22))
    .cube_at(1)
    .cube_at(2)
    .build()
    .unwrap();
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for i in 0..200u32 {
        match system.submit(&EngineQuery::new().range(0, 3, i % 7, 60)) {
            Ok(t) => tickets.push(t),
            Err(EngineError::Overloaded(_)) => rejected += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(
        rejected > 0,
        "a 200-query burst must overflow capacity-1 queues"
    );
    let accepted = tickets.len() as u64;
    assert!(accepted > 0, "the pipeline still accepts work");
    for t in tickets {
        let out = t.wait().unwrap();
        assert!(out.answer.count > 0);
    }
    let s = system.stats();
    assert_eq!(s.rejected, rejected);
    assert_eq!(s.completed, accepted);
}

#[test]
fn load_shedding_raises_the_deadline_hit_ratio() {
    // Acceptance criterion for the admission pipeline: with shedding on,
    // hopeless queries are dropped (shed > 0) and the surviving queries
    // meet their deadlines at a higher ratio than the no-shedding baseline
    // run over the same workload.
    let build = |shedding| {
        HybridSystem::builder(SystemConfig {
            admission: AdmissionConfig {
                shedding,
                ..AdmissionConfig::default()
            },
            ..SystemConfig::default()
        })
        .facts(facts(20_000, DictKind::Sorted, 23))
        .cube_at(1)
        .cube_at(2)
        .build()
        .unwrap()
    };
    let run = |sys: &HybridSystem| {
        for i in 0..10u32 {
            // Hopeless: finest level (GPU-only, modeled in milliseconds)
            // with a 1 µs deadline — no partition can ever make it.
            sys.execute(&EngineQuery::new().range(0, 3, i, i + 40).deadline(1e-6))
                .unwrap();
            // Feasible: coarse cube query with a 10 s deadline.
            sys.execute(&EngineQuery::new().range(0, 1, i % 3, 3).deadline(10.0))
                .unwrap();
        }
    };
    let baseline = build(SheddingPolicy::Off);
    run(&baseline);
    let shedding = build(SheddingPolicy::Shed);
    run(&shedding);

    let b = baseline.stats();
    let s = shedding.stats();
    assert_eq!(b.shed, 0);
    assert_eq!(b.completed, 20, "baseline runs everything");
    assert!(b.deadline_hit_ratio() <= 0.5, "hopeless queries all miss");
    assert_eq!(s.shed, 10, "shedding drops exactly the hopeless queries");
    assert_eq!(s.completed, 10, "feasible queries still complete");
    assert!(
        s.deadline_hit_ratio() > b.deadline_hit_ratio(),
        "survivors meet deadlines at a higher ratio ({} vs {})",
        s.deadline_hit_ratio(),
        b.deadline_hit_ratio()
    );
}

#[test]
fn avg_is_consistent_with_sum_and_count() {
    let system = HybridSystem::builder(SystemConfig::default())
        .facts(facts(10_000, DictKind::Sorted, 6))
        .cube_at(2)
        .build()
        .unwrap();
    let out = system
        .query("select avg(measure0) where time.level1 = 2")
        .unwrap();
    let avg = out.answer.avg().unwrap();
    assert!(close(avg * out.answer.count as f64, out.answer.sum));
}
