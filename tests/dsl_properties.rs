//! Property-based tests of the query DSL: programmatically rendered
//! queries must parse back to the structured form they were rendered
//! from (print → parse = id).

use holap::core::dsl;
use holap::core::{ConditionRange, EngineQuery};
use holap::dict::TextCondition;
use holap::table::TableSchema;
use proptest::prelude::*;

fn schema() -> TableSchema {
    TableSchema::builder()
        .dimension("time", &[("year", 10), ("month", 120)])
        .dimension("geo", &[("region", 8), ("city", 64)])
        .measure("sales")
        .measure("qty")
        .build()
}

/// Renders a structured query as DSL text.
fn render(q: &EngineQuery, schema: &TableSchema) -> String {
    let mut out = format!("select sum({})", schema.measures[q.measure].name);
    if !q.conditions.is_empty() {
        out.push_str(" where ");
        let parts: Vec<String> = q
            .conditions
            .iter()
            .map(|c| {
                let dim = &schema.dimensions[c.dim];
                let col = format!("{}.{}", dim.name, dim.levels[c.level].name);
                match &c.range {
                    ConditionRange::Coords { from, to } if from == to => {
                        format!("{col} = {from}")
                    }
                    ConditionRange::Coords { from, to } => format!("{col} in {from}..{to}"),
                    ConditionRange::Text(TextCondition::Eq(s)) => format!("{col} = '{s}'"),
                    ConditionRange::Text(TextCondition::Range { from, to }) => {
                        format!("{col} in '{from}'..'{to}'")
                    }
                    ConditionRange::Text(TextCondition::Contains(ps)) => {
                        let quoted: Vec<String> = ps.iter().map(|p| format!("'{p}'")).collect();
                        format!("{col} contains {}", quoted.join(", "))
                    }
                    ConditionRange::All => unreachable!("not rendered"),
                }
            })
            .collect();
        out.push_str(&parts.join(" and "));
    }
    if let Some((d, l)) = q.group_by {
        let dim = &schema.dimensions[d];
        out.push_str(&format!(" group by {}.{}", dim.name, dim.levels[l].name));
    }
    if let Some(t) = q.deadline_secs {
        out.push_str(&format!(" deadline {t}"));
    }
    out
}

fn condition_strategy() -> impl Strategy<Value = (usize, usize, ConditionRange)> {
    (0usize..2, 0usize..2).prop_flat_map(|(dim, level)| {
        let range = prop_oneof![
            (0u32..50, 0u32..50).prop_map(|(a, b)| ConditionRange::Coords {
                from: a.min(b),
                to: a.max(b),
            }),
            "[a-z]{1,6}".prop_map(|s| ConditionRange::Text(TextCondition::eq(s))),
            ("[a-z]{1,4}", "[m-z]{1,4}")
                .prop_map(|(a, b)| { ConditionRange::Text(TextCondition::range(a, b)) }),
            proptest::collection::vec("[a-z]{1,5}", 1..3)
                .prop_map(|ps| ConditionRange::Text(TextCondition::contains(ps))),
        ];
        (Just(dim), Just(level), range)
    })
}

fn query_strategy() -> impl Strategy<Value = EngineQuery> {
    (
        proptest::collection::vec(condition_strategy(), 0..3),
        0usize..2,
        proptest::option::of((0usize..2, 0usize..2)),
        proptest::option::of(1u32..100),
    )
        .prop_map(|(conds, measure, group_by, deadline)| {
            let mut q = EngineQuery::new().measure(measure);
            let mut used = std::collections::HashSet::new();
            for (dim, level, range) in conds {
                if used.insert(dim) {
                    q.conditions
                        .push(holap::core::EngineCondition { dim, level, range });
                }
            }
            q.group_by = group_by;
            q.deadline_secs = deadline.map(|d| f64::from(d) / 10.0);
            q
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// print → parse → resolve reproduces the structured query exactly.
    #[test]
    fn render_parse_roundtrip(q in query_strategy()) {
        let schema = schema();
        let text = render(&q, &schema);
        let parsed = dsl::parse(&text)
            .unwrap_or_else(|e| panic!("failed to parse `{text}`: {e}"));
        let back = parsed
            .resolve(&schema)
            .unwrap_or_else(|e| panic!("failed to resolve `{text}`: {e}"));
        prop_assert_eq!(back, q, "text was: {}", text);
    }

    /// Arbitrary junk never panics the parser — it errors.
    #[test]
    fn parser_never_panics(text in "[ -~]{0,80}") {
        let _ = dsl::parse(&text);
    }
}
