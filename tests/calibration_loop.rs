//! The full calibration loop, end to end: measure this machine → fit a
//! `SystemProfile` → round-trip it through JSON (what the `calibrate`
//! binary emits) → drive the scheduler and the engine with it.
//!
//! This is the workflow the paper prescribes in §III-G ("the system
//! performance variables … are measured by benchmarks and stored inside
//! the scheduler") — here asserted as a regression test with tiny sweeps.

use holap::cube::{bandwidth, Region};
use holap::dict::{Dictionary, LinearDict};
use holap::model::{CpuPerfModel, DictPerfModel, SystemProfile};
use holap::prelude::*;
use holap::sched::{Estimator, QueryFeatures};
use holap::workload::name_pool;
use std::time::Instant;

/// Measures a small cube-processing sweep and fits a piecewise CPU model.
fn fit_host_cpu_model() -> CpuPerfModel {
    let sizes = [0.5f64, 1.0, 2.0, 4.0, 8.0, 16.0];
    let cube = bandwidth::synthetic_cube_of_mb(16.0);
    let total_cells = cube.cells();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &mb in &sizes {
        let cells = (((mb / 16.0) * total_cells as f64).max(1.0) as u32).min(cube.shape()[0]);
        let region = Region::new(vec![(0, cells - 1)]);
        let s = bandwidth::measure_aggregation(&cube, &region, 1, 2);
        xs.push(s.size_mb);
        ys.push(s.secs.max(1e-9));
    }
    CpuPerfModel::fit(&xs, &ys, 4.0)
}

/// Measures linear-dictionary lookups and fits the translation model.
fn fit_host_dict_model() -> DictPerfModel {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for len in [2_000usize, 8_000, 32_000] {
        let names = name_pool(len, NameStyle::City, 42);
        let dict = LinearDict::build(names.iter().map(String::as_str));
        let needle = names.last().unwrap();
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            std::hint::black_box(dict.encode(needle));
            best = best.min(t0.elapsed().as_secs_f64());
        }
        xs.push(len as f64);
        ys.push(best);
    }
    DictPerfModel::fit(&xs, &ys)
}

#[test]
fn measured_profile_drives_scheduler_and_engine() {
    // 1. Measure + fit.
    let mut profile = SystemProfile::paper();
    let host_cpu = fit_host_cpu_model();
    profile.set_cpu(8, host_cpu);
    profile.dict = fit_host_dict_model();

    // Sanity of the fits: positive predictions, monotone-ish.
    assert!(profile.cpu(8).unwrap().estimate_secs(8.0) > 0.0);
    assert!(profile.dict.lookup_secs(1_000_000) > profile.dict.lookup_secs(1_000));

    // 2. Round-trip through JSON — the calibrate binary's output format.
    let json = serde_json::to_string_pretty(&profile).unwrap();
    let loaded: SystemProfile = serde_json::from_str(&json).unwrap();
    assert_eq!(loaded, profile);

    // 3. The scheduler consumes it.
    let layout = PartitionLayout::paper();
    let estimator = Estimator::new(loaded.clone(), layout.clone());
    let est = estimator.estimate(&QueryFeatures {
        cpu_subcube_mb: Some(8.0),
        gpu_column_fraction: 0.3,
        translation_dict_lens: vec![32_000],
    });
    assert!(est.t_cpu.unwrap() > 0.0);
    assert!(est.t_trans > 0.0);
    let mut sched = Scheduler::new(layout, Policy::Paper);
    let d = sched.schedule(0.0, &est, 1.0);
    assert!(d.response_time > 0.0);

    // 4. The engine runs with the host-true profile.
    let hierarchy = PaperHierarchy::scaled_down(16);
    let facts = SyntheticFacts::generate(&FactsSpec {
        schema: hierarchy.table_schema(),
        rows: 5_000,
        text_levels: vec![TextLevel {
            dim: 1,
            level: 3,
            style: NameStyle::City,
        }],
        dict_kind: DictKind::Sorted,
        skew: None,
        seed: 5,
    });
    let config = SystemConfig {
        profile: loaded,
        ..SystemConfig::default()
    };
    let system = HybridSystem::builder(config)
        .facts(facts)
        .cube_at(2)
        .build()
        .unwrap();
    let out = system
        .query("select sum(measure0) where time.level2 in 0..9")
        .unwrap();
    assert!(out.answer.count > 0);
}
