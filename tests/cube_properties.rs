//! Property-based tests of the MOLAP cube substrate: aggregation agrees
//! with brute force over cells; parallelism, compression and roll-up are
//! all answer-preserving.

use holap::cube::{CubeSchema, MolapCube, Region};
use holap::table::TableSchema;
use proptest::prelude::*;

/// Entries of one generated cube: `(x, y, value)` per added cell.
type CellEntries = Vec<Vec<(u32, u32, f64)>>;

/// A random 2-D cube schema (uniform 2-level hierarchy) plus cell values.
fn cube_strategy() -> impl Strategy<Value = (MolapCube, CellEntries)> {
    (2u32..6, 2u32..5, 1u32..4, 1u32..4).prop_flat_map(|(c0, c1, f0, f1)| {
        let fine0 = c0 * f0;
        let fine1 = c1 * f1;
        let schema = CubeSchema::from_table_schema(
            &TableSchema::builder()
                .dimension("a", &[("l0", c0), ("l1", fine0)])
                .dimension("b", &[("l0", c1), ("l1", fine1)])
                .measure("m")
                .build(),
        );
        let cells = proptest::collection::vec((0..fine0, 0..fine1, -100.0..100.0f64), 0..40);
        cells.prop_map(move |entries| {
            let mut cube = MolapCube::build_empty_with_chunks(schema.clone(), 1, 3);
            for &(x, y, v) in &entries {
                cube.add(&[x, y], v, 1);
            }
            (cube, vec![entries])
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Region aggregation equals the brute-force sum over added entries.
    #[test]
    fn aggregate_matches_brute_force((cube, entries) in cube_strategy()) {
        let shape = cube.shape().to_vec();
        let region = Region::full(&shape);
        let agg = cube.aggregate_seq(&region);
        let sum: f64 = entries[0].iter().map(|&(_, _, v)| v).sum();
        prop_assert_eq!(agg.count, entries[0].len() as u64);
        prop_assert!((agg.sum - sum).abs() < 1e-9 * (1.0 + sum.abs()));
    }

    /// Sub-region aggregation matches filtering the entries by the region.
    #[test]
    fn subregion_matches_filter(
        (cube, entries) in cube_strategy(),
        seed in 0u64..1000,
    ) {
        let shape = cube.shape().to_vec();
        // Derive a deterministic sub-region from the seed.
        let f0 = (seed % u64::from(shape[0])) as u32;
        let t0 = f0 + ((seed / 7) % u64::from(shape[0] - f0)) as u32;
        let f1 = ((seed / 3) % u64::from(shape[1])) as u32;
        let t1 = f1 + ((seed / 11) % u64::from(shape[1] - f1)) as u32;
        let region = Region::new(vec![(f0, t0), (f1, t1)]);
        let agg = cube.aggregate_seq(&region);
        let inside = |x: u32, y: u32| x >= f0 && x <= t0 && y >= f1 && y <= t1;
        let want_count = entries[0].iter().filter(|&&(x, y, _)| inside(x, y)).count() as u64;
        let want_sum: f64 = entries[0]
            .iter()
            .filter(|&&(x, y, _)| inside(x, y))
            .map(|&(_, _, v)| v)
            .sum();
        prop_assert_eq!(agg.count, want_count);
        prop_assert!((agg.sum - want_sum).abs() < 1e-9 * (1.0 + want_sum.abs()));
    }

    /// Parallel, compressed and rolled-up variants all preserve answers.
    #[test]
    fn transformations_preserve_answers((cube, _entries) in cube_strategy()) {
        let shape = cube.shape().to_vec();
        let full = Region::full(&shape);
        let reference = cube.aggregate_seq(&full);

        // Parallel == sequential.
        let par = cube.aggregate_par(&full);
        prop_assert_eq!(par.count, reference.count);
        prop_assert!((par.sum - reference.sum).abs() < 1e-9 * (1.0 + reference.sum.abs()));

        // Compression preserves answers.
        let mut compressed = cube.clone();
        compressed.compress();
        let comp = compressed.aggregate_seq(&full);
        prop_assert_eq!(comp.count, reference.count);
        prop_assert!((comp.sum - reference.sum).abs() < 1e-12 * (1.0 + reference.sum.abs()));
        prop_assert!(compressed.bytes() <= cube.bytes());

        // Roll-up to the coarse resolution preserves totals.
        let coarse = cube.rollup_to(0);
        let coarse_total = coarse.aggregate_seq(&Region::full(coarse.shape()));
        prop_assert_eq!(coarse_total.count, reference.count);
        prop_assert!(
            (coarse_total.sum - reference.sum).abs() < 1e-9 * (1.0 + reference.sum.abs())
        );

        // Per-coordinate aggregation along each axis partitions the total.
        for (dim, &extent) in shape.iter().enumerate() {
            let along = cube.aggregate_along_par(dim, &full);
            let count: u64 = along.iter().map(|a| a.count).sum();
            let sum: f64 = along.iter().map(|a| a.sum).sum();
            prop_assert_eq!(count, reference.count);
            prop_assert!((sum - reference.sum).abs() < 1e-9 * (1.0 + reference.sum.abs()));
            prop_assert_eq!(along.len(), extent as usize);
        }
    }

    /// Aggregating any region never panics and its count never exceeds
    /// the cube-wide total (cells may hold multi-row counts, so the bound
    /// is the number of added entries, not the region's cell count).
    #[test]
    fn region_count_bounded(
        (cube, entries) in cube_strategy(),
        region_seed in proptest::num::u64::ANY,
    ) {
        let shape = cube.shape().to_vec();
        // Derive a deterministic region from the seed.
        let bounds: Vec<(u32, u32)> = shape
            .iter()
            .enumerate()
            .map(|(d, &c)| {
                let f = ((region_seed >> (8 * d)) % u64::from(c)) as u32;
                let t = f + ((region_seed >> (8 * d + 4)) % u64::from(c - f)) as u32;
                (f, t)
            })
            .collect();
        let region = Region::new(bounds);
        let agg = cube.aggregate_par(&region);
        prop_assert!(agg.count <= entries[0].len() as u64);
    }
}
