//! Property-based tests of grouped scans: a GROUP BY must equal the family
//! of per-group filtered scans, on both execution substrates.

use holap::table::{
    AggOp, AggSpec, ColumnId, FactTable, FactTableBuilder, GroupByQuery, Predicate, ScanQuery,
    SetPredicate, TableSchema,
};
use proptest::prelude::*;

fn table_strategy() -> impl Strategy<Value = FactTable> {
    (
        2u32..5,
        2u32..6,
        proptest::collection::vec((0u32..10_000, -100.0..100.0f64), 1..120),
    )
        .prop_map(|(c0, c1, rows)| {
            let schema = TableSchema::builder()
                .dimension("a", &[("l0", c0)])
                .dimension("b", &[("l0", c1)])
                .measure("m")
                .build();
            let mut b = FactTableBuilder::new(schema);
            for (coord, v) in rows {
                b.push_row(&[coord % c0, coord % c1], &[v]).unwrap();
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Each group's aggregates equal a plain scan filtered to that key.
    #[test]
    fn groups_equal_per_key_filters(table in table_strategy()) {
        let q = GroupByQuery::new(
            ScanQuery::new()
                .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
                .aggregate(AggSpec::new(AggOp::Min, Some(0)))
                .aggregate(AggSpec::count_star()),
            vec![ColumnId::dim(0, 0)],
        );
        let grouped = table.group_by_seq(&q).unwrap();
        let mut total_rows = 0u64;
        for g in &grouped.groups {
            let plain = table
                .scan_seq(
                    &ScanQuery::new()
                        .filter(Predicate::eq(ColumnId::dim(0, 0), g.key[0]))
                        .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
                        .aggregate(AggSpec::new(AggOp::Min, Some(0)))
                        .aggregate(AggSpec::count_star()),
                )
                .unwrap();
            prop_assert_eq!(g.rows, plain.matched_rows);
            for (a, b) in g.values.iter().zip(&plain.values) {
                match (a.value(), b.value()) {
                    (Some(x), Some(y)) => {
                        prop_assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()))
                    }
                    (x, y) => prop_assert_eq!(x, y),
                }
            }
            prop_assert!(g.rows > 0, "empty groups must not appear");
            total_rows += g.rows;
        }
        prop_assert_eq!(total_rows, grouped.matched_rows);
        prop_assert_eq!(grouped.matched_rows, table.rows() as u64);
    }

    /// Parallel grouped scans equal sequential ones.
    #[test]
    fn parallel_equals_sequential(table in table_strategy(), lo in 0u32..3, width in 0u32..3) {
        let q = GroupByQuery::new(
            ScanQuery::new()
                .filter(Predicate::range(ColumnId::dim(1, 0), lo, lo + width))
                .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
                .aggregate(AggSpec::new(AggOp::Max, Some(0))),
            vec![ColumnId::dim(0, 0), ColumnId::dim(1, 0)],
        );
        let s = table.group_by_seq(&q).unwrap();
        let p = table.group_by_par(&q).unwrap();
        prop_assert_eq!(s.matched_rows, p.matched_rows);
        prop_assert_eq!(s.groups.len(), p.groups.len());
        for (a, b) in s.groups.iter().zip(&p.groups) {
            prop_assert_eq!(&a.key, &b.key);
            prop_assert_eq!(a.rows, b.rows);
        }
    }

    /// Set predicates compose with grouping: grouping the set-filtered rows
    /// only produces keys inside the set.
    #[test]
    fn set_filter_restricts_group_keys(
        table in table_strategy(),
        picks in proptest::collection::vec(0u32..5, 1..4),
    ) {
        let q = GroupByQuery::new(
            ScanQuery::new()
                .filter_set(SetPredicate::new(ColumnId::dim(0, 0), picks.clone()))
                .aggregate(AggSpec::count_star()),
            vec![ColumnId::dim(0, 0)],
        );
        let grouped = table.group_by_par(&q).unwrap();
        for g in &grouped.groups {
            prop_assert!(picks.contains(&g.key[0]), "key {} outside the set", g.key[0]);
        }
    }
}
