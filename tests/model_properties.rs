//! Property-based tests of the performance models and the fitting code.

use holap::model::{fit, CpuPerfModel, DictPerfModel, GpuModelSet, GpuPerfModel, SystemProfile};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Linear fitting recovers exact synthetic lines.
    #[test]
    fn linear_fit_recovers(slope in -10.0..10.0f64, intercept in -10.0..10.0f64) {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| slope * x + intercept).collect();
        let l = fit::fit_linear(&xs, &ys);
        prop_assert!((l.slope - slope).abs() < 1e-9 * (1.0 + slope.abs()));
        prop_assert!((l.intercept - intercept).abs() < 1e-8 * (1.0 + intercept.abs()));
    }

    /// Power-law fitting recovers exact synthetic power laws.
    #[test]
    fn power_fit_recovers(coeff in 1e-6..10.0f64, exponent in 0.1..2.0f64) {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64 * 3.0).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| coeff * x.powf(exponent)).collect();
        let p = fit::fit_power_law(&xs, &ys);
        prop_assert!((p.coeff - coeff).abs() < 1e-6 * (1.0 + coeff));
        prop_assert!((p.exponent - exponent).abs() < 1e-9);
    }

    /// CPU model estimates are non-negative and monotone in size within
    /// each range, for any physical constants.
    #[test]
    fn cpu_model_is_sane(
        a_coeff in 1e-7..1e-2f64,
        a_exp in 0.5..1.2f64,
        b_slope in 1e-7..1e-3f64,
        b_intercept in 0.0..0.1f64,
        size in 0.0..100_000.0f64,
    ) {
        let m = CpuPerfModel::new(
            fit::PowerLaw::new(a_coeff, a_exp),
            fit::Linear::new(b_slope, b_intercept),
            512.0,
        );
        let t = m.estimate_secs(size);
        prop_assert!(t >= 0.0);
        let bigger = m.estimate_secs(size + 1.0);
        // Monotone unless straddling the split (the paper's piecewise fit
        // is not required to be continuous there).
        let straddles = size < 512.0 && size + 1.0 >= 512.0;
        if !straddles {
            prop_assert!(bigger >= t - 1e-12);
        }
    }

    /// Piecewise fit on synthetic data from a known model reproduces the
    /// model's predictions everywhere on the sample.
    #[test]
    fn piecewise_fit_reproduces(seed in 1u64..500) {
        let truth = if seed % 2 == 0 {
            CpuPerfModel::paper_4t()
        } else {
            CpuPerfModel::paper_8t()
        };
        let sizes: Vec<f64> = (0..40).map(|i| 2f64.powf(i as f64 * 0.4)).collect();
        let times: Vec<f64> = sizes.iter().map(|&s| truth.estimate_secs(s)).collect();
        let fitted = CpuPerfModel::fit(&sizes, &times, 512.0);
        for (&s, &t) in sizes.iter().zip(&times) {
            let p = fitted.estimate_secs(s);
            prop_assert!((p - t).abs() < 1e-6 * (1.0 + t), "at {s} MB: {p} vs {t}");
        }
    }

    /// GPU model set: estimates decrease (weakly) with SM count for any
    /// fraction, when models are physically ordered.
    #[test]
    fn gpu_set_monotone_in_sms(frac in 0.0..1.0f64) {
        let set = GpuModelSet::paper_c2070();
        let sizes: Vec<u32> = set.measured_sizes().collect();
        for w in sizes.windows(2) {
            prop_assert!(set.estimate_secs(w[0], frac) >= set.estimate_secs(w[1], frac));
        }
    }

    /// GPU fit recovers synthetic partition models.
    #[test]
    fn gpu_fit_recovers(slope in 1e-5..0.1f64, intercept in 1e-5..0.1f64) {
        let fracs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let secs: Vec<f64> = fracs.iter().map(|&f| slope * f + intercept).collect();
        let m = GpuPerfModel::fit(2, &fracs, &secs);
        prop_assert!((m.line.slope - slope).abs() < 1e-9);
        prop_assert!((m.line.intercept - intercept).abs() < 1e-9);
    }

    /// Dictionary translation bound: additivity over conditions and
    /// monotonicity in dictionary length.
    #[test]
    fn dict_bound_additive(lens in proptest::collection::vec(0usize..2_000_000, 0..8)) {
        let m = DictPerfModel::paper();
        let total = m.translation_secs(lens.iter().copied());
        let sum: f64 = lens.iter().map(|&l| m.lookup_secs(l)).sum();
        prop_assert!((total - sum).abs() < 1e-12);
        prop_assert!(total >= 0.0);
    }

    /// Profiles survive JSON round-trips regardless of content.
    #[test]
    fn profile_roundtrip(threads in 2u32..64, slope in 1e-6..1e-3f64) {
        let mut p = SystemProfile::paper();
        p.set_cpu(threads, CpuPerfModel::new(
            fit::PowerLaw::new(slope, 1.0),
            fit::Linear::new(slope, 0.001),
            256.0,
        ));
        let json = serde_json::to_string(&p).unwrap();
        let back: SystemProfile = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(p, back);
    }
}
