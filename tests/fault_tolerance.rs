//! End-to-end fault-tolerance tests: injected kernel faults, partition
//! quarantine with CPU failover, watchdog timeouts, and storage
//! corruption. The acceptance bar: under faults the system returns the
//! same answers as a fault-free run (no hung tickets, no wrong results),
//! and every flipped byte in a stored artefact is rejected with a typed
//! error and then healed by a rebuild.

use holap::cube::{CubeSchema, MolapCube};
use holap::prelude::*;
use holap::store;
use holap::store::inject::{corrupt_byte, flip_byte};
use holap::table::{FactTableBuilder, TableSchema};
use proptest::prelude::*;

fn facts(rows: usize) -> SyntheticFacts {
    let h = PaperHierarchy::scaled_down(8);
    SyntheticFacts::generate(&FactsSpec {
        schema: h.table_schema(),
        rows,
        text_levels: vec![TextLevel {
            dim: 1,
            level: 3,
            style: NameStyle::City,
        }],
        dict_kind: DictKind::Sorted,
        skew: None,
        seed: 31,
    })
}

fn build_system(
    policy: Policy,
    plan: Option<FaultPlan>,
    faults: FaultToleranceConfig,
) -> HybridSystem {
    let config = SystemConfig {
        policy,
        faults,
        ..SystemConfig::default()
    };
    let mut b = HybridSystem::builder(config)
        .facts(facts(20_000))
        .cube_at(1)
        .cube_at(2);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    b.build().unwrap()
}

fn gpu_partitions() -> usize {
    SystemConfig::default().layout.gpu_partitions()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-6 * (1.0 + b.abs())
}

fn assert_same_outcome(fault: &QueryOutcome, clean: &QueryOutcome, tag: &str) {
    assert_eq!(fault.answer.count, clean.answer.count, "{tag}: count");
    assert!(
        close(fault.answer.sum, clean.answer.sum),
        "{tag}: sum {} vs {}",
        fault.answer.sum,
        clean.answer.sum
    );
    match (&fault.groups, &clean.groups) {
        (None, None) => {}
        (Some(fg), Some(cg)) => {
            assert_eq!(fg.len(), cg.len(), "{tag}: group count");
            for ((fk, fa), (ck, ca)) in fg.iter().zip(cg) {
                assert_eq!(fk, ck, "{tag}: group key");
                assert_eq!(fa.count, ca.count, "{tag}: group {fk} count");
                assert!(close(fa.sum, ca.sum), "{tag}: group {fk} sum");
            }
        }
        _ => panic!("{tag}: grouped on one side only"),
    }
}

/// A transient kernel error on the first launch of whichever partition the
/// scheduler picks is retried on the same partition and succeeds — the
/// caller never sees the fault.
#[test]
fn injected_fault_is_retried_then_succeeds() {
    let mut plan = FaultPlan::new(1);
    for p in 0..gpu_partitions() {
        plan = plan.with_scripted(p, 0, FaultKind::Error);
    }
    let faulty = build_system(Policy::GpuOnly, Some(plan), FaultToleranceConfig::default());
    let clean = build_system(Policy::GpuOnly, None, FaultToleranceConfig::default());

    let q = EngineQuery::new().range(0, 3, 0, 9);
    let a = faulty.execute(&q).unwrap();
    let b = clean.execute(&q).unwrap();
    assert_same_outcome(&a, &b, "retried query");
    assert!(!a.placement.is_cpu(), "retry stays on the GPU");

    let s = faulty.stats();
    assert!(s.retries >= 1, "retries = {}", s.retries);
    assert!(s.partition_failures >= 1);
    assert_eq!(s.failed, 0);
    assert_eq!(s.completed, 1);
}

/// Regression: a kernel panic with retries and failover disabled must
/// resolve the ticket with a typed error — `wait()` never hangs on a dead
/// runner — and the partition worker survives to answer the next query.
#[test]
fn runner_panic_resolves_ticket_with_error() {
    let mut plan = FaultPlan::new(2);
    for p in 0..gpu_partitions() {
        plan = plan.with_scripted(p, 0, FaultKind::Panic);
    }
    let faults = FaultToleranceConfig {
        retry: RetryConfig {
            max_retries: 0,
            ..RetryConfig::default()
        },
        cpu_failover: false,
        ..FaultToleranceConfig::default()
    };
    let sys = build_system(Policy::GpuOnly, Some(plan), faults);

    let q = EngineQuery::new().range(0, 3, 0, 9);
    let err = sys.submit(&q).unwrap().wait().unwrap_err();
    assert!(
        matches!(err, EngineError::ExecutionFailed { attempts: 1, .. }),
        "got {err:?}"
    );
    assert_eq!(sys.stats().failed, 1);

    // The partition workers caught the unwind: every later ticket still
    // resolves (with a typed error while a partition's scripted panic is
    // unspent), and queries succeed again once the panics are consumed.
    let mut succeeded = false;
    for _ in 0..=gpu_partitions() {
        match sys.submit(&q).unwrap().wait() {
            Ok(out) => {
                assert!(out.answer.count > 0);
                succeeded = true;
                break;
            }
            Err(e) => assert!(
                matches!(e, EngineError::ExecutionFailed { .. }),
                "got {e:?}"
            ),
        }
    }
    assert!(succeeded, "panics are contained; partitions keep serving");
}

/// A permanently dead partition walks the health ladder to Quarantined,
/// the stranded query fails over to a CPU scan, and later queries are
/// routed around the quarantined partition.
#[test]
fn dead_partition_is_quarantined_and_rerouted() {
    let plan = FaultPlan::new(3).with_dead_partition(0);
    let faults = FaultToleranceConfig {
        quarantine: HealthConfig {
            cooldown_secs: 1e9, // no re-admission during the test
            ..HealthConfig::default()
        },
        ..FaultToleranceConfig::default()
    };
    let faulty = build_system(Policy::GpuOnly, Some(plan), faults);
    let clean = build_system(Policy::GpuOnly, None, FaultToleranceConfig::default());

    // A concurrent burst: the live-load floors spread the queries over
    // every GPU partition, so the dead one is guaranteed to receive work.
    let queries: Vec<EngineQuery> = (0..30)
        .map(|i: u32| EngineQuery::new().range(0, 3, i % 3, 5 + i % 5))
        .collect();
    let truth: Vec<QueryOutcome> = queries.iter().map(|q| clean.execute(q).unwrap()).collect();
    let tickets = faulty.submit_batch(queries.iter());
    for (i, (t, b)) in tickets.into_iter().zip(&truth).enumerate() {
        let a = t.unwrap().wait().unwrap();
        assert_same_outcome(&a, b, &format!("query {i}"));
    }
    assert_eq!(faulty.quarantined_partitions(), vec![0]);
    assert_eq!(faulty.partition_health(0), HealthState::Quarantined);

    // With partition 0 excluded, GPU-only scheduling still works: the
    // next queries land on the healthy partitions and succeed.
    let q = EngineQuery::new().range(0, 3, 0, 9);
    for _ in 0..5 {
        let out = faulty.execute(&q).unwrap();
        assert!(!out.placement.is_cpu(), "healthy partitions take over");
        assert_eq!(out.answer.count, clean.execute(&q).unwrap().answer.count);
    }
    let s = faulty.stats();
    assert!(s.quarantines >= 1);
    assert!(s.rerouted >= 1);
    assert_eq!(s.failed, 0);
}

/// A kernel that hangs past the watchdog window yields a timeout, and the
/// query immediately fails over to the CPU — the answer is correct and no
/// ticket waits on the wedged worker.
#[test]
fn hung_kernel_times_out_and_fails_over() {
    let mut plan = FaultPlan::new(4);
    for p in 0..gpu_partitions() {
        plan = plan.with_scripted(p, 0, FaultKind::Hang { secs: 0.4 });
    }
    let faults = FaultToleranceConfig {
        watchdog_secs: 0.05,
        ..FaultToleranceConfig::default()
    };
    let faulty = build_system(Policy::GpuOnly, Some(plan), faults);
    let clean = build_system(Policy::GpuOnly, None, FaultToleranceConfig::default());

    let q = EngineQuery::new().range(0, 3, 0, 9);
    let a = faulty.execute(&q).unwrap();
    let b = clean.execute(&q).unwrap();
    assert_same_outcome(&a, &b, "timed-out query");
    assert!(a.placement.is_cpu(), "failover ran the scan on the CPU");

    let s = faulty.stats();
    assert!(s.timeouts >= 1, "timeouts = {}", s.timeouts);
    assert!(s.rerouted >= 1);
    assert_eq!(s.failed, 0);
}

fn mixed_queries(n: usize) -> Vec<EngineQuery> {
    (0..n)
        .map(|i| {
            let v = i as u32;
            let mut q = match i % 4 {
                0 => EngineQuery::new().range(0, 1, v % 2, 1 + v % 3),
                1 => EngineQuery::new().range(0, 2, v % 4, 3 + v % 12),
                2 => EngineQuery::new()
                    .range(0, 3, v % 5, 5 + v % 5)
                    .range(1, 1, 0, 1 + v % 2),
                _ => EngineQuery::new().range(0, 2, v % 3, 4 + v % 10).measure(1),
            };
            if i % 5 == 0 {
                q = q.grouped_by(0, 1);
            }
            q
        })
        .collect()
}

/// The acceptance scenario: 5 % injected kernel failures plus one dead
/// GPU partition on a 1 000-query mixed workload. Every ticket resolves,
/// every answer matches the fault-free run (counts exactly, sums modulo
/// fp reduction order), and the fault counters are visible in the stats.
///
/// `HOLAP_FAULT_SEED` selects the fault-plan seed so CI can sweep a
/// matrix of plans over the same assertions.
#[test]
fn mixed_workload_with_faults_matches_fault_free_run() {
    let seed: u64 = std::env::var("HOLAP_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let dead = 1 % gpu_partitions();
    let plan = FaultPlan::new(seed)
        .with_failure_rate(0.05, FaultKind::Error)
        .with_dead_partition(dead);
    let faulty = build_system(Policy::Paper, Some(plan), FaultToleranceConfig::default());
    let clean = build_system(Policy::Paper, None, FaultToleranceConfig::default());

    let queries = mixed_queries(1_000);
    let tickets = faulty.submit_batch(queries.iter());
    // Zero hung tickets: every wait() resolves (the watchdog and runner
    // containment guarantee it), and zero wrong results: each outcome is
    // compared against the fault-free system.
    for (i, (t, q)) in tickets.into_iter().zip(&queries).enumerate() {
        let a = t.unwrap().wait().unwrap();
        let b = clean.execute(q).unwrap();
        assert_same_outcome(&a, &b, &format!("query {i} (seed {seed})"));
    }

    let s = faulty.stats();
    assert_eq!(s.completed, 1_000);
    assert_eq!(s.failed, 0, "no query surfaced an error");
    assert!(s.partition_failures > 0, "faults were actually injected");
    assert!(s.retries >= 1);
    assert!(s.quarantines >= 1, "the dead partition was quarantined");
    assert!(s.rerouted >= 1, "stranded work was rerouted");
    assert_eq!(clean.stats().failed, 0);
}

/// A small system image for the corruption properties.
fn small_image(tag: &str, case: u64) -> (std::path::PathBuf, Vec<MolapCube>) {
    let dir = std::env::temp_dir().join(format!("holap-fault-{tag}-{}-{case}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let schema = TableSchema::builder()
        .dimension("time", &[("year", 3), ("month", 12)])
        .dimension("geo", &[("city", 7)])
        .measure("sales")
        .build();
    let mut b = FactTableBuilder::new(schema);
    for i in 0..200u32 {
        let month = i % 12;
        b.push_row(&[month / 4, month, i % 7], &[f64::from(i) * 0.5])
            .unwrap();
    }
    let table = b.finish();
    let cube_schema = CubeSchema::from_table_schema(table.schema());
    let cubes: Vec<MolapCube> = (0..2)
        .map(|r| {
            let mut c = MolapCube::build_from_table(cube_schema.clone(), r, &table, 0);
            c.compress();
            c
        })
        .collect();
    let mut dicts = DictionarySet::new(DictKind::Sorted);
    dicts.build_column(
        "geo.city",
        (0..7).map(|i| ["a", "b", "c", "d", "e", "f", "g"][i]),
    );
    store::save_system(&dir, &table, &[&cubes[0], &cubes[1]], &dicts).unwrap();
    (dir, cubes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flipping one random byte of any stored `.holap` artefact is always
    /// detected as a typed error; a corrupt cube is then healed by
    /// rebuilding from the fact table, while corrupt source artefacts
    /// (table, dictionaries) keep propagating their error.
    #[test]
    fn any_artifact_corruption_is_detected_then_recovered(
        file_idx in 0usize..4,
        seed in proptest::num::u64::ANY,
        case in 0u64..u64::MAX,
    ) {
        let (dir, cubes) = small_image("prop", case);
        let names = ["facts.holap", "dicts.holap", "cube-r0.holap", "cube-r1.holap"];
        let victim = dir.join(names[file_idx]);
        let (offset, mask) = corrupt_byte(&victim, seed).unwrap();

        // Detection: the strict loader always rejects the image.
        prop_assert!(
            store::load_system(&dir).is_err(),
            "flip of {} byte {offset} (mask {mask:#04x}) went unnoticed",
            names[file_idx]
        );

        if file_idx >= 2 {
            // Cubes are derived data: the resilient loader rebuilds them
            // from the fact table, bit-identically, and heals the file.
            let (_, loaded, _, report) = store::load_system_resilient(&dir, 0).unwrap();
            prop_assert_eq!(&loaded, &cubes);
            prop_assert_eq!(report.rebuilt.len(), 1);
            prop_assert!(store::load_system(&dir).is_ok(), "rebuild healed the file");
        } else {
            // Source artefacts cannot be fabricated: typed error either way.
            prop_assert!(store::load_system_resilient(&dir, 0).is_err());
            // Undo the flip: the original image loads clean again.
            flip_byte(&victim, offset, mask).unwrap();
            prop_assert!(store::load_system(&dir).is_ok());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
