//! Property-based persistence tests: arbitrary artefacts survive the
//! binary container bit-exactly.

use holap::cube::{CubeSchema, MolapCube, Region};
use holap::dict::{DictKind, DictionarySet};
use holap::store::{load_cube, load_dicts, load_table, save_cube, save_dicts, save_table};
use holap::table::{FactTable, FactTableBuilder, TableSchema};
use proptest::prelude::*;

fn tempfile(tag: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "holap-prop-{tag}-{}-{case}.holap",
        std::process::id()
    ))
}

fn table_strategy() -> impl Strategy<Value = FactTable> {
    (
        2u32..6,
        2u32..8,
        1usize..3,
        proptest::collection::vec((0u32..1000, -1e6..1e6f64), 0..60),
    )
        .prop_map(|(c0, c1, measures, rows)| {
            let mut b = TableSchema::builder()
                .dimension("a", &[("l0", c0), ("l1", c0 * 4)])
                .dimension("b", &[("l0", c1)]);
            for m in 0..measures {
                b = b.measure(&format!("m{m}"));
            }
            let schema = b.build();
            let mut builder = FactTableBuilder::new(schema);
            for (coord, value) in rows {
                let a1 = coord % (c0 * 4);
                let row = [a1 / 4, a1, coord % c1];
                let ms: Vec<f64> = (0..measures).map(|k| value * (k + 1) as f64).collect();
                builder.push_row(&row, &ms).unwrap();
            }
            builder.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tables_roundtrip_bit_exactly(table in table_strategy(), case in 0u64..u64::MAX) {
        let path = tempfile("table", case);
        save_table(&path, &table).unwrap();
        let back = load_table(&path).unwrap();
        prop_assert_eq!(back, table);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cubes_roundtrip_through_build_and_compress(
        table in table_strategy(),
        resolution in 0usize..2,
        compress in proptest::bool::ANY,
        case in 0u64..u64::MAX,
    ) {
        let schema = CubeSchema::from_table_schema(table.schema());
        let mut cube = MolapCube::build_from_table(schema, resolution, &table, 0);
        if compress {
            cube.compress();
        }
        let path = tempfile("cube", case);
        save_cube(&path, &cube).unwrap();
        let back = load_cube(&path).unwrap();
        prop_assert_eq!(&back, &cube);
        // And the loaded cube answers identically.
        let full = Region::full(cube.shape());
        prop_assert_eq!(back.aggregate_seq(&full), cube.aggregate_seq(&full));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dicts_roundtrip_with_codes(
        values in proptest::collection::vec("[a-z]{1,10}", 1..40),
        kind_idx in 0usize..3,
        case in 0u64..u64::MAX,
    ) {
        let kind = [DictKind::Linear, DictKind::Sorted, DictKind::Hashed][kind_idx];
        let mut set = DictionarySet::new(kind);
        let codes = set.build_column("col", values.iter().map(String::as_str));
        let path = tempfile("dicts", case);
        save_dicts(&path, &set).unwrap();
        let back = load_dicts(&path).unwrap();
        prop_assert_eq!(&back, &set);
        // Every original value still encodes to the same code.
        for (v, &c) in values.iter().zip(&codes) {
            prop_assert_eq!(back.decode("col", c), Some(v.as_str()));
        }
        std::fs::remove_file(&path).ok();
    }

    /// Flipping any single payload byte must be detected.
    #[test]
    fn any_single_bitflip_is_detected(
        table in table_strategy(),
        flip_seed in proptest::num::u64::ANY,
        case in 0u64..u64::MAX,
    ) {
        let path = tempfile("flip", case);
        save_table(&path, &table).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte anywhere after the magic (the magic check catches
        // the first 8 bytes trivially).
        let idx = 8 + (flip_seed as usize % (bytes.len() - 8));
        bytes[idx] ^= 1 << (flip_seed % 8) as u8;
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(load_table(&path).is_err(), "bit flip at {idx} went unnoticed");
        std::fs::remove_file(&path).ok();
    }
}
