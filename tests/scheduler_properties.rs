//! Property-based tests of the Figure-10 scheduler: invariants that must
//! hold for *every* estimate/deadline/queue state, not just the worked
//! examples.

use holap::sched::{PartitionId, PartitionLayout, Placement, Policy, Scheduler, TaskEstimate};
use proptest::prelude::*;

fn estimate_strategy() -> impl Strategy<Value = TaskEstimate> {
    (
        proptest::option::of(1e-5..1.0f64),
        1e-4..0.5f64,
        1e-4..0.5f64,
        1e-4..0.5f64,
        proptest::option::of(1e-5..0.1f64),
    )
        .prop_map(|(t_cpu, g1, g2, g4, trans)| {
            // Classes must be non-increasing with SM count to be physical;
            // enforce by sorting descending.
            let mut g = [g1, g2, g4];
            g.sort_by(|a, b| b.partial_cmp(a).unwrap());
            TaskEstimate {
                t_cpu,
                t_gpu_by_class: g.to_vec(),
                t_trans: trans.unwrap_or(0.0),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every query is placed, on every policy, and the decision's
    /// bookkeeping is self-consistent.
    #[test]
    fn every_query_is_placed(
        ests in proptest::collection::vec((estimate_strategy(), 0.01..2.0f64), 1..40),
        policy in proptest::sample::select(&Policy::ALL),
    ) {
        let mut sched = Scheduler::new(PartitionLayout::paper(), policy);
        let mut now = 0.0;
        for (est, t_c) in &ests {
            let d = sched.schedule(now, est, *t_c);
            // A CPU placement requires a CPU estimate.
            if d.placement.is_cpu() {
                prop_assert!(est.t_cpu.is_some());
            }
            // Response cannot precede submission + own processing.
            prop_assert!(d.response_time >= now + d.t_proc - 1e-12);
            // Deadline bookkeeping is consistent.
            prop_assert_eq!(d.before_deadline, d.response_time <= d.deadline);
            prop_assert!((d.deadline - (now + t_c)).abs() < 1e-12);
            // Translation is only charged for GPU placements with text.
            if d.with_translation {
                prop_assert!(!d.placement.is_cpu());
                prop_assert!(est.needs_translation());
            }
            now += 0.001;
        }
        let stats = sched.stats();
        prop_assert_eq!(stats.cpu_queries + stats.gpu_queries, ests.len() as u64);
    }

    /// Queue clocks never run backwards under scheduling.
    #[test]
    fn queue_clocks_are_monotone(
        ests in proptest::collection::vec(estimate_strategy(), 1..40),
    ) {
        let layout = PartitionLayout::paper();
        let mut sched = Scheduler::new(layout.clone(), Policy::Paper);
        let mut prev: Vec<f64> = (0..layout.gpu_partitions())
            .map(|i| sched.queue_clock(PartitionId::Gpu(i)))
            .collect();
        let mut prev_cpu = sched.queue_clock(PartitionId::Cpu);
        let mut prev_trans = sched.queue_clock(PartitionId::Translation);
        for (k, est) in ests.iter().enumerate() {
            sched.schedule(k as f64 * 0.01, est, 0.5);
            for (i, p) in prev.iter_mut().enumerate() {
                let c = sched.queue_clock(PartitionId::Gpu(i));
                prop_assert!(c >= *p - 1e-12, "gpu {i} clock went backwards");
                *p = c;
            }
            let c = sched.queue_clock(PartitionId::Cpu);
            prop_assert!(c >= prev_cpu - 1e-12);
            prev_cpu = c;
            let t = sched.queue_clock(PartitionId::Translation);
            prop_assert!(t >= prev_trans - 1e-12);
            prev_trans = t;
        }
    }

    /// Paper policy: when at least one partition can meet the deadline,
    /// the chosen one does.
    #[test]
    fn paper_policy_honours_feasibility(
        est in estimate_strategy(),
        t_c in 0.01..2.0f64,
    ) {
        let mut sched = Scheduler::new(PartitionLayout::paper(), Policy::Paper);
        // Fresh scheduler: all queues idle. A partition is feasible iff its
        // raw processing (plus translation coupling) fits in t_c.
        let gpu_possible = est
            .t_gpu_by_class
            .iter()
            .any(|t| t + est.t_trans < t_c);
        let cpu_possible = est.t_cpu.is_some_and(|t| t < t_c);
        let d = sched.schedule(0.0, &est, t_c);
        if cpu_possible || gpu_possible {
            prop_assert!(
                d.before_deadline,
                "feasible partition existed but decision missed the deadline: {d:?}"
            );
        }
    }

    /// Completion feedback is exact: correcting with the true time makes
    /// the queue clock equal to what scheduling with the true time would
    /// have produced.
    #[test]
    fn feedback_correction_is_exact(
        est in estimate_strategy(),
        err_factor in 0.5..2.0f64,
    ) {
        let mut a = Scheduler::new(PartitionLayout::paper(), Policy::Mct);
        let d = a.schedule(0.0, &est, 0.5);
        let actual = d.t_proc * err_factor;
        a.complete(d.placement.partition_id(), d.t_proc, actual);
        let clock = a.queue_clock(d.placement.partition_id());
        prop_assert!((clock - (d.response_time - d.t_proc + actual)).abs() < 1e-12);
    }

    /// MCT never chooses a strictly worse response time than any other
    /// partition offers.
    #[test]
    fn mct_is_greedy_optimal_per_step(
        ests in proptest::collection::vec(estimate_strategy(), 1..20),
    ) {
        let layout = PartitionLayout::paper();
        let mut sched = Scheduler::new(layout.clone(), Policy::Mct);
        for est in &ests {
            // Recompute all candidate responses from the observable clocks.
            let now = 0.0;
            let trans_ready = if est.needs_translation() {
                Some(sched.queue_clock(PartitionId::Translation).max(now) + est.t_trans)
            } else {
                None
            };
            let mut best = f64::INFINITY;
            if let Some(t) = est.t_cpu {
                best = best.min(sched.queue_clock(PartitionId::Cpu).max(now) + t);
            }
            for i in 0..layout.gpu_partitions() {
                let t = est.t_gpu_by_class[layout.class_of(i)];
                let start = match trans_ready {
                    Some(tr) => sched.queue_clock(PartitionId::Gpu(i)).max(now).max(tr),
                    None => sched.queue_clock(PartitionId::Gpu(i)).max(now),
                };
                best = best.min(start + t);
            }
            let d = sched.schedule(now, est, 0.5);
            prop_assert!(d.response_time <= best + 1e-9,
                "MCT chose {} but {} was available", d.response_time, best);
        }
    }
}

#[test]
fn gpu_only_and_cpu_only_respect_their_resource() {
    let est = TaskEstimate {
        t_cpu: Some(0.001),
        t_gpu_by_class: vec![0.03, 0.02, 0.01],
        t_trans: 0.0,
    };
    let mut gpu_only = Scheduler::new(PartitionLayout::paper(), Policy::GpuOnly);
    let mut cpu_only = Scheduler::new(PartitionLayout::paper(), Policy::CpuOnly);
    for _ in 0..50 {
        assert!(!gpu_only.schedule(0.0, &est, 1.0).placement.is_cpu());
        assert!(cpu_only.schedule(0.0, &est, 1.0).placement.is_cpu());
    }
}

#[test]
fn round_robin_covers_all_partitions() {
    let est = TaskEstimate {
        t_cpu: Some(0.001),
        t_gpu_by_class: vec![0.03, 0.02, 0.01],
        t_trans: 0.0,
    };
    let layout = PartitionLayout::paper();
    let mut sched = Scheduler::new(layout.clone(), Policy::RoundRobin);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..(layout.gpu_partitions() + 1) {
        seen.insert(match sched.schedule(0.0, &est, 1.0).placement {
            Placement::Cpu => usize::MAX,
            Placement::Gpu { partition } => partition,
        });
    }
    assert_eq!(seen.len(), layout.gpu_partitions() + 1);
}
