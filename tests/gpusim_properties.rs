//! Property-based tests of the simulated GPU: kernels must be
//! functionally identical to direct scans for arbitrary tables and
//! queries, and the cost model must respect its structural guarantees.

use holap::gpusim::{DeviceConfig, GpuDevice};
use holap::model::GpuModelSet;
use holap::table::{
    AggOp, AggSpec, ColumnId, FactTable, FactTableBuilder, Predicate, ScanQuery, TableSchema,
};
use proptest::prelude::*;

fn table_strategy() -> impl Strategy<Value = FactTable> {
    (
        2u32..6,
        2u32..8,
        proptest::collection::vec((0u32..100_000, -1e3..1e3f64), 1..150),
    )
        .prop_map(|(c0, c1, rows)| {
            let schema = TableSchema::builder()
                .dimension("a", &[("l0", c0), ("l1", c0 * 3)])
                .dimension("b", &[("l0", c1)])
                .measure("m")
                .build();
            let mut b = FactTableBuilder::new(schema);
            for (coord, v) in rows {
                let fine = coord % (c0 * 3);
                b.push_row(&[fine / 3, fine, coord % c1], &[v]).unwrap();
            }
            b.finish()
        })
}

fn query_strategy() -> impl Strategy<Value = ScanQuery> {
    (0u32..10, 0u32..10, proptest::bool::ANY).prop_map(|(a, b, count_too)| {
        let mut q = ScanQuery::new()
            .filter(Predicate::range(ColumnId::dim(0, 1), a.min(b), a.max(b)))
            .aggregate(AggSpec::new(AggOp::Sum, Some(0)));
        if count_too {
            q = q.aggregate(AggSpec::count_star());
        }
        q
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kernel answers equal direct scans, for every partition size.
    #[test]
    fn kernel_equals_direct_scan(table in table_strategy(), q in query_strategy()) {
        let direct = table.scan_seq(&q).unwrap();
        let mut device = GpuDevice::new(DeviceConfig::tesla_c2070());
        let id = device.load_table("t", table).unwrap();
        let model = GpuModelSet::paper_c2070();
        for sms in [1u32, 2, 4, 14] {
            let out = device.execute_scan(id, sms, &q, &model).unwrap();
            prop_assert_eq!(out.result.matched_rows, direct.matched_rows);
            for (a, b) in out.result.values.iter().zip(&direct.values) {
                match (a.value(), b.value()) {
                    (Some(x), Some(y)) => {
                        prop_assert!((x - y).abs() < 1e-9 * (1.0 + y.abs()))
                    }
                    (x, y) => prop_assert_eq!(x, y),
                }
            }
            // Structural cost guarantees.
            prop_assert!(out.modeled_secs > 0.0);
            prop_assert_eq!(out.columns_accessed, q.columns_accessed());
        }
    }

    /// Modeled cost is non-increasing in SM count and non-decreasing in
    /// column count.
    #[test]
    fn modeled_cost_is_monotone(table in table_strategy()) {
        let mut device = GpuDevice::new(DeviceConfig::tesla_c2070());
        let id = device.load_table("t", table).unwrap();
        let model = GpuModelSet::paper_c2070();
        let narrow = ScanQuery::new().aggregate(AggSpec::new(AggOp::Sum, Some(0)));
        let wide = ScanQuery::new()
            .filter(Predicate::range(ColumnId::dim(0, 0), 0, u32::MAX - 1))
            .filter(Predicate::range(ColumnId::dim(0, 1), 0, u32::MAX - 1))
            .filter(Predicate::range(ColumnId::dim(1, 0), 0, u32::MAX - 1))
            .aggregate(AggSpec::new(AggOp::Sum, Some(0)));
        let mut prev = f64::INFINITY;
        for sms in [1u32, 2, 4, 14] {
            let t = device.execute_scan(id, sms, &narrow, &model).unwrap().modeled_secs;
            prop_assert!(t <= prev + 1e-15, "more SMs must not cost more");
            prev = t;
            let tw = device.execute_scan(id, sms, &wide, &model).unwrap().modeled_secs;
            prop_assert!(tw >= t, "more columns must not cost less");
        }
    }
}
