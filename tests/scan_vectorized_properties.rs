//! Property tests pinning the vectorized scan engine to the retained
//! row-at-a-time scalar reference.
//!
//! The sequential vectorized paths (`scan_seq`, `group_by_seq`) must be
//! **exactly** equal to `scan_scalar` / `group_by_scalar` — including
//! floating-point bit identity, because both accumulate measures in row
//! order with one accumulator per (group, aggregate). The parallel paths
//! reassociate additions across blocks, so sums are compared with a
//! relative tolerance while order-independent aggregates (COUNT/MIN/MAX)
//! stay exact.

use holap::table::{
    AggOp, AggSpec, ColumnId, FactTable, FactTableBuilder, GroupByQuery, Predicate, ScanQuery,
    SetPredicate, TableSchema, BATCH_ROWS,
};
use proptest::prelude::*;

const ALL_OPS: [AggOp; 5] = [AggOp::Count, AggOp::Sum, AggOp::Min, AggOp::Max, AggOp::Avg];

/// Random tables spanning several zone-map blocks: two dimensions (the
/// first with two levels), two measures, up to ~3 batches of rows. When
/// `sorted` is set the level-0 coordinates are clustered, so zone maps
/// produce genuine `Skip` and `AllMatch` decisions rather than `Eval`
/// everywhere.
fn table_strategy() -> impl Strategy<Value = FactTable> {
    (
        2u32..6,
        4u32..40,
        2u32..8,
        proptest::collection::vec((0u32..1_000_000, -100.0..100.0f64), 0..(3 * BATCH_ROWS + 7)),
        any::<bool>(),
    )
        .prop_map(|(c0, c1, c2, mut rows, sorted)| {
            if sorted {
                rows.sort_by_key(|&(coord, _)| coord % c1);
            }
            let schema = TableSchema::builder()
                .dimension("a", &[("coarse", c0), ("fine", c1)])
                .dimension("b", &[("l0", c2)])
                .measure("m0")
                .measure("m1")
                .build();
            let mut b = FactTableBuilder::new(schema);
            for (coord, v) in rows {
                b.push_row(&[coord % c0, coord % c1, coord % c2], &[v, -v * 0.5])
                    .unwrap();
            }
            b.finish()
        })
}

/// Random queries: every aggregate op (plus COUNT(*)), a random weight,
/// 0–2 range filters per run — possibly contradictory (`lo > hi` after
/// intersection) — and an optional membership filter that may be empty.
fn query_strategy() -> impl Strategy<Value = ScanQuery> {
    (
        proptest::collection::vec((0usize..3, 0u32..40, 0u32..40), 0..3),
        proptest::option::of(proptest::collection::vec(0u32..40, 0..5)),
        prop_oneof![Just(1.0f64), Just(0.5), Just(-2.0), Just(3.25)],
    )
        .prop_map(|(filters, set, weight)| {
            let cols = [
                ColumnId::dim(0, 0),
                ColumnId::dim(0, 1),
                ColumnId::dim(1, 0),
            ];
            let mut q = ScanQuery::new().with_weight(weight);
            for (c, lo, hi) in filters {
                q = q.filter(Predicate::range(cols[c], lo.min(hi), lo.max(hi)));
            }
            if let Some(codes) = set {
                q = q.filter_set(SetPredicate::new(ColumnId::dim(0, 1), codes));
            }
            for op in ALL_OPS {
                q = q.aggregate(AggSpec::new(op, Some(0)));
                q = q.aggregate(AggSpec::new(op, Some(1)));
            }
            q.aggregate(AggSpec::count_star())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The sequential vectorized scan is bit-identical to the scalar
    /// reference for every op, weight, and filter combination.
    #[test]
    fn vectorized_scan_equals_scalar_exactly(
        table in table_strategy(),
        q in query_strategy(),
    ) {
        prop_assert_eq!(table.scan_seq(&q).unwrap(), table.scan_scalar(&q).unwrap());
    }

    /// The parallel scan matches the scalar reference: COUNT/MIN/MAX and
    /// matched-row counts exactly, SUM/AVG within FP-reassociation slack.
    #[test]
    fn parallel_scan_equals_scalar(
        table in table_strategy(),
        q in query_strategy(),
    ) {
        let s = table.scan_scalar(&q).unwrap();
        let p = table.scan_par(&q).unwrap();
        prop_assert_eq!(s.matched_rows, p.matched_rows);
        prop_assert_eq!(s.values.len(), p.values.len());
        for (a, b) in s.values.iter().zip(&p.values) {
            prop_assert_eq!(a.count, b.count);
            prop_assert_eq!(a.min, b.min);
            prop_assert_eq!(a.max, b.max);
            prop_assert!((a.sum - b.sum).abs() <= 1e-9 * (1.0 + a.sum.abs()));
        }
    }

    /// The sequential vectorized group-by is bit-identical to the scalar
    /// reference — groups, keys, row counts, and aggregate values.
    #[test]
    fn vectorized_group_by_equals_scalar_exactly(
        table in table_strategy(),
        q in query_strategy(),
        two_keys in any::<bool>(),
    ) {
        let keys = if two_keys {
            vec![ColumnId::dim(0, 1), ColumnId::dim(1, 0)]
        } else {
            vec![ColumnId::dim(0, 0)]
        };
        let gq = GroupByQuery::new(q, keys);
        prop_assert_eq!(
            table.group_by_seq(&gq).unwrap(),
            table.group_by_scalar(&gq).unwrap()
        );
    }

    /// The parallel group-by produces the same groups as the scalar
    /// reference, with SUM compared under FP-reassociation slack.
    #[test]
    fn parallel_group_by_equals_scalar(
        table in table_strategy(),
        q in query_strategy(),
    ) {
        let gq = GroupByQuery::new(q, vec![ColumnId::dim(0, 1), ColumnId::dim(1, 0)]);
        let s = table.group_by_scalar(&gq).unwrap();
        let p = table.group_by_par(&gq).unwrap();
        prop_assert_eq!(s.matched_rows, p.matched_rows);
        prop_assert_eq!(s.groups.len(), p.groups.len());
        for (a, b) in s.groups.iter().zip(&p.groups) {
            prop_assert_eq!(&a.key, &b.key);
            prop_assert_eq!(a.rows, b.rows);
            for (x, y) in a.values.iter().zip(&b.values) {
                prop_assert_eq!(x.count, y.count);
                prop_assert_eq!(x.min, y.min);
                prop_assert_eq!(x.max, y.max);
                prop_assert!((x.sum - y.sum).abs() <= 1e-9 * (1.0 + x.sum.abs()));
            }
        }
    }
}

/// Keys too wide to pack into a `u64` fall back to the hashed group path;
/// the fallback must still match the scalar reference exactly.
#[test]
fn wide_keys_use_hashed_path_and_match_scalar() {
    // 5 key columns × 16 bits each = 80 bits > 64 → Hashed.
    let card = 1 << 16;
    let schema = TableSchema::builder()
        .dimension("d0", &[("l", card)])
        .dimension("d1", &[("l", card)])
        .dimension("d2", &[("l", card)])
        .dimension("d3", &[("l", card)])
        .dimension("d4", &[("l", card)])
        .measure("m")
        .build();
    let mut b = FactTableBuilder::new(schema);
    let mut x = 1u32;
    for _ in 0..4000 {
        // Small xorshift keeps coords deterministic but scattered.
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        let c = x % card;
        b.push_row(&[c, c / 3, c / 7, c / 11, c / 13], &[f64::from(x % 1000)])
            .unwrap();
    }
    let table = b.finish();
    let q = GroupByQuery::new(
        ScanQuery::new()
            .filter(Predicate::range(ColumnId::dim(0, 0), 0, card / 2))
            .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
            .aggregate(AggSpec::count_star()),
        (0..5).map(|d| ColumnId::dim(d, 0)).collect(),
    );
    assert_eq!(
        table.group_by_seq(&q).unwrap(),
        table.group_by_scalar(&q).unwrap()
    );
}

/// A membership filter on a column whose cardinality exceeds the bitmap
/// budget compiles to the sorted-probe fallback; results must not change.
#[test]
fn huge_domain_set_predicate_uses_sparse_path() {
    let card = (1u32 << 22) + 10; // just past BITMAP_MAX_BITS
    let schema = TableSchema::builder()
        .dimension("id", &[("l", card)])
        .measure("m")
        .build();
    let mut b = FactTableBuilder::new(schema);
    for i in 0..3000u32 {
        b.push_row(&[(i * 1399) % card], &[f64::from(i)]).unwrap();
    }
    let table = b.finish();
    let codes: Vec<u32> = (0..3000u32)
        .step_by(5)
        .map(|i| (i * 1399) % card)
        .chain([card - 1, 7]) // members that hit no row are fine too
        .collect();
    let q = ScanQuery::new()
        .filter_set(SetPredicate::new(ColumnId::dim(0, 0), codes))
        .aggregate(AggSpec::new(AggOp::Sum, Some(0)))
        .aggregate(AggSpec::new(AggOp::Avg, Some(0)))
        .aggregate(AggSpec::count_star());
    assert_eq!(table.scan_seq(&q).unwrap(), table.scan_scalar(&q).unwrap());
    assert_eq!(table.scan_par(&q).unwrap().matched_rows, 600);
}

/// Degenerate queries short-circuit without touching rows and still agree
/// with the scalar reference.
#[test]
fn degenerate_queries_match_scalar() {
    let schema = TableSchema::builder()
        .dimension("a", &[("l", 8)])
        .measure("m")
        .build();
    let mut b = FactTableBuilder::new(schema);
    for i in 0..2000u32 {
        b.push_row(&[i % 8], &[f64::from(i)]).unwrap();
    }
    let table = b.finish();
    let agg = |q: ScanQuery| {
        q.aggregate(AggSpec::new(AggOp::Sum, Some(0)))
            .aggregate(AggSpec::count_star())
    };
    // Empty membership set.
    let empty_set =
        agg(ScanQuery::new().filter_set(SetPredicate::new(ColumnId::dim(0, 0), vec![])));
    // Contradictory conjunction: [2,7] ∩ [0,1] = ∅.
    let contradiction = agg(ScanQuery::new()
        .filter(Predicate::range(ColumnId::dim(0, 0), 2, 7))
        .filter(Predicate::range(ColumnId::dim(0, 0), 0, 1)));
    // Membership set disjoint from the surviving range window.
    let out_of_domain = agg(ScanQuery::new()
        .filter(Predicate::range(ColumnId::dim(0, 0), 7, 7))
        .filter_set(SetPredicate::new(ColumnId::dim(0, 0), vec![0, 1, 2])));
    for q in [empty_set, contradiction, out_of_domain] {
        let s = table.scan_scalar(&q).unwrap();
        assert_eq!(table.scan_seq(&q).unwrap(), s);
        assert_eq!(table.scan_par(&q).unwrap(), s);
        let gq = GroupByQuery::new(q, vec![ColumnId::dim(0, 0)]);
        let gs = table.group_by_scalar(&gq).unwrap();
        assert_eq!(table.group_by_seq(&gq).unwrap(), gs);
        assert_eq!(table.group_by_par(&gq).unwrap(), gs);
        assert!(gs.groups.is_empty());
    }
}
