//! The headline reproduction claims, asserted through the public API with
//! fast (reduced-query-count) runs. The full-size runs behind
//! EXPERIMENTS.md live in the `repro` binary; these tests pin the *shape*
//! so a regression cannot slip in silently.

use holap::prelude::*;
use holap::sim::SimConfig;
use holap::workload::QueryMix;

fn rate(preset: WorkloadPreset, policy: Policy, threads: u32, workers: usize, seed: u64) -> f64 {
    let mut cfg = SimConfig::paper(policy, threads, 1500);
    cfg.workers = workers;
    let mut generator = QueryGenerator::preset(preset, &PaperHierarchy::default(), seed);
    holap::sim::run_closed_loop(&cfg, &mut generator).throughput_qps
}

#[test]
fn table1_rates_and_speedups() {
    let seq = rate(WorkloadPreset::Table1, Policy::CpuOnly, 1, 2, 1);
    let t4 = rate(WorkloadPreset::Table1, Policy::CpuOnly, 4, 2, 1);
    let t8 = rate(WorkloadPreset::Table1, Policy::CpuOnly, 8, 2, 1);
    // Paper: 12 / 87 / 110.
    assert!((seq - 12.0).abs() < 2.0, "sequential = {seq}");
    assert!((t4 - 87.0).abs() < 9.0, "4T = {t4}");
    assert!((t8 - 110.0).abs() < 12.0, "8T = {t8}");
    assert!(t4 / seq > 5.0, "parallel speed-up holds");
}

#[test]
fn table2_rates() {
    let t4 = rate(WorkloadPreset::Table2, Policy::CpuOnly, 4, 2, 2);
    let t8 = rate(WorkloadPreset::Table2, Policy::CpuOnly, 8, 2, 2);
    // Paper: 9 / 11 — the ~32 GB cube pulls the CPU to ~10 Q/s.
    assert!((t4 - 9.0).abs() < 3.0, "4T = {t4}");
    assert!((t8 - 11.0).abs() < 3.0, "8T = {t8}");
    assert!(t8 > t4);
}

#[test]
fn table3_hybrid_lift() {
    let seq = rate(WorkloadPreset::Table3, Policy::Paper, 1, 128, 3);
    let t8 = rate(WorkloadPreset::Table3, Policy::Paper, 8, 128, 3);
    // Paper: 102 → 228 (2.24×). Our model world: ~82 → ~181 (~2.2×).
    let lift = t8 / seq;
    assert!(lift > 1.6 && lift < 3.5, "hybrid lift = {lift}");
    // Hybrid beats both single-resource configurations.
    let cpu_only = rate(WorkloadPreset::Table1, Policy::CpuOnly, 8, 2, 3);
    let gpu_only = rate(WorkloadPreset::Table3, Policy::GpuOnly, 8, 6, 3);
    assert!(t8 > cpu_only, "{t8} vs cpu {cpu_only}");
    assert!(t8 > gpu_only, "{t8} vs gpu {gpu_only}");
}

#[test]
fn translation_overhead_is_single_digit_percent() {
    let h = PaperHierarchy::default();
    let with_text = WorkloadPreset::Table3.mix();
    let without_text = QueryMix {
        classes: with_text
            .classes
            .iter()
            .cloned()
            .map(|mut c| {
                c.text_prob = 0.0;
                c
            })
            .collect(),
        ..with_text.clone()
    };
    let run = |mix: QueryMix| {
        let mut cfg = SimConfig::paper(Policy::GpuOnly, 8, 1500);
        cfg.workers = cfg.layout.gpu_partitions();
        let mut g = QueryGenerator::new(
            h.catalog(WorkloadPreset::Table3.resolutions()),
            h.total_columns(),
            mix,
            4,
        );
        holap::sim::run_closed_loop(&cfg, &mut g).throughput_qps
    };
    let without = run(without_text);
    let with = run(with_text);
    let slowdown = 1.0 - with / without;
    // Paper: ≈7 %.
    assert!(slowdown > 0.02 && slowdown < 0.15, "slowdown = {slowdown}");
}

#[test]
fn paper_policy_beats_load_blind_baselines() {
    let paper = rate(WorkloadPreset::Table3, Policy::Paper, 8, 128, 5);
    let met = rate(WorkloadPreset::Table3, Policy::Met, 8, 128, 5);
    let rr = rate(WorkloadPreset::Table3, Policy::RoundRobin, 8, 128, 5);
    assert!(paper > met, "paper {paper} vs MET {met}");
    // Round-robin ignores cost asymmetry; the deadline-aware policy should
    // not lose to it on the hybrid mix.
    assert!(paper > rr * 0.9, "paper {paper} vs RR {rr}");
}

#[test]
fn open_loop_has_a_knee() {
    // Deadline hit ratio must degrade as offered load crosses capacity.
    let cfg = SimConfig::paper(Policy::Paper, 8, 1500);
    let h = PaperHierarchy::default();
    let at = |lambda: f64| {
        let mut g = QueryGenerator::preset(WorkloadPreset::Table3, &h, 6);
        holap::sim::run_open_loop(&cfg, &mut g, lambda).deadline_hit_ratio()
    };
    let light = at(10.0);
    let heavy = at(400.0);
    assert!(light > 0.9, "light load meets deadlines: {light}");
    assert!(heavy < light, "overload degrades: {heavy} < {light}");
}
