//! End-to-end observability tests: every query lifecycle — normal, shed,
//! faulted-then-retried, quarantine-rerouted — must be reconstructable
//! from the flight recorder's JSON dump; anomalous traces must survive
//! ring eviction; the engine stats snapshot must be coherent under
//! concurrent load; and the exposed metrics must agree with the stats.

use holap::prelude::*;
use holap::sched::Placement;
use serde_json::Value;

fn facts(rows: usize) -> SyntheticFacts {
    let h = PaperHierarchy::scaled_down(8);
    SyntheticFacts::generate(&FactsSpec {
        schema: h.table_schema(),
        rows,
        text_levels: vec![TextLevel {
            dim: 1,
            level: 3,
            style: NameStyle::City,
        }],
        dict_kind: DictKind::Sorted,
        skew: None,
        seed: 31,
    })
}

fn build_system(config: SystemConfig, plan: Option<FaultPlan>) -> HybridSystem {
    let mut b = HybridSystem::builder(config)
        .facts(facts(20_000))
        .cube_at(1)
        .cube_at(2);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    b.build().unwrap()
}

fn gpu_partitions() -> usize {
    SystemConfig::default().layout.gpu_partitions()
}

/// Parses the recorder dump and returns the JSON object for `query_id`,
/// searching the anomaly buffer first like `FlightRecorder::find`.
fn dumped_trace(sys: &HybridSystem, id: u64) -> Value {
    let dump: Value = serde_json::from_str(&sys.trace_dump_json(false).unwrap()).unwrap();
    for key in ["anomalies", "recent"] {
        if let Some(t) = dump[key]
            .as_array()
            .unwrap()
            .iter()
            .find(|t| t["query_id"].as_u64() == Some(id))
        {
            return t.clone();
        }
    }
    panic!("trace {id} not in recorder dump: {dump}");
}

fn event_names(trace: &Value) -> Vec<String> {
    trace["events"]
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e["event"].as_str().unwrap().to_owned())
        .collect()
}

/// A plain GPU query's whole lifecycle — submitted, dispatched,
/// scheduled, kernel start/end, completed — reconstructs from the JSON
/// dump, with non-decreasing timestamps and the scheduling decision's
/// candidate set embedded.
#[test]
fn normal_query_lifecycle_reconstructs_from_json() {
    let sys = build_system(SystemConfig::default(), None);
    let q = EngineQuery::new().range(0, 3, 0, 9).deadline(10.0);
    let ticket = sys.submit(&q).unwrap();
    let id = ticket.id();
    let out = ticket.wait().unwrap();
    assert!(!out.placement.is_cpu(), "finest-level query runs on a GPU");

    let t = dumped_trace(&sys, id);
    assert_eq!(t["status"], "completed");
    assert_eq!(t["anomalies"].as_array().unwrap().len(), 0);
    let names = event_names(&t);
    for expected in [
        "submitted",
        "dispatched",
        "scheduled",
        "kernel_start",
        "kernel_end",
        "completed",
    ] {
        assert!(
            names.contains(&expected.to_string()),
            "{expected}: {names:?}"
        );
    }
    let events = t["events"].as_array().unwrap();
    let times: Vec<f64> = events.iter().map(|e| e["at"].as_f64().unwrap()).collect();
    assert!(
        times.windows(2).all(|w| w[0] <= w[1]),
        "timestamps non-decreasing: {times:?}"
    );
    let scheduled = events.iter().find(|e| e["event"] == "scheduled").unwrap();
    assert!(scheduled["candidates"]["resp_gpu"].is_array());
    assert!(scheduled["estimated_proc_secs"].as_f64().unwrap() > 0.0);
    let completed = events.iter().find(|e| e["event"] == "completed").unwrap();
    assert!(completed["latency_secs"].as_f64().unwrap() > 0.0);
    assert!(completed["residual_secs"].is_number(), "estimate residual");
}

/// A query shed for a hopeless deadline leaves a `shed` trace whose shed
/// event records the predicted completion vs the deadline.
#[test]
fn shed_query_lifecycle_reconstructs_from_json() {
    let config = SystemConfig {
        admission: AdmissionConfig {
            shedding: SheddingPolicy::Shed,
            ..AdmissionConfig::default()
        },
        ..SystemConfig::default()
    };
    let sys = build_system(config, None);
    let q = EngineQuery::new().range(0, 3, 0, 40).deadline(1e-9);
    let ticket = sys.submit(&q).unwrap();
    let id = ticket.id();
    let out = ticket.wait().unwrap();
    assert!(out.shed);

    let t = dumped_trace(&sys, id);
    assert_eq!(t["status"], "shed");
    let names = event_names(&t);
    assert!(names.contains(&"shed".to_string()), "{names:?}");
    let events = t["events"].as_array().unwrap();
    let shed = events.iter().find(|e| e["event"] == "shed").unwrap();
    assert!(
        shed["min_response_at"].as_f64().unwrap() > shed["deadline"].as_f64().unwrap(),
        "shed because even the best partition misses the deadline"
    );
    assert!(
        t["anomalies"]
            .as_array()
            .unwrap()
            .iter()
            .any(|a| a == "shed"),
        "shed traces are anomalous: {t}"
    );
}

/// A transient kernel fault shows up in the trace as a fault event with
/// the partition and error, a retry event, and a completion on the GPU —
/// the full containment story in one timeline.
#[test]
fn faulted_then_retried_trace_records_the_ladder() {
    let mut plan = FaultPlan::new(1);
    for p in 0..gpu_partitions() {
        plan = plan.with_scripted(p, 0, FaultKind::Error);
    }
    let config = SystemConfig {
        policy: Policy::GpuOnly,
        ..SystemConfig::default()
    };
    let sys = build_system(config, Some(plan));
    let ticket = sys.submit(&EngineQuery::new().range(0, 3, 0, 9)).unwrap();
    let id = ticket.id();
    let out = ticket.wait().unwrap();
    assert!(!out.placement.is_cpu());

    let trace = sys.trace_for(id).expect("trace retained");
    assert!(trace.fault_count() >= 1, "fault event recorded");
    assert!(trace.retry_count() >= 1, "retry event recorded");
    assert!(trace.is_anomalous());

    let t = dumped_trace(&sys, id);
    let events = t["events"].as_array().unwrap();
    let fault = events.iter().find(|e| e["event"] == "fault").unwrap();
    assert!(fault["error"].as_str().unwrap().contains("injected"));
    assert_eq!(fault["timed_out"], false);
    let fault_idx = events.iter().position(|e| e["event"] == "fault").unwrap();
    let retry_idx = events.iter().position(|e| e["event"] == "retry").unwrap();
    let done_idx = events
        .iter()
        .position(|e| e["event"] == "completed")
        .unwrap();
    assert!(fault_idx < retry_idx && retry_idx < done_idx);
    let completed = &events[done_idx];
    assert!(
        completed["placement"]["Gpu"]["partition"].is_number(),
        "final device is a GPU partition: {completed}"
    );
}

/// A dead partition's stranded query walks the whole ladder in one trace:
/// faults, health transition to quarantined, failover, CPU execution —
/// and the final device is the CPU.
#[test]
fn quarantine_rerouted_trace_shows_failover_to_cpu() {
    let plan = FaultPlan::new(3).with_dead_partition(0);
    let config = SystemConfig {
        policy: Policy::GpuOnly,
        faults: FaultToleranceConfig {
            quarantine: HealthConfig {
                cooldown_secs: 1e9,
                ..HealthConfig::default()
            },
            ..FaultToleranceConfig::default()
        },
        ..SystemConfig::default()
    };
    let sys = build_system(config, Some(plan));

    // A burst spreads work over every partition, so partition 0 strands
    // at least one query, which quarantines it and fails over to the CPU.
    let queries: Vec<EngineQuery> = (0..30)
        .map(|i: u32| EngineQuery::new().range(0, 3, i % 3, 5 + i % 5))
        .collect();
    let ids: Vec<u64> = sys
        .submit_batch(queries.iter())
        .into_iter()
        .map(|t| {
            let t = t.unwrap();
            let id = t.id();
            t.wait().unwrap();
            id
        })
        .collect();
    assert_eq!(sys.partition_health(0), HealthState::Quarantined);

    let rerouted = ids
        .iter()
        .filter_map(|&id| sys.trace_for(id))
        .find(|t| {
            t.events
                .iter()
                .any(|e| matches!(e.kind, SpanKind::Failover { from_partition: 0 }))
        })
        .expect("some query failed over from partition 0");
    let id = rerouted.query_id;
    assert_eq!(rerouted.final_placement(), Some(Placement::Cpu));

    let t = dumped_trace(&sys, id);
    let names = event_names(&t);
    for expected in [
        "fault",
        "health_transition",
        "failover",
        "cpu_exec",
        "completed",
    ] {
        assert!(
            names.contains(&expected.to_string()),
            "{expected}: {names:?}"
        );
    }
    let events = t["events"].as_array().unwrap();
    let health = events
        .iter()
        .find(|e| e["event"] == "health_transition" && e["state"] == "Quarantined")
        .expect("quarantine transition in the trace");
    assert_eq!(health["partition"], 0);
    let completed = events.iter().find(|e| e["event"] == "completed").unwrap();
    assert_eq!(completed["placement"], "Cpu", "final device: {completed}");
}

/// Anomalous traces outlive the recent ring: after flooding the recorder
/// with clean queries, the early faulted trace is gone from the ring but
/// still retrievable from the anomaly buffer (and the JSON dump).
#[test]
fn anomalous_traces_survive_ring_eviction() {
    let mut plan = FaultPlan::new(7);
    for p in 0..gpu_partitions() {
        plan = plan.with_scripted(p, 0, FaultKind::Error);
    }
    let config = SystemConfig {
        policy: Policy::GpuOnly,
        obs: ObsConfig {
            recorder_capacity: 4,
            ..ObsConfig::default()
        },
        ..SystemConfig::default()
    };
    let sys = build_system(config, Some(plan));

    let q = EngineQuery::new().range(0, 3, 0, 9);
    let ticket = sys.submit(&q).unwrap();
    let faulted_id = ticket.id();
    ticket.wait().unwrap();
    assert!(sys.trace_for(faulted_id).unwrap().is_anomalous());

    // Flood: far more clean completions than the ring holds.
    for _ in 0..20 {
        sys.submit(&q).unwrap().wait().unwrap();
    }
    let in_ring = sys
        .recent_traces(usize::MAX)
        .iter()
        .any(|t| t.query_id == faulted_id);
    assert!(!in_ring, "ring evicted the old trace");
    let kept = sys
        .anomalous_traces()
        .into_iter()
        .find(|t| t.query_id == faulted_id)
        .expect("anomaly buffer retains the evidence");
    assert!(kept.fault_count() >= 1);
    // And the JSON dump still reconstructs it.
    let t = dumped_trace(&sys, faulted_id);
    assert!(event_names(&t).contains(&"fault".to_string()));
}

/// The stats snapshot is coherent under concurrent load: at no observable
/// instant do resolved queries exceed submitted ones (the torn-snapshot
/// regression), and the in-flight derivation never underflows.
#[test]
fn stats_snapshot_is_coherent_under_concurrency() {
    let sys = std::sync::Arc::new(build_system(SystemConfig::default(), None));
    let worker = {
        let sys = std::sync::Arc::clone(&sys);
        std::thread::spawn(move || {
            let queries: Vec<EngineQuery> = (0..300)
                .map(|i: u32| match i % 3 {
                    0 => EngineQuery::new().range(0, 1, i % 2, 1 + i % 2),
                    1 => EngineQuery::new().range(0, 2, i % 4, 3 + i % 9),
                    _ => EngineQuery::new().range(0, 3, i % 5, 5 + i % 5),
                })
                .collect();
            for t in sys.submit_batch(queries.iter()) {
                t.unwrap().wait().unwrap();
            }
        })
    };
    loop {
        let s = sys.stats();
        let resolved = s.completed + s.failed + s.shed + s.rejected;
        assert!(
            resolved <= s.submitted,
            "torn snapshot: resolved {resolved} > submitted {}",
            s.submitted
        );
        let _ = s.in_flight(); // must not underflow (saturating by construction)
        if worker.is_finished() {
            break;
        }
        std::thread::yield_now();
    }
    worker.join().unwrap();

    let s = sys.stats();
    assert_eq!(s.submitted, 300);
    assert_eq!(s.completed + s.failed + s.shed + s.rejected, 300);
    assert_eq!(s.in_flight(), 0);

    // The exposed metrics agree with the final stats snapshot.
    let snap = sys.metrics_snapshot().unwrap();
    assert_eq!(snap.counter("holap_engine_submitted_total", &[]), 300);
    let by_placement: u64 = ["cpu", "gpu", "cache"]
        .iter()
        .map(|p| snap.counter("holap_engine_completed_total", &[("placement", p)]))
        .sum();
    assert_eq!(by_placement, s.completed);
}
