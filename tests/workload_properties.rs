//! Property-based tests of the workload generator: every generated query
//! is well-formed and its scheduler-facing features are consistent with
//! the catalog it was generated against.

use holap::cube::CubeCatalog;
use holap::workload::{PaperHierarchy, QueryClass, QueryGenerator, QueryMix, WorkloadPreset};
use proptest::prelude::*;

fn mix_strategy() -> impl Strategy<Value = QueryMix> {
    proptest::collection::vec(
        (
            0.1..10.0f64,    // weight
            0usize..4,       // level
            0.05..0.95f64,   // width fraction
            0usize..4,       // restricted dims
            0.0..1.0f64,     // text prob
            1usize..100_000, // dict len
            1usize..3,       // data columns
        ),
        1..4,
    )
    .prop_map(|classes| QueryMix {
        classes: classes
            .into_iter()
            .map(
                |(
                    weight,
                    level,
                    width_frac,
                    restricted_dims,
                    text_prob,
                    dict_len,
                    data_columns,
                )| {
                    QueryClass {
                        weight,
                        level,
                        width_frac,
                        restricted_dims,
                        text_prob,
                        dict_len,
                        data_columns,
                    }
                },
            )
            .collect(),
        deadline_secs: 0.5,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_queries_are_well_formed(
        mix in mix_strategy(),
        resolutions in proptest::sample::subsequence(vec![0usize, 1, 2, 3], 1..=4),
        seed in proptest::num::u64::ANY,
    ) {
        let h = PaperHierarchy::default();
        let catalog: CubeCatalog = h.catalog(&resolutions);
        let schema = h.cube_schema();
        let finest = *resolutions.iter().max().unwrap();
        let mut g = QueryGenerator::new(catalog.clone(), h.total_columns(), mix, seed);
        for _ in 0..30 {
            let q = g.next_query();
            // Structured form validates.
            q.cube_query.validate(&schema).expect("generated query validates");
            // Column fraction is a real fraction.
            prop_assert!(q.features.gpu_column_fraction > 0.0);
            prop_assert!(q.features.gpu_column_fraction <= 1.0);
            // CPU answerable iff the required resolution is catalogued.
            let required = q.cube_query.required_resolution();
            prop_assert_eq!(
                q.features.cpu_subcube_mb.is_some(),
                required <= finest,
                "required {} vs finest resident {}",
                required,
                finest
            );
            // When answerable, the feature equals the catalog's estimate.
            if let Some(mb) = q.features.cpu_subcube_mb {
                let plan = catalog.plan(&q.cube_query).unwrap().unwrap();
                prop_assert!((plan.estimated_mb - mb).abs() < 1e-9);
            }
            prop_assert!(q.deadline_secs > 0.0);
        }
    }

    #[test]
    fn presets_generate_consistently(seed in proptest::num::u64::ANY) {
        let h = PaperHierarchy::default();
        for preset in [WorkloadPreset::Table1, WorkloadPreset::Table2, WorkloadPreset::Table3] {
            let mut g = QueryGenerator::preset(preset, &h, seed);
            let schema = h.cube_schema();
            for _ in 0..20 {
                let q = g.next_query();
                q.cube_query.validate(&schema).expect("preset query validates");
                // Table 1 never needs the GPU.
                if preset == WorkloadPreset::Table1 {
                    prop_assert!(q.features.cpu_subcube_mb.is_some());
                    prop_assert!(q.features.translation_dict_lens.is_empty());
                }
            }
        }
    }
}
