//! Property-based tests of the dictionary substrate: round-trips, order
//! preservation, and range-translation correctness for arbitrary key sets.

use holap::dict::{
    DictKind, Dictionary, DictionarySet, HashDict, LinearDict, SortedDict, TextCondition,
};
use proptest::prelude::*;

fn keys_strategy() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z]{1,12}", 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode ∘ decode = id and decode ∘ encode = id, for every kind.
    #[test]
    fn roundtrip_all_kinds(keys in keys_strategy()) {
        let linear = LinearDict::build(keys.iter().map(String::as_str));
        let sorted = SortedDict::build(keys.iter().map(String::as_str));
        let hashed = HashDict::build(keys.iter().map(String::as_str));
        let dicts: [&dyn Dictionary; 3] = [&linear, &sorted, &hashed];
        for d in dicts {
            for k in &keys {
                let code = d.encode(k).expect("inserted key encodes");
                prop_assert_eq!(d.decode(code), Some(k.as_str()));
            }
            // All dictionaries agree on the number of distinct keys.
            prop_assert_eq!(d.len(), sorted.len());
            // Codes are dense: every code below len decodes.
            for c in 0..d.len() as u32 {
                prop_assert!(d.decode(c).is_some());
            }
        }
    }

    /// The sorted dictionary's codes are order-preserving.
    #[test]
    fn sorted_dict_preserves_order(keys in keys_strategy()) {
        let d = SortedDict::build(keys.iter().map(String::as_str));
        for a in &keys {
            for b in &keys {
                let ca = d.encode(a).unwrap();
                let cb = d.encode(b).unwrap();
                prop_assert_eq!(a.cmp(b), ca.cmp(&cb), "{} vs {}", a, b);
            }
        }
    }

    /// Range translation matches brute-force membership for arbitrary
    /// bounds (including bounds that are not keys).
    #[test]
    fn range_translation_matches_brute_force(
        keys in keys_strategy(),
        lo in "[a-z]{0,12}",
        hi in "[a-z]{0,12}",
    ) {
        let d = SortedDict::build(keys.iter().map(String::as_str));
        let expected: std::collections::BTreeSet<&str> = keys
            .iter()
            .map(String::as_str)
            .filter(|k| *k >= lo.as_str() && *k <= hi.as_str())
            .collect();
        match d.encode_range(&lo, &hi) {
            Some(Some((a, b))) => {
                let got: std::collections::BTreeSet<&str> =
                    (a..=b).map(|c| d.decode(c).unwrap()).collect();
                prop_assert_eq!(got, expected);
            }
            Some(None) => prop_assert!(expected.is_empty()),
            None => prop_assert!(false, "sorted dict must support ranges"),
        }
    }

    /// Whole-column encoding through a DictionarySet is lossless and
    /// identical across kinds (codes may differ; decoded values may not).
    #[test]
    fn column_encoding_is_lossless(values in proptest::collection::vec("[a-z]{1,8}", 1..80)) {
        for kind in [DictKind::Linear, DictKind::Sorted, DictKind::Hashed] {
            let mut set = DictionarySet::new(kind);
            let codes = set.build_column("c", values.iter().map(String::as_str));
            prop_assert_eq!(codes.len(), values.len());
            for (code, value) in codes.iter().zip(&values) {
                prop_assert_eq!(set.decode("c", *code), Some(value.as_str()));
            }
        }
    }

    /// Eq-translation returns the degenerate range of the value's code and
    /// never invents matches.
    #[test]
    fn eq_translation_is_exact(values in proptest::collection::vec("[a-z]{1,8}", 1..50), probe in "[a-z]{1,8}") {
        let mut set = DictionarySet::new(DictKind::Sorted);
        set.build_column("c", values.iter().map(String::as_str));
        match set.translate("c", &TextCondition::eq(&probe)) {
            Ok((lo, hi)) => {
                prop_assert_eq!(lo, hi);
                prop_assert_eq!(set.decode("c", lo), Some(probe.as_str()));
                prop_assert!(values.contains(&probe));
            }
            Err(_) => prop_assert!(!values.contains(&probe)),
        }
    }

    /// Probe bounds honour their contracts: linear = n, sorted ≤ ⌈log₂ n⌉+1,
    /// hashed = 1.
    #[test]
    fn probe_bounds(keys in keys_strategy()) {
        let linear = LinearDict::build(keys.iter().map(String::as_str));
        let sorted = SortedDict::build(keys.iter().map(String::as_str));
        let hashed = HashDict::build(keys.iter().map(String::as_str));
        let n = sorted.len();
        prop_assert_eq!(linear.probe_bound(), n);
        prop_assert!(sorted.probe_bound() <= (n.ilog2() as usize) + 2);
        prop_assert_eq!(hashed.probe_bound(), 1);
    }
}
