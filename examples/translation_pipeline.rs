//! The text-to-integer translation pipeline in isolation: build per-column
//! dictionaries over TPC-DS-like string columns, translate query
//! predicates, and compare the paper's linear dictionary with the
//! "advanced translation mechanism" its conclusion promises (sorted /
//! hashed dictionaries).
//!
//! ```text
//! cargo run --release --example translation_pipeline
//! ```

use holap::dict::{DictKind, Dictionary, DictionarySet, TextCondition};
use holap::model::DictPerfModel;
use holap::workload::{name_pool, NameStyle};
use std::time::Instant;

fn main() {
    // Per-column dictionaries, as the paper prescribes: "a smaller
    // dictionary for each text column … rather than one large dictionary".
    let columns = [
        ("customer.city", NameStyle::City, 40_000usize),
        ("customer.name", NameStyle::Person, 250_000),
        ("item.brand", NameStyle::Brand, 10_000),
    ];

    for kind in [DictKind::Linear, DictKind::Sorted, DictKind::Hashed] {
        println!("\n=== {kind:?} dictionaries ===");
        let mut set = DictionarySet::new(kind);
        let mut pools = Vec::new();
        for (col, style, card) in &columns {
            let names = name_pool(*card, *style, 77);
            let t0 = Instant::now();
            set.build_column(col, names.iter().map(String::as_str));
            println!(
                "built {col:<16} {card:>7} entries in {:>8.2} ms (probe bound {})",
                t0.elapsed().as_secs_f64() * 1e3,
                set.dictionary(col).unwrap().probe_bound(),
            );
            pools.push(names);
        }

        // Translate a query's text parameters (what the preprocessing
        // partition does for every GPU-bound query).
        let city = pools[0][pools[0].len() - 1].clone();
        let brand = pools[2][1].clone();
        let conds = [
            ("customer.city", TextCondition::eq(&*city)),
            ("item.brand", TextCondition::eq(&*brand)),
        ];
        let t0 = Instant::now();
        for (col, cond) in &conds {
            let (lo, hi) = set.translate(col, cond).expect("member exists");
            println!("  {col}: {cond:?} -> codes [{lo}, {hi}]");
        }
        println!("  translated in {:.3} ms", t0.elapsed().as_secs_f64() * 1e3);

        // Range predicates only translate on order-preserving codes.
        let range = TextCondition::range("B", "Cz");
        match set.translate("customer.city", &range) {
            Ok((lo, hi)) => println!("  range 'B'..'Cz' -> codes [{lo}, {hi}]"),
            Err(e) => println!("  range 'B'..'Cz' -> unsupported: {e}"),
        }
    }

    // The paper's cost bound (Eq. 17–18) vs. what the implementations do.
    println!("\n=== Eq. 17 upper bound vs implementation ===");
    let model = DictPerfModel::paper();
    for len in [10_000usize, 100_000, 1_000_000] {
        let names = name_pool(len, NameStyle::City, 5);
        let needle = names.last().unwrap().clone();
        let linear = holap::dict::LinearDict::build(names.iter().map(String::as_str));
        let sorted = holap::dict::SortedDict::build(names.iter().map(String::as_str));
        let time = |f: &dyn Fn() -> Option<u32>| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        };
        let t_lin = time(&|| linear.encode(&needle));
        let t_sort = time(&|| sorted.encode(&needle));
        println!(
            "{len:>9} entries: paper bound {:>9.3} ms | linear {:>9.3} ms | sorted {:>9.5} ms",
            model.lookup_secs(len) * 1e3,
            t_lin * 1e3,
            t_sort * 1e3,
        );
    }
    println!(
        "\nThe linear dictionary tracks the paper's linear bound (Fig. 9); the\n\
         sorted dictionary replaces it with ~log2(n) comparisons, which is why\n\
         the 7 % GPU-side translation overhead disappears with it."
    );
}
