//! Capacity planning with the system model: how many queries per second
//! can a configuration sustain, and at what offered load do deadlines
//! start slipping? This drives the same discrete-event simulator the
//! Section-IV reproduction uses, so "what if we had 16 CPU threads?" or
//! "what if the GPU were split 2/4/8?" are one-line edits.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use holap::prelude::*;
use holap::sim::SimConfig;

fn main() {
    let hierarchy = PaperHierarchy::default();

    println!("— saturation throughput by configuration (closed loop) —");
    println!(
        "{:<34} {:>10} {:>10} {:>10}",
        "configuration", "Q/s", "cpu share", "gpu share"
    );
    for (label, policy, threads) in [
        ("sequential CPU + GPU (paper base)", Policy::Paper, 1u32),
        ("4-thread CPU + GPU", Policy::Paper, 4),
        ("8-thread CPU + GPU", Policy::Paper, 8),
        ("CPU only (8 threads)", Policy::CpuOnly, 8),
        ("GPU only", Policy::GpuOnly, 8),
        ("MCT baseline (8 threads)", Policy::Mct, 8),
        ("MET baseline (8 threads)", Policy::Met, 8),
    ] {
        let mut cfg = SimConfig::paper(policy, threads, 3000);
        cfg.workers = 128;
        let mut generator = QueryGenerator::preset(WorkloadPreset::Table3, &hierarchy, 11);
        let report = holap::sim::run_closed_loop(&cfg, &mut generator);
        println!(
            "{:<34} {:>10.1} {:>9.0}% {:>9.0}%",
            label,
            report.throughput_qps,
            report.cpu_share() * 100.0,
            (1.0 - report.cpu_share()) * 100.0
        );
    }

    println!("\n— deadline hit ratio vs offered load (open loop, paper policy, 8T) —");
    println!(
        "{:>12} {:>14} {:>16}",
        "load (Q/s)", "deadlines met", "mean latency"
    );
    for lambda in [20.0, 50.0, 100.0, 150.0, 200.0, 300.0] {
        let cfg = SimConfig::paper(Policy::Paper, 8, 3000);
        let mut generator = QueryGenerator::preset(WorkloadPreset::Table3, &hierarchy, 12);
        let report = holap::sim::run_open_loop(&cfg, &mut generator, lambda);
        println!(
            "{lambda:>12.0} {:>13.1}% {:>13.1} ms",
            report.deadline_hit_ratio() * 100.0,
            report.mean_latency_secs * 1e3
        );
    }

    println!("\n— what if: alternative GPU partition layouts (closed loop, 8T) —");
    println!("{:>18} {:>10}", "layout (SMs)", "Q/s");
    for sms in [
        vec![1, 1, 2, 2, 4, 4],
        vec![2, 4, 8],
        vec![14],
        vec![1; 14],
        vec![7, 7],
    ] {
        let mut cfg = SimConfig::paper(Policy::Paper, 8, 3000);
        cfg.workers = 128;
        cfg.layout = PartitionLayout::new(sms.clone(), 8, 1);
        let mut generator = QueryGenerator::preset(WorkloadPreset::Table3, &hierarchy, 13);
        let report = holap::sim::run_closed_loop(&cfg, &mut generator);
        println!("{:>18} {:>10.1}", format!("{sms:?}"), report.throughput_qps);
    }
    println!(
        "\n(The paper's 1/1/2/2/4/4 split trades peak capacity for having slow\n\
         queues to park cheap queries on — compare it with the monolithic 14.)"
    );
}
