//! A business-intelligence dashboard burst: the workload the paper's
//! introduction motivates — many concurrent analysts firing mixed
//! drill-down queries with interactive deadlines, some cheap (coarse cube
//! slices) and some expensive (fine-grained scans), some with text
//! parameters.
//!
//! Shows the scheduler dividing labour between the CPU cube partition and
//! the GPU partitions, and the deadline bookkeeping.
//!
//! ```text
//! cargo run --release --example retail_dashboard
//! ```

use holap::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn main() {
    let hierarchy = PaperHierarchy::scaled_down(8);
    let facts = SyntheticFacts::generate(&FactsSpec {
        schema: hierarchy.table_schema(),
        rows: 400_000,
        text_levels: vec![TextLevel {
            dim: 1,
            level: 3,
            style: NameStyle::City,
        }],
        dict_kind: DictKind::Sorted,
        skew: None,
        seed: 7,
    });
    let cities: Vec<String> = (0..16)
        .map(|i| facts.dicts.decode("geo.level3", i * 7).unwrap().to_owned())
        .collect();

    // Dashboards re-issue the same queries constantly: turn on the result
    // cache (sound — the data is immutable after build).
    let config = SystemConfig {
        cache_capacity: 256,
        ..SystemConfig::default()
    };
    let system = Arc::new(
        HybridSystem::builder(config)
            .facts(facts)
            .cube_at(0)
            .cube_at(1)
            .cube_at(2)
            .build()
            .expect("system builds"),
    );

    // Eight "analysts", each firing 25 queries back-to-back.
    let mut handles = Vec::new();
    for analyst in 0..8u64 {
        let system = Arc::clone(&system);
        let cities = cities.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(analyst);
            let mut cpu = 0u32;
            let mut gpu = 0u32;
            for _ in 0..25 {
                let q = match rng.gen_range(0..4u32) {
                    // Coarse slice: "sales by year" — cube fodder.
                    0 => {
                        let y = rng.gen_range(0..2u32);
                        EngineQuery::new().range(0, 0, y % 2, y % 2).deadline(0.5)
                    }
                    // Medium drill-down across months × regions.
                    1 => {
                        let from = rng.gen_range(0..2u32);
                        EngineQuery::new()
                            .range(0, 1, from, from + 1)
                            .range(1, 1, 0, 1)
                            .deadline(0.5)
                    }
                    // Fine-grained: day-level scan, too fine for the cubes.
                    2 => {
                        let from = rng.gen_range(0..80u32);
                        EngineQuery::new()
                            .range(0, 3, from, from + 60)
                            .deadline(0.5)
                    }
                    // Text lookup: a specific city at the finest level.
                    _ => {
                        let city = &cities[rng.gen_range(0..cities.len())];
                        EngineQuery::new().text_eq(1, 3, city).deadline(0.5)
                    }
                };
                let out = system.execute(&q).expect("query runs");
                if out.placement.is_cpu() {
                    cpu += 1;
                } else {
                    gpu += 1;
                }
            }
            (analyst, cpu, gpu)
        }));
    }
    for h in handles {
        let (analyst, cpu, gpu) = h.join().expect("analyst thread finishes");
        println!("analyst {analyst}: {cpu} queries on CPU, {gpu} on GPU");
    }

    let s = system.stats();
    println!("\ndashboard burst totals");
    println!("  completed          : {}", s.completed);
    println!("  CPU partition      : {}", s.cpu_queries);
    println!("  GPU partitions     : {}", s.gpu_queries);
    println!("  translated (text)  : {}", s.translated_queries);
    println!(
        "  mean latency       : {:.2} ms",
        s.mean_latency_secs() * 1e3
    );
    println!("  max latency        : {:.2} ms", s.max_latency_secs * 1e3);
    println!(
        "  deadlines met      : {:.1} %",
        s.deadline_hit_ratio() * 100.0
    );
    let (hits, misses) = system.cache_counters();
    println!(
        "  result cache       : {hits} hits / {misses} misses ({:.0} % hit rate)",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );
    assert_eq!(s.completed, 200);
}
