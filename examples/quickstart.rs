//! Quickstart: bring up the hybrid system on generated data and ask it
//! questions through the DSL.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use holap::prelude::*;

fn main() {
    // 1. Generate a laptop-scale instance of the paper's data geometry:
    //    3 dimensions × 4 levels, with text (dictionary-encoded) columns on
    //    the finest geo and product levels.
    let hierarchy = PaperHierarchy::scaled_down(8);
    let facts = SyntheticFacts::generate(&FactsSpec {
        schema: hierarchy.table_schema(),
        rows: 200_000,
        text_levels: vec![
            TextLevel {
                dim: 1,
                level: 3,
                style: NameStyle::City,
            },
            TextLevel {
                dim: 2,
                level: 3,
                style: NameStyle::Brand,
            },
        ],
        dict_kind: DictKind::Sorted,
        skew: None,
        seed: 42,
    });
    // Remember a couple of real dictionary members to query for.
    let city = facts.dicts.decode("geo.level3", 17).unwrap().to_owned();
    let brand = facts.dicts.decode("product.level3", 3).unwrap().to_owned();

    // 2. Build the system: upload the fact table to the (simulated) GPU,
    //    pre-calculate cubes at two resolutions, start the scheduler.
    let system = HybridSystem::builder(SystemConfig::default())
        .facts(facts)
        .cube_at(1)
        .cube_at(2)
        .build()
        .expect("system builds");
    println!(
        "system up: cubes at {:?} ({} KB in CPU memory), fact table {} MB in GPU memory\n",
        system.cube_resolutions(),
        system.cube_memory_used() / 1024,
        system.gpu_memory_used() / (1024 * 1024),
    );

    // 3. Ask questions.
    let queries = [
        "select sum(measure0) where time.level1 in 0..1".to_owned(),
        "select avg(measure0) where time.level2 in 5..25 and geo.level1 = 2".to_owned(),
        format!("select sum(measure0) where geo.level3 = '{city}'"),
        format!("select count(*) where product.level3 = '{brand}' and time.level0 = 0"),
        "select sum(measure1) where time.level3 in 40..90 deadline 0.1".to_owned(),
    ];
    for text in &queries {
        let out = system.query(text).expect("query runs");
        println!("query : {text}");
        println!(
            "answer: sum = {:.1}, count = {}, avg = {:?}",
            out.answer.sum,
            out.answer.count,
            out.answer.avg().map(|a| (a * 100.0).round() / 100.0)
        );
        println!(
            "ran on: {:?}{} in {:.2} ms (deadline {})\n",
            out.placement,
            if out.translated {
                " (text translated for the GPU)"
            } else {
                ""
            },
            out.latency_secs * 1e3,
            if out.met_deadline { "met" } else { "missed" },
        );
    }

    let stats = system.stats();
    println!(
        "totals: {} queries, {} on CPU, {} on GPU, {} translated, mean latency {:.2} ms",
        stats.completed,
        stats.cpu_queries,
        stats.gpu_queries,
        stats.translated_queries,
        stats.mean_latency_secs() * 1e3
    );
}
